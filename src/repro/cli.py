"""Command-line interface: explore the library without writing code.

Examples
--------
List the reconstructable datasets::

    python -m repro datasets

Run a rotation-invariant nearest-neighbour search on a synthetic archive::

    python -m repro search --collection points --size 200 --measure dtw --radius 5

Reproduce one Table-8 row::

    python -m repro classify --dataset OSULeaves --per-class 4 --length 48

Mine a light-curve archive for outliers::

    python -m repro discords --collection lightcurves --size 40 --top 3

Trace one query and summarize a structured run log::

    python -m repro search --size 50 --trace --obs-log runs.jsonl
    python -m repro obs runs.jsonl
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

__all__ = ["main", "build_parser"]


def _build_collection(name: str, size: int, length: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    if name == "points":
        from repro.datasets.shapes_data import projectile_point_collection

        return projectile_point_collection(rng, size, length=length)
    if name == "lightcurves":
        from repro.datasets.lightcurve_data import light_curve_collection

        return light_curve_collection(rng, size, length=length)
    if name == "heterogeneous":
        from repro.datasets.registry import heterogeneous_collection

        return heterogeneous_collection(rng, size, length=length)
    raise SystemExit(f"unknown collection {name!r}; choose points, lightcurves, heterogeneous")


def _build_measure(args):
    if args.measure == "euclidean":
        from repro.distances.euclidean import EuclideanMeasure

        return EuclideanMeasure()
    if args.measure == "dtw":
        from repro.distances.dtw import DTWMeasure

        return DTWMeasure(radius=args.radius)
    if args.measure == "lcss":
        from repro.distances.lcss import LCSSMeasure

        return LCSSMeasure(delta=args.radius, epsilon=args.epsilon)
    raise SystemExit(f"unknown measure {args.measure!r}")


def cmd_datasets(args) -> int:
    from repro.datasets.registry import TABLE_EIGHT

    print(f"{'name':<16} {'classes':>8} {'paper N':>8} {'paper ED%':>10} {'paper DTW%':>11}")
    for spec in TABLE_EIGHT.values():
        print(
            f"{spec.name:<16} {spec.n_classes:>8} {spec.paper_instances:>8} "
            f"{spec.paper_ed_error:>10.2f} {spec.paper_dtw_error:>11.2f}"
        )
    print("\ncollections for `search`/`discords`: points, lightcurves, heterogeneous")
    return 0


def cmd_search(args) -> int:
    from repro.core.search import (
        brute_force_search,
        early_abandon_search,
        fft_search,
        wedge_search,
    )

    archive = _build_collection(args.collection, args.size, args.length, args.seed)
    measure = _build_measure(args)
    query_index = args.query_index % len(archive)
    query = archive[query_index]
    database = list(np.delete(archive, query_index, axis=0))

    strategies = {
        "wedge": wedge_search,
        "brute": brute_force_search,
        "early-abandon": early_abandon_search,
        "fft": fft_search,
    }
    search = strategies[args.strategy]
    kwargs = dict(mirror=args.mirror)
    if args.max_degrees is not None:
        kwargs["max_degrees"] = args.max_degrees

    tracer = None
    if args.trace:
        from repro.obs.trace import Tracer

        tracer = Tracer()
    metrics = None
    if args.metrics_out:
        from repro.obs.metrics import MetricsRegistry

        metrics = MetricsRegistry()
    query_log = None
    if args.obs_log:
        from repro.obs.querylog import QueryLogger

        query_log = QueryLogger(args.obs_log)
    obs_kwargs = dict(tracer=tracer, metrics=metrics, query_log=query_log)

    if args.strategy == "fft":
        result = search(database, query, mirror=args.mirror, **obs_kwargs)
    else:
        result = search(database, query, measure, **kwargs, **obs_kwargs)
    if query_log is not None:
        query_log.close()

    brute_steps = len(database) * archive.shape[1] * measure.pairwise_cost(archive.shape[1])
    print(f"query: object {query_index} of the {args.collection} collection")
    print(f"best match: object {result.index} at distance {result.distance:.4f} (rotation {result.rotation})")
    print(f"steps: {result.counter.steps:,} ({result.counter.steps / brute_steps:.2%} of brute force)")
    if any(result.tier_stats.values()):
        stats = result.tier_stats
        print(
            "cascade funnel: "
            f"{stats['leaf_candidates']} leaves -> {stats['keogh_reached']} past kim -> "
            f"{stats['improved_reached']} past keogh -> {stats['full_computations']} full distances"
        )
    if tracer is not None:
        print("\ntrace:")
        print(tracer.format_tree())
    if metrics is not None:
        with open(args.metrics_out, "w", encoding="utf-8") as fh:
            fh.write(metrics.to_prometheus())
        print(f"\nmetrics written to {args.metrics_out}")
    if args.obs_log:
        print(f"query record appended to {args.obs_log}")
    return 0


def cmd_obs(args) -> int:
    from repro.obs.report import format_summary, summarize_query_log

    summary = summarize_query_log(args.log, top=args.top)
    if args.json:
        import json

        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        print(format_summary(summary))
    return 0


def cmd_classify(args) -> int:
    from repro.classify.evaluation import evaluate_dataset
    from repro.datasets.registry import TABLE_EIGHT, load_dataset

    if args.dataset not in TABLE_EIGHT:
        raise SystemExit(f"unknown dataset {args.dataset!r}; run `python -m repro datasets`")
    spec = TABLE_EIGHT[args.dataset]
    dataset = load_dataset(args.dataset, seed=args.seed, per_class=args.per_class, length=args.length)
    row = evaluate_dataset(
        dataset,
        candidate_radii=(1, 2, 3),
        max_instances=args.max_instances,
        seed=args.seed,
        paper_euclidean_error=spec.paper_ed_error,
        paper_dtw_error=spec.paper_dtw_error,
    )
    print(row.format())
    return 0


def cmd_discords(args) -> int:
    from repro.mining.discords import find_discords

    archive = _build_collection(args.collection, args.size, args.length, args.seed)
    measure = _build_measure(args)
    discords = find_discords(list(archive), measure, top=args.top)
    print(f"top {args.top} discords of the {args.collection} collection ({args.size} objects, {args.measure}):")
    for rank, discord in enumerate(discords, 1):
        print(
            f"{rank}. object {discord.index:>4}  NN distance {discord.nn_distance:8.3f}  "
            f"(nearest: object {discord.nn_index})"
        )
    return 0


def cmd_motif(args) -> int:
    from repro.mining.motifs import find_motif

    archive = _build_collection(args.collection, args.size, args.length, args.seed)
    measure = _build_measure(args)
    motif = find_motif(list(archive), measure)
    print(f"motif of the {args.collection} collection ({args.size} objects, {args.measure}):")
    print(
        f"objects {motif.first} and {motif.second}, distance {motif.distance:.4f}, "
        f"aligned at rotation {motif.rotation}"
    )
    return 0


def _add_collection_args(parser):
    parser.add_argument("--collection", default="points", choices=("points", "lightcurves", "heterogeneous"))
    parser.add_argument("--size", type=int, default=100, help="collection size")
    parser.add_argument("--length", type=int, default=128, help="series length")
    parser.add_argument("--seed", type=int, default=0)


def _add_measure_args(parser):
    parser.add_argument("--measure", default="euclidean", choices=("euclidean", "dtw", "lcss"))
    parser.add_argument("--radius", type=int, default=5, help="DTW band / LCSS delta")
    parser.add_argument("--epsilon", type=float, default=0.5, help="LCSS epsilon")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Rotation-invariant shape/light-curve indexing (Keogh et al., VLDB 2006)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="list the Table-8 dataset reconstructions").set_defaults(
        func=cmd_datasets
    )

    search = sub.add_parser("search", help="rotation-invariant 1-NN search")
    _add_collection_args(search)
    _add_measure_args(search)
    search.add_argument("--query-index", type=int, default=0)
    search.add_argument("--strategy", default="wedge", choices=("wedge", "brute", "early-abandon", "fft"))
    search.add_argument("--mirror", action="store_true")
    search.add_argument("--max-degrees", type=float, default=None)
    search.add_argument("--trace", action="store_true", help="print the query's span tree")
    search.add_argument(
        "--obs-log", default=None, metavar="FILE", help="append a JSONL query record to FILE"
    )
    search.add_argument(
        "--metrics-out",
        default=None,
        metavar="FILE",
        help="write Prometheus-text metrics for the query to FILE",
    )
    search.set_defaults(func=cmd_search)

    obs = sub.add_parser("obs", help="summarize a JSONL query log (tier funnel, slow queries)")
    obs.add_argument("log", help="path to a query log written by QueryLogger / --obs-log")
    obs.add_argument("--top", type=int, default=5, help="how many slow queries to list")
    obs.add_argument("--json", action="store_true", help="emit the summary as JSON")
    obs.set_defaults(func=cmd_obs)

    classify = sub.add_parser("classify", help="Table-8 protocol on one dataset")
    classify.add_argument("--dataset", required=True)
    classify.add_argument("--per-class", type=int, default=4)
    classify.add_argument("--length", type=int, default=48)
    classify.add_argument("--max-instances", type=int, default=32)
    classify.add_argument("--seed", type=int, default=8)
    classify.set_defaults(func=cmd_classify)

    discords = sub.add_parser("discords", help="find the collection's outliers")
    _add_collection_args(discords)
    _add_measure_args(discords)
    discords.add_argument("--top", type=int, default=3)
    discords.set_defaults(func=cmd_discords)

    motif = sub.add_parser("motif", help="find the collection's closest pair")
    _add_collection_args(motif)
    _add_measure_args(motif)
    motif.set_defaults(func=cmd_motif)

    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
