"""Command-line interface: explore the library without writing code.

Examples
--------
List the reconstructable datasets::

    python -m repro datasets

Run a rotation-invariant nearest-neighbour search on a synthetic archive::

    python -m repro search --collection points --size 200 --measure dtw --radius 5

Reproduce one Table-8 row::

    python -m repro classify --dataset OSULeaves --per-class 4 --length 48

Mine a light-curve archive for outliers::

    python -m repro discords --collection lightcurves --size 40 --top 3

Trace one query and summarize a structured run log::

    python -m repro search --size 50 --trace --obs-log runs.jsonl
    python -m repro obs log runs.jsonl

Watch a live service and render one of its stitched traces::

    python -m repro serve --shards shards/ --measure dtw --telemetry-port 9464
    python -m repro top --port 9464
    python -m repro obs trace http://127.0.0.1:9464/traces/recent --waterfall

Build a durable index archive once, then inspect and query it (optionally
memory-mapped, so the collection never materialises in RAM)::

    python -m repro index build --collection points --size 200 --out points_idx.npz
    python -m repro index inspect points_idx.npz --verify
    python -m repro index query points_idx.npz --collection points --size 200 \
        --query-index 7 --measure dtw --mmap

Shard a collection and serve it as a long-lived query service::

    python -m repro index shard --collection points --size 200 --shards 4 --out shards/
    python -m repro serve --shards shards/ --measure dtw --radius 3 --port 7043
    python -m repro client --port 7043 --op knn --collection points --size 200 --k 5
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

__all__ = ["main", "build_parser"]


def _build_collection(name: str, size: int, length: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    if name == "points":
        from repro.datasets.shapes_data import projectile_point_collection

        return projectile_point_collection(rng, size, length=length)
    if name == "lightcurves":
        from repro.datasets.lightcurve_data import light_curve_collection

        return light_curve_collection(rng, size, length=length)
    if name == "heterogeneous":
        from repro.datasets.registry import heterogeneous_collection

        return heterogeneous_collection(rng, size, length=length)
    raise SystemExit(f"unknown collection {name!r}; choose points, lightcurves, heterogeneous")


def _build_measure(args):
    backend = getattr(args, "backend", None)
    if args.measure == "euclidean":
        from repro.distances.euclidean import EuclideanMeasure

        return EuclideanMeasure()
    if args.measure == "dtw":
        from repro.distances.dtw import DTWMeasure

        try:
            return DTWMeasure(radius=args.radius, backend=backend)
        except ValueError as exc:
            raise SystemExit(str(exc)) from exc
    if args.measure == "lcss":
        from repro.distances.lcss import LCSSMeasure

        try:
            return LCSSMeasure(delta=args.radius, epsilon=args.epsilon, backend=backend)
        except ValueError as exc:
            raise SystemExit(str(exc)) from exc
    raise SystemExit(f"unknown measure {args.measure!r}")


def cmd_datasets(args) -> int:
    from repro.datasets.registry import TABLE_EIGHT

    print(f"{'name':<16} {'classes':>8} {'paper N':>8} {'paper ED%':>10} {'paper DTW%':>11}")
    for spec in TABLE_EIGHT.values():
        print(
            f"{spec.name:<16} {spec.n_classes:>8} {spec.paper_instances:>8} "
            f"{spec.paper_ed_error:>10.2f} {spec.paper_dtw_error:>11.2f}"
        )
    print("\ncollections for `search`/`discords`: points, lightcurves, heterogeneous")
    return 0


def cmd_search(args) -> int:
    from repro.core.search import (
        auto_search,
        brute_force_search,
        early_abandon_search,
        fft_search,
        wedge_search,
    )

    archive = _build_collection(args.collection, args.size, args.length, args.seed)
    measure = _build_measure(args)
    query_index = args.query_index % len(archive)
    query = archive[query_index]
    database = list(np.delete(archive, query_index, axis=0))

    strategies = {
        "wedge": wedge_search,
        "brute": brute_force_search,
        "early-abandon": early_abandon_search,
        "fft": fft_search,
        "auto": auto_search,
    }
    if args.plan is not None and args.strategy != "auto":
        # --plan implies the plan-routed strategy.
        args.strategy = "auto"
    search = strategies[args.strategy]
    kwargs = dict(mirror=args.mirror)
    if args.max_degrees is not None:
        kwargs["max_degrees"] = args.max_degrees
    if args.strategy == "auto":
        from repro.core.planner import parse_plan

        try:
            plan = parse_plan(args.plan or "auto", measure)
        except ValueError as exc:
            raise SystemExit(str(exc)) from exc
        if plan is not None:
            kwargs["plan"] = plan

    tracer = None
    if args.trace:
        from repro.obs.trace import Tracer

        tracer = Tracer()
    metrics = None
    if args.metrics_out:
        from repro.obs.metrics import MetricsRegistry

        metrics = MetricsRegistry()
    query_log = None
    if args.obs_log:
        from repro.obs.querylog import QueryLogger

        query_log = QueryLogger(args.obs_log)
    obs_kwargs = dict(tracer=tracer, metrics=metrics, query_log=query_log)

    if args.strategy == "fft":
        result = search(database, query, mirror=args.mirror, **obs_kwargs)
    else:
        result = search(database, query, measure, **kwargs, **obs_kwargs)
    if query_log is not None:
        query_log.close()

    brute_steps = len(database) * archive.shape[1] * measure.pairwise_cost(archive.shape[1])
    print(f"query: object {query_index} of the {args.collection} collection")
    print(f"measure: {measure.name} (kernel backend: {measure.backend_name})")
    if getattr(result, "plan", None):
        print(f"plan: {result.plan}")
    print(f"best match: object {result.index} at distance {result.distance:.4f} (rotation {result.rotation})")
    print(f"steps: {result.counter.steps:,} ({result.counter.steps / brute_steps:.2%} of brute force)")
    if any(result.tier_stats.values()):
        stats = result.tier_stats
        print(
            "cascade funnel: "
            f"{stats['leaf_candidates']} leaves -> {stats['keogh_reached']} past kim -> "
            f"{stats['improved_reached']} past keogh -> {stats['full_computations']} full distances"
        )
    if tracer is not None:
        print("\ntrace:")
        print(tracer.format_tree())
    if metrics is not None:
        with open(args.metrics_out, "w", encoding="utf-8") as fh:
            fh.write(metrics.to_prometheus())
        print(f"\nmetrics written to {args.metrics_out}")
    if args.obs_log:
        print(f"query record appended to {args.obs_log}")
    return 0


def cmd_obs(args) -> int:
    from repro.obs.report import format_summary, summarize_query_log

    summary = summarize_query_log(args.log, top=args.top)
    if args.json:
        import json

        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        print(format_summary(summary))
    return 0


def _fetch_json(source: str, timeout: float = 10.0) -> dict:
    """Load JSON from a local file or an http(s) URL (telemetry endpoint)."""
    import json

    if source.startswith(("http://", "https://")):
        from urllib.request import urlopen

        with urlopen(source, timeout=timeout) as resp:  # noqa: S310 - operator-supplied URL
            return json.loads(resp.read().decode("utf-8"))
    with open(source, encoding="utf-8") as fh:
        return json.load(fh)


def cmd_obs_trace(args) -> int:
    from repro.obs.waterfall import pick_trace, render_waterfall

    try:
        payload = _fetch_json(args.source)
    except OSError as exc:
        raise SystemExit(f"cannot read {args.source}: {exc}") from exc
    try:
        trace = pick_trace(payload, trace_id=args.trace_id, index=args.index)
    except ValueError as exc:
        raise SystemExit(str(exc)) from exc
    if args.json:
        import json

        print(json.dumps(trace, indent=2, sort_keys=True))
    else:
        # --waterfall is the default (and only) text rendering; the flag
        # exists so scripts can state their intent explicitly.
        print(render_waterfall(trace, width=args.width))
    return 0


def cmd_top(args) -> int:
    import json
    import time

    from repro.service.telemetry import format_dashboard

    base = f"http://{args.host}:{args.port}"
    while True:
        try:
            slo = _fetch_json(base + "/slo", timeout=args.timeout)
            health = _fetch_json(base + "/health", timeout=args.timeout)
            traces = _fetch_json(base + "/traces/recent", timeout=args.timeout)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"cannot reach telemetry at {base}: {exc}", file=sys.stderr)
            return 1
        frame = format_dashboard(slo, health, traces)
        if args.once:
            print(frame)
            return 0
        # ANSI clear + home keeps the dashboard in place between polls.
        print("\x1b[2J\x1b[H" + frame, flush=True)
        time.sleep(args.interval)


def _make_obs(args):
    """Build the (tracer, metrics, query_log) trio from shared CLI flags."""
    tracer = None
    if getattr(args, "trace", False):
        from repro.obs.trace import Tracer

        tracer = Tracer()
    metrics = None
    if getattr(args, "metrics_out", None):
        from repro.obs.metrics import MetricsRegistry

        metrics = MetricsRegistry()
    query_log = None
    if getattr(args, "obs_log", None):
        from repro.obs.querylog import QueryLogger

        query_log = QueryLogger(args.obs_log)
    return tracer, metrics, query_log


def cmd_index_build(args) -> int:
    from repro.index.linear_scan import SignatureFilteredScan
    from repro.persistence import save_index

    if args.from_npz:
        from repro.persistence import load_dataset_file

        archive = load_dataset_file(args.from_npz).series
    else:
        archive = _build_collection(args.collection, args.size, args.length, args.seed)
    index = SignatureFilteredScan(
        archive,
        n_coefficients=args.coefficients,
        structure=args.structure,
        page_size=args.page_size,
        buffer_pages=args.buffer_pages,
    )
    path = save_index(index, args.out)
    sidecar = path.with_name(path.stem + ".data.npy")
    print(
        f"indexed {len(index)} objects of length {index.store.length} "
        f"(structure={index.structure}, D={index.n_coefficients}, "
        f"page_size={index.store.page_size}, buffer_pages={index.store.buffer_pages})"
    )
    print(
        f"archive: {path} ({path.stat().st_size / 1024:.0f} KiB) "
        f"+ {sidecar.name} ({sidecar.stat().st_size / 1024:.0f} KiB)"
    )
    return 0


def cmd_index_inspect(args) -> int:
    from repro.persistence import inspect_archive

    info = inspect_archive(args.archive, verify=args.verify)
    verified = info.get("verified") or {}
    failed = sorted(name for name, state in verified.items() if state != "ok")
    if args.json:
        import json

        print(json.dumps(info, indent=2, sort_keys=True))
    else:
        print(f"{info['path']}: format v{info['format_version']}")
        print(
            f"  {info['objects']} objects x {info['length']} points, "
            f"structure={info['structure']}, D={info['n_coefficients']}"
        )
        if info["disk_store"] is not None:
            store = info["disk_store"]
            print(
                f"  disk store: page_size={store['page_size']}, "
                f"buffer_pages={store['buffer_pages']}"
            )
        else:
            print("  disk store: not recorded (v1 limitation; loads with defaults)")
        if info["checksums"]:
            for name, digest in sorted(info["checksums"].items()):
                status = f"  [{verified[name]}]" if name in verified else ""
                print(f"  sha256 {name:<12} {digest}{status}")
        else:
            print("  checksums: none (v1; load falls back to multi-probe spot check)")
        created = info.get("created") or {}
        if created:
            print(
                f"  created: {created.get('timestamp_utc')} "
                f"(git {created.get('git_sha') or 'unknown'}, "
                f"numpy {created.get('numpy')}, python {created.get('python')})"
            )
    if failed:
        print(f"VERIFICATION FAILED: {', '.join(failed)}", file=sys.stderr)
        return 1
    return 0


def cmd_index_query(args) -> int:
    from repro.persistence import load_index

    index = load_index(args.archive, mmap=args.mmap)
    measure = _build_measure(args)
    query_seed = args.query_seed if args.query_seed is not None else args.seed + 1
    pool = _build_collection(args.collection, args.size, args.length, query_seed)
    if pool.shape[1] != index.store.length:
        raise SystemExit(
            f"query length {pool.shape[1]} does not match the indexed series "
            f"length {index.store.length}; pass a matching --length"
        )
    query = pool[args.query_index % len(pool)]

    tracer, metrics, query_log = _make_obs(args)
    payload: dict = {
        "archive": str(args.archive),
        "measure": measure.name,
        "backend": measure.backend_name,
        "mmap": bool(args.mmap),
        "query_index": int(args.query_index),
        "query_seed": int(query_seed),
    }
    if args.k > 1:
        neighbours, accounting = index.query_knn(
            query, measure, k=args.k, mirror=args.mirror, tracer=tracer
        )
        payload["neighbors"] = [
            {"index": nb.index, "distance": nb.distance, "rotation": nb.rotation}
            for nb in neighbours
        ]
    else:
        accounting = index.query(
            query,
            measure,
            mirror=args.mirror,
            tracer=tracer,
            metrics=metrics,
            query_log=query_log,
            query_id=args.query_index,
        )
    if query_log is not None:
        query_log.close()
    result = accounting.result
    payload.update(
        index=int(result.index),
        distance=float(result.distance),
        rotation=int(result.rotation),
        steps=int(result.counter.steps),
        objects_retrieved=int(accounting.objects_retrieved),
        fraction_retrieved=float(accounting.fraction_retrieved),
        signature_tests=int(accounting.signature_tests),
    )

    if args.json:
        import json

        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        mode = "mmap" if args.mmap else "in-RAM"
        print(f"loaded {len(index)}-object index ({mode}) from {args.archive}")
        if args.k > 1:
            for rank, nb in enumerate(payload["neighbors"], 1):
                print(
                    f"{rank}. object {nb['index']:>4}  distance {nb['distance']:.4f}  "
                    f"(rotation {nb['rotation']})"
                )
        else:
            print(
                f"best match: object {result.index} at distance {result.distance:.4f} "
                f"(rotation {result.rotation})"
            )
        print(
            f"retrieved {accounting.objects_retrieved}/{len(index)} objects "
            f"({accounting.fraction_retrieved:.2%}), "
            f"{accounting.signature_tests} signature tests, "
            f"{result.counter.steps:,} steps"
        )
    if tracer is not None and not args.json:
        print("\ntrace:")
        print(tracer.format_tree())
    if metrics is not None:
        with open(args.metrics_out, "w", encoding="utf-8") as fh:
            fh.write(metrics.to_prometheus())
        if not args.json:
            print(f"metrics written to {args.metrics_out}")
    return 0


def cmd_index_shard(args) -> int:
    from repro.service.shard import save_shards

    if args.from_npz:
        from repro.persistence import load_dataset_file

        archive = load_dataset_file(args.from_npz).series
    else:
        archive = _build_collection(args.collection, args.size, args.length, args.seed)
    manifest = save_shards(
        archive,
        args.out,
        args.shards,
        n_coefficients=args.coefficients,
        structure=args.structure,
        page_size=args.page_size,
        buffer_pages=args.buffer_pages,
    )
    print(
        f"sharded {manifest.objects} objects of length {manifest.length} "
        f"into {manifest.n_shards} archives under {args.out}"
    )
    for info in manifest.shards:
        print(f"  shard {info.shard_id}: {info.file} (objects {info.offset}..{info.offset + info.objects - 1})")
    return 0


def cmd_serve(args) -> int:
    from repro.service.faults import FaultPlan
    from repro.service.server import run_service
    from repro.service.worker import RestartPolicy

    measure = _build_measure(args)
    from repro.core.planner import parse_plan

    try:
        parse_plan(args.plan, measure)  # fail fast on a malformed spec
    except ValueError as exc:
        raise SystemExit(str(exc)) from exc
    query_log = None
    if args.obs_log:
        from repro.obs.querylog import QueryLogger

        query_log = QueryLogger(
            args.obs_log, max_bytes=args.obs_log_max_bytes, keep=args.obs_log_keep
        )
    # --fault-spec beats the REPRO_FAULT_SPEC env var (run_service falls
    # back to the env var when no explicit plan is passed).
    fault_plan = FaultPlan.parse(args.fault_spec) if args.fault_spec else None
    restart_policy = RestartPolicy(degrade_after=args.degrade_after)

    def on_ready(service, port, loop):
        telemetry = (
            f", telemetry http://{service.telemetry.host}:{service.telemetry.port}"
            if service.telemetry is not None
            else ""
        )
        print(
            f"repro-service listening on {args.host}:{port} "
            f"({service.manifest.n_shards} shards, {service.manifest.objects} objects, "
            f"measure={measure.name}, backend={service.backend}, plan={service.plan_spec}, "
            f"cache={'on' if service.cache is not None else 'off'}{telemetry})",
            flush=True,
        )

    try:
        run_service(
            args.shards,
            measure,
            args.host,
            args.port,
            cache_size=args.cache_size,
            plan=args.plan,
            batch_window=args.batch_window_ms / 1000.0,
            max_batch=args.max_batch,
            query_log=query_log,
            restart_policy=restart_policy,
            fault_plan=fault_plan,
            tracing=not args.no_tracing,
            telemetry_port=args.telemetry_port,
            telemetry_host=args.telemetry_host,
            on_ready=on_ready,
        )
    finally:
        if query_log is not None:
            query_log.close()
    print("repro-service stopped")
    return 0


def cmd_client(args) -> int:
    import json

    from repro.service.client import ServiceClient

    op = "health" if args.health else args.op
    with ServiceClient(args.host, args.port) as client:
        if op == "ping":
            payload = client.ping()
        elif op == "health":
            payload = client.health()
            if payload.get("ok") and not args.json:
                print(f"status: {payload['status']}  (total restarts: {payload['restarts']})")
                for entry in payload["shards"]:
                    last = f"  last failure: {entry['last_failure']}" if entry["last_failure"] else ""
                    print(
                        f"  shard {entry['shard']}: {entry['state']:<10} "
                        f"pid={entry['pid']} restarts={entry['restarts']}{last}"
                    )
                counters = payload["counters"]
                print(
                    "counters: "
                    + "  ".join(f"{name}={int(value)}" for name, value in sorted(counters.items()))
                )
                return 0
        elif op == "metrics":
            payload = client.metrics()
            if payload.get("ok") and not args.json:
                print(payload["prometheus"], end="")
                return 0
        elif op == "shutdown":
            payload = client.shutdown()
        else:
            query_seed = args.query_seed if args.query_seed is not None else args.seed + 1
            pool = _build_collection(args.collection, args.size, args.length, query_seed)
            query = pool[args.query_index % len(pool)]
            knobs = {
                "mirror": args.mirror,
                "no_cache": args.no_cache,
                "timeout_ms": args.timeout_ms,
                "allow_partial": args.allow_partial,
            }
            if op == "knn":
                payload = client.knn(query, k=args.k, **knobs)
            else:
                payload = client.range_query(query, args.range_radius, **knobs)
    if args.json or not payload.get("ok"):
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0 if payload.get("ok") else 1
    if op in ("knn", "range"):
        for rank, (index, distance, rotation) in enumerate(payload["neighbors"], 1):
            print(f"{rank}. object {index:>4}  distance {distance:.4f}  (rotation {rotation})")
        answered = (
            f"{payload.get('shards_answered', payload['shards'])}/{payload['shards']} shards"
            if payload.get("partial")
            else f"{payload['shards']} shards"
        )
        print(
            f"{len(payload['neighbors'])} results from {answered}, "
            f"{payload['steps']:,} steps, backend={payload['backend']}, "
            f"cached={payload['cached']}"
        )
        if payload.get("partial"):
            print(f"PARTIAL result: missing shards {payload.get('missing_shards')}")
    else:
        print(json.dumps(payload, indent=2, sort_keys=True))
    return 0


def cmd_classify(args) -> int:
    from repro.classify.evaluation import evaluate_dataset
    from repro.datasets.registry import TABLE_EIGHT, load_dataset

    if args.dataset not in TABLE_EIGHT:
        raise SystemExit(f"unknown dataset {args.dataset!r}; run `python -m repro datasets`")
    spec = TABLE_EIGHT[args.dataset]
    dataset = load_dataset(args.dataset, seed=args.seed, per_class=args.per_class, length=args.length)
    row = evaluate_dataset(
        dataset,
        candidate_radii=(1, 2, 3),
        max_instances=args.max_instances,
        seed=args.seed,
        paper_euclidean_error=spec.paper_ed_error,
        paper_dtw_error=spec.paper_dtw_error,
    )
    print(row.format())
    return 0


def cmd_discords(args) -> int:
    from repro.mining.discords import find_discords

    archive = _build_collection(args.collection, args.size, args.length, args.seed)
    measure = _build_measure(args)
    discords = find_discords(list(archive), measure, top=args.top)
    print(f"top {args.top} discords of the {args.collection} collection ({args.size} objects, {args.measure}):")
    for rank, discord in enumerate(discords, 1):
        print(
            f"{rank}. object {discord.index:>4}  NN distance {discord.nn_distance:8.3f}  "
            f"(nearest: object {discord.nn_index})"
        )
    return 0


def cmd_motif(args) -> int:
    from repro.mining.motifs import find_motif

    archive = _build_collection(args.collection, args.size, args.length, args.seed)
    measure = _build_measure(args)
    motif = find_motif(list(archive), measure)
    print(f"motif of the {args.collection} collection ({args.size} objects, {args.measure}):")
    print(
        f"objects {motif.first} and {motif.second}, distance {motif.distance:.4f}, "
        f"aligned at rotation {motif.rotation}"
    )
    return 0


def _add_collection_args(parser):
    parser.add_argument("--collection", default="points", choices=("points", "lightcurves", "heterogeneous"))
    parser.add_argument("--size", type=int, default=100, help="collection size")
    parser.add_argument("--length", type=int, default=128, help="series length")
    parser.add_argument("--seed", type=int, default=0)


def _add_measure_args(parser):
    parser.add_argument("--measure", default="euclidean", choices=("euclidean", "dtw", "lcss"))
    parser.add_argument("--radius", type=int, default=5, help="DTW band / LCSS delta")
    parser.add_argument("--epsilon", type=float, default=0.5, help="LCSS epsilon")
    parser.add_argument(
        "--backend",
        default=None,
        metavar="NAME",
        help="kernel backend for the DTW/LCSS dynamic programs (scalar, wavefront, "
        "numba if installed, or auto); default: REPRO_KERNEL_BACKEND env var, then "
        "the fastest registered backend",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Rotation-invariant shape/light-curve indexing (Keogh et al., VLDB 2006)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="list the Table-8 dataset reconstructions").set_defaults(
        func=cmd_datasets
    )

    search = sub.add_parser("search", help="rotation-invariant 1-NN search")
    _add_collection_args(search)
    _add_measure_args(search)
    search.add_argument("--query-index", type=int, default=0)
    search.add_argument(
        "--strategy", default="wedge", choices=("wedge", "brute", "early-abandon", "fft", "auto")
    )
    search.add_argument(
        "--plan",
        default=None,
        metavar="SPEC",
        help="query plan: 'auto' (cost-model planner) or 'fixed:<tier>[><tier>...][:batch|:scalar]', "
        "e.g. fixed:kim>keogh>improved:batch or fixed:none:scalar; implies --strategy auto",
    )
    search.add_argument("--mirror", action="store_true")
    search.add_argument("--max-degrees", type=float, default=None)
    search.add_argument("--trace", action="store_true", help="print the query's span tree")
    search.add_argument(
        "--obs-log", default=None, metavar="FILE", help="append a JSONL query record to FILE"
    )
    search.add_argument(
        "--metrics-out",
        default=None,
        metavar="FILE",
        help="write Prometheus-text metrics for the query to FILE",
    )
    search.set_defaults(func=cmd_search)

    index = sub.add_parser(
        "index", help="build, inspect and query durable index archives (format v2)"
    )
    index_sub = index.add_subparsers(dest="index_command", required=True)

    build = index_sub.add_parser(
        "build", help="index a collection and persist it as a checksummed archive"
    )
    _add_collection_args(build)
    build.add_argument(
        "--from-npz",
        default=None,
        metavar="FILE",
        help="index the series of a dataset saved with save_dataset instead of a synthetic collection",
    )
    build.add_argument("--coefficients", type=int, default=16, help="signature dimensionality D")
    build.add_argument("--structure", default="flat", choices=("flat", "vptree", "rtree"))
    build.add_argument("--page-size", type=int, default=1, help="objects per simulated disk page")
    build.add_argument("--buffer-pages", type=int, default=0, help="LRU buffer pool size in pages")
    build.add_argument("--out", required=True, metavar="FILE", help="archive path (.npz)")
    build.set_defaults(func=cmd_index_build)

    inspect = index_sub.add_parser("inspect", help="show an archive's metadata and checksums")
    inspect.add_argument("archive", help="path to a saved index archive")
    inspect.add_argument(
        "--verify", action="store_true", help="re-hash every stored array (exit 1 on mismatch)"
    )
    inspect.add_argument("--json", action="store_true", help="emit the description as JSON")
    inspect.set_defaults(func=cmd_index_inspect)

    iquery = index_sub.add_parser(
        "query", help="load an archive and run a rotation-invariant query through it"
    )
    iquery.add_argument("archive", help="path to a saved index archive")
    _add_collection_args(iquery)
    _add_measure_args(iquery)
    iquery.add_argument(
        "--query-seed",
        type=int,
        default=None,
        help="seed for the query collection (default: --seed + 1, so queries differ from the indexed members)",
    )
    iquery.add_argument("--query-index", type=int, default=0)
    iquery.add_argument("--k", type=int, default=1, help="report the k nearest neighbours")
    iquery.add_argument("--mirror", action="store_true")
    iquery.add_argument(
        "--mmap", action="store_true", help="memory-map the collection sidecar instead of loading it into RAM"
    )
    iquery.add_argument("--json", action="store_true", help="emit the answer as JSON")
    iquery.add_argument("--trace", action="store_true", help="print the query's span tree")
    iquery.add_argument(
        "--obs-log", default=None, metavar="FILE", help="append a JSONL query record to FILE"
    )
    iquery.add_argument(
        "--metrics-out",
        default=None,
        metavar="FILE",
        help="write Prometheus-text metrics for the query to FILE",
    )
    iquery.set_defaults(func=cmd_index_query)

    shard = index_sub.add_parser(
        "shard", help="split a collection into N independent shard archives + manifest"
    )
    _add_collection_args(shard)
    shard.add_argument(
        "--from-npz",
        default=None,
        metavar="FILE",
        help="shard the series of a dataset saved with save_dataset instead of a synthetic collection",
    )
    shard.add_argument("--shards", type=int, default=4, help="number of shards")
    shard.add_argument("--coefficients", type=int, default=16, help="signature dimensionality D")
    shard.add_argument("--structure", default="flat", choices=("flat", "vptree", "rtree"))
    shard.add_argument("--page-size", type=int, default=1, help="objects per simulated disk page")
    shard.add_argument("--buffer-pages", type=int, default=0, help="LRU buffer pool size in pages")
    shard.add_argument("--out", required=True, metavar="DIR", help="shard set directory")
    shard.set_defaults(func=cmd_index_shard)

    serve = sub.add_parser(
        "serve", help="serve a shard set over TCP (asyncio front-end + shard workers)"
    )
    serve.add_argument("--shards", required=True, metavar="DIR", help="shard set directory")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7043, help="TCP port (0 = ephemeral)")
    _add_measure_args(serve)
    serve.add_argument(
        "--cache-size", type=int, default=1024, help="answer cache capacity (0 disables)"
    )
    serve.add_argument(
        "--plan",
        default="auto",
        metavar="SPEC",
        help=(
            "query plan: 'auto' (cost-model planner, the default) or "
            "'fixed:<tier>[><tier>...][:batch|:scalar]', e.g. fixed:keogh>improved:batch"
        ),
    )
    serve.add_argument(
        "--batch-window-ms",
        type=float,
        default=2.0,
        help="micro-batch collection window in milliseconds",
    )
    serve.add_argument("--max-batch", type=int, default=64, help="max queries per micro-batch")
    serve.add_argument(
        "--obs-log", default=None, metavar="FILE", help="append JSONL service query records to FILE"
    )
    serve.add_argument(
        "--fault-spec",
        default=None,
        metavar="SPEC",
        help=(
            "deterministic fault-injection spec, e.g. "
            "'seed=7;crash:p=0.05,shard=1;delay:ms=40,every=3' "
            "(overrides the REPRO_FAULT_SPEC env var)"
        ),
    )
    serve.add_argument(
        "--degrade-after",
        type=int,
        default=3,
        help="consecutive worker failures before a shard is marked degraded",
    )
    serve.add_argument(
        "--telemetry-port",
        type=int,
        default=None,
        metavar="PORT",
        help="serve /metrics, /health, /slo, /traces/recent over HTTP on PORT (0 = ephemeral)",
    )
    serve.add_argument("--telemetry-host", default="127.0.0.1")
    serve.add_argument(
        "--no-tracing",
        action="store_true",
        help="disable per-batch distributed tracing (answers are bit-identical either way)",
    )
    serve.add_argument(
        "--obs-log-max-bytes",
        type=int,
        default=None,
        metavar="N",
        help="rotate the --obs-log file before it exceeds N bytes",
    )
    serve.add_argument(
        "--obs-log-keep",
        type=int,
        default=3,
        metavar="N",
        help="rotated --obs-log files to retain (default 3)",
    )
    serve.set_defaults(func=cmd_serve)

    client = sub.add_parser("client", help="query a running repro-service over TCP")
    client.add_argument("--host", default="127.0.0.1")
    client.add_argument("--port", type=int, default=7043)
    client.add_argument(
        "--op", default="knn", choices=("knn", "range", "ping", "health", "metrics", "shutdown")
    )
    client.add_argument(
        "--health", action="store_true", help="shorthand for --op health"
    )
    client.add_argument(
        "--timeout-ms",
        type=float,
        default=None,
        help="per-request deadline enforced by the coordinator (milliseconds)",
    )
    client.add_argument(
        "--allow-partial",
        action="store_true",
        help="accept an exact merge over surviving shards when some are degraded",
    )
    _add_collection_args(client)
    client.add_argument(
        "--query-seed",
        type=int,
        default=None,
        help="seed for the query collection (default: --seed + 1)",
    )
    client.add_argument("--query-index", type=int, default=0)
    client.add_argument("--k", type=int, default=1, help="neighbours for --op knn")
    client.add_argument(
        "--range-radius", type=float, default=1.0, help="radius for --op range"
    )
    client.add_argument("--mirror", action="store_true")
    client.add_argument("--no-cache", action="store_true", help="bypass the answer cache")
    client.add_argument("--json", action="store_true", help="emit the raw response as JSON")
    client.set_defaults(func=cmd_client)

    obs = sub.add_parser("obs", help="observability: query-log summaries and trace rendering")
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)
    obs_log = obs_sub.add_parser(
        "log", help="summarize a JSONL query log (tier funnel, slow queries)"
    )
    obs_log.add_argument("log", help="path to a query log written by QueryLogger / --obs-log")
    obs_log.add_argument("--top", type=int, default=5, help="how many slow queries to list")
    obs_log.add_argument("--json", action="store_true", help="emit the summary as JSON")
    obs_log.set_defaults(func=cmd_obs)
    obs_trace = obs_sub.add_parser(
        "trace", help="render a stitched cross-process trace as a waterfall"
    )
    obs_trace.add_argument(
        "source",
        help="trace JSON: a file, or a live service's http://HOST:PORT/traces/recent URL",
    )
    obs_trace.add_argument(
        "--waterfall",
        action="store_true",
        help="timeline rendering (the default; flag kept for explicit scripts)",
    )
    obs_trace.add_argument(
        "--trace-id", default=None, metavar="ID", help="select by trace id (prefix match)"
    )
    obs_trace.add_argument(
        "--index", type=int, default=0, help="select the Nth trace when no --trace-id (default 0)"
    )
    obs_trace.add_argument("--width", type=int, default=100, help="waterfall width in columns")
    obs_trace.add_argument("--json", action="store_true", help="emit the selected trace as JSON")
    obs_trace.set_defaults(func=cmd_obs_trace)

    top = sub.add_parser("top", help="live terminal dashboard over a service's telemetry port")
    top.add_argument("--host", default="127.0.0.1")
    top.add_argument("--port", type=int, default=9464, help="telemetry HTTP port")
    top.add_argument(
        "--interval", type=float, default=2.0, help="refresh period in seconds"
    )
    top.add_argument(
        "--once", action="store_true", help="print one frame and exit (CI / scripting)"
    )
    top.add_argument("--timeout", type=float, default=5.0, help="per-request HTTP timeout")
    top.set_defaults(func=cmd_top)

    classify = sub.add_parser("classify", help="Table-8 protocol on one dataset")
    classify.add_argument("--dataset", required=True)
    classify.add_argument("--per-class", type=int, default=4)
    classify.add_argument("--length", type=int, default=48)
    classify.add_argument("--max-instances", type=int, default=32)
    classify.add_argument("--seed", type=int, default=8)
    classify.set_defaults(func=cmd_classify)

    discords = sub.add_parser("discords", help="find the collection's outliers")
    _add_collection_args(discords)
    _add_measure_args(discords)
    discords.add_argument("--top", type=int, default=3)
    discords.set_defaults(func=cmd_discords)

    motif = sub.add_parser("motif", help="find the collection's closest pair")
    _add_collection_args(motif)
    _add_measure_args(motif)
    motif.set_defaults(func=cmd_motif)

    return parser


def main(argv=None) -> int:
    parser = build_parser()
    argv = list(sys.argv[1:] if argv is None else argv)
    # Back-compat: `repro obs <logfile>` predates the log/trace split.
    if argv[:1] == ["obs"] and len(argv) > 1 and argv[1] not in ("log", "trace", "-h", "--help"):
        argv.insert(1, "log")
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
