"""Piecewise Aggregate Approximation (PAA) bounds for index-space DTW.

Coefficient magnitudes bound rotation-invariant *Euclidean* distance but
not DTW, so the DTW side of the disk index (Figure 24, "Wedge: DTW") needs
a different ``D``-dimensional lower bound.  Following the envelope-indexing
line the paper builds on ([16], [37]), we use PAA:

* each database object is reduced to ``D`` segment means;
* the query's all-rotations wedge, expanded by the Sakoe-Chiba band
  (``DTW_U`` / ``DTW_L``), is reduced to ``D`` segment maxima / minima;
* :func:`lb_paa` compares them with segment-length weighting.

The chain of inequalities making this admissible:

    lb_paa(c_paa, env_paa)  <=  LB_Keogh(c, DTW envelope of the wedge)
                            <=  DTW(c, any rotation enclosed by the wedge)

The first step is the classic Jensen argument (a segment's mean cannot
violate the envelope by more than its points do, and ``max(x, 0)^2`` is
convex); the second is Proposition 2.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["paa", "paa_envelope", "lb_paa", "segment_lengths"]


def segment_lengths(n: int, segments: int) -> np.ndarray:
    """How many points each PAA segment covers (as even as possible)."""
    if segments < 1:
        raise ValueError(f"segments must be positive, got {segments}")
    if segments > n:
        raise ValueError(f"cannot split {n} points into {segments} segments")
    base = n // segments
    remainder = n % segments
    lengths = np.full(segments, base, dtype=np.int64)
    lengths[:remainder] += 1
    return lengths


def _boundaries(n: int, segments: int) -> np.ndarray:
    return np.concatenate([[0], np.cumsum(segment_lengths(n, segments))])


def paa(series, segments: int) -> np.ndarray:
    """Segment means of ``series`` (the standard PAA reduction)."""
    arr = np.asarray(series, dtype=np.float64)
    if arr.ndim != 1:
        raise ValueError(f"expected 1-D series, got shape {arr.shape}")
    bounds = _boundaries(arr.size, segments)
    return np.array([arr[bounds[s] : bounds[s + 1]].mean() for s in range(segments)])


def paa_envelope(upper, lower, segments: int) -> tuple[np.ndarray, np.ndarray]:
    """Segment max of the upper arm and min of the lower arm.

    Using extrema (not means) for the envelope keeps the bound admissible:
    a segment mean of the candidate can only violate ``max(U)`` if some
    points violate ``U``.
    """
    u = np.asarray(upper, dtype=np.float64)
    lo = np.asarray(lower, dtype=np.float64)
    if u.shape != lo.shape or u.ndim != 1:
        raise ValueError(f"envelope arms must match, got {u.shape} and {lo.shape}")
    bounds = _boundaries(u.size, segments)
    u_paa = np.array([u[bounds[s] : bounds[s + 1]].max() for s in range(segments)])
    l_paa = np.array([lo[bounds[s] : bounds[s + 1]].min() for s in range(segments)])
    return u_paa, l_paa


def lb_paa(candidate_paa, upper_paa, lower_paa, lengths) -> float:
    """The weighted PAA envelope bound.

    ``sqrt( sum_s len_s * max(c_s - U_s, L_s - c_s, 0)^2 )`` -- a lower
    bound on ``LB_Keogh`` of the full-resolution candidate against the
    full-resolution envelope.
    """
    c = np.asarray(candidate_paa, dtype=np.float64)
    u = np.asarray(upper_paa, dtype=np.float64)
    lo = np.asarray(lower_paa, dtype=np.float64)
    w = np.asarray(lengths, dtype=np.float64)
    if not (c.shape == u.shape == lo.shape == w.shape):
        raise ValueError("PAA vectors must share one shape")
    violation = np.maximum(np.maximum(c - u, lo - c), 0.0)
    return float(math.sqrt(float(np.sum(w * violation**2))))
