"""A simulated disk-resident collection with retrieval accounting.

Section 5.4 measures "the fraction of items that must be retrieved from
disk to answer a 1-nearest neighbor query" (Figure 24) -- a hardware-
independent metric.  :class:`DiskStore` models the collection: compressed
signatures live "in memory" (free to read); fetching a full series counts
as one disk access.

The optional page/buffer-pool model (``page_size``, ``buffer_pages``)
refines the accounting for workloads with repeated queries: objects are
packed ``page_size`` to a page and an LRU pool of ``buffer_pages`` pages
absorbs re-reads, so :attr:`DiskStore.page_faults` counts *physical* reads
while :attr:`DiskStore.retrievals` keeps counting logical ones -- the
paper's point that the convolution trick "does not help reduce disk
accesses for data which does not fit in main memory" becomes measurable.

The collection may be backed by a read-only ``numpy.memmap`` (an index
archive's ``.npy`` sidecar opened with ``np.load(..., mmap_mode="r")``):
``np.asarray`` keeps the buffer in place, so a loaded index serves queries
without materialising the collection in RAM -- the simulated accounting
then sits on top of genuinely demand-paged storage.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from repro.core.counters import StepCounter
from repro.obs.trace import NULL_TRACER

__all__ = ["DiskStore"]


class DiskStore:
    """Full-resolution series stored "on disk", fetch-counted.

    Parameters
    ----------
    series:
        ``(m, n)`` array (or list of equal-length series).
    counter:
        Optional shared counter whose ``disk_accesses`` field is bumped on
        every fetch.
    tracer:
        Optional :class:`~repro.obs.trace.Tracer`; every fetch emits a
        ``disk.fetch`` event (index, page, whether it was a buffer hit).
        Never affects the retrieval accounting.
    """

    def __init__(
        self,
        series,
        counter: StepCounter | None = None,
        page_size: int = 1,
        buffer_pages: int = 0,
        tracer=None,
    ):
        data = np.asarray(series, dtype=np.float64)
        if data.ndim != 2 or data.shape[0] == 0:
            raise ValueError(f"expected a non-empty (m, n) collection, got shape {data.shape}")
        if page_size < 1:
            raise ValueError(f"page_size must be positive, got {page_size}")
        if buffer_pages < 0:
            raise ValueError(f"buffer_pages must be non-negative, got {buffer_pages}")
        self._data = data
        self._counter = counter
        self.tracer = NULL_TRACER if tracer is None else tracer
        self.page_size = page_size
        self.buffer_pages = buffer_pages
        self._pool: OrderedDict[int, None] = OrderedDict()
        self.retrievals = 0
        self.page_faults = 0

    def __len__(self) -> int:
        return self._data.shape[0]

    @property
    def length(self) -> int:
        """Series length ``n``."""
        return self._data.shape[1]

    @property
    def n_pages(self) -> int:
        """Number of disk pages the collection occupies."""
        return -(-len(self) // self.page_size)

    @property
    def backed_by_mmap(self) -> bool:
        """Whether the collection lives in a memory-mapped file."""
        data = self._data
        while data is not None:
            if isinstance(data, np.memmap):
                return True
            data = data.base if isinstance(data.base, np.ndarray) else None
        return False

    @property
    def config(self) -> dict:
        """The buffer-pool configuration, as persisted by index archives."""
        return {"page_size": self.page_size, "buffer_pages": self.buffer_pages}

    def fetch(self, index: int) -> np.ndarray:
        """Read one full series from disk (counted).

        With a buffer pool configured, a fetch whose page is resident is a
        buffer hit: it still counts as a logical retrieval but not as a
        page fault.
        """
        if not 0 <= index < len(self):
            raise IndexError(f"object {index} out of range [0, {len(self)})")
        self.retrievals += 1
        page = index // self.page_size
        buffer_hit = self.buffer_pages > 0 and page in self._pool
        if buffer_hit:
            self._pool.move_to_end(page)  # LRU touch
        else:
            self.page_faults += 1
            if self.buffer_pages > 0:
                self._pool[page] = None
                if len(self._pool) > self.buffer_pages:
                    self._pool.popitem(last=False)
        if self._counter is not None:
            self._counter.disk_accesses += 1
        if self.tracer.enabled:
            self.tracer.event(
                "disk.fetch", index=int(index), page=int(page), buffer_hit=buffer_hit
            )
        return self._data[index]

    def peek_all(self) -> np.ndarray:
        """Uncounted bulk access, for index *construction* only.

        Building signatures reads the data once at load time; the metric of
        Section 5.4 concerns query-time retrievals.
        """
        return self._data

    @property
    def fraction_retrieved(self) -> float:
        """Retrievals so far divided by collection size."""
        return self.retrievals / len(self)

    def reset(self) -> None:
        """Zero the retrieval and fault counts (e.g. between queries).

        The buffer pool's *contents* survive a reset, modelling a warm
        cache across consecutive queries; call :meth:`flush` to cool it.
        """
        self.retrievals = 0
        self.page_faults = 0

    def flush(self) -> None:
        """Empty the buffer pool (cold-cache state)."""
        self._pool.clear()
