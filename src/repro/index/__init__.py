"""Disk-resident indexing: signatures, VP-tree, filter-and-refine scan."""

from repro.index.disk import DiskStore
from repro.index.fourier import (
    fourier_signature,
    rotation_invariant_ed_lower_bound,
    signature_distance,
)
from repro.index.linear_scan import IndexedSearchResult, SignatureFilteredScan
from repro.index.paa import lb_paa, paa, paa_envelope, segment_lengths
from repro.index.rtree import Rect, RTree
from repro.index.vptree import VPTree

__all__ = [
    "DiskStore", "fourier_signature", "signature_distance",
    "rotation_invariant_ed_lower_bound", "SignatureFilteredScan",
    "IndexedSearchResult", "paa", "paa_envelope", "lb_paa", "segment_lengths",
    "VPTree", "RTree", "Rect",
]
