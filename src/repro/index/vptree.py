"""A vantage-point tree over signature space (Table 7's index structure).

The paper indexes shapes by placing the (rotation-invariant) Fourier
magnitude signatures in a VP-tree: a metric tree that partitions points by
their distance to a chosen vantage point.  Because the signature metric
lower-bounds the true rotation-invariant distance, the tree can prune whole
subtrees with the triangle inequality while guaranteeing no false
dismissals; surviving candidates are refined with the exact H-Merge.

This module provides the generic metric tree; see
:class:`repro.index.linear_scan.SignatureFilteredScan` for the flat
filter-and-refine alternative used in the DTW experiments.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass

import numpy as np

from repro.obs.trace import NULL_TRACER

__all__ = ["VPTree"]


@dataclass
class _Node:
    vantage: int
    radius: float  # median distance splitting inside/outside
    inside: "_Node | None"
    outside: "_Node | None"
    bucket: list[int] | None  # leaf payload


class VPTree:
    """Exact metric tree over a fixed set of vectors.

    Parameters
    ----------
    points:
        ``(m, d)`` array of signature vectors.
    leaf_size:
        Buckets smaller than this are stored flat.
    seed:
        Vantage points are chosen randomly; the seed fixes the layout.
    """

    def __init__(self, points, leaf_size: int = 8, seed: int = 0):
        self._points = np.asarray(points, dtype=np.float64)
        if self._points.ndim != 2 or self._points.shape[0] == 0:
            raise ValueError(f"expected non-empty (m, d) points, got shape {self._points.shape}")
        if leaf_size < 1:
            raise ValueError(f"leaf_size must be positive, got {leaf_size}")
        self._leaf_size = leaf_size
        rng = np.random.default_rng(seed)
        self.distance_evaluations = 0
        self._root = self._build(list(range(len(self._points))), rng)

    def __len__(self) -> int:
        return self._points.shape[0]

    def _metric(self, a: int, query: np.ndarray) -> float:
        diff = self._points[a] - query
        return float(math.sqrt(float(np.dot(diff, diff))))

    def _build(self, indices: list[int], rng: np.random.Generator) -> _Node:
        if len(indices) <= self._leaf_size:
            return _Node(vantage=-1, radius=0.0, inside=None, outside=None, bucket=indices)
        vp = indices[int(rng.integers(0, len(indices)))]
        rest = [i for i in indices if i != vp]
        dists = np.array([self._metric(i, self._points[vp]) for i in rest])
        median = float(np.median(dists))
        inner = [i for i, d in zip(rest, dists) if d <= median]
        outer = [i for i, d in zip(rest, dists) if d > median]
        if not inner or not outer:
            # Degenerate split (many ties): fall back to a flat bucket.
            return _Node(vantage=-1, radius=0.0, inside=None, outside=None, bucket=indices)
        return _Node(
            vantage=vp,
            radius=median,
            inside=self._build(inner, rng),
            outside=self._build(outer, rng),
            bucket=None,
        )

    def candidates_within(self, query, radius_provider, counter=None, tracer=None):
        """Yield point indices in ascending signature-distance order.

        ``radius_provider()`` is consulted as the pruning radius on every
        expansion, so a caller that shrinks its best-so-far while consuming
        candidates prunes ever harder.  Yields ``(signature_distance,
        index)`` pairs, each guaranteed ``signature_distance <`` the radius
        at the time it was emitted.

        ``counter`` (a :class:`~repro.core.counters.StepCounter`) charges
        ``d`` steps and one ``lb_calls`` per signature-metric evaluation,
        so index-space work shows up in the same accounting as the rest of
        the cascade.  ``tracer`` receives one ``vptree.visit`` event per
        expanded tree node (bucket or internal) and a ``vptree.cutoff``
        event when the heap's best bound crosses the radius; it never
        touches the counter.

        The traversal is exact: any point whose signature distance is below
        the final radius is guaranteed to have been yielded.
        """
        tracer = NULL_TRACER if tracer is None else tracer
        query = np.asarray(query, dtype=np.float64)
        dim = self._points.shape[1]

        def metric(i: int) -> float:
            self.distance_evaluations += 1
            if counter is not None:
                counter.lb_calls += 1
                counter.add(dim)
            return self._metric(i, query)

        # Heap entries: (optimistic lower bound on sig-distance, tiebreak, payload)
        tie = 0
        heap: list[tuple[float, int, object]] = [(0.0, tie, self._root)]
        while heap:
            bound, _, payload = heapq.heappop(heap)
            if bound >= radius_provider():
                if tracer.enabled:
                    tracer.event("vptree.cutoff", bound=float(bound), pending=len(heap))
                return  # everything left is at least this far
            if isinstance(payload, _Node):
                node = payload
                if node.bucket is not None:
                    if tracer.enabled:
                        tracer.event(
                            "vptree.visit",
                            kind="bucket",
                            size=len(node.bucket),
                            bound=float(bound),
                        )
                    for i in node.bucket:
                        d = metric(i)
                        if d < radius_provider():
                            tie += 1
                            heapq.heappush(heap, (d, tie, int(i)))
                    continue
                if tracer.enabled:
                    tracer.event(
                        "vptree.visit",
                        kind="internal",
                        vantage=int(node.vantage),
                        bound=float(bound),
                    )
                d_vp = metric(node.vantage)
                if d_vp < radius_provider():
                    tie += 1
                    heapq.heappush(heap, (d_vp, tie, int(node.vantage)))
                # Triangle-inequality bounds for the two shells: a point in
                # the inside shell is at least d(q, vp) - radius away, one
                # in the outside shell at least radius - d(q, vp).
                inside_bound = max(bound, d_vp - node.radius)
                outside_bound = max(bound, node.radius - d_vp)
                if inside_bound < radius_provider():
                    tie += 1
                    heapq.heappush(heap, (inside_bound, tie, node.inside))
                if outside_bound < radius_provider():
                    tie += 1
                    heapq.heappush(heap, (outside_bound, tie, node.outside))
            else:
                yield bound, int(payload)
