"""Rotation-invariant Fourier-magnitude lower bound (Section 4.2).

A circular shift of a series multiplies its DFT coefficients by unit-modulus
phase factors, so coefficient *magnitudes* are invariant to rotation.  By
Parseval's theorem and the triangle inequality,

    ED(Q, C_j)^2 = (1/n) * sum_k |FQ_k - FC_k e^{-2 pi i j k / n}|^2
                >= (1/n) * sum_k (|FQ_k| - |FC_k|)^2        for every shift j,

so the Euclidean distance between magnitude vectors lower-bounds the
rotation-invariant Euclidean distance -- the "convolution trick" of Vlachos
et al. [38] that both the FFT search baseline and the disk-based index use.
Truncating to the first ``D`` coefficients only drops non-negative terms,
so truncated signatures still lower-bound (at ``D = 4..32`` they live
comfortably in an in-memory index; Figure 24 sweeps exactly this range).

Signatures are pre-scaled by ``sqrt(weight / n)`` so that a plain L2
distance between signatures *is* the bound; the weight accounts for the
half-spectrum storage of ``rfft`` (interior bins represent two conjugate
coefficients).
"""

from __future__ import annotations

import math

import numpy as np

from repro.timeseries.ops import as_series

__all__ = [
    "fourier_signature",
    "signature_distance",
    "rotation_invariant_ed_lower_bound",
]


def fourier_signature(series, n_coefficients: int | None = None) -> np.ndarray:
    """The scaled magnitude signature of ``series``.

    Parameters
    ----------
    series:
        A length-``n`` series.
    n_coefficients:
        Keep only the first ``D`` (lowest-frequency) entries; ``None`` keeps
        the full half-spectrum, for which the signature distance is the
        tightest magnitude bound available.  Asking for more coefficients
        than the half-spectrum holds (``n // 2 + 1``) raises ``ValueError``
        rather than silently returning a shorter signature, which would
        otherwise only surface later as an opaque "signature length
        mismatch" inside :func:`signature_distance`.

    Returns
    -------
    numpy.ndarray
        The signature ``s_k = sqrt(w_k / n) * |F_k|`` where ``w_k`` is 2 for
        interior rfft bins and 1 for the DC and (even-``n``) Nyquist bins.
    """
    arr = as_series(series)
    n = arr.size
    magnitudes = np.abs(np.fft.rfft(arr))
    weights = np.full(magnitudes.size, 2.0)
    weights[0] = 1.0
    if n % 2 == 0:
        weights[-1] = 1.0
    signature = np.sqrt(weights / n) * magnitudes
    if n_coefficients is not None:
        if n_coefficients < 1:
            raise ValueError(f"n_coefficients must be positive, got {n_coefficients}")
        if n_coefficients > signature.size:
            raise ValueError(
                f"n_coefficients={n_coefficients} exceeds the {signature.size}-bin "
                f"rfft half-spectrum of a length-{n} series; pass at most "
                f"{signature.size}, or None for the full signature"
            )
        signature = signature[:n_coefficients]
    return signature


def signature_distance(sig_a: np.ndarray, sig_b: np.ndarray) -> float:
    """L2 distance between two signatures (== the rotation-invariant bound)."""
    a = np.asarray(sig_a, dtype=np.float64)
    b = np.asarray(sig_b, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError(f"signature length mismatch: {a.shape} vs {b.shape}")
    diff = a - b
    return float(math.sqrt(float(np.dot(diff, diff))))


def rotation_invariant_ed_lower_bound(
    series_a, series_b, n_coefficients: int | None = None
) -> float:
    """Convenience: the magnitude bound straight from two raw series.

    Guaranteed ``<= min_j ED(A, circular_shift(B, j))`` for every shift
    ``j`` (and every shift of ``A`` -- the bound is symmetric and doubly
    rotation-invariant).
    """
    return signature_distance(
        fourier_signature(series_a, n_coefficients),
        fourier_signature(series_b, n_coefficients),
    )
