"""Disk-based rotation-invariant indexing: filter in memory, refine on disk.

Section 5.4's argument: once CPU cost is solved by the wedge machinery, the
bottleneck is disk.  The index keeps a ``D``-dimensional signature of every
object in memory; a query (1) lower-bounds every object's rotation-invariant
distance from the signatures alone, (2) fetches full objects from disk in
ascending-bound order, refining each with the exact H-Merge, and (3) stops
as soon as the next bound is no better than the best verified distance --
the GEMINI filter-and-refine pattern with a no-false-dismissal guarantee.

Signatures by measure:

* **Euclidean** -- truncated Fourier magnitudes
  (:mod:`repro.index.fourier`), optionally routed through the VP-tree of
  Table 7 to also cut in-memory work.
* **DTW** -- PAA of the candidate vs PAA of the query's all-rotations wedge
  expanded by the Sakoe-Chiba band (:mod:`repro.index.paa`).

Figure 24's metric -- the fraction of objects fetched -- is reported on the
returned result.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from time import perf_counter

import numpy as np

from repro.core.batch import batch_lb_keogh, shared_workspace
from repro.core.cascade import CascadePolicy
from repro.core.counters import StepCounter
from repro.core.hmerge import h_merge
from repro.core.search import RotationQuery, SearchResult
from repro.distances.base import Measure
from repro.index.disk import DiskStore
from repro.index.fourier import fourier_signature
from repro.index.paa import paa, paa_envelope, segment_lengths
from repro.index.rtree import Rect, RTree
from repro.index.vptree import VPTree
from repro.obs.metrics import record_query
from repro.obs.trace import NULL_TRACER

__all__ = ["IndexedSearchResult", "SignatureFilteredScan"]

_STRUCTURES = ("flat", "vptree", "rtree")


@dataclass
class IndexedSearchResult:
    """A disk-index query outcome: the match plus retrieval accounting."""

    result: SearchResult
    objects_retrieved: int
    fraction_retrieved: float
    signature_tests: int


class SignatureFilteredScan:
    """An exact rotation-invariant disk index over a fixed collection.

    Parameters
    ----------
    database:
        ``(m, n)`` collection to index.
    n_coefficients:
        Signature dimensionality ``D`` (Figure 24 sweeps {4, 8, 16, 32}).
    use_vptree:
        Back-compat alias for ``structure="vptree"``.
    structure:
        In-memory organisation of the signatures: ``"flat"`` scores all
        ``m`` signatures per query; ``"vptree"`` routes Euclidean queries
        through the metric tree of Table 7; ``"rtree"`` routes both
        Euclidean (Fourier points) and DTW (weighted PAA points, queried
        with the wedge set's envelope rectangles) through an STR-packed
        R-tree -- the envelope-indexing structure of [16]/[37].
    page_size / buffer_pages:
        Forwarded to the backing :class:`~repro.index.disk.DiskStore`
        (page/buffer-pool accounting); persisted by format-v2 index
        archives so a save/load round trip keeps the same page-fault
        accounting.

    Notes
    -----
    ``n_coefficients`` is **clamped** to the rfft half-spectrum size
    (``n // 2 + 1`` for length-``n`` series): a signature cannot hold more
    distinct magnitude bins than the spectrum provides, so asking for more
    silently gets you the full (tightest) signature rather than an error.
    The clamped value is what :attr:`n_coefficients` reports and what
    archives persist.  Calling :func:`repro.index.fourier.fourier_signature`
    directly performs no such clamping and raises instead.
    """

    def __init__(
        self,
        database,
        n_coefficients: int = 16,
        use_vptree: bool = False,
        structure: str | None = None,
        page_size: int = 1,
        buffer_pages: int = 0,
    ):
        self._store = DiskStore(database, page_size=page_size, buffer_pages=buffer_pages)
        data = self._store.peek_all()
        if n_coefficients < 1:
            raise ValueError(f"n_coefficients must be positive, got {n_coefficients}")
        if structure is None:
            structure = "vptree" if use_vptree else "flat"
        if structure not in _STRUCTURES:
            raise ValueError(f"unknown structure {structure!r}; choose from {_STRUCTURES}")
        self.structure = structure
        self.n_coefficients = min(n_coefficients, data.shape[1] // 2 + 1)
        self._fourier = np.vstack(
            [fourier_signature(row, self.n_coefficients) for row in data]
        )
        self._paa_segments = min(self.n_coefficients, data.shape[1])
        self._paa = np.vstack([paa(row, self._paa_segments) for row in data])
        self._paa_lengths = segment_lengths(data.shape[1], self._paa_segments)
        self._build_structures()

    @classmethod
    def from_precomputed(
        cls,
        store: DiskStore,
        n_coefficients: int,
        structure: str,
        fourier: np.ndarray,
        paa: np.ndarray,
        paa_lengths: np.ndarray,
    ) -> "SignatureFilteredScan":
        """Assemble an index from already-computed signatures (the load path).

        Used by :mod:`repro.persistence` to reconstruct an index from an
        archive without recomputing the O(m n log n) signature pass.  The
        caller is responsible for integrity: nothing here re-derives or
        cross-checks the signatures against ``store``'s data.
        """
        if structure not in _STRUCTURES:
            raise ValueError(f"unknown structure {structure!r}; choose from {_STRUCTURES}")
        index = cls.__new__(cls)
        index._store = store
        index.n_coefficients = int(n_coefficients)
        index.structure = structure
        index._fourier = np.asarray(fourier, dtype=np.float64)
        index._paa = np.asarray(paa, dtype=np.float64)
        index._paa_segments = index._paa.shape[1]
        index._paa_lengths = np.asarray(paa_lengths, dtype=np.int64)
        index._build_structures()
        return index

    def _build_structures(self) -> None:
        """(Re)build the in-memory search structures for ``self.structure``."""
        self._vptree = VPTree(self._fourier) if self.structure == "vptree" else None
        self._fourier_rtree = None
        self._paa_rtree = None
        if self.structure == "rtree":
            self._fourier_rtree = RTree(self._fourier)
            # Pre-scale PAA points by sqrt(segment length) so plain L2
            # MINDIST in tree space equals the weighted lb_paa bound.
            self._paa_scale = np.sqrt(self._paa_lengths.astype(np.float64))
            self._paa_rtree = RTree(self._paa * self._paa_scale[np.newaxis, :])

    def __len__(self) -> int:
        return len(self._store)

    @property
    def store(self) -> DiskStore:
        return self._store

    def query(
        self,
        query,
        measure: Measure,
        mirror: bool = False,
        max_degrees: float | None = None,
        k: int | None = None,
        index_wedges: int | None = None,
        use_improved: bool = True,
        tracer=None,
        metrics=None,
        query_log=None,
        query_id=None,
    ) -> IndexedSearchResult:
        """Exact rotation-invariant 1-NN with minimal disk retrievals.

        ``k`` fixes the H-Merge wedge-set size used for refinement of
        fetched objects.  ``index_wedges`` controls the DTW index-space
        bound: the envelope of *all* rotations is far too fat to prune
        anything, so -- as Section 4.2 prescribes ("it would be necessary
        to search for the best match to K envelopes in the wedge set W") --
        the bound is the minimum of the PAA bounds against ``index_wedges``
        wedges cut from the query's wedge tree.  Refinement of fetched
        objects runs the tiered pruning cascade; ``use_improved`` toggles
        its LB_Improved tier.

        ``tracer`` receives the query's span tree (wedge-tree build,
        VP-tree visits, disk fetches, cascade tiers); ``metrics`` /
        ``query_log`` record the finished query, the log record carrying
        the retrieval accounting (``objects_retrieved``,
        ``fraction_retrieved``, ``signature_tests``).
        """
        if measure.name not in ("euclidean", "dtw"):
            raise ValueError(f"index supports euclidean and dtw, got {measure.name!r}")
        tracer = NULL_TRACER if tracer is None else tracer
        t0 = perf_counter()
        rq = query if isinstance(query, RotationQuery) else RotationQuery(
            query, mirror=mirror, max_degrees=max_degrees
        )
        counter = StepCounter()
        store_tracer = self._store.tracer
        self._store.tracer = tracer
        try:
            with tracer.span("query", strategy="indexed", measure=measure.name):
                with tracer.span("wedge_tree.build"):
                    tree = rq.wedge_tree(counter)
                frontier = tree.frontier(k if k is not None else min(4, tree.max_k))
                pruner = CascadePolicy(
                    measure, use_kim=False, use_improved=use_improved, tracer=tracer
                )
                self._store.reset()

                best = math.inf
                best_index, best_rotation = -1, -1

                stream, eval_probe = self._candidate_stream(
                    rq, measure, counter, index_wedges, lambda: best, tracer=tracer
                )
                if stream is not None:
                    before = eval_probe()
                    for _lb, i in stream:
                        obj = self._store.fetch(i)
                        dist, rotation = h_merge(
                            obj,
                            frontier,
                            measure,
                            r=best,
                            counter=counter,
                            pruner=pruner,
                            tracer=tracer,
                        )
                        if dist < best:
                            best, best_index, best_rotation = dist, i, rotation
                    signature_tests = eval_probe() - before
                else:
                    signature_tests = len(self)
                    bounds = self._bounds_for(rq, measure, counter, index_wedges)
                    order = np.argsort(bounds, kind="stable")
                    for i in order:
                        if bounds[i] >= best:
                            break  # ascending bounds: nothing further can win
                        obj = self._store.fetch(int(i))
                        dist, rotation = h_merge(
                            obj,
                            frontier,
                            measure,
                            r=best,
                            counter=counter,
                            pruner=pruner,
                            tracer=tracer,
                        )
                        if dist < best:
                            best, best_index, best_rotation = dist, int(i), rotation
        finally:
            self._store.tracer = store_tracer

        result = SearchResult(
            best_index, best, best_rotation, counter, "indexed", tier_stats=pruner.stats()
        )
        indexed = IndexedSearchResult(
            result=result,
            objects_retrieved=self._store.retrievals,
            fraction_retrieved=self._store.fraction_retrieved,
            signature_tests=signature_tests,
        )
        wall = perf_counter() - t0
        if metrics is not None:
            record_query(result, measure.name, wall, registry=metrics)
        if query_log is not None:
            query_log.log_result(
                result,
                measure=measure.name,
                wall_seconds=wall,
                query_id=query_id,
                objects_retrieved=indexed.objects_retrieved,
                fraction_retrieved=indexed.fraction_retrieved,
                signature_tests=indexed.signature_tests,
            )
        return indexed

    def query_knn(
        self,
        query,
        measure: Measure,
        k: int = 1,
        mirror: bool = False,
        max_degrees: float | None = None,
        refine_wedges: int | None = None,
        index_wedges: int | None = None,
        use_improved: bool = True,
        tracer=None,
    ):
        """Exact k-NN through the index: fetch until the bound passes the
        k-th best verified distance.

        Returns ``(neighbours, IndexedSearchResult)`` where ``neighbours``
        is the ascending list of :class:`repro.mining.queries.Neighbor`
        and the second element carries the retrieval accounting (its
        ``result`` is the 1-NN).
        """
        import heapq

        from repro.mining.queries import Neighbor

        if k < 1:
            raise ValueError(f"k must be positive, got {k}")
        if measure.name not in ("euclidean", "dtw"):
            raise ValueError(f"index supports euclidean and dtw, got {measure.name!r}")
        tracer = NULL_TRACER if tracer is None else tracer
        rq = query if isinstance(query, RotationQuery) else RotationQuery(
            query, mirror=mirror, max_degrees=max_degrees
        )
        counter = StepCounter()
        with tracer.span("query", strategy="indexed-knn", measure=measure.name):
            with tracer.span("wedge_tree.build"):
                tree = rq.wedge_tree(counter)
            frontier = tree.frontier(
                refine_wedges if refine_wedges is not None else min(4, tree.max_k)
            )
            pruner = CascadePolicy(
                measure, use_kim=False, use_improved=use_improved, tracer=tracer
            )
            self._store.reset()

            heap: list[tuple[float, int, int]] = []  # max-heap via negation

            def radius() -> float:
                return -heap[0][0] if len(heap) == k else math.inf

            def refine(i: int) -> None:
                obj = self._store.fetch(int(i))
                dist, rotation = h_merge(
                    obj,
                    frontier,
                    measure,
                    r=radius(),
                    counter=counter,
                    pruner=pruner,
                    tracer=tracer,
                )
                if math.isfinite(dist):
                    # Negated index: among equal-distance ties the root is
                    # the largest index, so eviction follows the canonical
                    # (distance, index) order (see knn_search).
                    entry = (-dist, -int(i), rotation)
                    if len(heap) < k:
                        heapq.heappush(heap, entry)
                    else:
                        heapq.heappushpop(heap, entry)

            stream, eval_probe = self._candidate_stream(
                rq, measure, counter, index_wedges, radius, tracer=tracer
            )
            if stream is not None:
                before = eval_probe()
                for _lb, i in stream:
                    refine(i)
                signature_tests = eval_probe() - before
            else:
                signature_tests = len(self)
                bounds = self._bounds_for(rq, measure, counter, index_wedges)
                for i in np.argsort(bounds, kind="stable"):
                    if bounds[i] >= radius():
                        break
                    refine(int(i))

        neighbours = sorted(
            (Neighbor(-negi, -negd, rot) for negd, negi, rot in heap),
            key=lambda nb: (nb.distance, nb.index),
        )
        top = neighbours[0] if neighbours else None
        result = SearchResult(
            top.index if top else -1,
            top.distance if top else math.inf,
            top.rotation if top else -1,
            counter,
            "indexed-knn",
            tier_stats=pruner.stats(),
        )
        accounting = IndexedSearchResult(
            result=result,
            objects_retrieved=self._store.retrievals,
            fraction_retrieved=self._store.fraction_retrieved,
            signature_tests=signature_tests,
        )
        return neighbours, accounting

    def _candidate_stream(
        self, rq, measure, counter, index_wedges, radius_provider, tracer=NULL_TRACER
    ):
        """An ascending-bound candidate generator for tree structures.

        Returns ``(generator, evaluation_probe)`` or ``(None, None)`` when
        the flat path should be used.  The probe reads the structure's
        bound-evaluation counter so callers can report signature tests.
        """
        if measure.name == "euclidean" and self._vptree is not None:
            stream = self._vptree.candidates_within(
                rq.signature(self.n_coefficients),
                radius_provider,
                counter=counter,
                tracer=tracer,
            )
            return stream, lambda: self._vptree.distance_evaluations
        if measure.name == "euclidean" and self._fourier_rtree is not None:
            stream = self._fourier_rtree.candidates_within(
                rq.signature(self.n_coefficients), radius_provider
            )
            return stream, lambda: self._fourier_rtree.mindist_evaluations
        if measure.name == "dtw" and self._paa_rtree is not None:
            tree = rq.wedge_tree(counter)
            k_idx = index_wedges if index_wedges is not None else min(32, tree.max_k)
            rects = []
            for wedge in tree.frontier(k_idx):
                upper, lower = wedge.envelope_for(measure, counter=counter)
                u_paa, l_paa = paa_envelope(upper, lower, self._paa_segments)
                rects.append(
                    Rect.from_bounds(l_paa * self._paa_scale, u_paa * self._paa_scale)
                )
            stream = self._paa_rtree.candidates_within(rects, radius_provider)
            return stream, lambda: self._paa_rtree.mindist_evaluations
        return None, None

    def _bounds_for(
        self,
        rq: RotationQuery,
        measure: Measure,
        counter: StepCounter,
        index_wedges: int | None = None,
    ) -> np.ndarray:
        """Per-object index-space lower bounds on the rotation-invariant distance."""
        if measure.name == "euclidean":
            q_sig = rq.signature(self.n_coefficients)
            diff = self._fourier - q_sig[np.newaxis, :]
            return np.sqrt(np.einsum("ij,ij->i", diff, diff))
        # DTW: minimum over K wedge envelopes (each expanded by the band,
        # then reduced to PAA).  An object's true distance to its best
        # rotation is lower-bounded by its bound against the wedge
        # containing that rotation, hence by the minimum over all wedges.
        # Each wedge bounds all m signatures in one batched broadcast,
        # weighted by segment length so PAA space matches lb_paa.
        tree = rq.wedge_tree(counter)
        k_idx = index_wedges if index_wedges is not None else min(32, tree.max_k)
        lengths = self._paa_lengths.astype(np.float64)
        workspace = shared_workspace()
        best = np.full(len(self), np.inf)
        for wedge in tree.frontier(k_idx):
            upper, lower = wedge.envelope_for(measure, counter=counter)
            u_paa, l_paa = paa_envelope(upper, lower, self._paa_segments)
            bound, _steps = batch_lb_keogh(
                self._paa, u_paa, l_paa, weights=lengths, workspace=workspace
            )
            np.minimum(best, bound, out=best)
        return best
