"""An R-tree over signature space (the envelope-indexing alternative).

Section 4.2: "Recent years have seen dozens of papers on indexing time
series envelopes that we could attempt to leverage off" -- the canonical
one being Keogh's exact DTW indexing, which stores PAA points in an R-tree
and queries it with the PAA envelope of the query.  This module supplies
that structure:

* :class:`Rect` -- axis-aligned rectangles with MINDIST computations;
* :class:`RTree` -- Sort-Tile-Recursive (STR) bulk-loaded, so the packing
  is deterministic and near-optimal for a static archive;
* ascending-MINDIST candidate streaming against a *point* query (Fourier
  signatures, Euclidean) or a *set of rectangle* queries (the PAA
  envelopes of a wedge set, DTW).

Admissibility: points are pre-scaled by ``sqrt(segment length)`` before
insertion (see :class:`repro.index.linear_scan.SignatureFilteredScan`), so
plain L2 MINDIST in tree space equals the weighted ``lb_paa`` bound, which
lower-bounds DTW into the corresponding wedge (Proposition 2 + the PAA
argument in :mod:`repro.index.paa`).
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass

import numpy as np

__all__ = ["Rect", "RTree"]


@dataclass(frozen=True)
class Rect:
    """An axis-aligned rectangle (lows/highs per dimension)."""

    lows: np.ndarray
    highs: np.ndarray

    @classmethod
    def from_points(cls, points: np.ndarray) -> "Rect":
        """The minimum bounding rectangle of a point set."""
        pts = np.asarray(points, dtype=np.float64)
        if pts.ndim != 2 or pts.shape[0] == 0:
            raise ValueError(f"need a non-empty (k, d) point set, got shape {pts.shape}")
        return cls(pts.min(axis=0), pts.max(axis=0))

    @classmethod
    def from_bounds(cls, lows, highs) -> "Rect":
        """A rectangle from explicit per-dimension bounds."""
        lows = np.asarray(lows, dtype=np.float64)
        highs = np.asarray(highs, dtype=np.float64)
        if lows.shape != highs.shape or lows.ndim != 1:
            raise ValueError("lows and highs must be equal-length 1-D arrays")
        if np.any(lows > highs):
            raise ValueError("every low bound must not exceed its high bound")
        return cls(lows, highs)

    @property
    def dimensions(self) -> int:
        return self.lows.size

    def union(self, other: "Rect") -> "Rect":
        """The smallest rectangle containing both."""
        return Rect(np.minimum(self.lows, other.lows), np.maximum(self.highs, other.highs))

    def mindist_point(self, point: np.ndarray) -> float:
        """L2 distance from ``point`` to the nearest point of the rectangle."""
        p = np.asarray(point, dtype=np.float64)
        gaps = np.maximum(np.maximum(self.lows - p, p - self.highs), 0.0)
        return float(math.sqrt(float(np.dot(gaps, gaps))))

    def mindist_rect(self, other: "Rect") -> float:
        """L2 distance between the closest points of two rectangles."""
        gaps = np.maximum(
            np.maximum(self.lows - other.highs, other.lows - self.highs), 0.0
        )
        return float(math.sqrt(float(np.dot(gaps, gaps))))

    def contains_point(self, point) -> bool:
        """True when the point lies inside (closed) bounds."""
        p = np.asarray(point, dtype=np.float64)
        return bool(np.all(p >= self.lows - 1e-12) and np.all(p <= self.highs + 1e-12))


@dataclass
class _Node:
    rect: Rect
    children: list  # _Node list for internal nodes
    entries: list[int] | None  # point ids for leaves


class RTree:
    """A static, STR bulk-loaded R-tree over a fixed point set.

    Parameters
    ----------
    points:
        ``(m, d)`` array.
    leaf_capacity:
        Maximum points per leaf (fan-out for internal nodes too).
    """

    def __init__(self, points, leaf_capacity: int = 16):
        self._points = np.asarray(points, dtype=np.float64)
        if self._points.ndim != 2 or self._points.shape[0] == 0:
            raise ValueError(f"expected non-empty (m, d) points, got shape {self._points.shape}")
        if leaf_capacity < 2:
            raise ValueError(f"leaf_capacity must be at least 2, got {leaf_capacity}")
        self.leaf_capacity = leaf_capacity
        self.mindist_evaluations = 0
        self._root = self._bulk_load()

    def __len__(self) -> int:
        return self._points.shape[0]

    @property
    def height(self) -> int:
        """Number of levels (1 = root is a leaf)."""
        node, levels = self._root, 1
        while node.entries is None:
            node = node.children[0]
            levels += 1
        return levels

    def _bulk_load(self) -> _Node:
        """Sort-Tile-Recursive packing: sort by x, tile into slabs, sort
        each slab by y, cut into leaves; repeat on the leaf MBR centres."""
        order = np.lexsort((self._points[:, 1 % self._points.shape[1]], self._points[:, 0]))
        cap = self.leaf_capacity
        n = len(order)
        n_leaves = math.ceil(n / cap)
        slab_count = max(1, math.ceil(math.sqrt(n_leaves)))
        slab_size = math.ceil(n / slab_count)
        leaves: list[_Node] = []
        for s in range(0, n, slab_size):
            slab = order[s : s + slab_size]
            if self._points.shape[1] > 1:
                slab = slab[np.argsort(self._points[slab, 1], kind="stable")]
            for t in range(0, len(slab), cap):
                ids = [int(i) for i in slab[t : t + cap]]
                leaves.append(
                    _Node(Rect.from_points(self._points[ids]), [], ids)
                )
        return self._pack_upward(leaves)

    def _pack_upward(self, nodes: list[_Node]) -> _Node:
        while len(nodes) > 1:
            parents: list[_Node] = []
            for s in range(0, len(nodes), self.leaf_capacity):
                group = nodes[s : s + self.leaf_capacity]
                rect = group[0].rect
                for child in group[1:]:
                    rect = rect.union(child.rect)
                parents.append(_Node(rect, group, None))
            nodes = parents
        return nodes[0]

    def _query_mindist(self, query, rect: Rect) -> float:
        self.mindist_evaluations += 1
        if isinstance(query, Rect):
            return rect.mindist_rect(query)
        queries = query if isinstance(query, list) else [query]
        best = math.inf
        for q in queries:
            if isinstance(q, Rect):
                d = rect.mindist_rect(q)
            else:
                d = rect.mindist_point(q)
            if d < best:
                best = d
        return best

    def candidates_within(self, query, radius_provider):
        """Yield point ids in ascending lower-bound order.

        ``query`` may be a point vector, a :class:`Rect`, or a *list* of
        points/rects (a wedge set): the bound for a node or point is then
        the minimum over the set, matching "the best match to K envelopes
        in the wedge set W" (Section 4.2).  ``radius_provider()`` is read
        on every expansion so a shrinking best-so-far prunes ever harder.
        Exact: any point whose bound is below the final radius is yielded.
        """
        counter = 0
        heap: list[tuple[float, int, object]] = [(0.0, counter, self._root)]
        while heap:
            bound, _, payload = heapq.heappop(heap)
            if bound >= radius_provider():
                return
            if isinstance(payload, _Node):
                node = payload
                if node.entries is not None:
                    for i in node.entries:
                        d = self._query_mindist(query, Rect(self._points[i], self._points[i]))
                        if d < radius_provider():
                            counter += 1
                            heapq.heappush(heap, (d, counter, int(i)))
                    continue
                for child in node.children:
                    d = self._query_mindist(query, child.rect)
                    if d < radius_provider():
                        counter += 1
                        heapq.heappush(heap, (d, counter, child))
            else:
                yield bound, int(payload)
