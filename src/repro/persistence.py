"""Saving and loading datasets and disk indexes.

A production archive is built once and queried many times: the Fourier and
PAA signatures of :class:`~repro.index.linear_scan.SignatureFilteredScan`
take O(m n log n) to compute, so re-deriving them per process is wasteful.
Both datasets and indexes round-trip through NumPy ``.npz`` archives --
no pickling, no code execution on load.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.datasets.shapes_data import Dataset
from repro.index.linear_scan import SignatureFilteredScan

__all__ = ["save_dataset", "load_dataset_file", "save_index", "load_index"]

_FORMAT_VERSION = 1


def save_dataset(dataset: Dataset, path) -> Path:
    """Write a labelled dataset to ``path`` (``.npz`` appended if missing)."""
    path = Path(path)
    np.savez_compressed(
        path,
        format_version=_FORMAT_VERSION,
        name=np.array(dataset.name),
        series=dataset.series,
        labels=dataset.labels,
        class_names=np.array(dataset.class_names, dtype=object)
        if dataset.class_names
        else np.array([], dtype=object),
    )
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_dataset_file(path) -> Dataset:
    """Read a dataset previously written by :func:`save_dataset`."""
    with np.load(Path(path), allow_pickle=True) as archive:
        version = int(archive["format_version"])
        if version != _FORMAT_VERSION:
            raise ValueError(f"unsupported dataset format version {version}")
        return Dataset(
            str(archive["name"]),
            archive["series"],
            archive["labels"],
            class_names=[str(c) for c in archive["class_names"]],
        )


def save_index(index: SignatureFilteredScan, path) -> Path:
    """Persist a disk index: raw collection plus precomputed signatures."""
    path = Path(path)
    np.savez_compressed(
        path,
        format_version=_FORMAT_VERSION,
        data=index.store.peek_all(),
        n_coefficients=index.n_coefficients,
        fourier=index._fourier,
        paa=index._paa,
        paa_lengths=index._paa_lengths,
        structure=np.array(index.structure),
    )
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_index(path) -> SignatureFilteredScan:
    """Reconstruct a disk index without recomputing signatures.

    The stored signatures are verified against a spot-check recomputation
    so a corrupted or mismatched file fails loudly instead of silently
    returning wrong lower bounds.
    """
    with np.load(Path(path)) as archive:
        version = int(archive["format_version"])
        if version != _FORMAT_VERSION:
            raise ValueError(f"unsupported index format version {version}")
        data = archive["data"]
        n_coefficients = int(archive["n_coefficients"])
        structure = str(archive["structure"])
        index = SignatureFilteredScan.__new__(SignatureFilteredScan)
        from repro.index.disk import DiskStore

        index._store = DiskStore(data)
        index.n_coefficients = n_coefficients
        index.structure = structure
        index._fourier = archive["fourier"]
        index._paa = archive["paa"]
        index._paa_segments = index._paa.shape[1]
        index._paa_lengths = archive["paa_lengths"]
        index._build_structures()

    # Integrity spot check: recompute one object's signatures.
    from repro.index.fourier import fourier_signature
    from repro.index.paa import paa

    probe = 0
    expected_fourier = fourier_signature(data[probe], n_coefficients)
    expected_paa = paa(data[probe], index._paa_segments)
    if not np.allclose(index._fourier[probe], expected_fourier, atol=1e-9):
        raise ValueError("index file is corrupt: stored Fourier signatures do not match data")
    if not np.allclose(index._paa[probe], expected_paa, atol=1e-9):
        raise ValueError("index file is corrupt: stored PAA signatures do not match data")
    return index
