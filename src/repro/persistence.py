"""Saving and loading datasets and disk indexes.

A production archive is built once and queried many times: the Fourier and
PAA signatures of :class:`~repro.index.linear_scan.SignatureFilteredScan`
take O(m n log n) to compute, so re-deriving them per process is wasteful.
Both datasets and indexes round-trip through NumPy ``.npz`` archives --
no pickling, no code execution on load (``np.load`` always runs with
pickle disabled; legacy object-array files are rejected with an
explanation rather than deserialised).

Index archive formats
---------------------
**v2** (written by :func:`save_index`) is a pair of files that travel
together:

* ``<name>.npz`` -- the signatures (``fourier``, ``paa``, ``paa_lengths``)
  plus a JSON metadata block carrying the format version, creation
  provenance (:func:`repro.obs.provenance.provenance_block`), the index
  configuration (``n_coefficients``, ``structure``, the full
  :class:`~repro.index.disk.DiskStore` page/buffer-pool config) and a
  SHA-256 checksum of **every** stored array.  The metadata block itself
  is checksummed.
* ``<name>.data.npy`` -- the raw collection as a plain ``.npy`` sidecar,
  so :func:`load_index` can open it with ``np.load(..., mmap_mode="r")``
  and serve queries without materialising the collection in RAM.

On load the whole archive is verified: every array (including the
sidecar) is re-hashed against its recorded checksum, and the layout is
cross-checked (shapes, segment lengths vs series length), so any
single-byte corruption fails loudly at load time instead of silently
returning wrong lower bounds.

**v1** (legacy) stored everything inside one compressed ``.npz`` with no
checksums and no ``DiskStore`` config.  :func:`load_index` still reads v1
archives through a migration shim: integrity falls back to a multi-probe
spot check (recomputing several objects' signatures), and -- a documented
v1 limitation -- the reconstructed ``DiskStore`` uses default
``page_size``/``buffer_pages``, so buffer-pool accounting is *not*
preserved across a v1 round trip.  Re-save with :func:`save_index` to
upgrade.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import numpy as np

from repro.datasets.shapes_data import Dataset
from repro.index.disk import DiskStore
from repro.index.linear_scan import SignatureFilteredScan

__all__ = [
    "save_dataset",
    "load_dataset_file",
    "save_index",
    "load_index",
    "inspect_archive",
    "DATASET_FORMAT_VERSION",
    "INDEX_FORMAT_VERSION",
]

DATASET_FORMAT_VERSION = 1
INDEX_FORMAT_VERSION = 2

#: Signature arrays stored inside the ``.npz`` member of a v2 archive.
_INDEX_ARRAYS = ("fourier", "paa", "paa_lengths")

_CHECKSUM_CHUNK = 1 << 22  # hash 4 MiB at a time; keeps mmap verification lazy


def _npz_path(path) -> Path:
    path = Path(path)
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def _sidecar_path(npz_path: Path) -> Path:
    return npz_path.with_name(npz_path.stem + ".data.npy")


def _sha256_array(arr: np.ndarray) -> str:
    """SHA-256 over an array's dtype, shape, and raw bytes.

    Streams in chunks so verifying an mmap-opened sidecar reads it through
    the page cache instead of copying the collection onto the heap.
    """
    arr = np.ascontiguousarray(arr)
    digest = hashlib.sha256()
    digest.update(f"{arr.dtype.str}|{arr.shape}".encode())
    flat = arr.reshape(-1).view(np.uint8)
    for start in range(0, flat.size, _CHECKSUM_CHUNK):
        digest.update(flat[start : start + _CHECKSUM_CHUNK])
    return digest.hexdigest()


def _verify_checksum(name: str, arr: np.ndarray, checksums: dict) -> None:
    expected = checksums.get(name)
    if not isinstance(expected, str):
        raise ValueError(f"index archive is corrupt: no checksum recorded for array {name!r}")
    actual = _sha256_array(arr)
    if actual != expected:
        raise ValueError(
            f"index archive is corrupt: array {name!r} fails its SHA-256 check "
            f"(expected {expected[:12]}..., got {actual[:12]}...)"
        )


# ---------------------------------------------------------------------------
# Datasets
# ---------------------------------------------------------------------------


def save_dataset(dataset: Dataset, path) -> Path:
    """Write a labelled dataset to ``path`` (``.npz`` appended if missing).

    ``class_names`` is stored as a fixed-width unicode array (never an
    object array), so the file loads with pickle disabled.
    """
    path = _npz_path(path)
    class_names = (
        np.asarray(dataset.class_names, dtype=np.str_)
        if dataset.class_names
        else np.array([], dtype="<U1")
    )
    np.savez_compressed(
        path,
        format_version=DATASET_FORMAT_VERSION,
        name=np.array(dataset.name),
        series=dataset.series,
        labels=dataset.labels,
        class_names=class_names,
    )
    return path


def load_dataset_file(path) -> Dataset:
    """Read a dataset previously written by :func:`save_dataset`.

    Pickle stays disabled: a legacy file whose ``class_names`` is a pickled
    object array (written before the fixed-width-unicode fix) is rejected
    with an explanation instead of being deserialised -- a crafted object
    array would otherwise execute arbitrary code on load.
    """
    with np.load(Path(path)) as archive:
        version = int(archive["format_version"])
        if version != DATASET_FORMAT_VERSION:
            raise ValueError(f"unsupported dataset format version {version}")
        try:
            raw_names = archive["class_names"]
        except ValueError as exc:
            raise ValueError(
                "dataset archive stores class_names as a pickled object array "
                "(written by an old save_dataset); pickle is never enabled on "
                "load -- regenerate the file with the current save_dataset"
            ) from exc
        return Dataset(
            str(archive["name"]),
            archive["series"],
            archive["labels"],
            class_names=[str(c) for c in raw_names],
        )


# ---------------------------------------------------------------------------
# Indexes
# ---------------------------------------------------------------------------


def save_index(index: SignatureFilteredScan, path) -> Path:
    """Persist a disk index as a format-v2 archive.

    Writes ``<name>.npz`` (signatures + checksummed metadata) and the
    ``<name>.data.npy`` collection sidecar next to it; the two files must
    travel together.  Returns the ``.npz`` path.
    """
    from repro.obs.provenance import provenance_block

    path = _npz_path(path)
    data = np.ascontiguousarray(index.store.peek_all())
    sidecar = _sidecar_path(path)
    np.save(sidecar, data)

    arrays = {
        "fourier": np.ascontiguousarray(index._fourier),
        "paa": np.ascontiguousarray(index._paa),
        "paa_lengths": np.ascontiguousarray(index._paa_lengths),
    }
    checksums = {name: _sha256_array(arr) for name, arr in arrays.items()}
    checksums["data"] = _sha256_array(data)

    meta = {
        "kind": "repro-index",
        "format_version": INDEX_FORMAT_VERSION,
        "n_coefficients": int(index.n_coefficients),
        "structure": index.structure,
        "paa_segments": int(index._paa_segments),
        "disk_store": index.store.config,
        "collection": {
            "objects": int(data.shape[0]),
            "length": int(data.shape[1]),
            "dtype": data.dtype.str,
        },
        "data_file": sidecar.name,
        "checksums": checksums,
        "created": provenance_block({"artifact": "index-archive"}),
    }
    meta_json = json.dumps(meta, sort_keys=True)
    np.savez_compressed(
        path,
        format_version=np.array(INDEX_FORMAT_VERSION),
        meta_json=np.array(meta_json),
        meta_sha256=np.array(hashlib.sha256(meta_json.encode()).hexdigest()),
        **arrays,
    )
    return path


def _read_meta(archive) -> dict:
    """Parse and checksum-verify a v2 archive's metadata block."""
    meta_json = str(archive["meta_json"])
    stored = str(archive["meta_sha256"])
    if hashlib.sha256(meta_json.encode()).hexdigest() != stored:
        raise ValueError("index archive is corrupt: metadata block fails its checksum")
    meta = json.loads(meta_json)
    if meta.get("format_version") != INDEX_FORMAT_VERSION:
        raise ValueError("index archive is corrupt: metadata disagrees with format_version")
    return meta


def _validate_layout(meta: dict, data, fourier, paa, paa_lengths) -> None:
    """Cross-check array shapes against the metadata and each other."""
    if data.ndim != 2:
        raise ValueError(f"index archive is corrupt: collection has shape {data.shape}")
    m, n = data.shape
    n_coefficients = int(meta["n_coefficients"])
    paa_segments = int(meta["paa_segments"])
    if fourier.shape != (m, n_coefficients):
        raise ValueError(
            f"index archive is corrupt: fourier signatures have shape {fourier.shape}, "
            f"expected {(m, n_coefficients)}"
        )
    if paa.shape != (m, paa_segments):
        raise ValueError(
            f"index archive is corrupt: paa signatures have shape {paa.shape}, "
            f"expected {(m, paa_segments)}"
        )
    if paa_lengths.shape != (paa_segments,) or int(paa_lengths.sum()) != n:
        raise ValueError(
            "index archive is corrupt: paa segment lengths do not partition the series length"
        )


def load_index(path, mmap: bool = False) -> SignatureFilteredScan:
    """Reconstruct a disk index without recomputing signatures.

    Parameters
    ----------
    path:
        The ``.npz`` written by :func:`save_index` (v2) or a legacy v1
        archive.  For v2, the ``.data.npy`` sidecar must sit next to it.
    mmap:
        Open the v2 collection sidecar with ``np.load(..., mmap_mode="r")``
        so queries demand-page the data instead of holding it in RAM.  The
        integrity pass still reads every byte once (through the page
        cache) to verify the checksum.  v1 archives store the collection
        inside the compressed ``.npz`` and cannot be memory-mapped.

    Every stored array is verified against its recorded SHA-256 (v2) or a
    multi-probe recomputation spot check (v1), so a corrupted or
    mismatched file fails loudly instead of silently returning wrong
    lower bounds.
    """
    path = Path(path)
    with np.load(path) as archive:
        version = int(archive["format_version"])
        if version == 1:
            if mmap:
                raise ValueError(
                    "format v1 archives store the collection inside the compressed "
                    ".npz and cannot be memory-mapped; re-save with save_index to "
                    "get an mmap-capable v2 archive"
                )
            return _load_index_v1(archive)
        if version != INDEX_FORMAT_VERSION:
            raise ValueError(f"unsupported index format version {version}")
        meta = _read_meta(archive)
        checksums = meta["checksums"]
        arrays = {}
        for name in _INDEX_ARRAYS:
            arrays[name] = archive[name]
            _verify_checksum(name, arrays[name], checksums)

    data_path = path.with_name(str(meta["data_file"]))
    if not data_path.exists():
        raise FileNotFoundError(
            f"index archive {path.name} references missing collection sidecar "
            f"{meta['data_file']!r} (the .npz and .data.npy files travel together)"
        )
    data = np.load(data_path, mmap_mode="r" if mmap else None)
    _verify_checksum("data", data, checksums)
    _validate_layout(meta, data, arrays["fourier"], arrays["paa"], arrays["paa_lengths"])

    store_config = meta.get("disk_store") or {}
    store = DiskStore(
        data,
        page_size=int(store_config.get("page_size", 1)),
        buffer_pages=int(store_config.get("buffer_pages", 0)),
    )
    return SignatureFilteredScan.from_precomputed(
        store,
        n_coefficients=int(meta["n_coefficients"]),
        structure=str(meta["structure"]),
        fourier=arrays["fourier"],
        paa=arrays["paa"],
        paa_lengths=arrays["paa_lengths"],
    )


def _load_index_v1(archive) -> SignatureFilteredScan:
    """Migration shim for legacy v1 archives.

    v1 carries no checksums, so integrity falls back to recomputing the
    signatures of several probe objects (first, middle, last) -- stronger
    than the original single-object spot check, still cheaper than a full
    rebuild.  v1 also never stored the ``DiskStore`` buffer-pool config,
    so the reconstructed store uses defaults (``page_size=1``,
    ``buffer_pages=0``); re-save as v2 to persist that configuration.
    """
    data = archive["data"]
    n_coefficients = int(archive["n_coefficients"])
    structure = str(archive["structure"])
    index = SignatureFilteredScan.from_precomputed(
        DiskStore(data),
        n_coefficients=n_coefficients,
        structure=structure,
        fourier=archive["fourier"],
        paa=archive["paa"],
        paa_lengths=archive["paa_lengths"],
    )

    from repro.index.fourier import fourier_signature
    from repro.index.paa import paa as paa_reduce

    m = data.shape[0]
    for probe in sorted({0, m // 2, m - 1}):
        expected_fourier = fourier_signature(data[probe], n_coefficients)
        expected_paa = paa_reduce(data[probe], index._paa_segments)
        if not np.allclose(index._fourier[probe], expected_fourier, atol=1e-9):
            raise ValueError(
                f"index file is corrupt: stored Fourier signatures do not match data "
                f"(probe object {probe})"
            )
        if not np.allclose(index._paa[probe], expected_paa, atol=1e-9):
            raise ValueError(
                f"index file is corrupt: stored PAA signatures do not match data "
                f"(probe object {probe})"
            )
    return index


def _save_index_v1(index: SignatureFilteredScan, path) -> Path:
    """Write the legacy v1 layout.

    Kept (private) so the v1 migration shim stays exercised by tests and
    fixture-generation scripts; production code should use
    :func:`save_index`.
    """
    path = _npz_path(path)
    np.savez_compressed(
        path,
        format_version=np.array(1),
        data=index.store.peek_all(),
        n_coefficients=index.n_coefficients,
        fourier=index._fourier,
        paa=index._paa,
        paa_lengths=index._paa_lengths,
        structure=np.array(index.structure),
    )
    return path


def inspect_archive(path, verify: bool = False) -> dict:
    """Describe an index archive without building the index.

    Returns a JSON-ready dict: format version, index configuration, the
    collection's dimensions, per-array checksums and creation provenance
    (v2; ``None`` where v1 never recorded them).  With ``verify=True``
    every v2 array -- including the collection sidecar -- is re-hashed and
    the dict gains a ``"verified"`` map of ``array -> "ok" | "MISMATCH" |
    "missing"``.
    """
    path = _npz_path(path)
    with np.load(path) as archive:
        version = int(archive["format_version"])
        if version == 1:
            data_shape = archive["data"].shape
            return {
                "path": str(path),
                "format_version": 1,
                "n_coefficients": int(archive["n_coefficients"]),
                "structure": str(archive["structure"]),
                "objects": int(data_shape[0]),
                "length": int(data_shape[1]),
                "disk_store": None,
                "data_file": None,
                "checksums": None,
                "created": None,
            }
        if version != INDEX_FORMAT_VERSION:
            raise ValueError(f"unsupported index format version {version}")
        meta = _read_meta(archive)
        info = {
            "path": str(path),
            "format_version": version,
            "n_coefficients": int(meta["n_coefficients"]),
            "structure": str(meta["structure"]),
            "objects": int(meta["collection"]["objects"]),
            "length": int(meta["collection"]["length"]),
            "disk_store": dict(meta["disk_store"]),
            "data_file": str(meta["data_file"]),
            "checksums": dict(meta["checksums"]),
            "created": meta.get("created"),
        }
        if verify:
            checksums = meta["checksums"]
            verified = {}
            for name in _INDEX_ARRAYS:
                ok = _sha256_array(archive[name]) == checksums.get(name)
                verified[name] = "ok" if ok else "MISMATCH"
            data_path = path.with_name(str(meta["data_file"]))
            if not data_path.exists():
                verified["data"] = "missing"
            else:
                data = np.load(data_path, mmap_mode="r")
                verified["data"] = (
                    "ok" if _sha256_array(data) == checksums.get("data") else "MISMATCH"
                )
            info["verified"] = verified
    return info
