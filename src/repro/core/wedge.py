"""Time-series wedges: bounding envelopes over sets of candidate sequences.

A wedge ``W = {U, L}`` (Section 4.1, Figure 6) is the smallest envelope
enclosing a set of series: ``U_i = max(C1_i .. Ck_i)``,
``L_i = min(C1_i .. Ck_i)``.  Wedges nest hierarchically (Figure 7): merging
``W(1,2)`` with ``W3`` takes pointwise max/min of the arms, and individual
sequences are degenerate wedges with ``U == L``.

Because the tightness of ``LB_Keogh`` degrades as a wedge gets fatter
(Figure 8), each wedge records its *area* -- the quantity the paper uses to
reason about which merges are worthwhile.
"""

from __future__ import annotations

import numpy as np

from repro.timeseries.ops import as_series

__all__ = ["Wedge"]


class Wedge:
    """A (possibly hierarchically nested) bounding envelope.

    Attributes
    ----------
    upper, lower:
        The envelope arms ``U`` and ``L``; for a leaf both equal the series.
    indices:
        Candidate-sequence ids enclosed by this wedge (rotation indices in
        the rotation-invariant setting).
    children:
        The two child wedges this wedge was merged from; empty for a leaf.
    height:
        The clustering height at which the children were merged (0 for a
        leaf); used to cut the tree into wedge sets of any size ``K``.
    """

    __slots__ = ("upper", "lower", "indices", "children", "height", "_envelopes")

    def __init__(
        self,
        upper: np.ndarray,
        lower: np.ndarray,
        indices: tuple[int, ...],
        children: tuple["Wedge", ...] = (),
        height: float = 0.0,
    ):
        if upper.shape != lower.shape or upper.ndim != 1:
            raise ValueError(
                f"envelope arms must be equal-length 1-D arrays, got {upper.shape} and {lower.shape}"
            )
        if np.any(upper < lower):
            raise ValueError("upper arm dips below lower arm")
        if not indices:
            raise ValueError("a wedge must enclose at least one sequence")
        if children and len(children) != 2:
            raise ValueError(f"wedges merge exactly two children, got {len(children)}")
        self.upper = upper
        self.lower = lower
        self.indices = tuple(indices)
        self.children = tuple(children)
        self.height = float(height)
        # Per-measure expanded envelopes (e.g. the DTW_U/DTW_L expansion),
        # cached keyed by Measure.cache_key().
        self._envelopes: dict[tuple, tuple[np.ndarray, np.ndarray]] = {}

    @classmethod
    def from_series(cls, series, index: int) -> "Wedge":
        """A degenerate wedge enclosing a single sequence."""
        arr = as_series(series)
        return cls(arr, arr, (index,))

    @classmethod
    def merge(cls, left: "Wedge", right: "Wedge", height: float = 0.0) -> "Wedge":
        """Combine two wedges into their smallest common envelope (Figure 7)."""
        if left.upper.size != right.upper.size:
            raise ValueError(
                f"cannot merge wedges of different lengths: {left.upper.size} vs {right.upper.size}"
            )
        overlap = set(left.indices) & set(right.indices)
        if overlap:
            raise ValueError(f"wedges share sequences {sorted(overlap)}")
        return cls(
            np.maximum(left.upper, right.upper),
            np.minimum(left.lower, right.lower),
            tuple(left.indices + right.indices),
            children=(left, right),
            height=height,
        )

    @property
    def is_leaf(self) -> bool:
        return not self.children

    @property
    def cardinality(self) -> int:
        """Number of candidate sequences enclosed (the paper's |W|)."""
        return len(self.indices)

    @property
    def length(self) -> int:
        return self.upper.size

    @property
    def series(self) -> np.ndarray:
        """The single enclosed sequence; only valid on a leaf."""
        if not self.is_leaf:
            raise ValueError(f"wedge over {self.cardinality} sequences has no single series")
        return self.upper

    def area(self) -> float:
        """Total gap between the arms, the paper's predictor of pruning power."""
        return float(np.sum(self.upper - self.lower))

    def encloses(self, series) -> bool:
        """True when ``L_i <= series_i <= U_i`` everywhere (with float slack)."""
        arr = as_series(series)
        if arr.size != self.length:
            return False
        eps = 1e-9
        return bool(np.all(arr <= self.upper + eps) and np.all(arr >= self.lower - eps))

    def envelope_for(self, measure, counter=None) -> tuple[np.ndarray, np.ndarray]:
        """The envelope expanded as ``measure`` requires, cached per measure.

        ``counter`` (a :class:`~repro.core.counters.StepCounter`) records a
        cache hit or miss, so benchmarks can report how much re-expansion
        the memoization removes across H-Merge descents and repeated
        queries.
        """
        key = measure.cache_key()
        cached = self._envelopes.get(key)
        if cached is None:
            cached = measure.expand_envelope(self.upper, self.lower)
            self._envelopes[key] = cached
            if counter is not None:
                counter.envelope_cache_misses += 1
        elif counter is not None:
            counter.envelope_cache_hits += 1
        return cached

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "leaf" if self.is_leaf else f"node(h={self.height:.3g})"
        return f"Wedge({kind}, |W|={self.cardinality}, area={self.area():.3g})"
