"""Batched query-engine kernels: whole-matrix versions of the hot paths.

Every scan in this library ultimately reduces to three primitives applied
once per (query, candidate) pair: the early-abandoning Euclidean distance of
Table 1, the early-abandoning LB_Keogh envelope bound of Table 5, and the
materialisation of a query's rotation matrix **C** (Section 3).  Calling
them one pair at a time keeps the NumPy dispatch overhead on the critical
path; the lower-bound cascade only pays off when the cheap bounds are
effectively free.  This module provides the batched equivalents:

* :func:`rotation_matrix` -- all ``n`` circular shifts as one zero-copy
  strided view instead of ``n`` row copies;
* :func:`batch_ea_euclidean` -- Table 1 against every row of a matrix in
  one broadcast, prefix sums and abandonment points included;
* :func:`batch_lb_keogh` -- Table 5 against every row of a matrix (with
  optional per-position weights for PAA index space);
* :func:`running_scan` -- the strictly sequential best-so-far scan of
  Table 2 recovered *after the fact* from a prefix-sum matrix, so the
  vectorised kernels report exactly the step counts of the paper's scalar
  loops (the running threshold before row ``j`` is a cumulative minimum,
  which vectorises).

All kernels accept a :class:`BatchWorkspace` so the large scratch arrays
(the ``(m, n)`` prefix-sum matrix above all) are allocated once per thread
and reused across calls; :func:`shared_workspace` hands out a thread-local
instance so stateless :class:`~repro.distances.base.Measure` objects can be
shared across threads without racing on buffers.
"""

from __future__ import annotations

import math
import threading

import numpy as np

from repro.timeseries.ops import as_series

__all__ = [
    "BatchWorkspace",
    "shared_workspace",
    "rotation_matrix",
    "batch_ea_euclidean",
    "batch_lb_keogh",
    "batch_sliding_envelope",
    "batch_lb_improved",
    "running_scan",
    "ea_running_min_scan",
]


class BatchWorkspace:
    """Reusable scratch buffers for the batch kernels.

    Buffers are keyed by name and grown (never shrunk) on demand, so a scan
    over a database of same-length objects performs exactly one allocation
    per buffer for the whole scan instead of one per (query, candidate)
    pair.  A workspace is **not** thread-safe; use one per thread (see
    :func:`shared_workspace`).

    The workspace also keeps lightweight usage telemetry: per-key request
    and (re)allocation counts, surfaced by :meth:`stats` so observability
    code can verify that buffer reuse is actually amortising (requests far
    above allocations) rather than thrashing.
    """

    __slots__ = ("_buffers", "_requests", "_allocations")

    def __init__(self):
        self._buffers: dict[str, np.ndarray] = {}
        self._requests: dict[str, int] = {}
        self._allocations: dict[str, int] = {}

    def scratch(self, key: str, shape: tuple[int, ...]) -> np.ndarray:
        """A float64 scratch array of ``shape``, reused across calls.

        The returned array is a view into a persistent buffer: its contents
        are whatever the previous call left behind, and they are overwritten
        by the next call with the same ``key``.  Callers must copy anything
        they want to keep.
        """
        size = 1
        for dim in shape:
            size *= int(dim)
        self._requests[key] = self._requests.get(key, 0) + 1
        buf = self._buffers.get(key)
        if buf is None or buf.size < size:
            buf = np.empty(size, dtype=np.float64)
            self._buffers[key] = buf
            self._allocations[key] = self._allocations.get(key, 0) + 1
        return buf[:size].reshape(shape)

    def stats(self) -> dict:
        """Usage telemetry: held bytes plus per-key request/allocation counts.

        ``kernel_calls`` is the total number of scratch requests -- one per
        batched kernel invocation that routed through this workspace.
        """
        return {
            "buffers": len(self._buffers),
            "bytes_held": int(sum(buf.nbytes for buf in self._buffers.values())),
            "kernel_calls": int(sum(self._requests.values())),
            "requests": dict(self._requests),
            "allocations": dict(self._allocations),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        held = sum(buf.nbytes for buf in self._buffers.values())
        return f"BatchWorkspace({len(self._buffers)} buffers, {held} bytes)"


_THREAD_LOCAL = threading.local()


def shared_workspace() -> BatchWorkspace:
    """The calling thread's shared :class:`BatchWorkspace`.

    Measures are required to be stateless so one instance can serve many
    threads; routing their scratch space through a thread-local workspace
    keeps that contract while still amortising allocations.
    """
    workspace = getattr(_THREAD_LOCAL, "workspace", None)
    if workspace is None:
        workspace = BatchWorkspace()
        _THREAD_LOCAL.workspace = workspace
    return workspace


def rotation_matrix(series) -> np.ndarray:
    """All ``n`` circular shifts of ``series`` as one strided view.

    Row ``j`` is ``series`` shifted left by ``j`` -- the rotation matrix
    **C** of Section 3, identical to
    :func:`repro.timeseries.ops.all_rotations` -- but the result is a
    read-only ``(n, n)`` view over a single length ``2n - 1`` buffer, so
    materialising every rotation costs O(n) memory instead of O(n^2).
    """
    arr = as_series(series)
    n = arr.size
    doubled = np.concatenate([arr, arr[:-1]])
    view = np.lib.stride_tricks.sliding_window_view(doubled, n)
    return view[:n]


def _cuts_against(prefix: np.ndarray, thresholds: np.ndarray | float) -> np.ndarray:
    """Per-row abandonment points: first index whose prefix sum exceeds the threshold.

    Rows of ``prefix`` are non-decreasing, so counting entries ``<=``
    threshold equals ``np.searchsorted(row, threshold, side="right")`` --
    but vectorised over all rows at once.
    """
    if np.isscalar(thresholds):
        return (prefix <= thresholds).sum(axis=1)
    return (prefix <= np.asarray(thresholds)[:, np.newaxis]).sum(axis=1)


def batch_ea_euclidean(
    q_matrix,
    c,
    r: float = math.inf,
    workspace: BatchWorkspace | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Early-abandoning Euclidean distance of every row of ``q_matrix`` vs ``c``.

    Element-for-element identical to calling
    :func:`repro.distances.euclidean.ea_euclidean_distance` on each row with
    the same fixed threshold ``r``: returns ``(distances, steps)`` arrays
    where ``distances[j]`` is ``math.inf`` for rows whose accumulated
    squared error exceeded ``r^2``, and ``steps[j]`` is the exact number of
    elements the paper's scalar loop would have examined.

    The whole computation is one subtract/square/cumsum broadcast over the
    matrix, plus a vectorised binary search for the abandonment points.
    """
    rows = np.atleast_2d(np.asarray(q_matrix, dtype=np.float64))
    c = np.asarray(c, dtype=np.float64)
    if rows.shape[1] != c.size:
        raise ValueError(f"length mismatch: {rows.shape[1]} vs {c.size}")
    m, n = rows.shape
    if workspace is not None:
        prefix = workspace.scratch("batch_ea_prefix", (m, n))
        np.subtract(rows, c[np.newaxis, :], out=prefix)
    else:
        prefix = rows - c[np.newaxis, :]
    np.square(prefix, out=prefix)
    np.cumsum(prefix, axis=1, out=prefix)
    totals = prefix[:, -1]
    if not math.isfinite(r):
        return np.sqrt(totals), np.full(m, n, dtype=np.int64)
    threshold = float(r) * float(r)
    cuts = _cuts_against(prefix, threshold)
    finished = cuts >= n
    distances = np.full(m, math.inf)
    distances[finished] = np.sqrt(totals[finished])
    steps = np.where(finished, n, np.minimum(cuts + 1, n)).astype(np.int64)
    return distances, steps


def batch_lb_keogh(
    q_matrix,
    upper,
    lower,
    r: float = math.inf,
    weights=None,
    workspace: BatchWorkspace | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """LB_Keogh of every row of ``q_matrix`` against one envelope ``(U, L)``.

    The batched Table 5: each row's out-of-envelope violations are squared,
    (optionally) weighted, prefix-summed, and abandoned against ``r^2``,
    all in one broadcast.  Element-for-element identical to the scalar
    early-abandoning envelope bound: returns ``(bounds, steps)`` with
    ``bounds[j] = math.inf`` for abandoned rows and the scalar loop's step
    counts.

    ``weights`` (per-position multipliers on the squared violations) serve
    the PAA index space of Section 4.2, where each segment's contribution is
    scaled by its length.  One call bounds all ``m`` database signatures
    against a query wedge -- or all ``n`` rotations against a candidate's
    envelope -- without a Python-level loop.
    """
    rows = np.atleast_2d(np.asarray(q_matrix, dtype=np.float64))
    u = np.asarray(upper, dtype=np.float64)
    lo = np.asarray(lower, dtype=np.float64)
    if u.shape != lo.shape or u.ndim != 1:
        raise ValueError(f"envelope arms must be equal-length 1-D arrays, got {u.shape} and {lo.shape}")
    if rows.shape[1] != u.size:
        raise ValueError(f"length mismatch: {rows.shape[1]} vs {u.size}")
    m, n = rows.shape
    if workspace is not None:
        contributions = workspace.scratch("batch_lb_contrib", (m, n))
        above = np.subtract(rows, u[np.newaxis, :], out=contributions)
        np.maximum(above, 0.0, out=above)
        np.square(above, out=above)
        below = np.maximum(lo[np.newaxis, :] - rows, 0.0)
    else:
        contributions = np.maximum(rows - u[np.newaxis, :], 0.0)
        np.square(contributions, out=contributions)
        below = np.maximum(lo[np.newaxis, :] - rows, 0.0)
    np.square(below, out=below)
    contributions += below
    if weights is not None:
        contributions *= np.asarray(weights, dtype=np.float64)[np.newaxis, :]
    if not math.isfinite(r):
        return np.sqrt(contributions.sum(axis=1)), np.full(m, n, dtype=np.int64)
    prefix = np.cumsum(contributions, axis=1, out=contributions)
    totals = prefix[:, -1]
    threshold = float(r) * float(r)
    cuts = _cuts_against(prefix, threshold)
    finished = cuts >= n
    bounds = np.full(m, math.inf)
    bounds[finished] = np.sqrt(totals[finished])
    steps = np.where(finished, n, np.minimum(cuts + 1, n)).astype(np.int64)
    return bounds, steps


def batch_sliding_envelope(rows, radius: int) -> tuple[np.ndarray, np.ndarray]:
    """Per-row Sakoe-Chiba envelope expansion: the batched
    :func:`repro.timeseries.ops.sliding_envelope` with ``upper == lower ==
    rows``.

    Returns ``(uppers, lowers)`` where ``uppers[j, i] = max(rows[j, i-R :
    i+R+1])`` (window clipped at the boundaries) and ``lowers`` the matching
    minima -- one vectorised pass over an ``(m, n)`` matrix instead of ``m``
    scalar calls.
    """
    rows = np.atleast_2d(np.asarray(rows, dtype=np.float64))
    m, n = rows.shape
    if radius < 0:
        raise ValueError(f"radius must be non-negative, got {radius}")
    if radius == 0:
        return rows.copy(), rows.copy()
    radius = min(int(radius), n - 1)
    width = 2 * radius + 1
    pad_hi = np.full((m, radius), -np.inf)
    pad_lo = np.full((m, radius), np.inf)
    padded_hi = np.concatenate([pad_hi, rows, pad_hi], axis=1)
    padded_lo = np.concatenate([pad_lo, rows, pad_lo], axis=1)
    windows_hi = np.lib.stride_tricks.sliding_window_view(padded_hi, width, axis=1)
    windows_lo = np.lib.stride_tricks.sliding_window_view(padded_lo, width, axis=1)
    return windows_hi.max(axis=2), windows_lo.min(axis=2)


def batch_lb_improved(
    candidates,
    upper,
    lower,
    raw_upper,
    raw_lower,
    radius: int,
    r: float = math.inf,
    workspace: BatchWorkspace | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """The two-pass LB_Improved bound, batched and broadcast.

    Accepts either many candidate rows against one envelope (``candidates``
    ``(m, n)``, envelope arms 1-D) or one candidate against many stacked
    envelopes (``candidates`` 1-D, arms ``(m, n)``) -- every argument is
    broadcast to a common ``(m, n)`` shape.  ``(upper, lower)`` are the
    measure-expanded arms, ``(raw_upper, raw_lower)`` the unexpanded wedge
    arms, and ``radius`` the band used to expand each row's projection in
    the second pass (``radius == 0`` -- the Euclidean-into-wedge case --
    skips the second pass, whose violations are provably zero under an
    identity expansion).

    Per row: pass 1 is the early-abandoning LB_Keogh of
    :func:`batch_lb_keogh` (``math.inf`` and the scalar loop's step count on
    abandonment); survivors pay a second pass -- project the candidate onto
    the envelope, expand the projection by ``radius``, and add the squared
    gap between the raw arms and the projection's envelope -- charged the
    ``2n`` steps of the envelope build plus the violation scan.  Returns
    ``(bounds, steps)``; second-pass survivors report their *exact* bound
    even when it lands at or above ``r``, so callers can distinguish the
    LB_Keogh tier (``inf``) from the LB_Improved tier (finite, ``>= r``).
    """
    rows = np.asarray(candidates, dtype=np.float64)
    u = np.asarray(upper, dtype=np.float64)
    lo = np.asarray(lower, dtype=np.float64)
    raw_u = np.asarray(raw_upper, dtype=np.float64)
    raw_lo = np.asarray(raw_lower, dtype=np.float64)
    rows, u, lo, raw_u, raw_lo = np.broadcast_arrays(rows, u, lo, raw_u, raw_lo)
    rows = np.atleast_2d(rows)
    u, lo = np.atleast_2d(u), np.atleast_2d(lo)
    raw_u, raw_lo = np.atleast_2d(raw_u), np.atleast_2d(raw_lo)
    m, n = rows.shape

    if workspace is not None:
        contributions = workspace.scratch("batch_improved_contrib", (m, n))
        above = np.subtract(rows, u, out=contributions)
        np.maximum(above, 0.0, out=above)
        np.square(above, out=above)
    else:
        contributions = np.maximum(rows - u, 0.0)
        np.square(contributions, out=contributions)
    below = np.maximum(lo - rows, 0.0)
    np.square(below, out=below)
    contributions += below

    prefix = np.cumsum(contributions, axis=1, out=contributions)
    totals = prefix[:, -1].copy()
    if math.isfinite(r):
        threshold = float(r) * float(r)
        cuts = _cuts_against(prefix, threshold)
        finished = cuts >= n
        steps = np.where(finished, n, np.minimum(cuts + 1, n)).astype(np.int64)
    else:
        finished = np.ones(m, dtype=bool)
        steps = np.full(m, n, dtype=np.int64)

    bounds = np.full(m, math.inf)
    if radius > 0 and finished.any():
        # Second pass over the survivors only: clip -> expand -> gap.
        projection = np.clip(rows[finished], lo[finished], u[finished])
        env_hi, env_lo = batch_sliding_envelope(projection, radius)
        gap = np.maximum(env_lo - raw_u[finished], raw_lo[finished] - env_hi)
        np.maximum(gap, 0.0, out=gap)
        np.square(gap, out=gap)
        # Sequential (cumulative) row sums, not numpy's pairwise reduction:
        # the library-wide accumulation rule that keeps the scalar and numba
        # kernel backends bit-identical to this one.
        totals[finished] += np.cumsum(gap, axis=1)[:, -1]
        steps[finished] += 2 * n
    bounds[finished] = np.sqrt(totals[finished])
    return bounds, steps


def _pick_winner(
    totals: np.ndarray, survived: np.ndarray, r: float, r_sq: float
) -> tuple[float, int]:
    """The sequential loop's winner: first minimal *distance* among survivors.

    The scalar Table 2 loop decides improvement with ``dist < best`` in
    distance space -- after the square root -- and only completed rows ever
    produce a finite ``dist``.  Two consequences the squared-space shortcut
    ``argmin(totals)`` gets wrong: (1) two totals one ulp apart can round
    to the *same* distance, where the loop keeps the earlier row; (2) an
    abandoned row can hold the smallest total (its threshold was the
    sqrt-then-square round trip of the running best, which may sit one ulp
    below it) yet the loop never sees its distance.  So: sqrt the
    survivors, take the first minimum, and return the same ``best * best``
    round trip the loop's ``best_sq`` performs.
    """
    survived_idx = np.flatnonzero(survived)
    if survived_idx.size:
        dists = np.sqrt(totals[survived_idx])
        k = int(np.argmin(dists))
        best = float(dists[k])
        if best < float(r):
            return best * best, int(survived_idx[k])
    return r_sq, -1


def _thresholds_before(totals: np.ndarray, r: float) -> np.ndarray:
    """Squared threshold in force when each row of a sequential scan is reached.

    The scalar Table 2 loop carries its best-so-far as a *distance*: it
    takes a square root after every completed row and squares the running
    best again inside every early-abandonment test.  ``(sqrt(x))**2`` can
    round one ulp below ``x``, so reproducing the loop's decisions exactly
    requires taking the same round trip: threshold before row ``j`` is
    ``min(r, sqrt(min(totals[:j])))**2``, not ``min(r^2, min(totals[:j]))``.
    """
    m = totals.shape[0]
    r_sq = float(r) * float(r) if math.isfinite(r) else math.inf
    before = np.empty(m)
    before[0] = r_sq
    if m > 1:
        running = np.minimum.accumulate(totals[:-1])
        np.sqrt(running, out=running)
        np.minimum(running, float(r), out=running)
        np.square(running, out=running)
        before[1:] = running
    return before


def running_scan(
    prefix: np.ndarray,
    r: float = math.inf,
) -> tuple[float, int, int, int]:
    """Recover the sequential Table 2 scan from a row-wise prefix-sum matrix.

    ``prefix[j]`` holds the cumulative squared-error sums of candidate row
    ``j`` (non-decreasing).  The paper's scan visits rows in order with a
    running best-so-far seeded at ``r``; row ``j`` therefore abandons
    against the square of ``min(r, sqrt(min(totals[:j])))`` -- a cumulative
    minimum, because a row that improved the best-so-far set it to its own
    distance, and a row that did not improve it cannot lower the running
    minimum either.  That observation turns the strictly sequential
    semantics into three vectorised passes (cumulative minimum, threshold
    comparison, batched binary search) with *bit-identical* step
    accounting.  The scalar loop keeps its best-so-far as a *distance* and
    re-squares it on every call, so the threshold here takes the same
    sqrt-then-square round trip: at exact ties ``(sqrt(x))**2`` can round
    below ``x``, and matching the loop's decisions means matching its
    rounding.

    Returns ``(best_sq, best_index, steps, abandons)``; ``best_index`` is
    ``-1`` (and ``best_sq`` is ``r^2``) when no row beat the seed.
    """
    m, n = prefix.shape
    r_sq = float(r) * float(r) if math.isfinite(r) else math.inf
    if m == 0:
        return r_sq, -1, 0, 0
    totals = prefix[:, -1]
    before = _thresholds_before(totals, r)
    survived = totals <= before
    steps = int(survived.sum()) * n
    abandoned = ~survived
    n_abandoned = int(abandoned.sum())
    if n_abandoned:
        cuts = _cuts_against(prefix[abandoned], before[abandoned])
        steps += int(np.minimum(cuts + 1, n).sum())
    return _pick_winner(totals, survived, r, r_sq) + (steps, n_abandoned)


def ea_running_min_scan(
    candidates,
    c,
    r: float = math.inf,
    workspace: BatchWorkspace | None = None,
    probe_width: int | None = None,
) -> tuple[float, int, int, int]:
    """Batched Table 2: scan rows of ``candidates`` against ``c`` sequentially.

    Semantically -- and step-for-step -- identical to the scalar loop
    ``for row in candidates: ea_euclidean_distance(row, c, best_so_far)``
    with the best-so-far seeded at ``r``, but executed as two tiers of
    matrix kernels:

    1. a *probe* prefix-sum over the first ``probe_width`` columns rejects
       every row whose partial squared error already exceeds ``r^2`` (on
       realistic scans the overwhelming majority -- the paper's Figure 19
       effect), pinning their exact abandonment step from the probe alone;
    2. only surviving rows get the full prefix-sum matrix, and the
       strictly sequential best-so-far semantics are recovered with the
       cumulative-minimum trick of :func:`running_scan`.

    Prefix sums are plain left-to-right ``cumsum`` in both tiers, so every
    partial sum equals what the scalar loop accumulates -- decisions match
    bit for bit, not just approximately.

    Returns ``(best_sq, best_index, steps, abandons)`` (squared best
    distance; ``best_index == -1`` when nothing beat ``r``).
    """
    rows = np.atleast_2d(np.asarray(candidates, dtype=np.float64))
    c = np.asarray(c, dtype=np.float64)
    if rows.shape[1] != c.size:
        raise ValueError(f"length mismatch: {rows.shape[1]} vs {c.size}")
    m, n = rows.shape
    r_sq = float(r) * float(r) if math.isfinite(r) else math.inf
    if m == 0:
        return r_sq, -1, 0, 0
    if workspace is None:
        workspace = shared_workspace()
    probe = probe_width if probe_width is not None else max(16, n // 8)
    probe = max(1, probe)
    if not math.isfinite(r) or probe >= n:
        prefix = workspace.scratch("ea_scan_full", (m, n))
        np.subtract(rows, c[np.newaxis, :], out=prefix)
        np.square(prefix, out=prefix)
        np.cumsum(prefix, axis=1, out=prefix)
        return running_scan(prefix, r)

    # Tier 1: probe prefix over the leading columns.  A row whose partial
    # sum already exceeds r^2 is abandoned under *any* later (tighter)
    # threshold, and its abandonment step lies inside the probe.
    probe_prefix = workspace.scratch("ea_scan_probe", (m, probe))
    np.subtract(rows[:, :probe], c[np.newaxis, :probe], out=probe_prefix)
    np.square(probe_prefix, out=probe_prefix)
    np.cumsum(probe_prefix, axis=1, out=probe_prefix)
    alive = probe_prefix[:, -1] <= r_sq
    alive_idx = np.flatnonzero(alive)

    totals = np.full(m, np.inf)
    if alive_idx.size:
        # Tier 2: full prefix sums for the survivors only.
        full_prefix = workspace.scratch("ea_scan_alive", (alive_idx.size, n))
        np.subtract(rows[alive_idx], c[np.newaxis, :], out=full_prefix)
        np.square(full_prefix, out=full_prefix)
        np.cumsum(full_prefix, axis=1, out=full_prefix)
        totals[alive_idx] = full_prefix[:, -1]

    # Threshold in force when each row is reached: probe-dead rows have
    # totals above r^2, so they never tighten the running minimum and the
    # accumulate over `totals` (inf at dead rows) is exact.
    before = _thresholds_before(totals, r)
    survived = totals <= before
    n_survived = int(survived.sum())
    steps = n_survived * n
    abandons = m - n_survived

    dead = ~alive
    if dead.any():
        # Probe-dead rows: last probe entry exceeds the threshold, so the
        # exact cut is inside the probe window.
        cuts = _cuts_against(probe_prefix[dead], before[dead])
        steps += int((cuts + 1).sum())
    late = ~survived[alive_idx] if alive_idx.size else np.zeros(0, dtype=bool)
    if late.any():
        # Probe survivors beaten by a tightened threshold: cut from the
        # full prefix matrix, capped at n like the scalar loop.
        cuts = _cuts_against(full_prefix[late], before[alive_idx[late]])
        steps += int(np.minimum(cuts + 1, n).sum())

    return _pick_winner(totals, survived, r, r_sq) + (steps, abandons)
