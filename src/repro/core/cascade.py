"""Cascading lower bounds: LB_Kim in front of LB_Keogh in front of DTW.

The lower-bounding literature the paper founded settled on a *cascade*:
test the cheapest bound first and escalate only on survival.  LB_Kim
(Kim, Park & Chu, ICDE 2001) compares just a handful of landmark points
-- O(1) against DTW's O(nR) -- and is the classic first tier:

    LB_Kim  <=  LB_Keogh  (not in general -- but both <= DTW, which is
                            what admissibility requires)

This module provides:

* :func:`lb_kim` -- the 4-point bound (first, last, global min, global
  max) against a wedge envelope, admissible for DTW into the wedge;
* :class:`CascadePolicy` -- a pluggable leaf policy for H-Merge-style
  search loops: given a candidate, a leaf wedge, and the current
  threshold, run the cascade and return the exact distance or prove the
  leaf hopeless after O(1) work.

The ablation benchmark quantifies how many full DTW computations the
extra tier removes.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.counters import StepCounter
from repro.core.wedge import Wedge
from repro.distances.base import Measure

__all__ = ["lb_kim", "CascadePolicy"]


def lb_kim(candidate: np.ndarray, upper: np.ndarray, lower: np.ndarray) -> float:
    """The 4-point Kim bound against an (already measure-expanded) envelope.

    Admissibility: any warping path aligns the *first* points of the two
    series with each other and the *last* points with each other, so the
    first/last violations are unavoidable; and every candidate point --
    including its extremes -- must pay at least its distance to the
    envelope.  The bound is the largest single unavoidable violation,
    which can never exceed the full accumulated LB_Keogh (hence <= DTW).
    """
    c = np.asarray(candidate, dtype=np.float64)
    n = c.size

    def violation(value: float, hi: float, lo: float) -> float:
        if value > hi:
            return value - hi
        if value < lo:
            return lo - value
        return 0.0

    first = violation(c[0], upper[0], lower[0])
    last = violation(c[n - 1], upper[n - 1], lower[n - 1])
    env_hi = float(upper.max())
    env_lo = float(lower.min())
    cmax = violation(float(c.max()), env_hi, env_lo)
    cmin = violation(float(c.min()), env_hi, env_lo)
    return max(first, last, cmax, cmin)


class CascadePolicy:
    """Evaluate a leaf through the LB_Kim -> LB_Keogh -> distance cascade.

    Parameters
    ----------
    measure:
        The final (expensive) measure; for Euclidean distance the second
        tier is already exact and the third never runs.
    use_kim:
        Toggle the O(1) first tier (the ablation knob).
    """

    def __init__(self, measure: Measure, use_kim: bool = True):
        self.measure = measure
        self.use_kim = use_kim
        self.kim_rejections = 0
        self.keogh_rejections = 0
        self.full_computations = 0

    def leaf_distance(
        self,
        candidate: np.ndarray,
        leaf: Wedge,
        threshold: float,
        counter: StepCounter | None = None,
    ) -> float:
        """Exact distance to the leaf's series, or ``inf`` once provably
        >= ``threshold`` -- after as little work as the cascade allows."""
        upper, lower = leaf.envelope_for(self.measure)
        if self.use_kim:
            kim = lb_kim(candidate, upper, lower)
            if counter is not None:
                counter.lb_calls += 1
                counter.add(4)  # four landmark comparisons
            if kim >= threshold:
                self.kim_rejections += 1
                return math.inf
        keogh = self.measure.lower_bound(candidate, upper, lower, threshold, counter=counter)
        if keogh >= threshold:
            self.keogh_rejections += 1
            return math.inf
        if self.measure.lb_exact_for_singleton:
            return keogh
        self.full_computations += 1
        return self.measure.distance(candidate, leaf.series, threshold, counter=counter)

    def stats(self) -> dict[str, int]:
        """Rejection counts per tier (for the ablation report)."""
        return {
            "kim_rejections": self.kim_rejections,
            "keogh_rejections": self.keogh_rejections,
            "full_computations": self.full_computations,
        }
