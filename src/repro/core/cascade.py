"""Cascading lower bounds: LB_Kim -> LB_Keogh -> LB_Improved -> distance.

The lower-bounding literature the paper founded settled on a *cascade*:
test the cheapest bound first and escalate only on survival.  LB_Kim
(Kim, Park & Chu, ICDE 2001) compares just a handful of landmark points
-- O(1) against DTW's O(nR) -- and is the classic first tier:

    LB_Kim  <=  LB_Keogh  (not in general -- but both <= DTW, which is
                            what admissibility requires)

Between LB_Keogh and the full distance sits Lemire's two-pass LB_Improved
("Faster Retrieval with a Two-Pass Dynamic-Time-Warping Lower Bound"):
for the O(n) cost of a second envelope pass it often rejects candidates
LB_Keogh lets through, saving an O(nR) dynamic program.

This module provides:

* :func:`lb_kim` -- the 4-point bound (first, last, global min, global
  max) against a wedge envelope, admissible for DTW into the wedge;
* :func:`candidate_extremes` -- the once-per-candidate landmark scan,
  so repeated Kim tests really cost the 4 comparisons they are charged;
* :class:`CascadePolicy` -- a pluggable leaf policy for H-Merge-style
  search loops: given a candidate, a leaf wedge, and the current
  threshold, run the cascade and return the exact distance or prove the
  leaf hopeless after as little work as possible.

The ablation benchmark quantifies how many full DTW computations the
extra tiers remove.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.counters import StepCounter
from repro.core.wedge import Wedge
from repro.distances.base import Measure
from repro.obs.trace import NULL_TRACER

__all__ = [
    "lb_kim",
    "candidate_extremes",
    "CascadePolicy",
    "empty_tier_stats",
    "CASCADE_TIERS",
    "canonical_tiers",
]

#: Canonical cascade order: cheapest admissible test first.  Plans may
#: drop tiers or permute them (exactness only needs admissibility, which
#: every tier has independently), but the *batch* leaf-run path in
#: ``hmerge`` is specialised to this order.
CASCADE_TIERS = ("kim", "keogh", "improved")

#: Keys every tier-stats dict exposes, cascade or not.  Non-cascade search
#: strategies report this zeroed sentinel on ``SearchResult.tier_stats`` so
#: downstream reporting (the ``repro obs`` funnel above all) never branches
#: on ``None``.
TIER_STAT_KEYS = (
    "leaf_candidates",
    "kim_rejections",
    "keogh_reached",
    "keogh_rejections",
    "improved_reached",
    "improved_rejections",
    "full_computations",
)


def empty_tier_stats() -> dict[str, int]:
    """A zeroed tier-stats dict with the full :data:`TIER_STAT_KEYS` schema."""
    return dict.fromkeys(TIER_STAT_KEYS, 0)


def canonical_tiers(measure: Measure, use_kim: bool = True, use_improved: bool = True) -> tuple[str, ...]:
    """The default tier tuple for ``measure`` under the two legacy toggles.

    This is the order every release before the planner hardcoded: Kim (when
    the measure is Kim-compatible), then Keogh, then Improved (when the
    measure has one).  ``CascadePolicy(measure)`` is exactly
    ``CascadePolicy(measure, tiers=canonical_tiers(measure))``.
    """
    tiers = []
    if use_kim and measure.kim_compatible:
        tiers.append("kim")
    tiers.append("keogh")
    if use_improved and measure.has_improved_bound:
        tiers.append("improved")
    return tuple(tiers)


def candidate_extremes(candidate: np.ndarray) -> tuple[float, float, float, float]:
    """The four landmark values LB_Kim needs: first, last, max, min.

    One O(n) scan; callers that test the same candidate against many wedges
    (every H-Merge descent) compute this once and pass it to :func:`lb_kim`,
    so each Kim test afterwards really is the 4 comparisons it is charged.
    """
    c = np.asarray(candidate, dtype=np.float64)
    return float(c[0]), float(c[-1]), float(c.max()), float(c.min())


def lb_kim(
    candidate: np.ndarray,
    upper: np.ndarray,
    lower: np.ndarray,
    extremes: tuple[float, float, float, float] | None = None,
) -> float:
    """The 4-point Kim bound against an (already measure-expanded) envelope.

    Admissibility: any warping path aligns the *first* points of the two
    series with each other and the *last* points with each other, so the
    first/last violations are unavoidable; and every candidate point --
    including its extremes -- must pay at least its distance to the
    envelope.  The bound is the largest single unavoidable violation,
    which can never exceed the full accumulated LB_Keogh (hence <= DTW).

    ``extremes`` is the output of :func:`candidate_extremes`; omitting it
    recomputes the landmarks here (an O(n) scan the caller then owns --
    honest step accounting charges that scan once per candidate, not per
    wedge, which is why cascades precompute).
    """
    if extremes is None:
        extremes = candidate_extremes(candidate)
    c_first, c_last, c_max, c_min = extremes
    n = upper.shape[0]

    def violation(value: float, hi: float, lo: float) -> float:
        if value > hi:
            return value - hi
        if value < lo:
            return lo - value
        return 0.0

    first = violation(c_first, upper[0], lower[0])
    last = violation(c_last, upper[n - 1], lower[n - 1])
    env_hi = float(upper.max())
    env_lo = float(lower.min())
    cmax = violation(c_max, env_hi, env_lo)
    cmin = violation(c_min, env_hi, env_lo)
    return max(first, last, cmax, cmin)


class CascadePolicy:
    """Evaluate a leaf through the LB_Kim -> LB_Keogh -> LB_Improved ->
    distance cascade.

    Parameters
    ----------
    measure:
        The final (expensive) measure; for Euclidean distance the second
        tier is already exact and the later ones never run.
    use_kim:
        Toggle the O(1) first tier (the ablation knob).  Forced off when
        the measure declares itself ``kim_compatible = False`` (LCSS: the
        value-space Kim bound is inadmissible in match-count space).
    use_improved:
        Toggle the two-pass LB_Improved tier between LB_Keogh and the full
        distance.  It only ever runs when the measure declares
        ``has_improved_bound`` and the threshold is finite (an infinite
        threshold rejects nothing, so the second pass would be pure cost).
    tracer:
        A :class:`~repro.obs.trace.Tracer` receiving one event per tier
        decision (and a span around each full distance computation).
        Defaults to the no-op null tracer; tracing never touches the step
        accounting.

    Besides the per-tier *rejection* counts, the policy tracks the tier
    **funnel**: how many leaf candidates entered the cascade
    (``leaf_candidates``), survived into the LB_Keogh tier
    (``keogh_reached``), survived into the LB_Improved stage
    (``improved_reached``), and paid a full distance
    (``full_computations``).  Exactness makes the funnel monotonically
    non-increasing; observability code asserts that.
    """

    def __init__(
        self,
        measure: Measure,
        use_kim: bool = True,
        use_improved: bool = True,
        tracer=None,
        tiers: tuple[str, ...] | None = None,
    ):
        self.measure = measure
        if tiers is None:
            tiers = canonical_tiers(measure, use_kim=use_kim, use_improved=use_improved)
        else:
            tiers = self._validate_tiers(measure, tiers)
        self.tiers = tiers
        self.use_kim = "kim" in tiers
        self.use_improved = "improved" in tiers
        self.tracer = NULL_TRACER if tracer is None else tracer
        # Resolved once per policy (i.e. per query): stamped on the
        # full-distance trace spans so traces say which kernels ran.
        self.backend_name = measure.backend_name
        self.leaf_candidates = 0
        self.keogh_reached = 0
        self.improved_reached = 0
        self.kim_rejections = 0
        self.keogh_rejections = 0
        self.improved_rejections = 0
        self.full_computations = 0
        self._prepared: np.ndarray | None = None
        self._extremes: tuple[float, float, float, float] | None = None
        self._env_extremes: dict[Wedge, tuple[float, float]] = {}

    @staticmethod
    def _validate_tiers(measure: Measure, tiers: tuple[str, ...]) -> tuple[str, ...]:
        """Normalise an explicit tier tuple against the measure's abilities.

        Unknown names and duplicates are errors; tiers the measure cannot
        support (``kim`` for non-Kim-compatible measures, ``improved`` when
        the measure has no improved bound) are silently dropped, matching
        the legacy toggle semantics.  ``improved`` without a preceding
        ``keogh`` is rejected: LB_Improved's second pass refines the Keogh
        envelope distance and is only cheaper *given* that first pass.
        """
        tiers = tuple(tiers)
        for name in tiers:
            if name not in CASCADE_TIERS:
                raise ValueError(f"unknown cascade tier {name!r}; expected one of {CASCADE_TIERS}")
        if len(set(tiers)) != len(tiers):
            raise ValueError(f"duplicate cascade tier in {tiers!r}")
        kept = tuple(
            name
            for name in tiers
            if not (name == "kim" and not measure.kim_compatible)
            and not (name == "improved" and not measure.has_improved_bound)
        )
        if "improved" in kept and ("keogh" not in kept or kept.index("keogh") > kept.index("improved")):
            raise ValueError(
                f"tier order {tiers!r} runs 'improved' without a preceding 'keogh'; "
                "LB_Improved refines the Keogh pass and must follow it"
            )
        return kept

    @property
    def batch_compatible(self) -> bool:
        """Whether the batched leaf-run path may serve this tier order.

        The vectorised run evaluator in ``hmerge`` hardcodes the canonical
        Kim -> Keogh -> Improved order and always runs a Keogh pass; any
        plan that drops Keogh or permutes tiers must fall back to the
        scalar per-leaf cascade (same answers, different step profile).
        """
        canonical_subset = tuple(t for t in CASCADE_TIERS if t in self.tiers)
        return "keogh" in self.tiers and self.tiers == canonical_subset

    def reset(self) -> None:
        """Zero the funnel counters and drop per-candidate memos.

        A policy instance reused across queries *must* call this between
        them: the counters otherwise accumulate for the instance lifetime
        and any per-query consumer (the planner's cost model above all)
        would see a blended funnel.
        """
        self.leaf_candidates = 0
        self.keogh_reached = 0
        self.improved_reached = 0
        self.kim_rejections = 0
        self.keogh_rejections = 0
        self.improved_rejections = 0
        self.full_computations = 0
        self._prepared = None
        self._extremes = None
        self._env_extremes.clear()

    def prepare(self, candidate: np.ndarray, counter: StepCounter | None = None) -> None:
        """Memoize the candidate's Kim landmarks (one O(n) scan, charged here).

        Called automatically by :meth:`leaf_distance` / :meth:`wedge_bound`
        when the candidate changes; callers looping one candidate over many
        wedges pay the scan exactly once.
        """
        if self._prepared is candidate:
            return
        self._prepared = candidate
        if self.use_kim:
            self._extremes = candidate_extremes(candidate)
            if counter is not None:
                counter.add(np.asarray(candidate).size)
        else:
            self._extremes = None

    def _kim(
        self,
        candidate: np.ndarray,
        wedge: Wedge,
        upper: np.ndarray,
        lower: np.ndarray,
        counter: StepCounter | None,
    ) -> float:
        """One Kim test: 4 comparisons after the memoized landmark scans."""
        self.prepare(candidate, counter)
        env = self._env_extremes.get(wedge)
        if env is None:
            env = (float(upper.max()), float(lower.min()))
            self._env_extremes[wedge] = env
            if counter is not None:
                counter.add(upper.shape[0])
        c_first, c_last, c_max, c_min = self._extremes
        n = upper.shape[0]
        env_hi, env_lo = env

        def violation(value: float, hi: float, lo: float) -> float:
            if value > hi:
                return value - hi
            if value < lo:
                return lo - value
            return 0.0

        if counter is not None:
            counter.lb_calls += 1
            counter.add(4)  # four landmark comparisons
        return max(
            violation(c_first, upper[0], lower[0]),
            violation(c_last, upper[n - 1], lower[n - 1]),
            violation(c_max, env_hi, env_lo),
            violation(c_min, env_hi, env_lo),
        )

    def wedge_bound(
        self,
        candidate: np.ndarray,
        wedge: Wedge,
        threshold: float,
        counter: StepCounter | None = None,
    ) -> float:
        """Lower bound of ``candidate`` against any (internal) wedge.

        Runs the cheap Kim tier first when enabled, then LB_Keogh; used by
        H-Merge to decide whether a subtree can be pruned wholesale.
        """
        upper, lower = wedge.envelope_for(self.measure, counter=counter)
        tracer = self.tracer
        if self.use_kim:
            kim = self._kim(candidate, wedge, upper, lower, counter)
            if kim >= threshold:
                self.kim_rejections += 1
                if tracer.enabled:
                    tracer.event(
                        "cascade.kim",
                        outcome="reject",
                        kind="wedge",
                        cardinality=wedge.cardinality,
                        bound=float(kim),
                    )
                return kim
        lb = self.measure.lower_bound(candidate, upper, lower, threshold, counter=counter)
        if tracer.enabled:
            tracer.event(
                "cascade.keogh",
                outcome="reject" if lb >= threshold else "pass",
                kind="wedge",
                cardinality=wedge.cardinality,
                bound=float(lb),
            )
        return lb

    def leaf_distance(
        self,
        candidate: np.ndarray,
        leaf: Wedge,
        threshold: float,
        counter: StepCounter | None = None,
    ) -> float:
        """Exact distance to the leaf's series, or ``inf`` once provably
        >= ``threshold`` -- after as little work as the cascade allows.

        The tiers run in the order this policy was configured with.  The
        funnel counters keep their canonical meaning under any order: a
        candidate is counted as *reaching* the Keogh/Improved stage when it
        survives long enough that the canonical cascade would have run that
        stage -- so a plan that drops a tier passes candidates through its
        ``*_reached`` counter untested, and ``funnel_is_monotone`` holds for
        every legal plan.
        """
        self.leaf_candidates += 1
        tracer = self.tracer
        upper, lower = leaf.envelope_for(self.measure, counter=counter)
        keogh: float | None = None
        keogh_credited = False
        improved_credited = False
        for tier in self.tiers:
            if tier == "kim":
                kim = self._kim(candidate, leaf, upper, lower, counter)
                if kim >= threshold:
                    self.kim_rejections += 1
                    if tracer.enabled:
                        tracer.event("cascade.kim", outcome="reject", kind="leaf", bound=float(kim))
                    return math.inf
                if tracer.enabled:
                    tracer.event("cascade.kim", outcome="pass", kind="leaf", bound=float(kim))
            elif tier == "keogh":
                self.keogh_reached += 1
                keogh_credited = True
                keogh = self.measure.lower_bound(candidate, upper, lower, threshold, counter=counter)
                if keogh >= threshold:
                    self.keogh_rejections += 1
                    if tracer.enabled:
                        tracer.event(
                            "cascade.keogh", outcome="reject", kind="leaf", bound=float(keogh)
                        )
                    return math.inf
                if tracer.enabled:
                    tracer.event("cascade.keogh", outcome="pass", kind="leaf", bound=float(keogh))
                if self.measure.lb_exact_for_singleton:
                    return keogh
            elif tier == "improved":
                if not keogh_credited:
                    self.keogh_reached += 1
                    keogh_credited = True
                self.improved_reached += 1
                improved_credited = True
                if math.isfinite(threshold):
                    improved = self.measure.improved_lower_bound(
                        candidate,
                        upper,
                        lower,
                        leaf.upper,
                        leaf.lower,
                        threshold,
                        keogh=keogh,
                        counter=counter,
                    )
                    if improved >= threshold:
                        self.improved_rejections += 1
                        if tracer.enabled:
                            tracer.event(
                                "cascade.improved",
                                outcome="reject",
                                kind="leaf",
                                bound=float(improved),
                            )
                        return math.inf
                    if tracer.enabled:
                        tracer.event(
                            "cascade.improved", outcome="pass", kind="leaf", bound=float(improved)
                        )
        if not keogh_credited:
            self.keogh_reached += 1
        if not improved_credited:
            self.improved_reached += 1
        self.full_computations += 1
        with tracer.span("cascade.full_distance", backend=self.backend_name) as span:
            dist = self.measure.distance(candidate, leaf.series, threshold, counter=counter)
            span.set(distance=float(dist))
        return dist

    def stats(self) -> dict[str, int]:
        """Tier funnel and rejection counts (for reports and ``repro obs``).

        Same key schema as :func:`empty_tier_stats`; the ``*_reached`` keys
        count leaf candidates *entering* each tier, the ``*_rejections``
        keys count candidates each tier removed (internal-wedge Kim/Keogh
        rejections from :meth:`wedge_bound` are folded into the same
        rejection buckets).
        """
        return {
            "leaf_candidates": self.leaf_candidates,
            "kim_rejections": self.kim_rejections,
            "keogh_reached": self.keogh_reached,
            "keogh_rejections": self.keogh_rejections,
            "improved_reached": self.improved_reached,
            "improved_rejections": self.improved_rejections,
            "full_computations": self.full_computations,
        }
