"""Cost-model query planner: choose a cascade plan, never change an answer.

Every lower-bound tier in the cascade is independently admissible, so *any*
subset of tiers in *any* order returns exactly the same neighbours -- the
only thing a plan changes is how much work the search does.  That freedom
is what this module exploits: a :class:`QueryPlan` pins down the knobs a
query can vary (strategy, cascade tier set and order, batched vs scalar
leaf runs, kernel backend), and a :class:`Planner` picks one per query from

* **static dataset statistics** (database size, series length, rotation-set
  size, measure) -- enough to seed a sensible default before any traffic; and
* **live telemetry** -- the per-tier funnel counts (``tier_stats``) the
  observability layer already records.  A tier earns its place when its
  measured rejection rate times the downstream cost it avoids exceeds its
  own test cost; tiers that fail that test are dropped and the survivors
  run cheapest-first.

The exactness contract is the hard invariant: the planner may only ever
choose among plans that return bit-identical answers.  The plan-invariance
fuzz suite (``tests/test_planner.py``) and the ``run_all.py --quick``
tripwire enforce it.

Cost currency is the repo's ``num_steps`` accounting (the paper's own
metric): a Kim test is 4 comparisons, a Keogh pass is one O(n) scan, an
Improved pass a second O(n) scan, and a full distance costs
``measure.pairwise_cost(n)`` (n for Euclidean, O(nR) for DTW/LCSS).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.core.cascade import CASCADE_TIERS, canonical_tiers, empty_tier_stats
from repro.distances.base import Measure

__all__ = [
    "QueryPlan",
    "DatasetStats",
    "Planner",
    "enumerate_plans",
    "parse_plan",
    "default_plan",
]


@dataclass(frozen=True)
class QueryPlan:
    """An immutable, picklable description of how to execute one query.

    Frozen so it can be resolved once parent-side and shipped verbatim to
    pool workers and shard workers (the same propagation rule PR 6
    established for kernel backends).
    """

    strategy: str = "wedge"
    tiers: tuple[str, ...] = CASCADE_TIERS
    batch_leaves: bool = True
    backend: str | None = None

    @property
    def name(self) -> str:
        """Canonical human-readable name, e.g. ``wedge:kim>keogh>improved:batch``."""
        tier_part = ">".join(self.tiers) if self.tiers else "none"
        leaf_part = "batch" if self.batch_leaves else "scalar"
        base = f"{self.strategy}:{tier_part}:{leaf_part}"
        if self.backend:
            base += f":{self.backend}"
        return base

    def to_dict(self) -> dict:
        """Wire form for JSON pipes (shard workers) and logs."""
        return {
            "strategy": self.strategy,
            "tiers": list(self.tiers),
            "batch_leaves": self.batch_leaves,
            "backend": self.backend,
            "name": self.name,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "QueryPlan":
        return cls(
            strategy=payload.get("strategy", "wedge"),
            tiers=tuple(payload.get("tiers", CASCADE_TIERS)),
            batch_leaves=bool(payload.get("batch_leaves", True)),
            backend=payload.get("backend"),
        )


@dataclass(frozen=True)
class DatasetStats:
    """Static facts the planner can know before any query runs."""

    size: int
    length: int
    n_rotations: int | None = None
    measure: str | None = None

    @classmethod
    def from_database(cls, database, measure: Measure | None = None) -> "DatasetStats":
        import numpy as np

        arr = np.asarray(database[0]) if len(database) else np.zeros(0)
        return cls(
            size=len(database),
            length=int(arr.shape[-1]) if arr.ndim else 0,
            n_rotations=int(arr.shape[-1]) if arr.ndim else None,
            measure=getattr(measure, "name", None),
        )


def _supported_tiers(measure: Measure) -> tuple[str, ...]:
    return tuple(
        t
        for t in CASCADE_TIERS
        if not (t == "kim" and not measure.kim_compatible)
        and not (t == "improved" and not measure.has_improved_bound)
    )


def _tiers_valid(tiers: tuple[str, ...]) -> bool:
    """Keogh-before-Improved is the one ordering constraint plans must honour."""
    if "improved" in tiers:
        return "keogh" in tiers and tiers.index("keogh") < tiers.index("improved")
    return True


def _batch_compatible(tiers: tuple[str, ...]) -> bool:
    canonical_subset = tuple(t for t in CASCADE_TIERS if t in tiers)
    return "keogh" in tiers and tiers == canonical_subset


def default_plan(measure: Measure, backend: str | None = None) -> QueryPlan:
    """The plan every release before the planner hardcoded."""
    return QueryPlan(strategy="wedge", tiers=canonical_tiers(measure), batch_leaves=True, backend=backend)


def enumerate_plans(measure: Measure, backend: str | None = None) -> list[QueryPlan]:
    """Every executable wedge plan for ``measure``: tier subsets x orders x
    batch/scalar (batch only where the batched leaf path supports the order).

    This is the space the plan-invariance fuzz suite quantifies over and the
    space :func:`parse_plan` accepts as ``fixed:`` specs.
    """
    supported = _supported_tiers(measure)
    plans: list[QueryPlan] = []
    seen: set[tuple] = set()
    for r in range(len(supported) + 1):
        for subset in itertools.combinations(supported, r):
            for order in itertools.permutations(subset):
                if not _tiers_valid(order):
                    continue
                variants = [False]
                if _batch_compatible(order):
                    variants.append(True)
                for batch in variants:
                    key = (order, batch)
                    if key in seen:
                        continue
                    seen.add(key)
                    plans.append(
                        QueryPlan(strategy="wedge", tiers=order, batch_leaves=batch, backend=backend)
                    )
    return plans


def parse_plan(spec: str, measure: Measure | None = None, backend: str | None = None):
    """Parse a CLI/service plan spec.

    ``"auto"`` returns ``None`` (callers construct a :class:`Planner`);
    ``"fixed:<t1>[><t2>...][:batch|:scalar]"`` returns the pinned
    :class:`QueryPlan`.  ``fixed:none`` runs no lower-bound tier at all.
    """
    spec = spec.strip()
    if spec == "auto":
        return None
    if not spec.startswith("fixed:"):
        raise ValueError(f"plan spec must be 'auto' or 'fixed:...', got {spec!r}")
    body = spec[len("fixed:") :]
    parts = body.split(":")
    tier_part = parts[0]
    leaf_part = parts[1] if len(parts) > 1 else "batch"
    if len(parts) > 2:
        raise ValueError(f"unrecognised plan spec {spec!r}")
    if leaf_part not in ("batch", "scalar"):
        raise ValueError(f"leaf mode must be 'batch' or 'scalar', got {leaf_part!r}")
    tiers = () if tier_part in ("none", "") else tuple(tier_part.split(">"))
    for name in tiers:
        if name not in CASCADE_TIERS:
            raise ValueError(f"unknown cascade tier {name!r}; expected one of {CASCADE_TIERS}")
    if len(set(tiers)) != len(tiers):
        raise ValueError(f"duplicate cascade tier in plan spec {spec!r}")
    if not _tiers_valid(tiers):
        raise ValueError(f"plan {spec!r} runs 'improved' without a preceding 'keogh'")
    if measure is not None:
        tiers = tuple(t for t in tiers if t in _supported_tiers(measure))
    batch = leaf_part == "batch" and _batch_compatible(tiers)
    return QueryPlan(strategy="wedge", tiers=tiers, batch_leaves=batch, backend=backend)


class Planner:
    """Selects a :class:`QueryPlan` per query from stats and live telemetry.

    The cost model (all in ``num_steps``):

    * a Kim test costs 4 comparisons,
    * a Keogh pass costs one O(n) scan,
    * an Improved pass costs a second O(n) scan (~2n with its envelope),
    * a full distance costs ``measure.pairwise_cost(n)``.

    For a tier with measured rejection rate ``p`` (rejections / candidates
    entering the tier), the expected saving per candidate is
    ``p * downstream_cost - test_cost`` where ``downstream_cost`` is the
    cost of the stages the rejection short-circuits.  Tiers with
    non-positive expected saving are dropped -- in particular a tier with
    measured rejection rate 0 is *always* dropped (its saving is exactly
    ``-test_cost``).  Survivors run cheapest-first, which together with the
    Keogh-before-Improved constraint reproduces the canonical order.

    Steps are the right *admissibility* currency but a blind *latency* one:
    constant factors (vectorised kernels, early abandoning, per-leaf Python
    overhead) can make a step-expensive plan wall-cheap.  When callers also
    report measured per-query wall clock (``observe(..., wall_seconds=...,
    plan=...)``, as ``auto_search`` does), the planner probes a small
    shortlist of candidate plans -- the step model's pick in both leaf
    modes plus the minimal plans it cannot rank -- and commits to the
    measured fastest, re-evaluating as samples accumulate.  Without wall
    telemetry (the sharded service's deterministic path) the steps model
    alone decides.

    Until a tier has been observed (``reached == 0``) the planner keeps the
    measure's canonical default membership, so a cold planner emits exactly
    the pre-planner behaviour.
    """

    #: Funnel observations below this many leaf candidates are considered
    #: too noisy to overrule the canonical default.
    MIN_OBSERVATIONS = 32

    #: Wall-clock samples per candidate plan before the measured-latency
    #: tie-break trusts its number for that plan.
    PROBE_SAMPLES = 2

    #: Per-plan wall samples kept (rolling window; old machines drift).
    MAX_WALL_SAMPLES = 64

    def __init__(
        self,
        measure: Measure,
        stats: DatasetStats | None = None,
        backend: str | None = None,
    ):
        self.measure = measure
        self.stats = stats
        self.backend = backend
        self.totals = empty_tier_stats()
        self.observations = 0
        self.cached_skipped = 0
        self.plan_switches = 0
        self.decisions: list[dict] = []
        self._current: QueryPlan | None = None
        #: Measured per-query wall clock keyed by (tiers, batch_leaves).
        #: Populated only when callers report ``wall_seconds`` (the span
        #: cost the obs layer already times); empty = steps-model only.
        self._wall_samples: dict[tuple, list[float]] = {}

    # ----------------------------------------------------------- telemetry

    def observe(
        self,
        tier_stats: dict | None,
        cached: bool = False,
        wall_seconds: float | None = None,
        plan: QueryPlan | None = None,
    ) -> None:
        """Fold one query's tier funnel into the model.

        ``cached=True`` marks an answer served from the answer cache: its
        ``tier_stats`` replay work that already ran once, so folding them in
        again would double-count rejections and let a hot cached query pin
        the plan.  Cache hits are counted but never enter the cost model.

        ``wall_seconds`` (with the ``plan`` that produced it) feeds the
        measured-latency tie-break: the step model is blind to constant
        factors (a vectorised kernel's early-abandoned "expensive" distance
        can be wall-cheaper than a Python-level bound test), so when wall
        telemetry is available the planner probes a shortlist of candidate
        plans and commits to the measured fastest.
        """
        if cached:
            self.cached_skipped += 1
            return
        if wall_seconds is not None and plan is not None:
            samples = self._wall_samples.setdefault(
                (plan.tiers, plan.batch_leaves), []
            )
            samples.append(float(wall_seconds))
            del samples[: -self.MAX_WALL_SAMPLES]
        if not tier_stats:
            return
        for key in self.totals:
            self.totals[key] += int(tier_stats.get(key, 0))
        self.observations += 1

    # ----------------------------------------------------------- cost model

    def tier_test_cost(self, tier: str) -> float:
        """Per-candidate cost of running one tier's test, in steps."""
        n = self.stats.length if self.stats is not None else 64
        if tier == "kim":
            return 4.0
        if tier == "keogh":
            return float(n)
        if tier == "improved":
            return 2.0 * n
        raise ValueError(f"unknown tier {tier!r}")

    def full_cost(self) -> float:
        """Cost of one full distance computation, in steps."""
        n = self.stats.length if self.stats is not None else 64
        return float(self.measure.pairwise_cost(n))

    def tier_rejection_rate(self, tier: str) -> float | None:
        """Measured rejection rate for ``tier``, or ``None`` if unobserved."""
        t = self.totals
        if tier == "kim":
            reached, rejected = t["leaf_candidates"], t["kim_rejections"]
        elif tier == "keogh":
            reached, rejected = t["keogh_reached"], t["keogh_rejections"]
        elif tier == "improved":
            reached, rejected = t["improved_reached"], t["improved_rejections"]
        else:
            raise ValueError(f"unknown tier {tier!r}")
        if reached <= 0:
            return None
        return rejected / reached

    def tier_estimates(self) -> dict[str, dict]:
        """Per-tier cost-model view (for ``/health``, BENCH, and debugging)."""
        estimates = {}
        for tier in _supported_tiers(self.measure):
            rate = self.tier_rejection_rate(tier)
            test_cost = self.tier_test_cost(tier)
            downstream = self._downstream_cost(tier)
            saving = None if rate is None else rate * downstream - test_cost
            estimates[tier] = {
                "rejection_rate": rate,
                "test_cost": test_cost,
                "downstream_cost": downstream,
                "expected_saving": saving,
            }
        return estimates

    def _downstream_cost(self, tier: str) -> float:
        """Steps a rejection at ``tier`` short-circuits (later tiers + full)."""
        supported = _supported_tiers(self.measure)
        later = supported[supported.index(tier) + 1 :]
        cost = sum(self.tier_test_cost(t) for t in later)
        if self.measure.lb_exact_for_singleton and tier == "kim":
            # For exact-at-Keogh measures the Keogh pass IS the distance;
            # a Kim rejection saves that single O(n) pass, nothing more.
            return float(cost)
        return float(cost + self.full_cost())

    # ----------------------------------------------------------- planning

    def _wall_candidates(self, model_tiers: tuple[str, ...]) -> list[QueryPlan]:
        """The shortlist the measured-latency tie-break probes.

        The step model ranks tiers by rejection value but cannot see
        constant factors, so the shortlist brackets its answer with the
        extremes it cannot rank: the no-bound plan, the cheapest single
        tier, and the model's plan in both leaf modes.  Kept deliberately
        small -- every candidate costs one measured query to probe.
        """
        cands: list[QueryPlan] = []
        seen: set[tuple] = set()

        def add(tiers: tuple[str, ...], batch: bool) -> None:
            if batch and not _batch_compatible(tiers):
                return
            key = (tiers, batch)
            if key in seen:
                return
            seen.add(key)
            cands.append(
                QueryPlan(strategy="wedge", tiers=tiers, batch_leaves=batch, backend=self.backend)
            )

        if self.measure.lb_exact_for_singleton:
            # Keogh IS the distance: the keogh-only plan is the floor.
            add(("keogh",), False)
        else:
            add((), False)
            if model_tiers:
                add(model_tiers[:1], False)
        add(model_tiers, False)
        add(model_tiers, True)
        return cands

    def _wall_pick(self, model_tiers: tuple[str, ...]) -> QueryPlan | None:
        """Probe-then-commit over the shortlist, or ``None`` when wall
        telemetry was never reported (steps-model only)."""
        if not self._wall_samples:
            return None
        cands = self._wall_candidates(model_tiers)
        for cand in cands:
            samples = self._wall_samples.get((cand.tiers, cand.batch_leaves), [])
            if len(samples) < self.PROBE_SAMPLES:
                return cand  # still probing: measure this one next
        def mean_wall(cand: QueryPlan) -> float:
            samples = self._wall_samples[(cand.tiers, cand.batch_leaves)]
            return sum(samples) / len(samples)

        return min(cands, key=mean_wall)

    def plan(self) -> QueryPlan:
        """Select the current best plan; counts switches for telemetry."""
        canonical = canonical_tiers(self.measure)
        kept: list[str] = []
        trusted = self.totals["leaf_candidates"] >= self.MIN_OBSERVATIONS
        for tier in _supported_tiers(self.measure):
            rate = self.tier_rejection_rate(tier)
            if rate is None or not trusted:
                if tier in canonical:
                    kept.append(tier)
                continue
            saving = rate * self._downstream_cost(tier) - self.tier_test_cost(tier)
            if saving > 0:
                kept.append(tier)
        # LB_Improved refines the Keogh pass: without Keogh it cannot run,
        # so dropping Keogh takes Improved down with it.
        if "improved" in kept and "keogh" not in kept:
            kept.remove("improved")
        # Survivors cheapest-first; Keogh must still precede Improved, which
        # the monotone cost model (4 < n < 2n) already guarantees.
        kept.sort(key=self.tier_test_cost)
        tiers = tuple(kept)
        if not _tiers_valid(tiers):  # pragma: no cover - the guards above ensure this
            tiers = tuple(t for t in CASCADE_TIERS if t in kept)
        if self.measure.lb_exact_for_singleton and "keogh" not in tiers:
            # Dropping Keogh for an exact-at-Keogh measure forfeits the
            # short-circuit that makes the full distance free; never do it.
            tiers = tuple(t for t in CASCADE_TIERS if t in kept or t == "keogh")
        plan = None
        if trusted:
            plan = self._wall_pick(tiers)
        if plan is None:
            plan = QueryPlan(
                strategy="wedge",
                tiers=tiers,
                batch_leaves=_batch_compatible(tiers),
                backend=self.backend,
            )
        if self._current is None or plan != self._current:
            if self._current is not None:
                self.plan_switches += 1
            self._current = plan
            self.decisions.append(
                {
                    "plan": plan.name,
                    "after_observations": self.observations,
                    "estimates": self.tier_estimates(),
                }
            )
            if len(self.decisions) > 64:
                del self.decisions[:-64]
        return plan

    @property
    def current_plan(self) -> QueryPlan:
        """The most recently selected plan (selecting one if none yet)."""
        if self._current is None:
            return self.plan()
        return self._current

    def wall_report(self) -> dict[str, dict]:
        """Measured per-plan wall clock (empty when never reported)."""
        report = {}
        for (tiers, batch), samples in sorted(self._wall_samples.items()):
            name = (">".join(tiers) or "none") + (":batch" if batch else ":scalar")
            report[name] = {
                "samples": len(samples),
                "mean_wall_s": round(sum(samples) / len(samples), 6),
            }
        return report

    def snapshot(self) -> dict:
        """JSON-safe state for ``/health`` and benchmark reports."""
        return {
            "plan": self.current_plan.name,
            "observations": self.observations,
            "cached_skipped": self.cached_skipped,
            "plan_switches": self.plan_switches,
            "totals": dict(self.totals),
            "tier_estimates": self.tier_estimates(),
            "wall_clock": self.wall_report(),
            "stats": None
            if self.stats is None
            else {
                "size": self.stats.size,
                "length": self.stats.length,
                "n_rotations": self.stats.n_rotations,
                "measure": self.stats.measure,
            },
        }
