"""Rotation sets: every circular shift of a series, and useful subsets.

Section 3 of the paper expands a time series ``C`` of length ``n`` into the
matrix **C** whose ``n`` rows are all circular shifts of ``C`` -- in the 1-D
representation of a closed contour, image rotation *is* circular shift.  Two
generalisations from the paper are also provided:

* **Mirror-image invariance**: append the rotations of ``reverse(C)`` so
  enantiomorphic shapes (a skull facing the other way) match, while "d" vs
  "b" style distinctions can be kept by leaving it off.
* **Rotation-limited queries**: keep only shifts within ± some angle, so a
  query for "6" does not retrieve "9".

Because all rows are shifts of one series, the pairwise Euclidean distances
between rows depend only on the *lag* ``(j - i) mod n``.  The full
``n x n`` distance matrix needed to cluster the rotations therefore costs
only ``O(n log n)`` via the FFT autocorrelation (see
:func:`rotation_lag_profile`), keeping the per-query start-up cost at the
``O(n^2)`` the paper budgets for building wedges.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.batch import rotation_matrix
from repro.timeseries.ops import as_series

__all__ = [
    "RotationSet",
    "rotation_lag_profile",
    "cross_lag_profile",
    "shifts_for_max_angle",
]


def shifts_for_max_angle(n: int, max_degrees: float) -> list[int]:
    """Shift indices corresponding to rotations within ``±max_degrees``.

    A circular shift of ``k`` positions on a length-``n`` contour rotates the
    shape by ``360 k / n`` degrees.  Returns the sorted list of admissible
    shifts, always including 0.
    """
    if n < 1:
        raise ValueError(f"series length must be positive, got {n}")
    if max_degrees < 0:
        raise ValueError(f"max_degrees must be non-negative, got {max_degrees}")
    max_shift = int(math.floor(max_degrees * n / 360.0))
    max_shift = min(max_shift, n // 2)
    shifts = {0}
    for k in range(1, max_shift + 1):
        shifts.add(k)
        shifts.add((n - k) % n)
    return sorted(shifts)


def rotation_lag_profile(series) -> np.ndarray:
    """Euclidean distance between a series and each of its circular shifts.

    ``profile[lag] = ED(C, circular_shift(C, lag))``, computed for all lags
    at once via the FFT identity
    ``ED^2(lag) = 2 * sum(c^2) - 2 * autocorr(lag)``.
    """
    c = as_series(series)
    spectrum = np.fft.rfft(c)
    autocorr = np.fft.irfft(spectrum * np.conj(spectrum), n=c.size)
    energy = 2.0 * float(np.dot(c, c))
    sq = energy - 2.0 * autocorr
    return _safe_sqrt(sq, scale=energy)


def cross_lag_profile(series_a, series_b) -> np.ndarray:
    """``profile[lag] = ED(A, circular_shift(B, lag))`` for all lags via FFT."""
    a = as_series(series_a)
    b = as_series(series_b)
    if a.size != b.size:
        raise ValueError(f"length mismatch: {a.size} vs {b.size}")
    fa = np.fft.rfft(a)
    fb = np.fft.rfft(b)
    # Cross-correlation theorem: ifft(conj(FA) * FB)[lag] = sum_t a_t b_{t+lag}.
    cross = np.fft.irfft(np.conj(fa) * fb, n=a.size)
    energy = float(np.dot(a, a)) + float(np.dot(b, b))
    sq = energy - 2.0 * cross
    return _safe_sqrt(sq, scale=energy)


def _safe_sqrt(sq: np.ndarray, scale: float) -> np.ndarray:
    """Square root that flushes FFT round-off residue to exact zero.

    The lag-profile identities subtract two numbers of magnitude ``scale``;
    the result carries absolute error of order ``scale * 1e-15``, which a
    bare ``sqrt`` would inflate to a spurious ~1e-7 distance at lag 0.
    """
    floor = max(scale, 1.0) * 1e-12
    sq = np.where(sq < floor, 0.0, sq)
    return np.sqrt(sq)


@dataclass(frozen=True)
class RotationSet:
    """The candidate rotations of one query series.

    Attributes
    ----------
    series:
        The original (unrotated) series.
    rotations:
        ``(k, n)`` matrix; row ``t`` is the candidate alignment ``t``.
    shifts:
        ``shifts[t]`` is the circular shift of row ``t``.
    mirrored:
        ``mirrored[t]`` is True when row ``t`` comes from the reversed series.
    """

    series: np.ndarray
    rotations: np.ndarray
    shifts: tuple[int, ...]
    mirrored: tuple[bool, ...]

    @classmethod
    def full(
        cls,
        series,
        mirror: bool = False,
        max_degrees: float | None = None,
    ) -> "RotationSet":
        """Build the rotation set of Section 3.

        Parameters
        ----------
        series:
            The query series ``C``.
        mirror:
            Also include every rotation of ``reverse(C)`` (enantiomorphic
            invariance).
        max_degrees:
            If given, keep only rotations within ``±max_degrees``
            (rotation-limited queries); ``None`` keeps all ``n``.
        """
        c = as_series(series)
        n = c.size
        if max_degrees is None:
            shifts = list(range(n))
            # Zero-copy: all n rotations as one strided view (O(n) memory).
            matrix = rotation_matrix(c)
        else:
            shifts = shifts_for_max_angle(n, max_degrees)
            matrix = rotation_matrix(c)[shifts]
        mirrored = [False] * len(shifts)
        all_shifts = list(shifts)
        if mirror:
            matrix = np.vstack([matrix, rotation_matrix(c[::-1].copy())[shifts]])
            mirrored.extend([True] * len(shifts))
            all_shifts.extend(shifts)
        return cls(
            series=c,
            rotations=matrix,
            shifts=tuple(all_shifts),
            mirrored=tuple(mirrored),
        )

    def __len__(self) -> int:
        return self.rotations.shape[0]

    @property
    def length(self) -> int:
        """Length ``n`` of each series."""
        return self.rotations.shape[1]

    def describe(self, index: int) -> str:
        """Human-readable description of candidate ``index``."""
        base = f"shift={self.shifts[index]}"
        if self.mirrored[index]:
            base += " (mirrored)"
        return base

    def distance_matrix(self) -> np.ndarray:
        """Pairwise Euclidean distances between all candidate rotations.

        Exploits the lag structure: distances between two plain rotations
        (or two mirrored rotations) depend only on their shift difference,
        and plain-vs-mirrored distances depend only on the shift difference
        into the cross profile.  Total cost is ``O(n log n + k^2)`` instead
        of ``O(k^2 n)``.
        """
        n = self.series.size
        same = rotation_lag_profile(self.series)
        shifts = np.asarray(self.shifts)
        mirrored = np.asarray(self.mirrored)
        lag = (shifts[np.newaxis, :] - shifts[:, np.newaxis]) % n
        matrix = same[lag]
        if mirrored.any():
            # Distance between rotation i of C and rotation j of reverse(C)
            # depends only on (shift_j - shift_i) mod n; the transposed block
            # uses the negated lag.  (Mirrored-vs-mirrored pairs reuse the
            # plain profile, since reversing both series preserves lags.)
            cross = cross_lag_profile(self.series, self.series[::-1].copy())
            plain_row = ~mirrored[:, np.newaxis] & mirrored[np.newaxis, :]
            mirror_row = mirrored[:, np.newaxis] & ~mirrored[np.newaxis, :]
            matrix = np.where(plain_row, cross[lag], matrix)
            matrix = np.where(mirror_row, cross[(-lag) % n], matrix)
        return matrix
