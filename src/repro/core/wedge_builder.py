"""Building hierarchical wedge trees from a query's rotation set.

Section 4.1 of the paper observes that a good wedge set merges only similar
sequences, and that "hierarchal clustering algorithms have very similar
goals to an ideal wedge-producing algorithm": the area of a wedge is driven
by the maximum distance between the sequences inside it.  The paper
therefore derives its wedge sets from a **group-average-linkage**
hierarchical clustering of the candidate rotations (Figures 9-10).

:class:`WedgeTree` materialises that construction once per query:

* the pairwise distances between rotations come from the ``O(n log n)``
  lag profile (see :mod:`repro.core.rotation`);
* the clustering runs nearest-neighbour-chain agglomeration;
* every internal dendrogram node becomes a merged :class:`Wedge`;
* :meth:`WedgeTree.frontier` cuts the tree into the wedge set of any size
  ``K`` in ``[1, n]`` -- exactly the family of Figure 10.

The start-up cost charged to the step counter is ``n`` per envelope merge
(``~n^2`` total), the ``O(n^2)`` budget the paper reports for building
wedges.

A cheaper ``method="contiguous"`` is offered as an engineering alternative
for very long series: it builds a balanced merge tree over the circular
rotation order (adjacent rotations are the most similar by construction)
and skips the clustering entirely.
"""

from __future__ import annotations

import numpy as np

from repro.clustering.linkage import linkage
from repro.core.counters import StepCounter
from repro.core.rotation import RotationSet
from repro.core.wedge import Wedge

__all__ = ["WedgeTree", "build_wedge_tree", "wedge_tree_from_series"]


class WedgeTree:
    """A hierarchy of wedges over the candidate rotations of one query."""

    def __init__(self, root: Wedge, leaf_count: int):
        self.root = root
        self.leaf_count = leaf_count
        # Split order: repeatedly splitting the frontier wedge with the
        # greatest merge height realises the dendrogram cut at every K.
        self._split_sequence = self._plan_splits(root, leaf_count)
        self._frontier_cache: dict[int, list[Wedge]] = {}

    @staticmethod
    def _plan_splits(root: Wedge, leaf_count: int) -> list[Wedge]:
        order: list[Wedge] = []
        frontier: list[tuple[float, int, Wedge]] = []
        counter = 0

        import heapq

        def push(w: Wedge) -> None:
            nonlocal counter
            if not w.is_leaf:
                heapq.heappush(frontier, (-w.height, counter, w))
                counter += 1

        push(root)
        while frontier:
            _, _, w = heapq.heappop(frontier)
            order.append(w)
            for child in w.children:
                push(child)
        return order

    @property
    def max_k(self) -> int:
        """Largest usable wedge-set size (the number of leaves)."""
        return self.leaf_count

    def frontier(self, k: int) -> list[Wedge]:
        """The wedge set **W** of size ``k`` (Figure 10).

        ``k=1`` is the single all-enclosing wedge; ``k = max_k`` is every
        candidate sequence individually.
        """
        if not 1 <= k <= self.leaf_count:
            raise ValueError(f"k must be in [1, {self.leaf_count}], got {k}")
        cached = self._frontier_cache.get(k)
        if cached is not None:
            return list(cached)
        frontier = {id(self.root): self.root}
        for w in self._split_sequence[: k - 1]:
            del frontier[id(w)]
            for child in w.children:
                frontier[id(child)] = child
        result = list(frontier.values())
        self._frontier_cache[k] = result
        return list(result)

    def iter_nodes(self):
        """Depth-first iteration over every wedge in the tree."""
        stack = [self.root]
        while stack:
            w = stack.pop()
            yield w
            stack.extend(w.children)


def build_wedge_tree(
    rotation_set: RotationSet,
    method: str = "average",
    counter: StepCounter | None = None,
) -> WedgeTree:
    """Build the hierarchical wedge tree for a query's rotation set.

    Parameters
    ----------
    rotation_set:
        The candidate rotations (possibly mirrored / rotation-limited).
    method:
        ``"average"`` (the paper's choice), ``"single"``, or ``"complete"``
        linkage; or ``"contiguous"`` for the clustering-free balanced tree.
    counter:
        Optional step counter; charged ``n`` steps per envelope merge, the
        paper's O(n^2) wedge-building budget.
    """
    rotations = rotation_set.rotations
    k, n = rotations.shape
    leaves = [Wedge.from_series(rotations[i], i) for i in range(k)]
    if k == 1:
        return WedgeTree(leaves[0], 1)

    if method == "contiguous":
        root = _balanced_merge(leaves, counter)
        return WedgeTree(root, k)

    merges = linkage(rotation_set.distance_matrix(), method=method)
    nodes: dict[int, Wedge] = {i: leaf for i, leaf in enumerate(leaves)}
    for t, merge in enumerate(merges):
        left = nodes.pop(merge.left)
        right = nodes.pop(merge.right)
        nodes[k + t] = Wedge.merge(left, right, height=merge.height)
        if counter is not None:
            counter.add(n)
    (root,) = [nodes[k + len(merges) - 1]]
    return WedgeTree(root, k)


def wedge_tree_from_series(
    series_matrix,
    method: str = "average",
    counter: StepCounter | None = None,
) -> WedgeTree:
    """Build a wedge tree over an *arbitrary* set of equal-length series.

    The rotation-invariant search clusters the rotations of one query; the
    streaming filter of Wei et al. [40] (and any multi-pattern matcher)
    clusters a set of unrelated patterns instead.  Same hierarchy, same
    H-Merge -- only the distance matrix differs: here it is the plain
    pairwise Euclidean matrix, computed directly.
    """
    rows = np.asarray(series_matrix, dtype=np.float64)
    if rows.ndim != 2 or rows.shape[0] == 0:
        raise ValueError(f"expected a non-empty (k, n) matrix, got shape {rows.shape}")
    k, n = rows.shape
    leaves = [Wedge.from_series(rows[i], i) for i in range(k)]
    if k == 1:
        return WedgeTree(leaves[0], 1)
    if method == "contiguous":
        root = _balanced_merge(leaves, counter)
        return WedgeTree(root, k)
    diff = rows[:, np.newaxis, :] - rows[np.newaxis, :, :]
    matrix = np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))
    merges = linkage(matrix, method=method)
    nodes: dict[int, Wedge] = {i: leaf for i, leaf in enumerate(leaves)}
    for t, merge in enumerate(merges):
        left = nodes.pop(merge.left)
        right = nodes.pop(merge.right)
        nodes[k + t] = Wedge.merge(left, right, height=merge.height)
        if counter is not None:
            counter.add(n)
    return WedgeTree(nodes[k + len(merges) - 1], k)


def _balanced_merge(leaves: list[Wedge], counter: StepCounter | None) -> Wedge:
    """Balanced binary merge over the circular rotation order.

    Adjacent rotations differ by a single-sample shift and are typically the
    most similar pair available, so contiguous runs give tight wedges
    without any clustering.  Heights are set to the merge level so frontier
    cuts split the coarsest wedges first.
    """
    level = 1.0
    current = leaves
    n = leaves[0].length
    while len(current) > 1:
        merged = []
        for i in range(0, len(current) - 1, 2):
            merged.append(Wedge.merge(current[i], current[i + 1], height=level))
            if counter is not None:
                counter.add(n)
        if len(current) % 2:
            merged.append(current[-1])
        current = merged
        level += 1.0
    return current[0]
