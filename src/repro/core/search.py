"""Rotation-invariant nearest-neighbour search strategies.

This module assembles the paper's four competing search algorithms over a
database ``Q = {Q1 .. Qm}`` of series at arbitrary rotation (Figures 19-23):

* :func:`brute_force_search` -- Table 3 with early abandoning disabled:
  every rotation of the query is fully compared to every object.
* :func:`early_abandon_search` -- Tables 2+3: the same scan, but every
  distance computation abandons against the running best-so-far.
* :func:`fft_search` -- the Fourier-magnitude lower bound screens each
  object (at the paper's ``n log n`` step cost) before the early-abandoning
  rotation scan; Euclidean only, since coefficient magnitudes do not bound
  DTW.
* :func:`wedge_search` -- the paper's contribution: the query's rotations
  are clustered into a hierarchical wedge tree (O(n^2) start-up, charged),
  and every object is matched with H-Merge under a dynamically tuned
  wedge-set size K.

All four return a :class:`SearchResult` carrying the best match, its
aligning rotation, and the full step accounting, and all four are **exact**:
they always return the same nearest neighbour (Proposition 1/2 -- no false
dismissals).

For query *throughput* (many queries against one database),
:func:`search_many` chunks a batch of queries across a
:mod:`concurrent.futures` pool -- threads for Euclidean, whose batched
NumPy kernels (:mod:`repro.core.batch`) release the GIL, processes for the
CPU-bound DTW/LCSS dynamic programs -- returning per-query results with
the same exactness guarantee and step accounting as a sequential loop.
"""

from __future__ import annotations

import concurrent.futures
import math
import os
from dataclasses import dataclass, field
from time import perf_counter
from typing import Sequence

import numpy as np

from repro.core.cascade import CascadePolicy, empty_tier_stats
from repro.core.counters import StepCounter, fft_step_cost
from repro.core.hmerge import DynamicKPolicy, FixedKPolicy, h_merge
from repro.core.planner import Planner, QueryPlan, default_plan
from repro.core.rotation import RotationSet
from repro.core.wedge_builder import WedgeTree, build_wedge_tree
from repro.distances.base import Measure
from repro.distances.euclidean import EuclideanMeasure
from repro.obs.metrics import MetricsRegistry, record_query
from repro.obs.trace import NULL_TRACER

__all__ = [
    "SearchResult",
    "RotationQuery",
    "AnytimeResult",
    "brute_force_search",
    "early_abandon_search",
    "fft_search",
    "wedge_search",
    "auto_search",
    "anytime_wedge_search",
    "test_all_rotations",
    "search_many",
    "merge_counters",
    "merge_neighbors",
    "merge_range_hits",
]


@dataclass
class SearchResult:
    """Outcome of one nearest-neighbour query.

    Attributes
    ----------
    index:
        Position of the best match in the database (-1 when nothing beat the
        initial threshold).
    distance:
        The rotation-invariant distance to the best match.
    rotation:
        Which candidate rotation aligned best (an index into the query's
        :class:`~repro.core.rotation.RotationSet`).
    counter:
        Full step accounting for the query, start-up costs included.
    strategy:
        Which algorithm produced this result.
    tier_stats:
        Per-tier funnel and rejection counts from the pruning cascade
        (:meth:`repro.core.cascade.CascadePolicy.stats`).  Strategies that
        run no cascade report the zeroed
        :func:`~repro.core.cascade.empty_tier_stats` sentinel with the
        same key schema, so reporting code never branches on ``None``.
    plan:
        Canonical name of the :class:`~repro.core.planner.QueryPlan` that
        executed the query, or ``None`` when no explicit plan was involved
        (legacy toggle-driven calls).
    """

    index: int
    distance: float
    rotation: int
    counter: StepCounter = field(default_factory=StepCounter)
    strategy: str = ""
    tier_stats: dict = field(default_factory=empty_tier_stats)
    plan: str | None = None

    @property
    def found(self) -> bool:
        return self.index >= 0


class RotationQuery:
    """A query pre-processed for rotation-invariant matching.

    Bundles the rotation set (Section 3's matrix **C**, with optional mirror
    augmentation and rotation limiting) with the hierarchical wedge tree of
    Section 4.1.  The wedge tree is built lazily on first use so strategies
    that do not need wedges (brute force, FFT) pay nothing for it.
    """

    def __init__(
        self,
        series,
        mirror: bool = False,
        max_degrees: float | None = None,
        linkage_method: str = "average",
    ):
        self.rotation_set = RotationSet.full(series, mirror=mirror, max_degrees=max_degrees)
        self.linkage_method = linkage_method
        self._tree: WedgeTree | None = None
        self._signature_cache: dict[int | None, np.ndarray] = {}

    @property
    def length(self) -> int:
        return self.rotation_set.length

    @property
    def rotations(self) -> np.ndarray:
        return self.rotation_set.rotations

    def wedge_tree(self, counter: StepCounter | None = None) -> WedgeTree:
        """The hierarchical wedge tree, built (and charged) once."""
        if self._tree is None:
            self._tree = build_wedge_tree(
                self.rotation_set, method=self.linkage_method, counter=counter
            )
        return self._tree

    def signature(self, n_coefficients: int | None = None) -> np.ndarray:
        """Fourier magnitude signature (identical for every rotation)."""
        # Imported here: repro.index pulls in modules that themselves import
        # this one, so a top-level import would be circular.
        from repro.index.fourier import fourier_signature

        if n_coefficients not in self._signature_cache:
            self._signature_cache[n_coefficients] = fourier_signature(
                self.rotation_set.series, n_coefficients
            )
        return self._signature_cache[n_coefficients]


def _as_query(
    query,
    mirror: bool,
    max_degrees: float | None,
    linkage_method: str = "average",
) -> RotationQuery:
    if isinstance(query, RotationQuery):
        return query
    return RotationQuery(
        query, mirror=mirror, max_degrees=max_degrees, linkage_method=linkage_method
    )


def test_all_rotations(
    candidate,
    query: RotationQuery,
    measure: Measure,
    r: float = math.inf,
    counter: StepCounter | None = None,
    early_abandon: bool = True,
) -> tuple[float, int]:
    """The paper's ``Test_All_Rotations`` (Table 2).

    Scans every candidate rotation of ``query`` against ``candidate`` with a
    running best-so-far seeded at ``r``.  Returns ``(distance, rotation)``;
    the distance is ``math.inf`` when no rotation beat ``r``.
    """
    return measure.batch_min_distance(
        np.asarray(candidate, dtype=np.float64),
        query.rotations,
        r=r,
        counter=counter,
        early_abandon=early_abandon,
    )


def _observe_query(
    result: SearchResult,
    measure: Measure,
    wall_seconds: float,
    metrics,
    query_log,
    query_id,
    extra: dict | None = None,
) -> SearchResult:
    """Opt-in telemetry fan-out shared by every strategy.

    Records the finished query into a :class:`~repro.obs.metrics.MetricsRegistry`
    and/or appends one JSONL record to a
    :class:`~repro.obs.querylog.QueryLogger`.  Both sinks are post-hoc:
    nothing here runs inside the scan, so step accounting and answers are
    untouched.  Query-log records carry the resolved kernel backend name so
    runs remain attributable after the fact.
    """
    if metrics is not None:
        record_query(result, measure.name, wall_seconds, registry=metrics)
    if query_log is not None:
        query_log.log_result(
            result,
            measure=measure.name,
            wall_seconds=wall_seconds,
            query_id=query_id,
            backend=measure.backend_name,
            **(extra or {}),
        )
    return result


def brute_force_search(
    database: Sequence,
    query,
    measure: Measure,
    mirror: bool = False,
    max_degrees: float | None = None,
    *,
    tracer=None,
    metrics: MetricsRegistry | None = None,
    query_log=None,
    query_id=None,
    backend: str | None = None,
) -> SearchResult:
    """Exhaustive search with no pruning at all (the paper's "Brute force")."""
    tracer = NULL_TRACER if tracer is None else tracer
    if backend is not None:
        measure = measure.with_backend(backend)
    t0 = perf_counter()
    rq = _as_query(query, mirror, max_degrees)
    counter = StepCounter()
    best = math.inf
    best_index, best_rotation = -1, -1
    with tracer.span(
        "query", strategy="brute-force", measure=measure.name, backend=measure.backend_name
    ):
        for i, obj in enumerate(database):
            dist, rotation = test_all_rotations(
                obj, rq, measure, r=math.inf, counter=counter, early_abandon=False
            )
            if dist < best:
                best, best_index, best_rotation = dist, i, rotation
                if tracer.enabled:
                    tracer.event("best_so_far", index=i, distance=float(best))
    result = SearchResult(best_index, best, best_rotation, counter, "brute-force")
    return _observe_query(
        result, measure, perf_counter() - t0, metrics, query_log, query_id
    )


def early_abandon_search(
    database: Sequence,
    query,
    measure: Measure,
    mirror: bool = False,
    max_degrees: float | None = None,
    *,
    tracer=None,
    metrics: MetricsRegistry | None = None,
    query_log=None,
    query_id=None,
    backend: str | None = None,
) -> SearchResult:
    """Linear scan with early abandoning everywhere (the "Early abandon" line)."""
    tracer = NULL_TRACER if tracer is None else tracer
    if backend is not None:
        measure = measure.with_backend(backend)
    t0 = perf_counter()
    rq = _as_query(query, mirror, max_degrees)
    counter = StepCounter()
    best = math.inf
    best_index, best_rotation = -1, -1
    with tracer.span(
        "query", strategy="early-abandon", measure=measure.name, backend=measure.backend_name
    ):
        for i, obj in enumerate(database):
            dist, rotation = test_all_rotations(
                obj, rq, measure, r=best, counter=counter, early_abandon=True
            )
            if dist < best:
                best, best_index, best_rotation = dist, i, rotation
                if tracer.enabled:
                    tracer.event("best_so_far", index=i, distance=float(best))
    result = SearchResult(best_index, best, best_rotation, counter, "early-abandon")
    return _observe_query(
        result, measure, perf_counter() - t0, metrics, query_log, query_id
    )


def fft_search(
    database: Sequence,
    query,
    measure: Measure | None = None,
    mirror: bool = False,
    max_degrees: float | None = None,
    *,
    tracer=None,
    metrics: MetricsRegistry | None = None,
    query_log=None,
    query_id=None,
    backend: str | None = None,
) -> SearchResult:
    """Fourier-magnitude screening before the early-abandoning scan.

    Only valid for Euclidean distance: DFT magnitudes bound rotation-
    invariant ED, not DTW or LCSS.  Each screening test is charged the
    paper's ``n log n`` step cost.
    """
    if measure is None:
        measure = EuclideanMeasure()
    if measure.name != "euclidean":
        raise ValueError(
            "the Fourier magnitude bound only lower-bounds Euclidean distance; "
            f"got measure {measure.name!r}"
        )
    from repro.index.fourier import fourier_signature, signature_distance

    tracer = NULL_TRACER if tracer is None else tracer
    if backend is not None:
        measure = measure.with_backend(backend)
    t0 = perf_counter()
    rq = _as_query(query, mirror, max_degrees)
    counter = StepCounter()
    n = rq.length
    query_sig = rq.signature()
    best = math.inf
    best_index, best_rotation = -1, -1
    with tracer.span(
        "query", strategy="fft", measure=measure.name, backend=measure.backend_name
    ):
        for i, obj in enumerate(database):
            counter.lb_calls += 1
            counter.add(fft_step_cost(n))
            lb = signature_distance(query_sig, fourier_signature(obj))
            if lb >= best:
                counter.early_abandons += 1
                if tracer.enabled:
                    tracer.event("fft.screen", outcome="reject", index=i, bound=float(lb))
                continue
            dist, rotation = test_all_rotations(
                obj, rq, measure, r=best, counter=counter, early_abandon=True
            )
            if dist < best:
                best, best_index, best_rotation = dist, i, rotation
                if tracer.enabled:
                    tracer.event("best_so_far", index=i, distance=float(best))
    result = SearchResult(best_index, best, best_rotation, counter, "fft")
    return _observe_query(
        result, measure, perf_counter() - t0, metrics, query_log, query_id
    )


def wedge_search(
    database: Sequence,
    query,
    measure: Measure,
    mirror: bool = False,
    max_degrees: float | None = None,
    linkage_method: str = "average",
    k_policy: DynamicKPolicy | FixedKPolicy | None = None,
    order: str = "dfs",
    charge_setup: bool = True,
    use_kim: bool = False,
    use_improved: bool = True,
    batch_leaves: bool = True,
    plan: QueryPlan | None = None,
    tracer=None,
    metrics: MetricsRegistry | None = None,
    query_log=None,
    query_id=None,
    backend: str | None = None,
) -> SearchResult:
    """The paper's wedge-based search (Section 4.1).

    Builds the query's hierarchical wedge tree (charging the O(n^2)
    start-up unless ``charge_setup=False``), then scans the database with
    H-Merge.  The wedge-set size ``K`` follows ``k_policy`` -- by default
    the dynamic scheme that re-tunes K (by probing candidate values on the
    next object, probe cost included) every time the best-so-far improves.

    Every object runs through one shared
    :class:`~repro.core.cascade.CascadePolicy`: LB_Keogh against each
    frontier wedge, then (for DTW/LCSS with ``use_improved``) the two-pass
    LB_Improved tier, then the full distance; ``use_kim`` switches the
    O(1) Kim pre-tier on; ``batch_leaves`` evaluates runs of sibling
    leaves through the batched kernels.  The per-tier rejection counts are
    returned on ``SearchResult.tier_stats``.

    ``plan`` supersedes the individual cascade toggles: a
    :class:`~repro.core.planner.QueryPlan` pins the tier set *and order*,
    the batch/scalar leaf mode, and (when ``backend`` is not given) the
    kernel backend.  Any plan returns bit-identical answers -- the tiers
    are each admissible on their own -- and the plan's canonical name is
    stamped on the query span, the query-log record, and
    ``SearchResult.plan``.

    ``tracer``/``metrics``/``query_log`` are the opt-in observability
    hooks: the tracer receives the full span tree (wedge-tree build,
    H-Merge pops, cascade tiers, batch kernel calls), the registry and
    logger record the finished query.  With a query log attached the
    record additionally carries the K trajectory (the wedge-set size used
    per object, probes included) and the best-so-far radius trace.
    """
    tracer = NULL_TRACER if tracer is None else tracer
    if plan is not None:
        if backend is None:
            backend = plan.backend
        batch_leaves = plan.batch_leaves
    if backend is not None:
        measure = measure.with_backend(backend)
    t0 = perf_counter()
    rq = _as_query(query, mirror, max_degrees, linkage_method)
    counter = StepCounter()
    span_attrs = {"strategy": "wedge", "measure": measure.name, "backend": measure.backend_name}
    if plan is not None:
        span_attrs["plan"] = plan.name
    with tracer.span("query", **span_attrs):
        with tracer.span("wedge_tree.build") as build_span:
            tree = rq.wedge_tree(counter if charge_setup else None)
            build_span.set(max_k=tree.max_k, length=rq.length)
        policy = k_policy if k_policy is not None else DynamicKPolicy()
        pruner = CascadePolicy(
            measure,
            use_kim=use_kim,
            use_improved=use_improved,
            tracer=tracer,
            tiers=plan.tiers if plan is not None else None,
        )
        max_k = tree.max_k
        best = math.inf
        best_index, best_rotation = -1, -1
        probe_ks: list[int] = []
        trajectories = query_log is not None or tracer.enabled
        k_trajectory: list[int] = []
        radius_trace: list[float] = []
        for i, obj in enumerate(database):
            obj = np.asarray(obj, dtype=np.float64)
            if probe_ks:
                dist, rotation = math.inf, -1
                for k in probe_ks:
                    counter.checkpoint()
                    dist, rotation = h_merge(
                        obj,
                        tree.frontier(k),
                        measure,
                        r=best,
                        counter=counter,
                        order=order,
                        pruner=pruner,
                        batch_leaves=batch_leaves,
                        tracer=tracer,
                    )
                    policy.observe_probe(k, counter.since_checkpoint())
                    if trajectories:
                        k_trajectory.append(k)
                probe_ks = []
            else:
                k = policy.current_k(max_k)
                dist, rotation = h_merge(
                    obj,
                    tree.frontier(k),
                    measure,
                    r=best,
                    counter=counter,
                    order=order,
                    pruner=pruner,
                    batch_leaves=batch_leaves,
                    tracer=tracer,
                )
                if trajectories:
                    k_trajectory.append(k)
            if dist < best:
                best, best_index, best_rotation = dist, i, rotation
                probe_ks = policy.candidates_after_improvement(max_k)
                if trajectories:
                    radius_trace.append(float(best))
                if tracer.enabled:
                    tracer.event("best_so_far", index=i, distance=float(best))
    result = SearchResult(
        best_index,
        best,
        best_rotation,
        counter,
        "wedge",
        tier_stats=pruner.stats(),
        plan=plan.name if plan is not None else None,
    )
    extra = (
        {"k_trajectory": k_trajectory, "radius_trace": radius_trace}
        if query_log is not None
        else None
    )
    if extra is not None and plan is not None:
        extra["plan"] = plan.name
    return _observe_query(
        result, measure, perf_counter() - t0, metrics, query_log, query_id, extra
    )


def auto_search(
    database: Sequence,
    query,
    measure: Measure,
    mirror: bool = False,
    max_degrees: float | None = None,
    *,
    plan: QueryPlan | None = None,
    planner: Planner | None = None,
    tracer=None,
    metrics: MetricsRegistry | None = None,
    query_log=None,
    query_id=None,
    backend: str | None = None,
    **kwargs,
) -> SearchResult:
    """Planner-routed search (``strategy="auto"``).

    Resolution order for the plan: an explicit ``plan`` wins; otherwise a
    supplied ``planner`` selects one from its cost model (and the finished
    query's ``tier_stats`` are fed back into it); otherwise the measure's
    canonical default plan runs -- which is exactly the pre-planner
    behaviour.  Whatever the plan, the answer is bit-identical to every
    other plan's: the planner only ever trades work, never correctness.
    """
    if plan is None:
        plan = planner.plan() if planner is not None else default_plan(measure, backend=backend)
    if plan.strategy != "wedge":
        fn = _STRATEGIES[plan.strategy]
        return fn(
            database,
            query,
            measure,
            mirror=mirror,
            max_degrees=max_degrees,
            tracer=tracer,
            metrics=metrics,
            query_log=query_log,
            query_id=query_id,
            backend=backend if backend is not None else plan.backend,
            **kwargs,
        )
    t0 = perf_counter()
    result = wedge_search(
        database,
        query,
        measure,
        mirror=mirror,
        max_degrees=max_degrees,
        plan=plan,
        tracer=tracer,
        metrics=metrics,
        query_log=query_log,
        query_id=query_id,
        backend=backend,
        **kwargs,
    )
    if planner is not None:
        # Funnel counts drive the step model; the measured wall clock feeds
        # the latency tie-break (see Planner.observe).
        planner.observe(
            result.tier_stats, wall_seconds=perf_counter() - t0, plan=plan
        )
    return result


@dataclass
class AnytimeResult:
    """Outcome of a budgeted search: the best answer found so far.

    ``exact`` is True when the whole database was scanned within budget,
    in which case ``result`` carries the same guarantee as
    :func:`wedge_search`; otherwise it is the best over
    ``objects_scanned`` objects -- an anytime answer that only improves
    with budget.
    """

    result: SearchResult
    exact: bool
    objects_scanned: int


def anytime_wedge_search(
    database: Sequence,
    query,
    measure: Measure,
    step_budget: int,
    mirror: bool = False,
    max_degrees: float | None = None,
    order_by_signature: bool = True,
    wedge_set_size: int = 8,
    *,
    tracer=None,
    backend: str | None = None,
) -> AnytimeResult:
    """Wedge search under a hard step budget (anytime semantics).

    The scan stops once ``step_budget`` steps have been spent (the wedge
    build is charged first -- a budget below the O(n^2) start-up yields an
    empty answer).  With ``order_by_signature`` (Euclidean only), objects
    are visited in ascending Fourier-magnitude-bound order, so the most
    promising candidates are verified first and the early answer is
    typically already the true nearest neighbour.
    """
    if step_budget < 1:
        raise ValueError(f"step_budget must be positive, got {step_budget}")
    tracer = NULL_TRACER if tracer is None else tracer
    if backend is not None:
        measure = measure.with_backend(backend)
    rq = _as_query(query, mirror, max_degrees)
    counter = StepCounter()
    tree = rq.wedge_tree(counter)
    frontier = tree.frontier(min(wedge_set_size, tree.max_k))

    order = range(len(database))
    if order_by_signature and measure.name == "euclidean" and len(database):
        from repro.index.fourier import fourier_signature

        query_sig = rq.signature()
        bounds = []
        for obj in database:
            counter.add(fft_step_cost(rq.length))
            bounds.append(signature_gap(query_sig, obj))
        order = np.argsort(np.asarray(bounds), kind="stable")

    best = math.inf
    best_index, best_rotation = -1, -1
    scanned = 0
    with tracer.span(
        "query", strategy="anytime-wedge", measure=measure.name, backend=measure.backend_name
    ):
        for i in order:
            if counter.steps >= step_budget:
                if tracer.enabled:
                    tracer.event("budget_exhausted", steps=counter.steps, scanned=scanned)
                break
            obj = np.asarray(database[int(i)], dtype=np.float64)
            dist, rotation = h_merge(
                obj, frontier, measure, r=best, counter=counter, tracer=tracer
            )
            scanned += 1
            if dist < best:
                best, best_index, best_rotation = dist, int(i), rotation
    result = SearchResult(best_index, best, best_rotation, counter, "anytime-wedge")
    return AnytimeResult(result=result, exact=scanned == len(database), objects_scanned=scanned)


def signature_gap(query_signature: np.ndarray, candidate) -> float:
    """Fourier-magnitude bound between a precomputed signature and a raw series."""
    from repro.index.fourier import fourier_signature, signature_distance

    return signature_distance(query_signature, fourier_signature(candidate))


_STRATEGIES = {
    "brute-force": brute_force_search,
    "early-abandon": early_abandon_search,
    "fft": fft_search,
    "wedge": wedge_search,
    "auto": auto_search,
}

#: Measures whose distance kernels run Python-level dynamic programs and
#: therefore hold the GIL; these gain from process-based parallelism, while
#: Euclidean's NumPy kernels release the GIL and prefer cheap threads.
_CPU_BOUND_MEASURES = frozenset({"dtw", "lcss"})


def _search_chunk(args) -> tuple[list[SearchResult], MetricsRegistry | None]:
    """Pool worker: run one strategy over a contiguous chunk of queries.

    Module-level (not a closure) so :class:`~concurrent.futures.ProcessPoolExecutor`
    can pickle it.  Each query gets its own :class:`StepCounter` inside the
    strategy call, so chunk results carry independent, exact accounting.

    When ``record_metrics`` is set, the chunk runs against a private
    per-worker :class:`MetricsRegistry` that rides back with the results;
    the parent folds the worker registries together with
    :meth:`MetricsRegistry.merge` -- the same reduce shape as
    :func:`merge_counters` for step counts.  (File-backed sinks like
    :class:`~repro.obs.querylog.QueryLogger` stay parent-side: handles do
    not pickle.)

    ``backend`` is the kernel backend name the *parent* resolved at submit
    time.  It must ride along explicitly: a process worker re-imports
    :mod:`repro.kernels` from scratch, so re-running the resolution chain
    there could pick a different backend than the parent (e.g. a worker
    whose environment dropped ``REPRO_KERNEL_BACKEND`` silently reverting
    to auto-selection).  Re-pinning the measure on worker init keeps every
    chunk on the backend the caller chose.
    """
    strategy, database, queries, measure, kwargs, record_metrics, backend = args
    if backend is not None:
        measure = measure.with_backend(backend)
    fn = _STRATEGIES[strategy]
    registry = MetricsRegistry() if record_metrics else None
    results = [
        fn(database, query, measure, metrics=registry, **kwargs) for query in queries
    ]
    return results, registry


def merge_counters(results) -> StepCounter:
    """Fold per-query counters into one aggregate.

    Accepts an iterable of :class:`SearchResult` objects or of bare
    :class:`StepCounter` instances.  The merged counter reports exactly the
    work a sequential loop over the same queries would have reported --
    parallel execution changes wall clock, never the step bookkeeping.
    """
    merged = StepCounter()
    for item in results:
        merged.merge(item.counter if isinstance(item, SearchResult) else item)
    return merged


def merge_neighbors(neighbor_lists, k: int) -> list:
    """Exact global top-K merge of per-partition k-NN result lists.

    The k-NN analogue of :func:`merge_counters`: each partition (shard)
    contributes its own canonical top-k neighbours (any objects with
    ``distance``/``index``/ordering attributes work -- typically
    :class:`repro.mining.queries.Neighbor` with partition-offset-adjusted
    global indices), and the merge keeps the first ``k`` under the
    canonical ``(distance, index)`` order.  Because every member of the
    global top-k is a member of its own partition's top-k, merging partial
    lists of length ``min(k, partition size)`` is exact -- zero false
    dismissals -- and ties break identically to a single-process
    :func:`repro.mining.queries.knn_search` over the concatenated data.
    Partitions smaller than ``k`` (or empty) simply contribute what they
    have.
    """
    if k < 1:
        raise ValueError(f"k must be positive, got {k}")
    merged = sorted(
        (nb for partition in neighbor_lists for nb in partition),
        key=lambda nb: (nb.distance, nb.index),
    )
    return merged[:k]


def merge_range_hits(neighbor_lists) -> list:
    """Exact global merge of per-partition range-search hit lists.

    The range analogue of :func:`merge_neighbors`, and the **explicit
    contract** the sharded service's range path honours:

    * hits come back sorted by ascending global index (the same order a
      single-process :func:`repro.mining.queries.range_search` over the
      concatenated database reports);
    * each global index appears exactly once (partitions are normally
      disjoint, but duplicated indices across partitions are collapsed,
      keeping the smallest distance);
    * the merge is partition-invariant: any split of the database into
      shards -- including empty shards -- yields the identical hit list.

    Inclusion at exactly ``radius`` is decided shard-side by
    ``range_search``'s ``1e-12`` inclusive nudge; the merge never re-tests
    distances, so boundary hits survive sharding bit-for-bit.
    """
    by_index: dict = {}
    for partition in neighbor_lists:
        for nb in partition:
            held = by_index.get(nb.index)
            if held is None or nb.distance < held.distance:
                by_index[nb.index] = nb
    return [by_index[index] for index in sorted(by_index)]


def search_many(
    database: Sequence,
    queries: Sequence,
    measure: Measure,
    strategy: str = "wedge",
    n_jobs: int | None = None,
    executor: str | None = None,
    metrics: MetricsRegistry | None = None,
    query_log=None,
    backend: str | None = None,
    **strategy_kwargs,
) -> list[SearchResult]:
    """Answer many rotation-invariant 1-NN queries, optionally in parallel.

    Chunks ``queries`` across a :mod:`concurrent.futures` pool and runs the
    selected search strategy on each chunk.  Results come back in query
    order and are *identical* -- indices, distances, rotations, and full
    :class:`StepCounter` accounting -- to a sequential loop of the same
    strategy: queries are independent, so parallelism cannot introduce
    false dismissals.  Use :func:`merge_counters` for the aggregate cost.

    Parameters
    ----------
    database:
        The shared collection every query searches.
    queries:
        The query series (or pre-built :class:`RotationQuery` objects for
        the thread executor; process workers require picklable raw series).
    measure:
        The distance measure, shared by all workers (measures are
        stateless by contract).
    strategy:
        One of ``"wedge"``, ``"early-abandon"``, ``"fft"``,
        ``"brute-force"``, or ``"auto"`` (planner-routed).  For ``"auto"``
        the plan is resolved **once, parent-side** -- from an explicit
        ``plan`` kwarg, a ``planner`` kwarg, or the measure's default --
        and shipped to every pool worker, mirroring the backend
        propagation: a process worker must never re-plan on its own or
        chunks could run different plans.  A supplied ``planner`` stays
        parent-side and is fed every result's ``tier_stats`` after the
        pool drains.
    n_jobs:
        Pool size.  ``None`` or ``1`` runs sequentially in-process (still
        on the batched kernels); ``<= 0`` uses one worker per CPU.
    executor:
        ``"thread"``, ``"process"``, or ``None`` to choose automatically:
        processes for CPU-bound scalar dynamic programs (DTW, LCSS),
        threads for Euclidean, whose NumPy kernels release the GIL.
    metrics:
        Optional :class:`MetricsRegistry`.  Each pool worker records into
        a private registry; the parent merges them into this one after the
        pool drains, so counts equal a sequential run's (counters and
        histograms sum; merge order only affects gauges).
    query_log:
        Optional :class:`~repro.obs.querylog.QueryLogger`.  Records are
        written parent-side after results return (file handles do not
        cross process boundaries), one JSONL line per query in query
        order.
    backend:
        Kernel backend name for the distance kernels, or ``None`` to use
        the measure's own setting (then the env var / auto chain).  The
        parent resolves the effective backend once, before chunking, and
        pins every pool worker to it -- process workers re-import the
        kernel registry and would otherwise re-run the resolution chain
        themselves.
    **strategy_kwargs:
        Forwarded to the strategy (``mirror``, ``max_degrees``, ...).
        Do not pass a shared stateful ``k_policy`` instance when running
        in parallel; leave it ``None`` so each query builds its own.
    """
    if strategy not in _STRATEGIES:
        raise ValueError(f"unknown strategy {strategy!r}; choose from {sorted(_STRATEGIES)}")
    if executor not in (None, "thread", "process"):
        raise ValueError(f"unknown executor {executor!r}; choose 'thread' or 'process'")
    queries = list(queries)
    if not queries:
        return []
    if backend is not None:
        measure = measure.with_backend(backend)
    # Resolve the effective backend once, parent-side, so every worker --
    # thread or subprocess -- runs the same kernels the caller selected.
    backend_name = measure.backend_name if measure.uses_kernel_backends else None
    planner: Planner | None = None
    if strategy == "auto":
        # Resolve the plan once, parent-side, and ship the frozen picklable
        # QueryPlan to every worker -- the same rule as backend_name above.
        planner = strategy_kwargs.pop("planner", None)
        plan = strategy_kwargs.get("plan")
        if plan is None:
            plan = planner.plan() if planner is not None else default_plan(measure)
        if plan.backend is None and backend_name is not None:
            from dataclasses import replace

            plan = replace(plan, backend=backend_name)
        strategy_kwargs["plan"] = plan
    if n_jobs is not None and n_jobs <= 0:
        n_jobs = os.cpu_count() or 1
    jobs = min(n_jobs or 1, len(queries))
    record_metrics = metrics is not None
    if jobs <= 1:
        results, registry = _search_chunk(
            (strategy, database, queries, measure, strategy_kwargs, record_metrics, backend_name)
        )
        if registry is not None:
            metrics.merge(registry)
        if planner is not None:
            for result in results:
                planner.observe(result.tier_stats)
        _log_batch(results, measure, query_log)
        return results

    if executor is None:
        executor = "process" if measure.name in _CPU_BOUND_MEASURES else "thread"
    chunk_size = math.ceil(len(queries) / jobs)
    chunks = [queries[start : start + chunk_size] for start in range(0, len(queries), chunk_size)]
    pool_cls = (
        concurrent.futures.ProcessPoolExecutor
        if executor == "process"
        else concurrent.futures.ThreadPoolExecutor
    )
    results = []
    with pool_cls(max_workers=jobs) as pool:
        futures = [
            pool.submit(
                _search_chunk,
                (strategy, database, chunk, measure, strategy_kwargs, record_metrics, backend_name),
            )
            for chunk in chunks
        ]
        for future in futures:  # submission order == query order
            chunk_results, registry = future.result()
            results.extend(chunk_results)
            if registry is not None:
                metrics.merge(registry)
    if planner is not None:
        for result in results:
            planner.observe(result.tier_stats)
    _log_batch(results, measure, query_log)
    return results


def _log_batch(results: list[SearchResult], measure: Measure, query_log) -> None:
    """Append one JSONL record per batch result (parent-side, query order)."""
    if query_log is None:
        return
    backend = measure.backend_name
    for result in results:
        extra = {"plan": result.plan} if getattr(result, "plan", None) else {}
        query_log.log_result(
            result, measure=measure.name, wall_seconds=None, backend=backend, **extra
        )
