"""The paper's contribution: wedges, H-Merge, rotation-invariant search."""

from repro.core.batch import (
    BatchWorkspace,
    batch_ea_euclidean,
    batch_lb_keogh,
    rotation_matrix,
    running_scan,
    shared_workspace,
)
from repro.core.cascade import CascadePolicy, lb_kim
from repro.core.counters import StepCounter, fft_step_cost
from repro.core.hmerge import DynamicKPolicy, FixedKPolicy, h_merge
from repro.core.rotation import RotationSet, rotation_lag_profile, shifts_for_max_angle
from repro.core.search import (
    AnytimeResult,
    RotationQuery,
    SearchResult,
    brute_force_search,
    early_abandon_search,
    anytime_wedge_search,
    fft_search,
    merge_counters,
    search_many,
    test_all_rotations,
    wedge_search,
)
from repro.core.wedge import Wedge
from repro.core.wedge_builder import WedgeTree, build_wedge_tree

__all__ = [
    "CascadePolicy", "lb_kim", "AnytimeResult", "anytime_wedge_search",
    "StepCounter", "fft_step_cost", "DynamicKPolicy", "FixedKPolicy", "h_merge",
    "RotationSet", "rotation_lag_profile", "shifts_for_max_angle",
    "RotationQuery", "SearchResult", "brute_force_search", "early_abandon_search",
    "fft_search", "test_all_rotations", "wedge_search", "Wedge", "WedgeTree",
    "build_wedge_tree", "search_many", "merge_counters",
    "BatchWorkspace", "shared_workspace", "rotation_matrix",
    "batch_ea_euclidean", "batch_lb_keogh", "running_scan",
]
