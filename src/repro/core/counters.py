"""Step-count instrumentation (the paper's ``num_steps`` cost model).

Section 5.3 of the paper argues that comparing competing approaches with raw
CPU time invites implementation bias, and instead reports the number of
"steps" -- real-valued subtractions -- performed by each algorithm.  Every
distance function, lower bound, and search strategy in this library reports
the steps it performed so that the benchmark harness can regenerate the
paper's relative-performance figures (Figures 19-23) with the same
implementation-free metric.

The conventions, matching the paper:

* Euclidean distance over ``k`` processed points costs ``k`` steps (Table 1's
  ``num_steps``); early abandoning after ``k`` points costs exactly ``k``.
* ``LB_Keogh`` over ``k`` processed points costs ``k`` steps (Table 5).
* DTW costs one step per warping-matrix cell actually computed, which is at
  most ``n * (2R + 1)`` for a Sakoe-Chiba band of width ``R``.
* The FFT lower bound is charged ``n * log2(n)`` steps per comparison, the
  cost model stated in Section 5.3.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = ["StepCounter", "fft_step_cost"]


@dataclass
class StepCounter:
    """Mutable accumulator of algorithmic work.

    Attributes
    ----------
    steps:
        Total number of "steps" (real-valued subtractions) performed.
    distance_calls:
        How many full distance computations were started.
    lb_calls:
        How many lower-bound computations were started.
    early_abandons:
        How many computations were cut short by early abandoning.
    disk_accesses:
        How many full objects were fetched from (simulated) disk.
    envelope_cache_hits:
        How many measure-expanded envelopes were served from a wedge's
        memoized cache.
    envelope_cache_misses:
        How many measure-expanded envelopes had to be computed (and were
        then cached).
    """

    steps: int = 0
    distance_calls: int = 0
    lb_calls: int = 0
    early_abandons: int = 0
    disk_accesses: int = 0
    envelope_cache_hits: int = 0
    envelope_cache_misses: int = 0
    _checkpoints: list[int] = field(default_factory=list, repr=False)

    def add(self, n: int) -> None:
        """Record ``n`` additional steps."""
        self.steps += int(n)

    def merge(self, other: "StepCounter") -> None:
        """Fold the counts of ``other`` into this counter.

        Contract: ``other`` must be *settled* -- no pending checkpoints.
        Checkpoints are positions in ``other``'s private step history and
        are meaningless after its steps are folded into a different
        counter, so merging a counter mid-measurement is almost certainly
        a bug (the pending ``since_checkpoint`` would silently report
        garbage).  Raises :class:`ValueError` instead of dropping them.
        This counter's own checkpoints are unaffected: its step history
        keeps growing, so deltas against them stay well-defined.
        """
        if other._checkpoints:
            raise ValueError(
                f"cannot merge a counter with {len(other._checkpoints)} pending "
                "checkpoint(s); resolve them with since_checkpoint() first"
            )
        self.steps += other.steps
        self.distance_calls += other.distance_calls
        self.lb_calls += other.lb_calls
        self.early_abandons += other.early_abandons
        self.disk_accesses += other.disk_accesses
        self.envelope_cache_hits += other.envelope_cache_hits
        self.envelope_cache_misses += other.envelope_cache_misses

    def __iadd__(self, other: "StepCounter") -> "StepCounter":
        """``counter += other`` is :meth:`merge`; composes with fold loops."""
        self.merge(other)
        return self

    def __add__(self, other: "StepCounter") -> "StepCounter":
        """A new counter holding both operands' counts.

        Lets counters compose with ``sum(counters, StepCounter())``-style
        folds; both operands must satisfy the :meth:`merge` contract (no
        pending checkpoints).
        """
        if not isinstance(other, StepCounter):
            return NotImplemented
        if self._checkpoints:
            raise ValueError(
                f"cannot add a counter with {len(self._checkpoints)} pending checkpoint(s)"
            )
        merged = StepCounter()
        merged.merge(self)
        merged.merge(other)
        return merged

    def reset(self) -> None:
        """Zero every count."""
        self.steps = 0
        self.distance_calls = 0
        self.lb_calls = 0
        self.early_abandons = 0
        self.disk_accesses = 0
        self.envelope_cache_hits = 0
        self.envelope_cache_misses = 0
        self._checkpoints.clear()

    def checkpoint(self) -> None:
        """Remember the current step count (see :meth:`since_checkpoint`)."""
        self._checkpoints.append(self.steps)

    def since_checkpoint(self) -> int:
        """Steps performed since the most recent :meth:`checkpoint`.

        Pops the checkpoint, so nested checkpoint/since pairs behave like a
        stack.  Raises :class:`IndexError` when no checkpoint is pending.
        """
        return self.steps - self._checkpoints.pop()

    def snapshot(self) -> dict[str, int]:
        """Return the counts as a plain dictionary (for reports)."""
        return {
            "steps": self.steps,
            "distance_calls": self.distance_calls,
            "lb_calls": self.lb_calls,
            "early_abandons": self.early_abandons,
            "disk_accesses": self.disk_accesses,
            "envelope_cache_hits": self.envelope_cache_hits,
            "envelope_cache_misses": self.envelope_cache_misses,
        }


def fft_step_cost(n: int) -> int:
    """Step cost charged for one FFT lower-bound comparison.

    The paper states "The cost model for the FFT lower bound is nlogn steps"
    (Section 5.3).  We use ``ceil(n * log2(n))``, with a floor of ``n`` so a
    degenerate length-1 series still costs at least one step.
    """
    if n < 1:
        raise ValueError(f"series length must be positive, got {n}")
    if n == 1:
        return 1
    return max(n, math.ceil(n * math.log2(n)))
