"""The H-Merge search over hierarchical wedge sets (Table 6) and the
dynamic wedge-set-size policy of Section 4.1.

Given a candidate series and a wedge set ``W = {Wset(1) .. Wset(K)}`` built
from the query's rotations, :func:`h_merge` finds the distance from the
candidate to its best-matching rotation, pruning whole groups of rotations
whenever ``LB_Keogh(candidate, wedge)`` early-abandons against the running
threshold.  Descending from a pruned-but-not-abandoned wedge to its children
recovers exactness: leaf wedges degenerate to single rotations, where the
bound equals Euclidean distance (or where the true DTW/LCSS distance is
computed after a final, tighter bound check).

The paper tunes the wedge-set size ``K`` *during* the scan: "Each time the
bestSoFar value changes, we test a subset of the possible values of K and
choose the most efficient one (as measured by num_steps)".
:class:`DynamicKPolicy` reproduces that scheme, probe cost included.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.counters import StepCounter
from repro.core.wedge import Wedge
from repro.distances.base import Measure
from repro.obs.trace import NULL_TRACER

__all__ = ["h_merge", "DynamicKPolicy", "FixedKPolicy"]


def h_merge(
    candidate: np.ndarray,
    wedge_set: list[Wedge],
    measure: Measure,
    r: float = math.inf,
    counter: StepCounter | None = None,
    order: str = "dfs",
    pruner=None,
    batch_leaves: bool = True,
    tracer=None,
) -> tuple[float, int]:
    """Distance from ``candidate`` to the nearest sequence under the wedges.

    Parameters
    ----------
    candidate:
        The series being tested (a database object; the wedges enclose the
        query's rotations).
    wedge_set:
        The starting frontier ``W`` (any size ``K``); children are visited
        only when a wedge cannot be pruned.
    measure:
        Euclidean, DTW, or LCSS measure.
    r:
        Initial threshold (the search's best-so-far); rotations at distance
        ``>= r`` are of no interest.
    counter:
        Step accounting.
    order:
        ``"dfs"`` follows the paper's stack traversal; ``"best-first"``
        expands the wedge with the smallest lower bound first (an ablation).
    pruner:
        Optional :class:`~repro.core.cascade.CascadePolicy`.  When given,
        internal wedges go through its Kim tier, leaves through its full
        LB_Kim -> LB_Keogh -> LB_Improved -> distance cascade, and tier
        rejection counts accumulate on the policy.  ``None`` keeps the
        plain LB_Keogh-only traversal.
    batch_leaves:
        Evaluate runs of consecutive sibling leaves on the frontier through
        the measure's batched kernels (one vectorised bound pass, then full
        distances in best-bound order) instead of one scalar call per leaf.
        Answers are identical; only the evaluation order inside a run
        changes.
    tracer:
        A :class:`~repro.obs.trace.Tracer` receiving one event per frontier
        pop and a span per batched leaf run.  ``None`` (the default) uses
        the no-op null tracer; per-tier cascade events come from the
        ``pruner``'s own tracer.  Tracing never changes step accounting.

    Returns
    -------
    (distance, rotation_index):
        The best distance below ``r`` and the enclosed-sequence index that
        achieved it, or ``(math.inf, -1)`` when every rotation was pruned.
    """
    if order not in ("dfs", "best-first"):
        raise ValueError(f"unknown traversal order {order!r}")
    candidate = np.asarray(candidate, dtype=np.float64)
    tracer = NULL_TRACER if tracer is None else tracer
    if batch_leaves and pruner is not None and not getattr(pruner, "batch_compatible", True):
        # The batched run evaluator hardcodes the canonical Kim -> Keogh ->
        # Improved order; non-canonical plans fall back to the scalar
        # per-leaf cascade (identical answers, different step profile).
        batch_leaves = False
    best = float(r)
    best_idx = -1

    if order == "best-first":
        return _h_merge_best_first(candidate, wedge_set, measure, best, counter, pruner)

    stack: list[Wedge] = list(reversed(wedge_set))
    while stack:
        wedge = stack.pop()
        if wedge.is_leaf:
            run = [wedge]
            if batch_leaves:
                # The frontier often exposes whole sibling groups of leaves
                # at once; drain the contiguous run and evaluate it in one
                # batched pass.
                while stack and stack[-1].is_leaf:
                    run.append(stack.pop())
            if len(run) == 1:
                dist = _leaf_distance(candidate, wedge, measure, best, counter, pruner)
                if dist < best:
                    best = dist
                    best_idx = wedge.indices[0]
            else:
                if tracer.enabled:
                    with tracer.span("hmerge.leaf_run", size=len(run)):
                        best, best_idx = _evaluate_leaf_run(
                            candidate, run, measure, best, best_idx, counter, pruner, tracer
                        )
                else:
                    best, best_idx = _evaluate_leaf_run(
                        candidate, run, measure, best, best_idx, counter, pruner, tracer
                    )
            continue
        if pruner is not None:
            lb = pruner.wedge_bound(candidate, wedge, best, counter)
        else:
            upper, lower = wedge.envelope_for(measure, counter=counter)
            lb = measure.lower_bound(candidate, upper, lower, best, counter=counter)
        if tracer.enabled:
            tracer.event(
                "hmerge.pop",
                cardinality=wedge.cardinality,
                bound=float(lb),
                pruned=bool(lb >= best),
            )
        if lb >= best:
            continue  # early-abandoned (inf) or provably no better than best
        stack.extend(reversed(wedge.children))
    if best_idx < 0:
        return math.inf, -1
    return best, best_idx


def _leaf_distance(
    candidate: np.ndarray,
    leaf: Wedge,
    measure: Measure,
    threshold: float,
    counter: StepCounter | None,
    pruner,
) -> float:
    """Scalar cascade for a single frontier leaf."""
    if pruner is not None:
        return pruner.leaf_distance(candidate, leaf, threshold, counter)
    upper, lower = leaf.envelope_for(measure, counter=counter)
    lb = measure.lower_bound(candidate, upper, lower, threshold, counter=counter)
    if lb >= threshold:
        return math.inf
    if measure.lb_exact_for_singleton:
        return lb
    return measure.distance(candidate, leaf.series, threshold, counter=counter)


def _evaluate_leaf_run(
    candidate: np.ndarray,
    run: list[Wedge],
    measure: Measure,
    best: float,
    best_idx: int,
    counter: StepCounter | None,
    pruner,
    tracer=NULL_TRACER,
) -> tuple[float, int]:
    """Batched frontier evaluation of a run of sibling leaves.

    One vectorised lower-bound pass (LB_Keogh, tightened by LB_Improved
    when the measure supports it) over the whole run, then full distances
    over the survivors in best-bound order -- the tightest candidates
    shrink the threshold first, so later survivors abandon sooner.  The
    entering threshold of the bound pass is the fixed ``best`` (looser
    than the strictly sequential scan would use), so no leaf the scalar
    path would keep is ever dropped: answers are identical.
    """
    leaves = run
    if pruner is not None:
        pruner.leaf_candidates += len(run)
    if pruner is not None and pruner.use_kim:
        kept = []
        for leaf in leaves:
            upper, lower = leaf.envelope_for(measure, counter=counter)
            kim = pruner._kim(candidate, leaf, upper, lower, counter)
            if kim >= best:
                pruner.kim_rejections += 1
                if tracer.enabled:
                    tracer.event("cascade.kim", outcome="reject", kind="leaf", bound=float(kim))
            else:
                kept.append(leaf)
        leaves = kept
        if not leaves:
            return best, best_idx
    if pruner is not None:
        pruner.keogh_reached += len(leaves)

    if measure.lb_exact_for_singleton:
        # Euclidean: the leaf bound IS the distance; one running scan with
        # the cumulative-minimum threshold discipline gives bit-identical
        # sequential step accounting.
        rows = np.stack([leaf.series for leaf in leaves])
        abandons_before = counter.early_abandons if counter is not None else 0
        with tracer.span("batch.min_distance", rows=len(leaves), backend=measure.backend_name):
            dist, j = measure.batch_min_distance(candidate, rows, r=best, counter=counter)
        if pruner is not None and counter is not None:
            pruner.keogh_rejections += counter.early_abandons - abandons_before
        if dist < best:
            return dist, leaves[j].indices[0]
        return best, best_idx

    envelopes = [leaf.envelope_for(measure, counter=counter) for leaf in leaves]
    uppers = np.stack([env[0] for env in envelopes])
    lowers = np.stack([env[1] for env in envelopes])
    raw = np.stack([leaf.series for leaf in leaves])
    use_improved = pruner.use_improved if pruner is not None else True
    with tracer.span("batch.wedge_bounds", rows=len(leaves), backend=measure.backend_name):
        bounds = measure.batch_wedge_bounds(
            candidate,
            uppers,
            lowers,
            raw,
            raw,
            r=best,
            counter=counter,
            use_improved=use_improved,
        )
    if pruner is not None:
        finite = np.isfinite(bounds)
        pruner.keogh_rejections += int((~finite).sum())
        rejected = int((finite & (bounds >= best)).sum())
        if use_improved and measure.has_improved_bound and math.isfinite(best):
            # Finite bounds survived the LB_Keogh pass and entered the
            # LB_Improved stage; rows abandoned in pass 1 came back inf.
            pruner.improved_reached += int(finite.sum())
            pruner.improved_rejections += rejected
        else:
            # No improved tier ran: only the survivors proceed past Keogh.
            pruner.improved_reached += int((bounds < best).sum())
            pruner.keogh_rejections += rejected
    surviving = np.flatnonzero(bounds < best)
    if surviving.size == 0:
        return best, best_idx
    by_bound = surviving[np.argsort(bounds[surviving], kind="stable")]
    if pruner is not None:
        pruner.full_computations += int(by_bound.size)
    rows = raw[by_bound]
    with tracer.span("batch.min_distance", rows=int(by_bound.size), backend=measure.backend_name):
        dist, j = measure.batch_min_distance(candidate, rows, r=best, counter=counter)
    if dist < best:
        return dist, leaves[int(by_bound[j])].indices[0]
    return best, best_idx


def _h_merge_best_first(
    candidate: np.ndarray,
    wedge_set: list[Wedge],
    measure: Measure,
    best: float,
    counter: StepCounter | None,
    pruner=None,
) -> tuple[float, int]:
    """Priority-queue variant: always expand the most promising wedge."""
    import heapq

    def bound(wedge: Wedge, threshold: float) -> float:
        if pruner is not None:
            return pruner.wedge_bound(candidate, wedge, threshold, counter)
        upper, lower = wedge.envelope_for(measure, counter=counter)
        return measure.lower_bound(candidate, upper, lower, threshold, counter=counter)

    tie = 0
    heap: list[tuple[float, int, Wedge]] = []
    for wedge in wedge_set:
        lb = bound(wedge, best)
        if lb < best:
            heapq.heappush(heap, (lb, tie, wedge))
            tie += 1
    best_idx = -1
    while heap:
        lb, _, wedge = heapq.heappop(heap)
        if lb >= best:
            break  # all remaining bounds are at least this large
        if wedge.is_leaf:
            if measure.lb_exact_for_singleton:
                dist = lb
            elif pruner is not None:
                dist = pruner.leaf_distance(candidate, wedge, best, counter)
            else:
                dist = measure.distance(candidate, wedge.series, best, counter=counter)
            if dist < best:
                best = dist
                best_idx = wedge.indices[0]
        else:
            for child in wedge.children:
                child_lb = bound(child, best)
                if child_lb < best:
                    heapq.heappush(heap, (child_lb, tie, child))
                    tie += 1
    if best_idx < 0:
        return math.inf, -1
    return best, best_idx


class FixedKPolicy:
    """Always search from the same wedge-set size ``K`` (ablation baseline)."""

    def __init__(self, k: int):
        if k < 1:
            raise ValueError(f"K must be positive, got {k}")
        self.k = k

    def current_k(self, max_k: int) -> int:
        """The configured K, clamped to the tree's leaf count."""
        return min(self.k, max_k)

    def candidates_after_improvement(self, max_k: int) -> list[int]:
        """Fixed policies never probe."""
        return []

    def observe_probe(self, k: int, steps: int) -> None:  # pragma: no cover
        """No-op: fixed policies ignore probe measurements."""


class DynamicKPolicy:
    """The paper's adaptive wedge-set-size scheme (end of Section 4.1).

    Starts at ``K = 2``.  Whenever the best-so-far improves, the next
    database object is probed with the candidate values of ``K`` that evenly
    divide ``[1, K]`` and ``[K, max_K]`` into ``intervals`` parts; the value
    with the fewest ``num_steps`` becomes the new ``K``.  The paper reports
    the scheme is insensitive to ``intervals`` anywhere in 3..20.
    """

    def __init__(self, intervals: int = 5, initial_k: int = 2):
        if intervals < 2:
            raise ValueError(f"intervals must be at least 2, got {intervals}")
        self.intervals = intervals
        self.initial_k = initial_k
        self._k: int | None = None
        self._probe_results: dict[int, int] = {}

    def current_k(self, max_k: int) -> int:
        """The currently adopted K (initially 2), clamped to ``max_k``."""
        if self._k is None:
            self._k = min(self.initial_k, max_k)
        return min(self._k, max_k)

    def candidates_after_improvement(self, max_k: int) -> list[int]:
        """Candidate K values to probe on the next object."""
        k = self.current_k(max_k)
        lows = np.linspace(1, k, self.intervals + 1)
        highs = np.linspace(k, max_k, self.intervals + 1)
        candidates = sorted({int(round(v)) for v in np.concatenate([lows, highs])})
        self._probe_results.clear()
        return [c for c in candidates if 1 <= c <= max_k]

    def observe_probe(self, k: int, steps: int) -> None:
        """Record the measured cost of one probe and adopt the best K."""
        self._probe_results[k] = steps
        self._k = min(self._probe_results, key=self._probe_results.get)
