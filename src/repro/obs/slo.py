"""Rolling SLO engine: sliding-window latency/error/throughput stats.

The service-level view of the paper's exactness story: answers are
provably exact (zero false dismissals), so the remaining questions are
operational -- *how fast*, *how often wrong at the transport layer*, and
*is it getting worse right now*.  :class:`SloEngine` answers those with
sliding windows (10s / 1m / 5m by default), each a ring of time slots
holding a fixed log-bucket latency histogram plus counters for errors,
cache hits, and arbitrary named events (restarts, deadline misses).

Design notes:

- **Log-bucket quantiles.**  Latencies land in geometric buckets
  (``DEFAULT_LATENCY_BOUNDS``: ~0.1ms to ~300s, x sqrt(2) per step), and
  p50/p95/p99 are read back with linear interpolation inside the winning
  bucket.  Relative error is bounded by the bucket ratio (~41%
  worst-case, far less in practice) and the sketch is O(1) per record
  and mergeable bucket-by-bucket -- the same shape as
  ``MetricsRegistry.merge`` so multi-process snapshots fold together.
- **Absolute slot ids.**  Each window of ``seconds`` is ``slots`` ring
  entries keyed by ``int(now / slot_span)``; stale entries are lazily
  evicted on record/snapshot.  No background thread, no timers.
- **Alerts.**  :class:`SloThresholds` declares burn conditions on one
  window; :meth:`SloEngine.alerts` evaluates them from the current
  snapshot so ``health`` responses can surface SLO burn without extra
  plumbing.

Everything here is observation-only: the engine never touches search
state or step counters, so answers are bit-identical with it on or off.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

__all__ = [
    "DEFAULT_LATENCY_BOUNDS",
    "DEFAULT_WINDOWS",
    "SloThresholds",
    "SlidingWindow",
    "SloEngine",
    "quantile_from_buckets",
]

#: Geometric latency bucket upper bounds in seconds: 0.1ms .. ~300s,
#: multiplying by sqrt(2) each step (44 buckets + overflow).
DEFAULT_LATENCY_BOUNDS: tuple[float, ...] = tuple(1e-4 * 2 ** (i / 2.0) for i in range(44))

#: Window name -> span in seconds.
DEFAULT_WINDOWS: dict[str, float] = {"10s": 10.0, "1m": 60.0, "5m": 300.0}


def quantile_from_buckets(bounds: tuple[float, ...], counts: list[int], q: float) -> float:
    """Estimate the ``q``-quantile (0..1) from a log-bucket histogram.

    ``counts`` has ``len(bounds) + 1`` entries (the last is overflow).
    Linear interpolation within the winning bucket; the overflow bucket
    reports its lower bound (we cannot know how far past it values went).
    Returns 0.0 on an empty histogram.
    """
    total = sum(counts)
    if total == 0:
        return 0.0
    rank = q * total
    seen = 0.0
    for i, count in enumerate(counts):
        if count == 0:
            continue
        if seen + count >= rank:
            lo = bounds[i - 1] if i > 0 else 0.0
            if i >= len(bounds):  # overflow bucket
                return bounds[-1]
            hi = bounds[i]
            frac = (rank - seen) / count
            return lo + (hi - lo) * min(max(frac, 0.0), 1.0)
        seen += count
    return bounds[-1]


class _Slot:
    """One time slot of a sliding window: histogram + counters."""

    __slots__ = ("sid", "counts", "total", "errors", "cache_hits", "events")

    def __init__(self, sid: int, n_buckets: int):
        self.sid = sid
        self.counts = [0] * n_buckets
        self.total = 0
        self.errors = 0
        self.cache_hits = 0
        self.events: dict[str, int] = {}


class SlidingWindow:
    """A ring of time slots covering the trailing ``seconds``.

    Not thread-safe on its own; :class:`SloEngine` serialises access.
    """

    def __init__(self, seconds: float, slots: int = 10, bounds: tuple[float, ...] = DEFAULT_LATENCY_BOUNDS):
        if seconds <= 0 or slots < 1:
            raise ValueError(f"window needs positive seconds/slots, got {seconds}/{slots}")
        self.seconds = float(seconds)
        self.slots = slots
        self.bounds = bounds
        self.slot_span = self.seconds / slots
        self._ring: dict[int, _Slot] = {}

    def _slot(self, now: float) -> _Slot:
        sid = int(now / self.slot_span)
        slot = self._ring.get(sid)
        if slot is None:
            slot = _Slot(sid, len(self.bounds) + 1)
            self._ring[sid] = slot
            self._prune(sid)
        return slot

    def _prune(self, current_sid: int) -> None:
        oldest = current_sid - self.slots + 1
        for sid in [s for s in self._ring if s < oldest]:
            del self._ring[sid]

    def _bucket(self, value: float) -> int:
        # Binary search over the geometric bounds.
        lo, hi = 0, len(self.bounds)
        while lo < hi:
            mid = (lo + hi) // 2
            if value <= self.bounds[mid]:
                hi = mid
            else:
                lo = mid + 1
        return lo

    def record(self, latency_seconds: float, now: float, *, error: bool = False, cached: bool = False) -> None:
        slot = self._slot(now)
        slot.counts[self._bucket(latency_seconds)] += 1
        slot.total += 1
        if error:
            slot.errors += 1
        if cached:
            slot.cache_hits += 1

    def record_event(self, name: str, n: int, now: float) -> None:
        slot = self._slot(now)
        slot.events[name] = slot.events.get(name, 0) + n

    def merge(self, other: "SlidingWindow") -> None:
        """Fold another window's live slots in (same bounds/slot span)."""
        for sid, slot in other._ring.items():
            mine = self._ring.get(sid)
            if mine is None:
                mine = _Slot(sid, len(self.bounds) + 1)
                self._ring[sid] = mine
            for i, c in enumerate(slot.counts):
                mine.counts[i] += c
            mine.total += slot.total
            mine.errors += slot.errors
            mine.cache_hits += slot.cache_hits
            for name, n in slot.events.items():
                mine.events[name] = mine.events.get(name, 0) + n

    def snapshot(self, now: float) -> dict:
        """Aggregate live slots into one stats dict."""
        current_sid = int(now / self.slot_span)
        self._prune(current_sid)
        counts = [0] * (len(self.bounds) + 1)
        total = errors = cache_hits = 0
        events: dict[str, int] = {}
        for slot in self._ring.values():
            if slot.sid > current_sid:
                continue
            for i, c in enumerate(slot.counts):
                counts[i] += c
            total += slot.total
            errors += slot.errors
            cache_hits += slot.cache_hits
            for name, n in slot.events.items():
                events[name] = events.get(name, 0) + n
        return {
            "count": total,
            "qps": total / self.seconds,
            "p50_ms": quantile_from_buckets(self.bounds, counts, 0.50) * 1e3,
            "p95_ms": quantile_from_buckets(self.bounds, counts, 0.95) * 1e3,
            "p99_ms": quantile_from_buckets(self.bounds, counts, 0.99) * 1e3,
            "errors": errors,
            "error_rate": errors / total if total else 0.0,
            "cache_hits": cache_hits,
            "cache_hit_ratio": cache_hits / total if total else 0.0,
            "events": events,
        }


@dataclass(frozen=True)
class SloThresholds:
    """Burn conditions evaluated against one window's snapshot.

    ``None`` disables a condition.  Latency thresholds are milliseconds;
    ``error_rate`` is a fraction (0..1).
    """

    window: str = "1m"
    p50_ms: float | None = None
    p95_ms: float | None = None
    p99_ms: float | None = None
    error_rate: float | None = None

    def evaluate(self, stats: dict) -> list[dict]:
        alerts = []
        for slo in ("p50_ms", "p95_ms", "p99_ms", "error_rate"):
            threshold = getattr(self, slo)
            if threshold is None or stats.get("count", 0) == 0:
                continue
            value = stats.get(slo, 0.0)
            if value > threshold:
                alerts.append({"slo": slo, "window": self.window, "value": value, "threshold": threshold})
        return alerts


class SloEngine:
    """Thread-safe multi-window SLO tracker for one service process.

    ``clock`` defaults to ``time.monotonic``; tests inject a fake clock
    to step windows deterministically.
    """

    def __init__(
        self,
        windows: dict[str, float] | None = None,
        *,
        slots: int = 10,
        bounds: tuple[float, ...] = DEFAULT_LATENCY_BOUNDS,
        thresholds: SloThresholds | None = None,
        clock=time.monotonic,
    ):
        self.windows = {
            name: SlidingWindow(seconds, slots=slots, bounds=bounds)
            for name, seconds in (windows or DEFAULT_WINDOWS).items()
        }
        self.thresholds = thresholds
        self.clock = clock
        self._lock = threading.Lock()

    def record(self, latency_seconds: float, *, error: bool = False, cached: bool = False) -> None:
        """Record one finished request."""
        now = self.clock()
        with self._lock:
            for window in self.windows.values():
                window.record(latency_seconds, now, error=error, cached=cached)

    def record_event(self, name: str, n: int = 1, **labels) -> None:
        """Count a named operational event (restart, deadline miss, ...).

        Labels flatten into the event key (``restarts/shard=1``) so
        per-shard counts stay distinguishable without a label schema.
        """
        if labels:
            suffix = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
            name = f"{name}/{suffix}"
        now = self.clock()
        with self._lock:
            for window in self.windows.values():
                window.record_event(name, n, now)

    def merge(self, other: "SloEngine") -> None:
        """Fold another engine's windows in (matching window names)."""
        with self._lock:
            for name, window in self.windows.items():
                theirs = other.windows.get(name)
                if theirs is not None:
                    window.merge(theirs)

    def snapshot(self) -> dict:
        """Per-window stats dict, JSON-ready."""
        now = self.clock()
        with self._lock:
            return {name: window.snapshot(now) for name, window in self.windows.items()}

    def alerts(self, snapshot: dict | None = None) -> list[dict]:
        """SLO burn alerts from the configured thresholds (may be [])."""
        if self.thresholds is None:
            return []
        snap = snapshot if snapshot is not None else self.snapshot()
        stats = snap.get(self.thresholds.window)
        if stats is None:
            return []
        return self.thresholds.evaluate(stats)
