"""Reproducible provenance blocks for benchmark artifacts.

A benchmark number without its context is a trap: two BENCH_*.json files
can disagree because the code changed, the machine changed, or the scale
knob changed, and nothing in a bare number says which.  Every benchmark
artifact therefore embeds a provenance block -- git SHA (and dirty flag),
platform, interpreter and NumPy versions, the ``REPRO_SCALE`` in force,
and a UTC timestamp -- so a regression dashboard can partition results by
what actually produced them.
"""

from __future__ import annotations

import os
import platform
import subprocess
import sys
from datetime import datetime, timezone
from pathlib import Path

__all__ = ["provenance_block"]


def _git(args: list[str], cwd: Path) -> str | None:
    try:
        out = subprocess.run(
            ["git", *args],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if out.returncode != 0:
        return None
    return out.stdout.strip()


def provenance_block(extra: dict | None = None) -> dict:
    """Describe "what produced this artifact" as a JSON-ready dict.

    Never raises: outside a git checkout (an installed wheel, say) the git
    fields are ``None``.  ``extra`` entries are merged on top -- use it
    for per-benchmark knobs (corpus, seeds, phase timings).
    """
    here = Path(__file__).resolve().parent
    sha = _git(["rev-parse", "HEAD"], here)
    status = _git(["status", "--porcelain"], here) if sha is not None else None
    try:
        import numpy

        numpy_version = numpy.__version__
    except ImportError:  # pragma: no cover - numpy is a hard dependency
        numpy_version = None
    # Imported lazily: provenance must stay importable even if the kernel
    # registry is mid-initialisation (it imports obs-adjacent modules).
    from repro.kernels import available_backends, default_backend_name, get_backend

    block = {
        "git_sha": sha,
        "git_dirty": bool(status) if status is not None else None,
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": sys.version.split()[0],
        "numpy": numpy_version,
        "repro_scale": os.environ.get("REPRO_SCALE") or "1",
        "kernel_backends": {
            "available": list(available_backends()),
            "default": default_backend_name(),
            "selected": get_backend().name,
        },
        "timestamp_utc": datetime.now(timezone.utc).isoformat(timespec="seconds"),
    }
    if extra:
        block.update(extra)
    return block
