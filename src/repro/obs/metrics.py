"""Process-wide metrics registry: counters, gauges, histograms with labels.

A tiny, dependency-free subset of the Prometheus data model, enough to put
dashboards over the search stack: monotone **counters**
(``cascade_rejections_total{tier="keogh",measure="dtw"}``), last-write
**gauges** (envelope-cache hit ratio), and fixed-bucket **histograms**
(``query_steps``).  The registry serializes to the Prometheus text
exposition format (:meth:`MetricsRegistry.to_prometheus`) and to plain
JSON (:meth:`MetricsRegistry.to_dict`), and registries merge
(:meth:`MetricsRegistry.merge`) the way
:func:`repro.core.search.merge_counters` folds per-query step counters --
the contract :func:`repro.core.search.search_many` relies on to combine
per-worker registries from a process pool.

Nothing in this module imports the rest of the library, so the hot search
paths can depend on it without cycles.
"""

from __future__ import annotations

import json
import math
import threading

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "global_registry",
    "parse_prometheus_text",
    "record_query",
    "registry_from_dict",
]

#: Default histogram buckets for second-scale durations.
DURATION_BUCKETS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 30.0)

#: Default histogram buckets for the paper's ``num_steps`` cost model.
STEP_BUCKETS = (1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9)


def _label_key(labels: dict) -> tuple:
    return tuple(sorted(labels.items()))


def _escape_label_value(value) -> str:
    # Prometheus 0.0.4 label values escape backslash, double-quote and
    # newline (in that order -- escaping the escapes first).  Without this
    # a label like path="C:\tmp" or a measure name containing a quote
    # produces an exposition that scrapers reject or, worse, misparse.
    return str(value).replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(text: str) -> str:
    # HELP text escapes backslash and newline only (quotes are legal there).
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _format_labels(key: tuple) -> str:
    if not key:
        return ""
    inner = ",".join(f'{name}="{_escape_label_value(value)}"' for name, value in key)
    return "{" + inner + "}"


class _Metric:
    """Shared bookkeeping for one metric family (name + label schema)."""

    kind = "untyped"

    def __init__(self, name: str, help: str, lock: threading.Lock):
        if not name or not name.replace("_", "a").replace(":", "a").isalnum():
            raise ValueError(f"invalid metric name {name!r}")
        self.name = name
        self.help = help
        self._lock = lock
        self._label_names: frozenset | None = None

    def _key(self, labels: dict) -> tuple:
        names = frozenset(labels)
        if self._label_names is None:
            self._label_names = names
        elif names != self._label_names:
            raise ValueError(
                f"metric {self.name!r} expects labels {sorted(self._label_names)}, "
                f"got {sorted(names)}"
            )
        return _label_key(labels)


class Counter(_Metric):
    """A monotonically increasing count, per label set."""

    kind = "counter"

    def __init__(self, name: str, help: str, lock: threading.Lock):
        super().__init__(name, help, lock)
        self._values: dict[tuple, float] = {}

    def inc(self, amount: float = 1.0, **labels) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up; got increment {amount}")
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        return self._values.get(_label_key(labels), 0.0)

    def total(self) -> float:
        """Sum across every label set (e.g. restarts over all shards)."""
        with self._lock:
            return sum(self._values.values())

    def samples(self):
        return [(dict(key), value) for key, value in sorted(self._values.items())]


class Gauge(_Metric):
    """A value that can go up or down; last write wins."""

    kind = "gauge"

    def __init__(self, name: str, help: str, lock: threading.Lock):
        super().__init__(name, help, lock)
        self._values: dict[tuple, float] = {}

    def set(self, value: float, **labels) -> None:
        key = self._key(labels)
        with self._lock:
            self._values[key] = float(value)

    def inc(self, amount: float = 1.0, **labels) -> None:
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        return self._values.get(_label_key(labels), 0.0)

    def samples(self):
        return [(dict(key), value) for key, value in sorted(self._values.items())]


class Histogram(_Metric):
    """Cumulative fixed-bucket histogram (Prometheus semantics).

    ``buckets`` are ascending upper bounds; a final ``+Inf`` bucket is
    implicit.  Each label set keeps per-bucket counts plus the sum and
    count of observed values.
    """

    kind = "histogram"

    def __init__(self, name: str, help: str, lock: threading.Lock, buckets=DURATION_BUCKETS):
        super().__init__(name, help, lock)
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(f"buckets must be non-empty and strictly ascending, got {buckets}")
        self.buckets = bounds
        self._values: dict[tuple, dict] = {}

    def observe(self, value: float, **labels) -> None:
        key = self._key(labels)
        value = float(value)
        with self._lock:
            state = self._values.get(key)
            if state is None:
                state = {"counts": [0] * (len(self.buckets) + 1), "sum": 0.0, "count": 0}
                self._values[key] = state
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    state["counts"][i] += 1
                    break
            else:
                state["counts"][-1] += 1
            state["sum"] += value
            state["count"] += 1

    def state(self, **labels) -> dict:
        empty = {"counts": [0] * (len(self.buckets) + 1), "sum": 0.0, "count": 0}
        found = self._values.get(_label_key(labels))
        return {k: (list(v) if isinstance(v, list) else v) for k, v in (found or empty).items()}

    def samples(self):
        return [
            (dict(key), {"counts": list(s["counts"]), "sum": s["sum"], "count": s["count"]})
            for key, s in sorted(self._values.items())
        ]


class MetricsRegistry:
    """A named collection of metric families.

    ``counter``/``gauge``/``histogram`` create-or-return a family by name
    (re-registering with a different kind raises), so library code can
    grab its metrics lazily without coordinating setup.  Mutation is
    thread-safe; one registry can serve every thread of a process, and
    per-worker registries from a process pool fold together with
    :meth:`merge`.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._families: dict[str, _Metric] = {}

    def _family(self, cls, name: str, help: str, **kwargs) -> _Metric:
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = cls(name, help, threading.Lock(), **kwargs)
                self._families[name] = family
            elif not isinstance(family, cls):
                raise ValueError(
                    f"metric {name!r} already registered as {family.kind}, not {cls.kind}"
                )
        return family

    def counter(self, name: str, help: str = "") -> Counter:
        """Create-or-return the monotone counter family ``name``."""
        return self._family(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        """Create-or-return the last-write-wins gauge family ``name``."""
        return self._family(Gauge, name, help)

    def histogram(self, name: str, help: str = "", buckets=DURATION_BUCKETS) -> Histogram:
        """Create-or-return the fixed-bucket histogram family ``name``."""
        return self._family(Histogram, name, help, buckets=buckets)

    def families(self) -> list[_Metric]:
        """Every registered family, sorted by name."""
        return [self._families[name] for name in sorted(self._families)]

    def reset(self) -> None:
        """Drop every family and its samples."""
        with self._lock:
            self._families.clear()

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold ``other`` into this registry.

        Counters and histograms add; gauges take ``other``'s value (last
        write wins, matching their point-in-time semantics).  Mirrors
        :meth:`repro.core.counters.StepCounter.merge` so per-worker
        registries compose exactly like per-worker step counters.
        """
        for family in other.families():
            if isinstance(family, Counter):
                mine = self.counter(family.name, family.help)
                for labels, value in family.samples():
                    mine.inc(value, **labels)
            elif isinstance(family, Gauge):
                mine = self.gauge(family.name, family.help)
                for labels, value in family.samples():
                    mine.set(value, **labels)
            elif isinstance(family, Histogram):
                mine = self.histogram(family.name, family.help, buckets=family.buckets)
                if mine.buckets != family.buckets:
                    raise ValueError(f"histogram {family.name!r} bucket layouts differ")
                for labels, state in family.samples():
                    key = mine._key(labels)
                    with mine._lock:
                        dest = mine._values.get(key)
                        if dest is None:
                            dest = {
                                "counts": [0] * (len(mine.buckets) + 1),
                                "sum": 0.0,
                                "count": 0,
                            }
                            mine._values[key] = dest
                        dest["counts"] = [
                            a + b for a, b in zip(dest["counts"], state["counts"])
                        ]
                        dest["sum"] += state["sum"]
                        dest["count"] += state["count"]
        return self

    def to_dict(self) -> dict:
        """All families and samples as JSON-ready plain data."""
        out = {}
        for family in self.families():
            out[family.name] = {
                "type": family.kind,
                "help": family.help,
                "samples": [
                    {"labels": labels, "value": value} for labels, value in family.samples()
                ],
            }
            if isinstance(family, Histogram):
                out[family.name]["buckets"] = list(family.buckets)
        return out

    def to_json(self, indent: int | None = 2) -> str:
        """:meth:`to_dict` rendered as a JSON string."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def to_prometheus(self) -> str:
        """The Prometheus text exposition format (version 0.0.4)."""
        lines: list[str] = []
        for family in self.families():
            if family.help:
                lines.append(f"# HELP {family.name} {_escape_help(family.help)}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            if isinstance(family, Histogram):
                for labels, state in family.samples():
                    cumulative = 0
                    base = _label_key(labels)
                    for bound, count in zip(family.buckets, state["counts"]):
                        cumulative += count
                        le = _format_labels(base + (("le", _format_bound(bound)),))
                        lines.append(f"{family.name}_bucket{le} {cumulative}")
                    cumulative += state["counts"][-1]
                    le = _format_labels(base + (("le", "+Inf"),))
                    lines.append(f"{family.name}_bucket{le} {cumulative}")
                    lines.append(f"{family.name}_sum{_format_labels(base)} {state['sum']:g}")
                    lines.append(f"{family.name}_count{_format_labels(base)} {state['count']}")
            else:
                for labels, value in family.samples():
                    lines.append(f"{family.name}{_format_labels(_label_key(labels))} {value:g}")
        return "\n".join(lines) + ("\n" if lines else "")


def _format_bound(bound: float) -> str:
    if math.isinf(bound):
        return "+Inf"
    return f"{bound:g}"


def registry_from_dict(payload: dict) -> MetricsRegistry:
    """Rebuild a registry from :meth:`MetricsRegistry.to_dict` output.

    The inverse half of the snapshot transport the sharded query service
    uses: workers ship ``to_dict()`` over a pipe as JSON, the coordinator
    reconstructs each snapshot here and folds them together with
    :meth:`MetricsRegistry.merge`.  Raises :class:`ValueError` on an
    unknown family type so a corrupted snapshot fails loudly.
    """
    registry = MetricsRegistry()
    for name, family in payload.items():
        kind = family.get("type")
        help_text = family.get("help", "")
        samples = family.get("samples", [])
        if kind == "counter":
            counter = registry.counter(name, help_text)
            for sample in samples:
                counter.inc(sample["value"], **sample["labels"])
        elif kind == "gauge":
            gauge = registry.gauge(name, help_text)
            for sample in samples:
                gauge.set(sample["value"], **sample["labels"])
        elif kind == "histogram":
            histogram = registry.histogram(name, help_text, buckets=tuple(family["buckets"]))
            for sample in samples:
                state = sample["value"]
                key = histogram._key(sample["labels"])
                with histogram._lock:
                    histogram._values[key] = {
                        "counts": [int(c) for c in state["counts"]],
                        "sum": float(state["sum"]),
                        "count": int(state["count"]),
                    }
        else:
            raise ValueError(f"unknown metric family type {kind!r} for {name!r}")
    return registry


def _unescape(text: str, *, quotes: bool) -> str:
    out: list[str] = []
    i = 0
    while i < len(text):
        ch = text[i]
        if ch == "\\" and i + 1 < len(text):
            nxt = text[i + 1]
            if nxt == "\\":
                out.append("\\")
                i += 2
                continue
            if nxt == "n":
                out.append("\n")
                i += 2
                continue
            if quotes and nxt == '"':
                out.append('"')
                i += 2
                continue
        out.append(ch)
        i += 1
    return "".join(out)


def parse_prometheus_text(text: str) -> dict:
    """Parse a Prometheus 0.0.4 exposition into plain data.

    Returns ``{"families": {name: {"type", "help"}}, "samples": [(name,
    labels_dict, value), ...]}``, undoing the escaping
    :meth:`MetricsRegistry.to_prometheus` applies.  This is deliberately a
    full (if small) parser rather than a regex: the round-trip tests feed
    it hostile label values (backslashes, quotes, newlines) and the service
    smoke checks feed it live ``/metrics`` output.
    """
    families: dict[str, dict] = {}
    samples: list[tuple[str, dict, float]] = []
    for line in text.splitlines():
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            name, _, help_text = line[len("# HELP ") :].partition(" ")
            families.setdefault(name, {"type": None, "help": None})["help"] = _unescape(
                help_text, quotes=False
            )
            continue
        if line.startswith("# TYPE "):
            name, _, kind = line[len("# TYPE ") :].partition(" ")
            families.setdefault(name, {"type": None, "help": None})["type"] = kind.strip()
            continue
        if line.startswith("#"):
            continue
        brace = line.find("{")
        labels: dict[str, str] = {}
        if brace >= 0:
            name = line[:brace]
            i = brace + 1
            while i < len(line) and line[i] != "}":
                eq = line.index("=", i)
                label_name = line[i:eq]
                if line[eq + 1] != '"':
                    raise ValueError(f"malformed label value in {line!r}")
                j = eq + 2
                raw: list[str] = []
                while line[j] != '"':
                    if line[j] == "\\":
                        raw.append(line[j : j + 2])
                        j += 2
                    else:
                        raw.append(line[j])
                        j += 1
                labels[label_name] = _unescape("".join(raw), quotes=True)
                i = j + 1
                if i < len(line) and line[i] == ",":
                    i += 1
            rest = line[i + 1 :]
        else:
            name, _, rest = line.partition(" ")
        samples.append((name, labels, float(rest.strip())))
    return {"families": families, "samples": samples}


_GLOBAL = MetricsRegistry()


def global_registry() -> MetricsRegistry:
    """The process-wide default registry (what benchmarks export)."""
    return _GLOBAL


def record_query(result, measure: str, wall_seconds: float = 0.0, registry=None) -> None:
    """Fold one finished query into a registry.

    ``result`` is duck-typed on the :class:`~repro.core.search.SearchResult`
    surface (``strategy``, ``counter``, ``tier_stats``), so index results
    and plain counters-with-stats records work too.  Populates the standard
    family set:

    * ``queries_total{strategy,measure}``
    * ``query_steps`` / ``query_wall_seconds`` histograms
    * ``cascade_rejections_total{tier,measure}`` and
      ``cascade_reached_total{tier,measure}`` (the tier funnel)
    * ``full_distance_computations_total{measure}``
    * ``envelope_cache_hits_total`` / ``..misses_total`` and the derived
      ``envelope_cache_hit_ratio`` gauge
    * ``early_abandons_total{measure}`` and ``disk_fetches_total{measure}``
    """
    reg = registry if registry is not None else _GLOBAL
    strategy = getattr(result, "strategy", "") or "unknown"
    counter = result.counter
    reg.counter("queries_total", "Finished 1-NN queries").inc(
        1, strategy=strategy, measure=measure
    )
    reg.histogram(
        "query_steps", "Paper num_steps per query", buckets=STEP_BUCKETS
    ).observe(counter.steps, strategy=strategy, measure=measure)
    reg.histogram(
        "query_wall_seconds", "Wall-clock seconds per query"
    ).observe(wall_seconds, strategy=strategy, measure=measure)
    reg.counter("early_abandons_total", "Early-abandoned computations").inc(
        counter.early_abandons, measure=measure
    )
    if counter.disk_accesses:
        reg.counter("disk_fetches_total", "Full objects fetched from disk").inc(
            counter.disk_accesses, measure=measure
        )
    hits = reg.counter("envelope_cache_hits_total", "Envelope expansions served from cache")
    misses = reg.counter("envelope_cache_misses_total", "Envelope expansions computed")
    hits.inc(counter.envelope_cache_hits)
    misses.inc(counter.envelope_cache_misses)
    total = hits.value() + misses.value()
    if total:
        reg.gauge(
            "envelope_cache_hit_ratio", "Fraction of envelope expansions served from cache"
        ).set(hits.value() / total)

    stats = getattr(result, "tier_stats", None)
    if stats:
        rejections = reg.counter(
            "cascade_rejections_total", "Leaf candidates rejected, by cascade tier"
        )
        for tier in ("kim", "keogh", "improved"):
            count = stats.get(f"{tier}_rejections", 0)
            if count:
                rejections.inc(count, tier=tier, measure=measure)
        reached = reg.counter(
            "cascade_reached_total", "Leaf candidates reaching each cascade tier"
        )
        for tier, key in (
            ("kim", "leaf_candidates"),
            ("keogh", "keogh_reached"),
            ("improved", "improved_reached"),
            ("full", "full_computations"),
        ):
            count = stats.get(key, 0)
            if count:
                reached.inc(count, tier=tier, measure=measure)
        full = stats.get("full_computations", 0)
        if full:
            reg.counter(
                "full_distance_computations_total", "Exact distance computations"
            ).inc(full, measure=measure)
