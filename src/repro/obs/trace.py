"""Query tracing: a zero-dependency span tree over the search stack.

The paper's ``num_steps`` cost model (Section 5.3) says *how much* work a
query did; it cannot say *where* the work went -- envelope construction vs
H-Merge frontier pops vs cascade tiers vs the final refinement.  A
:class:`Tracer` answers that: search code opens nested :class:`Span`
context managers around the phases of a query, and point decisions (a
cascade tier rejecting a candidate, a VP-tree node visit, a disk fetch)
are recorded as zero-duration *events*.  The result is a span tree with
monotonic wall-clock timings that serializes to a plain dict/JSON.

Tracing is strictly additive: spans never touch a
:class:`~repro.core.counters.StepCounter`, so step accounting is
bit-identical with tracing on or off (there is a regression test pinning
this).  When tracing is off, the search stack holds the module-level
:data:`NULL_TRACER` singleton, whose ``enabled`` attribute lets hot loops
skip instrumentation after a single attribute lookup and whose
``span``/``event`` methods are allocation-free no-ops.

Distributed traces: every span carries W3C-trace-context-style
identifiers -- a 16-byte ``trace_id`` shared by every span of one
request, an 8-byte ``span_id`` of its own, and the ``parent_id`` it hangs
under.  A :class:`Tracer` may *adopt* a remote context
(``Tracer(trace_id=..., parent_id=...)``), which is how the sharded query
service propagates one trace across the coordinator->worker process
boundary: the coordinator ships ``{"trace_id", "parent_id"}`` inside the
request chunk, the worker records its subtree under that context, returns
it as plain data in the reply, and the coordinator stitches it back with
:meth:`Tracer.attach_tree` (clocks are per-process ``perf_counter``, so
the subtree is *rebased* onto the parent span's timeline).
:meth:`Tracer.attach` records already-finished work -- e.g. parallel
fan-out legs timed in executor threads -- as a span with explicit
start/end, sidestepping the nesting stack that concurrent spans would
corrupt.
"""

from __future__ import annotations

import os
from time import perf_counter

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "new_trace_id",
    "new_span_id",
    "span_from_dict",
]


def new_trace_id() -> str:
    """A fresh 16-byte (32 hex chars) W3C-style trace id."""
    return os.urandom(16).hex()


def new_span_id() -> str:
    """A fresh 8-byte (16 hex chars) W3C-style span id."""
    return os.urandom(8).hex()


class Span:
    """One timed, named, attributed node of a trace tree.

    Use as a context manager (via :meth:`Tracer.span`); entering starts the
    clock, exiting stops it and pops the tracer's nesting stack.  Events
    and child spans opened while this span is active become its children.
    """

    __slots__ = (
        "name",
        "attributes",
        "start",
        "end",
        "children",
        "trace_id",
        "span_id",
        "parent_id",
        "_tracer",
    )

    def __init__(self, name: str, tracer: "Tracer | None", attributes: dict):
        self.name = name
        self.attributes = attributes
        self.start = perf_counter()
        self.end: float | None = None
        self.children: list[Span] = []
        self.trace_id: str | None = None
        self.span_id: str | None = None
        self.parent_id: str | None = None
        self._tracer = tracer

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self.end is None:
            self.end = perf_counter()
        if exc_type is not None:
            self.attributes.setdefault("error", exc_type.__name__)
        if self._tracer is not None:
            self._tracer._pop(self)
        return False

    def set(self, **attributes) -> "Span":
        """Attach (or overwrite) attributes; chains for one-liners."""
        self.attributes.update(attributes)
        return self

    @property
    def duration(self) -> float:
        """Seconds between enter and exit (0.0 while still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    def to_dict(self) -> dict:
        """The span subtree as JSON-ready plain data."""
        payload = {
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
            "attributes": dict(self.attributes),
            "children": [child.to_dict() for child in self.children],
        }
        if self.trace_id is not None:
            payload["trace_id"] = self.trace_id
        if self.span_id is not None:
            payload["span_id"] = self.span_id
        if self.parent_id is not None:
            payload["parent_id"] = self.parent_id
        return payload

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Span({self.name!r}, {self.duration * 1e3:.3f}ms, {len(self.children)} children)"


class _DroppedSpan:
    """Returned once a tracer hits its span cap: records nothing."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attributes):
        return self


_DROPPED_SPAN = _DroppedSpan()


def _tree_size(payload: dict) -> int:
    """Number of spans in a ``Span.to_dict`` subtree."""
    return 1 + sum(_tree_size(child) for child in payload.get("children", ()))


def span_from_dict(payload: dict, *, shift: float = 0.0) -> Span:
    """Rebuild a :class:`Span` subtree from :meth:`Span.to_dict` data.

    ``shift`` is added to every start time (durations are preserved) --
    the rebasing hook for stitching a remote process's subtree onto the
    local clock.
    """
    span = Span(payload.get("name", "?"), None, dict(payload.get("attributes", {})))
    span.start = float(payload.get("start", 0.0)) + shift
    span.end = span.start + float(payload.get("duration", 0.0))
    span.trace_id = payload.get("trace_id")
    span.span_id = payload.get("span_id")
    span.parent_id = payload.get("parent_id")
    span.children = [span_from_dict(child, shift=shift) for child in payload.get("children", ())]
    return span


class Tracer:
    """Collects a forest of :class:`Span` trees for one traced run.

    Parameters
    ----------
    max_spans:
        Hard cap on recorded spans+events; beyond it new spans are
        dropped (and counted on :attr:`dropped` /  ``dropped_spans`` in
        :meth:`to_dict`) so a traced scan over a huge database cannot
        exhaust memory.
    trace_id / parent_id:
        Adopt a remote trace context: every recorded span carries this
        ``trace_id``, and root spans hang under ``parent_id``.  Omitted,
        a fresh ``trace_id`` is minted and roots have no parent.

    Attributes
    ----------
    enabled:
        Always ``True``; hot paths test this one attribute to decide
        whether to build event payloads (see :class:`NullTracer`).
    roots:
        The top-level spans recorded so far.
    dropped:
        How many spans/events were discarded at the cap.
    """

    enabled = True

    def __init__(
        self,
        max_spans: int = 250_000,
        *,
        trace_id: str | None = None,
        parent_id: str | None = None,
    ):
        if max_spans < 1:
            raise ValueError(f"max_spans must be positive, got {max_spans}")
        self.max_spans = max_spans
        self.trace_id = trace_id or new_trace_id()
        self.parent_id = parent_id
        self.roots: list[Span] = []
        self.dropped = 0
        self._stack: list[Span] = []
        self._count = 0

    def _assign_context(self, span: Span) -> None:
        span.trace_id = self.trace_id
        span.span_id = new_span_id()
        span.parent_id = self._stack[-1].span_id if self._stack else self.parent_id

    def span(self, name: str, **attributes):
        """Open a nested span; use as ``with tracer.span("phase"):``."""
        if self._count >= self.max_spans:
            self.dropped += 1
            return _DROPPED_SPAN
        self._count += 1
        span = Span(name, self, attributes)
        self._assign_context(span)
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)
        return span

    def event(self, name: str, **attributes) -> None:
        """Record a zero-duration point event under the current span."""
        if self._count >= self.max_spans:
            self.dropped += 1
            return
        self._count += 1
        span = Span(name, None, attributes)
        span.end = span.start
        self._assign_context(span)
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)

    def attach(
        self,
        parent: Span | None,
        name: str,
        start: float,
        end: float,
        *,
        span_id: str | None = None,
        **attributes,
    ) -> Span | None:
        """Record already-finished work as a span with explicit timing.

        Concurrent work (parallel shard fan-out timed in executor
        threads) cannot use the nesting stack -- interleaved enters and
        exits would corrupt it.  ``attach`` sidesteps the stack entirely:
        the span is hung under ``parent`` (or the tracer roots) post-hoc.
        Passing ``span_id`` lets the caller pre-mint the id so it can be
        shipped to a remote process as *its* parent context before the
        span object exists.  Returns ``None`` (and counts a drop) past
        the cap.
        """
        if self._count >= self.max_spans:
            self.dropped += 1
            return None
        self._count += 1
        span = Span(name, None, attributes)
        span.start = start
        span.end = end
        span.trace_id = self.trace_id
        span.span_id = span_id or new_span_id()
        span.parent_id = parent.span_id if parent is not None else self.parent_id
        if parent is not None:
            parent.children.append(span)
        else:
            self.roots.append(span)
        return span

    def attach_tree(self, parent: Span | None, payload: dict, *, shift: float = 0.0) -> Span | None:
        """Stitch a remote span subtree (as ``Span.to_dict`` data) in.

        ``shift`` rebases the subtree's clock: remote ``perf_counter``
        values are meaningless here, so callers pass
        ``local_attempt_start - remote_root_start`` to line the subtree
        up with the local timeline.  The whole tree is attached or (past
        the cap) dropped as a unit, counted in :attr:`dropped`.
        """
        size = _tree_size(payload)
        if self._count + size > self.max_spans:
            self.dropped += size
            return None
        self._count += size
        span = span_from_dict(payload, shift=shift)
        if span.trace_id is None:
            span.trace_id = self.trace_id
        if span.parent_id is None:
            span.parent_id = parent.span_id if parent is not None else self.parent_id
        if parent is not None:
            parent.children.append(span)
        else:
            self.roots.append(span)
        return span

    def _pop(self, span: Span) -> None:
        # Tolerate out-of-order exits (generators, exceptions): pop back to
        # the span being closed if it is anywhere on the stack.
        while self._stack:
            top = self._stack.pop()
            if top is span:
                return

    def iter_spans(self):
        """Depth-first iterator over every recorded span and event."""
        stack = list(reversed(self.roots))
        while stack:
            span = stack.pop()
            yield span
            stack.extend(reversed(span.children))

    def find(self, name: str) -> list[Span]:
        """All spans/events with ``name``, in depth-first order."""
        return [span for span in self.iter_spans() if span.name == name]

    def to_dict(self) -> dict:
        """The whole trace as JSON-ready plain data."""
        return {
            "trace_id": self.trace_id,
            "spans": [root.to_dict() for root in self.roots],
            "span_count": self._count,
            "dropped": self.dropped,
            "dropped_spans": self.dropped,
        }

    def format_tree(self, max_children: int = 12) -> str:
        """A human-readable indented rendering (for CLI / debugging)."""
        lines: list[str] = []

        def render(span: Span, depth: int) -> None:
            attrs = " ".join(f"{k}={v}" for k, v in span.attributes.items())
            lines.append(
                f"{'  ' * depth}{span.name}  {span.duration * 1e3:.3f}ms"
                + (f"  [{attrs}]" if attrs else "")
            )
            shown = span.children[:max_children]
            for child in shown:
                render(child, depth + 1)
            hidden = len(span.children) - len(shown)
            if hidden > 0:
                lines.append(f"{'  ' * (depth + 1)}... {hidden} more children")

        for root in self.roots:
            render(root, 0)
        if self.dropped:
            lines.append(f"... {self.dropped} spans dropped at cap")
        return "\n".join(lines)


class _NullSpan:
    """The no-op span: enter/exit/set all do nothing and allocate nothing."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attributes):
        return self


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The disabled tracer: ``enabled`` is False and every call is a no-op.

    Search code defaults to the shared :data:`NULL_TRACER` instance, so the
    cost of disabled tracing in a hot loop is one attribute lookup
    (``tracer.enabled``) or one argument-free-ish method call -- never an
    allocation.
    """

    enabled = False
    dropped = 0

    __slots__ = ()

    def span(self, name: str, **attributes):
        return _NULL_SPAN

    def event(self, name: str, **attributes) -> None:
        return None

    def iter_spans(self):
        return iter(())

    def find(self, name: str) -> list:
        return []

    def to_dict(self) -> dict:
        return {"trace_id": None, "spans": [], "span_count": 0, "dropped": 0, "dropped_spans": 0}

    def format_tree(self, max_children: int = 12) -> str:
        return ""


#: Shared process-wide no-op tracer; the default everywhere.
NULL_TRACER = NullTracer()
