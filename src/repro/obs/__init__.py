"""repro.obs: observability for the search stack.

Three pillars, all dependency-free and opt-in:

* **Tracing** (:mod:`repro.obs.trace`) -- :class:`Tracer`/:class:`Span`
  build a nested, wall-clock-timed span tree of one query's lifecycle
  (envelope build, H-Merge frontier pops, cascade tier decisions, VP-tree
  visits, disk fetches, batch kernel calls).  Disabled tracing is the
  :data:`NULL_TRACER` singleton: one attribute lookup on the hot path.
* **Metrics** (:mod:`repro.obs.metrics`) -- a process-wide
  :class:`MetricsRegistry` of labeled counters/gauges/histograms with
  Prometheus-text and JSON exposition; :func:`record_query` folds one
  finished query into the standard family set, and registries
  :meth:`~MetricsRegistry.merge` across pool workers.
* **Query logs** (:mod:`repro.obs.querylog`) -- :class:`QueryLogger`
  appends one JSONL record per query (with opt-in size-based rotation);
  :mod:`repro.obs.report` summarizes a log into the tier funnel /
  slow-query / cache-ratio report behind ``python -m repro obs log``.

On top of those, the service layer gets:

* **Distributed traces** -- spans carry W3C-style
  ``trace_id``/``span_id``/``parent_id``; :meth:`Tracer.attach_tree`
  stitches worker subtrees shipped back in protocol replies into one
  cross-process trace, rendered by :mod:`repro.obs.waterfall`.
* **Rolling SLOs** (:mod:`repro.obs.slo`) -- :class:`SloEngine` tracks
  p50/p95/p99 latency, QPS, error rate, cache hit ratio, and named
  operational events over 10s/1m/5m sliding windows of mergeable
  log-bucket histograms, with threshold-based burn alerts.

:func:`provenance_block` stamps benchmark artifacts with git SHA,
platform, and versions so BENCH_*.json results are attributable.

Step accounting is never touched by any of this: tracing on or off, the
paper's ``num_steps`` numbers are bit-identical (regression-tested).
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    global_registry,
    parse_prometheus_text,
    record_query,
    registry_from_dict,
)
from repro.obs.provenance import provenance_block
from repro.obs.querylog import QueryLogger, read_query_log
from repro.obs.report import (
    format_summary,
    funnel_is_monotone,
    summarize_query_log,
    tier_funnel,
)
from repro.obs.slo import SlidingWindow, SloEngine, SloThresholds, quantile_from_buckets
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    new_span_id,
    new_trace_id,
    span_from_dict,
)
from repro.obs.waterfall import pick_trace, render_waterfall

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "new_trace_id",
    "new_span_id",
    "span_from_dict",
    "SloEngine",
    "SloThresholds",
    "SlidingWindow",
    "quantile_from_buckets",
    "pick_trace",
    "render_waterfall",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "global_registry",
    "record_query",
    "registry_from_dict",
    "parse_prometheus_text",
    "QueryLogger",
    "read_query_log",
    "summarize_query_log",
    "format_summary",
    "tier_funnel",
    "funnel_is_monotone",
    "provenance_block",
]
