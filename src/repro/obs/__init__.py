"""repro.obs: observability for the search stack.

Three pillars, all dependency-free and opt-in:

* **Tracing** (:mod:`repro.obs.trace`) -- :class:`Tracer`/:class:`Span`
  build a nested, wall-clock-timed span tree of one query's lifecycle
  (envelope build, H-Merge frontier pops, cascade tier decisions, VP-tree
  visits, disk fetches, batch kernel calls).  Disabled tracing is the
  :data:`NULL_TRACER` singleton: one attribute lookup on the hot path.
* **Metrics** (:mod:`repro.obs.metrics`) -- a process-wide
  :class:`MetricsRegistry` of labeled counters/gauges/histograms with
  Prometheus-text and JSON exposition; :func:`record_query` folds one
  finished query into the standard family set, and registries
  :meth:`~MetricsRegistry.merge` across pool workers.
* **Query logs** (:mod:`repro.obs.querylog`) -- :class:`QueryLogger`
  appends one JSONL record per query; :mod:`repro.obs.report` summarizes
  a log into the tier funnel / slow-query / cache-ratio report behind
  ``python -m repro obs``.

:func:`provenance_block` stamps benchmark artifacts with git SHA,
platform, and versions so BENCH_*.json results are attributable.

Step accounting is never touched by any of this: tracing on or off, the
paper's ``num_steps`` numbers are bit-identical (regression-tested).
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    global_registry,
    parse_prometheus_text,
    record_query,
    registry_from_dict,
)
from repro.obs.provenance import provenance_block
from repro.obs.querylog import QueryLogger, read_query_log
from repro.obs.report import (
    format_summary,
    funnel_is_monotone,
    summarize_query_log,
    tier_funnel,
)
from repro.obs.trace import NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "global_registry",
    "record_query",
    "registry_from_dict",
    "parse_prometheus_text",
    "QueryLogger",
    "read_query_log",
    "summarize_query_log",
    "format_summary",
    "tier_funnel",
    "funnel_is_monotone",
    "provenance_block",
]
