"""Waterfall rendering for stitched cross-process traces.

Takes the plain-data span trees produced by ``Tracer.to_dict`` (or the
``/traces/recent`` telemetry endpoint) and renders a timeline: one row
per span, indented by depth, with a bar scaled to the trace's total
extent.  Durationful spans draw ``#`` bars; zero-duration events draw a
single ``+`` tick.  This is where queue wait, pipe transit, per-tier
pruning time, retries, and replays become visible at a glance.
"""

from __future__ import annotations

__all__ = ["pick_trace", "render_waterfall", "flatten_spans"]

# Attributes worth showing inline on a waterfall row, in display order.
_KEY_ATTRS = (
    "shard",
    "attempt",
    "status",
    "outcome",
    "kind",
    "error",
    "queue_ms",
    "transit_ms",
    "tier",
    "steps",
    "requests",
    "rejected",
    "batch_size",
)


def _trace_entries(payload: dict) -> list[dict]:
    """Normalize a /traces/recent payload into a list of trace entries."""
    entries: list[dict] = []
    seen: set[str] = set()
    for key in ("errors", "slowest", "recent"):
        for entry in payload.get(key, ()):  # each: {"trace_id", ..., "trace": {...}}
            tid = entry.get("trace_id")
            if tid in seen:
                continue
            seen.add(tid)
            entries.append(entry)
    return entries


def pick_trace(payload: dict, *, trace_id: str | None = None, index: int = 0) -> dict:
    """Select one trace (a ``Tracer.to_dict`` dict) from ``payload``.

    Accepts three shapes: a ``/traces/recent`` response (picks by
    ``trace_id`` or ``index`` across errors/slowest/recent, deduped), a
    tracer dict (``{"spans": [...]}``), or a single span dict.  Raises
    ``ValueError`` when nothing matches.
    """
    if "spans" in payload:
        return payload
    if "name" in payload and "start" in payload:  # bare span
        return {"spans": [payload], "trace_id": payload.get("trace_id"), "dropped_spans": 0}
    entries = _trace_entries(payload)
    if trace_id is not None:
        for entry in entries:
            if entry.get("trace_id") == trace_id or str(entry.get("trace_id", "")).startswith(trace_id):
                return entry["trace"]
        raise ValueError(f"no trace matching id {trace_id!r} (have {len(entries)})")
    if not entries:
        raise ValueError("payload contains no traces")
    if not 0 <= index < len(entries):
        raise ValueError(f"trace index {index} out of range (have {len(entries)})")
    return entries[index]["trace"]


def flatten_spans(trace: dict) -> list[tuple[int, dict]]:
    """Depth-first ``(depth, span_dict)`` rows of a tracer dict."""
    rows: list[tuple[int, dict]] = []

    def walk(span: dict, depth: int) -> None:
        rows.append((depth, span))
        for child in span.get("children", ()):  # already in record order
            walk(child, depth + 1)

    for root in trace.get("spans", ()):  # usually a single batch root
        walk(root, 0)
    return rows


def _attr_text(span: dict) -> str:
    attrs = span.get("attributes", {})
    shown = [f"{key}={attrs[key]}" for key in _KEY_ATTRS if key in attrs]
    extra = len([k for k in attrs if k not in _KEY_ATTRS])
    if extra:
        shown.append(f"+{extra} attrs")
    return " ".join(shown)


def render_waterfall(trace: dict, *, width: int = 100) -> str:
    """Render one stitched trace as an aligned text waterfall."""
    rows = flatten_spans(trace)
    if not rows:
        return "(empty trace)"
    t0 = min(span["start"] for _, span in rows)
    t1 = max(span["start"] + span.get("duration", 0.0) for _, span in rows)
    extent = max(t1 - t0, 1e-9)

    labels = []
    for depth, span in rows:
        dur = span.get("duration", 0.0)
        dur_text = f"{dur * 1e3:8.3f}ms" if dur > 0 else "     event"
        labels.append(f"{'  ' * depth}{span.get('name', '?')}  {dur_text}")
    label_width = min(max(len(label) for label in labels), 58)
    bar_width = max(width - label_width - 3, 20)

    lines = []
    trace_id = trace.get("trace_id")
    header = f"trace {trace_id}" if trace_id else "trace"
    lines.append(f"{header}  span_count={trace.get('span_count', len(rows))}  extent={extent * 1e3:.3f}ms")
    dropped = trace.get("dropped_spans", trace.get("dropped", 0))
    if dropped:
        lines.append(f"!! {dropped} spans dropped at tracer cap -- waterfall is incomplete")
    for (_, span), label in zip(rows, labels):
        offset = int((span["start"] - t0) / extent * bar_width)
        dur = span.get("duration", 0.0)
        if dur > 0:
            length = max(int(dur / extent * bar_width), 1)
            bar = " " * offset + "#" * min(length, bar_width - offset)
        else:
            bar = " " * min(offset, bar_width - 1) + "+"
        attrs = _attr_text(span)
        lines.append(f"{label[:label_width]:<{label_width}} |{bar:<{bar_width}}|" + (f" {attrs}" if attrs else ""))
    return "\n".join(lines)
