"""Structured per-query run logs: one JSONL record per answered query.

Benchmarks and services need to answer "why did run A differ from run B"
without re-running anything.  A :class:`QueryLogger` is an opt-in sink the
search strategies write to: each finished query appends one JSON line
carrying the query id, strategy, measure, the answer, the full
:class:`~repro.core.counters.StepCounter` snapshot, the cascade tier
stats, the wedge-set-size ``K`` trajectory and the best-so-far radius
trace (for strategies that track them), and wall-clock totals.  The file
is plain JSONL -- greppable, ``jq``-able, and summarized by
``python -m repro obs`` (see :mod:`repro.obs.report`).
"""

from __future__ import annotations

import json
import math
import time
from pathlib import Path

__all__ = ["QueryLogger", "read_query_log"]


def _jsonable(value):
    """Coerce numpy scalars / inf / tuples into JSON-safe plain data."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, float):
        if math.isinf(value):
            return "inf" if value > 0 else "-inf"
        if math.isnan(value):
            return "nan"
        return value
    if hasattr(value, "item"):  # numpy scalar
        return _jsonable(value.item())
    return value


class QueryLogger:
    """Append-only JSONL sink for per-query telemetry records.

    Parameters
    ----------
    path:
        Destination file; parent directories are created.  Pass a
        file-like object (anything with ``write``) to stream elsewhere.
    append:
        Open mode for path destinations; ``False`` truncates.

    Use as a context manager or call :meth:`close` explicitly.  Records
    missing a ``query_id`` get a monotonically increasing sequence number.
    """

    def __init__(self, path, append: bool = True):
        self._seq = 0
        if hasattr(path, "write"):
            self._fh = path
            self._owns = False
            self.path = None
        else:
            self.path = Path(path)
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.path, "a" if append else "w", encoding="utf-8")
            self._owns = True

    def log(self, record: dict) -> dict:
        """Write one record (a JSON object) as a single line; returns it."""
        if self._fh is None:
            raise ValueError("QueryLogger is closed")
        record = dict(record)
        if "query_id" not in record or record["query_id"] is None:
            record["query_id"] = self._seq
        self._seq += 1
        record.setdefault("ts", time.time())
        self._fh.write(json.dumps(_jsonable(record), sort_keys=True) + "\n")
        self._fh.flush()
        return record

    def log_result(
        self,
        result,
        measure: str,
        wall_seconds: float | None = None,
        query_id=None,
        backend: str | None = None,
        **extra,
    ) -> dict:
        """Build and write the standard record for one finished query.

        ``result`` is duck-typed on :class:`~repro.core.search.SearchResult`;
        ``backend`` names the kernel backend that ran the distance kernels
        (``None`` when the caller did not resolve one); ``extra`` lands
        verbatim in the record (``k_trajectory``, ``radius_trace``,
        retrieval stats, ...).
        """
        record = {
            "query_id": query_id,
            "strategy": getattr(result, "strategy", "") or "unknown",
            "measure": measure,
            "backend": backend,
            "result_index": result.index,
            "distance": result.distance,
            "rotation": result.rotation,
            "steps": result.counter.steps,
            "counter": result.counter.snapshot(),
            "tier_stats": dict(getattr(result, "tier_stats", None) or {}),
            "wall_seconds": wall_seconds,
        }
        record.update(extra)
        return self.log(record)

    def close(self) -> None:
        """Flush and close the sink (file-like destinations stay open)."""
        if self._fh is not None and self._owns:
            self._fh.close()
        self._fh = None

    def __enter__(self) -> "QueryLogger":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False


def read_query_log(path) -> list[dict]:
    """Parse a JSONL query log back into a list of records.

    Blank lines are skipped; a malformed line raises ``ValueError`` naming
    its line number, so truncated logs fail loudly rather than silently
    under-reporting.
    """
    records = []
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: malformed query-log line: {exc}") from exc
    return records
