"""Structured per-query run logs: one JSONL record per answered query.

Benchmarks and services need to answer "why did run A differ from run B"
without re-running anything.  A :class:`QueryLogger` is an opt-in sink the
search strategies write to: each finished query appends one JSON line
carrying the query id, strategy, measure, the answer, the full
:class:`~repro.core.counters.StepCounter` snapshot, the cascade tier
stats, the wedge-set-size ``K`` trajectory and the best-so-far radius
trace (for strategies that track them), and wall-clock totals.  The file
is plain JSONL -- greppable, ``jq``-able, and summarized by
``python -m repro obs`` (see :mod:`repro.obs.report`).
"""

from __future__ import annotations

import json
import math
import time
from pathlib import Path

__all__ = ["QueryLogger", "read_query_log"]


def _jsonable(value):
    """Coerce numpy scalars / inf / tuples into JSON-safe plain data."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, float):
        if math.isinf(value):
            return "inf" if value > 0 else "-inf"
        if math.isnan(value):
            return "nan"
        return value
    if hasattr(value, "item"):  # numpy scalar
        return _jsonable(value.item())
    return value


class QueryLogger:
    """Append-only JSONL sink for per-query telemetry records.

    Parameters
    ----------
    path:
        Destination file; parent directories are created.  Pass a
        file-like object (anything with ``write``) to stream elsewhere.
    append:
        Open mode for path destinations; ``False`` truncates.
    max_bytes:
        Opt-in size-based rotation: before a write would push the file
        past this size, it is rotated to ``<path>.1`` (existing ``.1``
        shifts to ``.2`` and so on, oldest deleted past ``keep``) and a
        fresh file is started.  ``None`` (default) never rotates.
    keep:
        How many rotated files to retain (``<path>.1`` .. ``<path>.N``).

    Use as a context manager or call :meth:`close` explicitly.  Records
    missing a ``query_id`` get a monotonically increasing sequence number.
    """

    def __init__(self, path, append: bool = True, *, max_bytes: int | None = None, keep: int = 3):
        if max_bytes is not None and max_bytes < 1:
            raise ValueError(f"max_bytes must be positive, got {max_bytes}")
        if keep < 1:
            raise ValueError(f"keep must be positive, got {keep}")
        self._seq = 0
        self.max_bytes = max_bytes
        self.keep = keep
        if hasattr(path, "write"):
            if max_bytes is not None:
                raise ValueError("rotation requires a path destination, not a file-like object")
            self._fh = path
            self._owns = False
            self.path = None
            self._size = 0
        else:
            self.path = Path(path)
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.path, "a" if append else "w", encoding="utf-8")
            self._owns = True
            self._size = self.path.stat().st_size if append and self.path.exists() else 0

    def _rotate(self) -> None:
        self._fh.close()
        for i in range(self.keep, 0, -1):
            older = self.path.with_name(f"{self.path.name}.{i}")
            if i == self.keep:
                older.unlink(missing_ok=True)
                continue
            if older.exists():
                older.rename(self.path.with_name(f"{self.path.name}.{i + 1}"))
        self.path.rename(self.path.with_name(f"{self.path.name}.1"))
        self._fh = open(self.path, "w", encoding="utf-8")
        self._size = 0

    def log(self, record: dict) -> dict:
        """Write one record (a JSON object) as a single line; returns it."""
        if self._fh is None:
            raise ValueError("QueryLogger is closed")
        record = dict(record)
        if "query_id" not in record or record["query_id"] is None:
            record["query_id"] = self._seq
        self._seq += 1
        record.setdefault("ts", time.time())
        line = json.dumps(_jsonable(record), sort_keys=True) + "\n"
        if self.max_bytes is not None and self._owns and self._size and self._size + len(line) > self.max_bytes:
            self._rotate()
        self._fh.write(line)
        self._fh.flush()
        self._size += len(line)
        return record

    def log_result(
        self,
        result,
        measure: str,
        wall_seconds: float | None = None,
        query_id=None,
        backend: str | None = None,
        **extra,
    ) -> dict:
        """Build and write the standard record for one finished query.

        ``result`` is duck-typed on :class:`~repro.core.search.SearchResult`;
        ``backend`` names the kernel backend that ran the distance kernels
        (``None`` when the caller did not resolve one); ``extra`` lands
        verbatim in the record (``k_trajectory``, ``radius_trace``,
        retrieval stats, ...).
        """
        record = {
            "query_id": query_id,
            "strategy": getattr(result, "strategy", "") or "unknown",
            "measure": measure,
            "backend": backend,
            "result_index": result.index,
            "distance": result.distance,
            "rotation": result.rotation,
            "steps": result.counter.steps,
            "counter": result.counter.snapshot(),
            "tier_stats": dict(getattr(result, "tier_stats", None) or {}),
            "wall_seconds": wall_seconds,
        }
        record.update(extra)
        return self.log(record)

    def close(self) -> None:
        """Flush and close the sink (file-like destinations stay open)."""
        if self._fh is not None and self._owns:
            self._fh.close()
        self._fh = None

    def __enter__(self) -> "QueryLogger":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False


def read_query_log(path) -> list[dict]:
    """Parse a JSONL query log back into a list of records.

    Blank lines are skipped; a malformed line raises ``ValueError`` naming
    its line number, so truncated logs fail loudly rather than silently
    under-reporting.
    """
    records = []
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: malformed query-log line: {exc}") from exc
    return records
