"""Summaries over structured query logs: the ``repro obs`` report.

Takes the JSONL records a :class:`~repro.obs.querylog.QueryLogger` wrote
and aggregates them into the views an operator actually asks for:

* per-strategy query counts, step totals, and wall-clock totals;
* the slowest queries (by wall clock, falling back to steps);
* the cascade **tier funnel** -- how many leaf candidates reached the Kim
  tier, survived into LB_Keogh, survived into LB_Improved, and finally
  paid a full distance computation.  An exact cascade's funnel is
  monotonically non-increasing; :func:`funnel_is_monotone` is the smoke
  assertion CI runs against every benchmark artifact (mis-accounting like
  a tier charging the wrong bucket shows up as an inversion);
* envelope-cache hit ratios.
"""

from __future__ import annotations

from repro.obs.querylog import read_query_log

__all__ = [
    "tier_funnel",
    "funnel_is_monotone",
    "summarize_query_log",
    "format_summary",
]

#: The cascade stages, outermost first, with the tier-stats key holding
#: how many leaf candidates *reached* that stage.
FUNNEL_STAGES = (
    ("kim", "leaf_candidates"),
    ("keogh", "keogh_reached"),
    ("improved", "improved_reached"),
    ("full-distance", "full_computations"),
)


def tier_funnel(tier_stats: dict) -> list[tuple[str, int]]:
    """``[(stage, candidates_reaching_it), ...]`` from one tier-stats dict."""
    return [(stage, int(tier_stats.get(key, 0) or 0)) for stage, key in FUNNEL_STAGES]


def funnel_is_monotone(tier_stats: dict) -> bool:
    """True when each cascade stage sees no more candidates than the last.

    Exactness demands it: a candidate can only reach LB_Keogh by surviving
    the Kim tier, and so on down to the full distance.  A violation means
    the per-tier accounting is wrong, not that the search is.
    """
    counts = [count for _stage, count in tier_funnel(tier_stats)]
    return all(a >= b for a, b in zip(counts, counts[1:]))


def _merge_stats(into: dict, stats: dict) -> None:
    for key, value in stats.items():
        if isinstance(value, (int, float)):
            into[key] = into.get(key, 0) + value


def summarize_query_log(source, top: int = 5) -> dict:
    """Aggregate a query log (path or iterable of records) into one report.

    Returns plain data: total counts, per-strategy breakdowns, the ``top``
    slowest queries, the aggregated tier funnel (plus its monotonicity),
    and envelope-cache ratios.
    """
    records = read_query_log(source) if isinstance(source, (str, bytes)) or hasattr(
        source, "__fspath__"
    ) else list(source)

    strategies: dict[str, dict] = {}
    funnel_stats: dict[str, int] = {}
    cache_hits = cache_misses = 0
    total_steps = 0
    total_wall = 0.0
    for record in records:
        name = record.get("strategy", "unknown")
        bucket = strategies.setdefault(
            name, {"queries": 0, "steps": 0, "wall_seconds": 0.0}
        )
        bucket["queries"] += 1
        bucket["steps"] += int(record.get("steps") or 0)
        wall = record.get("wall_seconds")
        if isinstance(wall, (int, float)):
            bucket["wall_seconds"] += wall
            total_wall += wall
        total_steps += int(record.get("steps") or 0)
        _merge_stats(funnel_stats, record.get("tier_stats") or {})
        counter = record.get("counter") or {}
        cache_hits += int(counter.get("envelope_cache_hits") or 0)
        cache_misses += int(counter.get("envelope_cache_misses") or 0)

    def slowness(record: dict):
        wall = record.get("wall_seconds")
        return (
            wall if isinstance(wall, (int, float)) else -1.0,
            int(record.get("steps") or 0),
        )

    slowest = sorted(records, key=slowness, reverse=True)[: max(0, top)]
    top_slow = [
        {
            "query_id": record.get("query_id"),
            "strategy": record.get("strategy", "unknown"),
            "wall_seconds": record.get("wall_seconds"),
            "steps": record.get("steps"),
            "result_index": record.get("result_index"),
        }
        for record in slowest
    ]

    cache_total = cache_hits + cache_misses
    return {
        "queries": len(records),
        "total_steps": total_steps,
        "total_wall_seconds": round(total_wall, 6),
        "strategies": strategies,
        "top_slow": top_slow,
        "funnel": tier_funnel(funnel_stats),
        "funnel_monotone": funnel_is_monotone(funnel_stats),
        "tier_rejections": {
            tier: int(funnel_stats.get(f"{tier}_rejections", 0) or 0)
            for tier in ("kim", "keogh", "improved")
        },
        "envelope_cache": {
            "hits": cache_hits,
            "misses": cache_misses,
            "hit_ratio": (cache_hits / cache_total) if cache_total else None,
        },
    }


def format_summary(summary: dict) -> str:
    """Render a summary dict as the human-readable ``repro obs`` report."""
    lines = [
        f"queries: {summary['queries']}   "
        f"steps: {summary['total_steps']:,}   "
        f"wall: {summary['total_wall_seconds']:.3f}s",
        "",
        f"{'strategy':<16} {'queries':>8} {'steps':>14} {'wall (s)':>10}",
    ]
    for name, bucket in sorted(summary["strategies"].items()):
        lines.append(
            f"{name:<16} {bucket['queries']:>8} {bucket['steps']:>14,} "
            f"{bucket['wall_seconds']:>10.3f}"
        )

    lines.append("")
    lines.append("cascade tier funnel (candidates reaching each stage):")
    widest = max((count for _stage, count in summary["funnel"]), default=0)
    for stage, count in summary["funnel"]:
        bar = "#" * (round(40 * count / widest) if widest else 0)
        lines.append(f"  {stage:<14} {count:>10,}  {bar}")
    lines.append(
        "  funnel monotone: " + ("yes" if summary["funnel_monotone"] else "NO (accounting bug!)")
    )
    rejections = summary["tier_rejections"]
    lines.append(
        "  rejections: "
        + "  ".join(f"{tier}={rejections[tier]:,}" for tier in ("kim", "keogh", "improved"))
    )

    cache = summary["envelope_cache"]
    ratio = "n/a" if cache["hit_ratio"] is None else f"{cache['hit_ratio']:.1%}"
    lines.append("")
    lines.append(
        f"envelope cache: {cache['hits']:,} hits / {cache['misses']:,} misses ({ratio})"
    )

    if summary["top_slow"]:
        lines.append("")
        lines.append("slowest queries:")
        for entry in summary["top_slow"]:
            wall = entry["wall_seconds"]
            wall_text = f"{wall:.4f}s" if isinstance(wall, (int, float)) else "?"
            lines.append(
                f"  #{entry['query_id']}: {entry['strategy']}  {wall_text}  "
                f"{entry['steps']:,} steps  -> object {entry['result_index']}"
            )
    return "\n".join(lines)
