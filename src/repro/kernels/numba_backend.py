"""The optional ``numba`` backend: ``@njit``-compiled shared kernel sources.

This module imports :mod:`numba` at the top level; the package registry
wraps the import in ``try/except ImportError`` so a missing (or broken)
numba degrades to a logged notice and the pure-NumPy wavefront backend.

The compiled functions are the *same function objects* the scalar backend
runs interpreted (:mod:`repro.kernels._dp`), compiled with default IEEE
semantics (no ``fastmath``): identical operation order, hence bit-identical
distances, bounds, abandonment decisions, and step counts.  ``cache=True``
persists the compiled artifacts on disk so repeated processes (CI steps,
benchmark reruns) skip recompilation; ``nogil=True`` releases the GIL so
thread-pool searches overlap kernel execution.
"""

from __future__ import annotations

import math

import numpy as np
from numba import njit

from repro.kernels import KernelBackend
from repro.kernels import _dp

__all__ = ["NumbaBackend"]

_JIT = {"cache": True, "nogil": True}

_dtw_single = njit(**_JIT)(_dp.dtw_single)
_dtw_batch = njit(**_JIT)(_dp.dtw_batch)
_lcss_batch = njit(**_JIT)(_dp.lcss_batch)
_lb_keogh = njit(**_JIT)(_dp.lb_keogh)
_lb_improved_pass2 = njit(**_JIT)(_dp.lb_improved_pass2)
_lb_improved_batch = njit(**_JIT)(_dp.lb_improved_batch)


def _c1(*arrays):
    """C-contiguous float64 copies-on-demand (numba prefers unit strides)."""
    return tuple(np.ascontiguousarray(a, dtype=np.float64) for a in arrays)


class NumbaBackend(KernelBackend):
    """Compiled kernels; registers only when numba imports cleanly."""

    name = "numba"
    priority = 20

    def dtw_single(self, q, c, radius, r):
        q, c = _c1(q, c)
        dist, steps, abandoned = _dtw_single(q, c, radius, self._squared_threshold(r))
        return float(dist), int(steps), bool(abandoned)

    def dtw_batch(self, q, rows, radius, r):
        q, rows = _c1(q, rows)
        dists, steps, abandoned = _dtw_batch(q, rows, radius, self._squared_threshold(r))
        return dists, int(steps), abandoned

    def lcss_batch(self, q, rows, delta, epsilon, min_similarity):
        q, rows = _c1(q, rows)
        required = min_similarity * q.shape[0]
        sims, steps, abandoned = _lcss_batch(q, rows, delta, float(epsilon), float(required))
        return sims, int(steps), abandoned

    def lb_keogh(self, q, upper, lower, r):
        q, upper, lower = _c1(q, upper, lower)
        bound, steps = _lb_keogh(q, upper, lower, self._squared_threshold(r))
        return float(bound), int(steps)

    def lb_improved_pass2(self, q, upper, lower, raw_upper, raw_lower, radius):
        q, upper, lower, raw_upper, raw_lower = _c1(q, upper, lower, raw_upper, raw_lower)
        return float(_lb_improved_pass2(q, upper, lower, raw_upper, raw_lower, radius))

    def lb_improved_batch(self, rows, upper, lower, raw_upper, raw_lower, radius, r):
        rows, u, lo, raw_u, raw_lo = np.broadcast_arrays(
            *self._coerce(rows, upper, lower, raw_upper, raw_lower)
        )
        rows, u, lo, raw_u, raw_lo = _c1(
            np.atleast_2d(rows),
            np.atleast_2d(u),
            np.atleast_2d(lo),
            np.atleast_2d(raw_u),
            np.atleast_2d(raw_lo),
        )
        bounds, steps = _lb_improved_batch(
            rows, u, lo, raw_u, raw_lo, radius, self._squared_threshold(r)
        )
        return bounds, steps

    def warmup(self, n: int = 8) -> None:
        """Force-compile every kernel on tiny inputs (benchmarks call this
        so JIT compilation never lands inside a timed region)."""
        q = np.linspace(0.0, 1.0, n)
        rows = np.vstack([q + 0.5, q - 0.5])
        self.dtw_single(q, q + 0.5, 1, math.inf)
        self.dtw_single(q, q + 0.5, 1, 0.1)
        self.dtw_batch(q, rows, 1, math.inf)
        self.lcss_batch(q, rows, 1, 0.25, 0.0)
        self.lb_keogh(q, q + 1.0, q - 1.0, math.inf)
        self.lb_improved_pass2(q, q + 1.0, q - 1.0, q, q, 1)
        self.lb_improved_batch(rows, rows + 1.0, rows - 1.0, rows, rows, 1, math.inf)
