"""Pluggable kernel backends for the distance dynamic programs.

The per-cell dynamic programs behind DTW, LCSS, and the LB_Keogh /
LB_Improved bounds dominate search wall clock once the pruning cascade
has removed the easy work.  This package lets the same ``Measure``
protocol run those kernels through interchangeable *backends*:

``scalar``
    The per-cell reference implementation (the shared sources in
    :mod:`repro.kernels._dp`, executed interpreted).  Slow, readable,
    and the ground truth every other backend is held to.
``wavefront``
    Pure NumPy, no new dependencies: anti-diagonal (wavefront) updates
    advance a whole chunk of candidates one diagonal at a time through
    three rotating sentinel-padded buffers.
``numba``
    ``@njit``-compiled versions of the *same* shared sources -- identical
    operation order, so bit-identical answers -- registered only when
    :mod:`numba` imports cleanly (the optional ``repro[kernels]`` extra).

Selection (:func:`get_backend`) resolves, in order: an explicit name
argument, the ``REPRO_KERNEL_BACKEND`` environment variable, then the
fastest registered backend (highest priority).  Exactness is a contract,
not a hope: every backend must produce bit-identical distances, bounds,
abandonment decisions, *and* ``num_steps`` against the scalar reference;
CI enforces this on every push with and without numba installed.
"""

from __future__ import annotations

import logging
import math
import os

import numpy as np

__all__ = [
    "ENV_VAR",
    "KernelBackend",
    "register_backend",
    "available_backends",
    "default_backend_name",
    "get_backend",
    "numba_available",
    "NUMBA_IMPORT_ERROR",
]

#: Environment variable consulted when no explicit backend is requested.
ENV_VAR = "REPRO_KERNEL_BACKEND"

logger = logging.getLogger("repro.kernels")


class KernelBackend:
    """Interface every kernel backend implements.

    All methods receive pre-validated float64 arrays with band parameters
    already clamped to ``n - 1``; thresholds ``r`` are in distance space
    (the backend squares them).  Implementations must reproduce the scalar
    reference bit for bit: same distances and bounds, same abandonment
    decisions, same step counts.

    To add a backend: subclass, set a unique :attr:`name` and a
    :attr:`priority` reflecting its relative speed, implement the six
    kernel methods, and call :func:`register_backend` (conditionally, if
    the backend has optional dependencies).  The cross-backend parity
    suite in ``tests/test_kernels.py`` picks up registered backends
    automatically.
    """

    #: Unique registry key (also what ``--backend`` and the env var match).
    name: str = "abstract"
    #: Auto-selection rank; the highest-priority registered backend wins.
    priority: int = 0

    def dtw_single(self, q, c, radius: int, r: float) -> tuple[float, int, bool]:
        """Row-wise banded DTW of one pair: ``(distance, steps, abandoned)``."""
        raise NotImplementedError

    def dtw_batch(self, q, rows, radius: int, r: float):
        """Banded DTW of ``q`` against each row: ``(distances, steps, abandoned)``."""
        raise NotImplementedError

    def lcss_batch(self, q, rows, delta: int, epsilon: float, min_similarity: float):
        """Banded LCSS similarities: ``(similarities, steps, abandoned)``."""
        raise NotImplementedError

    def lb_keogh(self, q, upper, lower, r: float) -> tuple[float, int]:
        """Early-abandoning LB_Keogh against an expanded envelope."""
        raise NotImplementedError

    def lb_improved_pass2(self, q, upper, lower, raw_upper, raw_lower, radius: int) -> float:
        """Squared-gap total of LB_Improved's projection pass."""
        raise NotImplementedError

    def lb_improved_batch(self, rows, upper, lower, raw_upper, raw_lower, radius: int, r: float):
        """Two-pass LB_Improved per ``(m, n)`` row/envelope pair: ``(bounds, steps)``."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<KernelBackend {self.name!r} priority={self.priority}>"

    @staticmethod
    def _coerce(*arrays) -> tuple[np.ndarray, ...]:
        """Float64 views of ``arrays`` (copies only when conversion demands)."""
        return tuple(np.asarray(a, dtype=np.float64) for a in arrays)

    @staticmethod
    def _squared_threshold(r: float) -> float:
        return r * r if math.isfinite(r) else math.inf


_REGISTRY: dict[str, KernelBackend] = {}

#: The import failure message when numba could not be loaded, else ``None``.
NUMBA_IMPORT_ERROR: str | None = None


def register_backend(backend: KernelBackend, replace: bool = False) -> KernelBackend:
    """Add ``backend`` to the registry (``replace=True`` to override)."""
    if not backend.name or backend.name in ("auto", "abstract"):
        raise ValueError(f"invalid kernel backend name {backend.name!r}")
    if backend.name in _REGISTRY and not replace:
        raise ValueError(f"kernel backend {backend.name!r} is already registered")
    _REGISTRY[backend.name] = backend
    return backend


def available_backends() -> tuple[str, ...]:
    """Registered backend names, fastest (highest priority) first."""
    return tuple(sorted(_REGISTRY, key=lambda name: (-_REGISTRY[name].priority, name)))


def default_backend_name() -> str:
    """The backend auto-selection picks: the fastest one registered."""
    return available_backends()[0]


def get_backend(name: str | None = None) -> KernelBackend:
    """Resolve a kernel backend.

    Resolution order: an explicit ``name`` argument beats the
    ``REPRO_KERNEL_BACKEND`` environment variable, which beats the
    auto-selected fastest registered backend.  ``"auto"`` (anywhere in the
    chain) forces auto-selection.  An unknown or unavailable explicit name
    raises ``ValueError`` naming the registered backends.
    """
    if name is None:
        env = os.environ.get(ENV_VAR)
        if env is not None:
            name = env.strip() or None
    if name is None or name == "auto":
        return _REGISTRY[default_backend_name()]
    backend = _REGISTRY.get(name)
    if backend is None:
        if name == "numba" and NUMBA_IMPORT_ERROR is not None:
            raise ValueError(
                "kernel backend 'numba' is not available: numba failed to import "
                f"({NUMBA_IMPORT_ERROR}); install it with the [kernels] extra "
                "(pip install 'repro[kernels]'). Registered backends: "
                + ", ".join(available_backends())
            )
        raise ValueError(
            f"unknown kernel backend {name!r}; registered backends: "
            + ", ".join(available_backends())
            + " (or 'auto')"
        )
    return backend


def numba_available() -> bool:
    """Whether the compiled numba backend registered successfully."""
    return "numba" in _REGISTRY


# --- registration -------------------------------------------------------
# The built-in backends register at import time; the numba backend is
# import-gated and degrades to a *logged* (never raised) notice, so the
# library works identically -- just slower -- without the optional extra.

from repro.kernels.scalar import ScalarBackend  # noqa: E402
from repro.kernels.wavefront import WavefrontBackend  # noqa: E402

register_backend(ScalarBackend())
register_backend(WavefrontBackend())

try:
    from repro.kernels.numba_backend import NumbaBackend
except ImportError as exc:  # pragma: no cover - exercised by the no-numba CI leg
    NUMBA_IMPORT_ERROR = str(exc)
    logger.info(
        "numba kernel backend unavailable (%s); falling back to the pure-NumPy "
        "'wavefront' backend. Install the [kernels] extra for compiled kernels.",
        exc,
    )
else:
    register_backend(NumbaBackend())
