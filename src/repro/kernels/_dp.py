"""Shared dynamic-program kernel sources for the pluggable backends.

Every function in this module is written in the restricted Python subset
that Numba's ``@njit`` compiles in nopython mode: plain loops over float64
arrays, no closures, no calls into other Python functions.  The ``scalar``
backend executes these functions *interpreted* (they are the readable,
per-cell reference implementations of the paper's pseudocode); the
``numba`` backend compiles the very same function objects.  Because both
backends run the identical sequence of floating-point operations, their
answers -- and their ``num_steps`` accounting -- agree bit for bit by
construction, and the test suite holds the pure-NumPy ``wavefront``
backend to the same standard.

Conventions shared by every kernel:

* inputs are pre-validated, float64, with band parameters already clamped
  to ``n - 1`` by the public wrappers in :mod:`repro.distances`;
* ``threshold`` is the *squared* abandonment threshold (``r * r``), or
  ``+inf`` when no abandonment is requested -- comparisons against ``+inf``
  are simply never true, so no separate flag is needed;
* accumulations are strictly sequential (left to right), matching the
  library-wide rule that every partial sum is a cumulative sum, never a
  pairwise/BLAS reduction.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "diag_bounds",
    "dtw_single",
    "dtw_batch",
    "lcss_batch",
    "lb_keogh",
    "lb_improved_pass2",
    "lb_improved_batch",
]


def diag_bounds(s: int, n: int, radius: int) -> tuple[int, int]:
    """Inclusive ``i`` range of banded cells on anti-diagonal ``i + j = s``.

    The canonical band-geometry helper (previously duplicated by the DTW
    and LCSS modules); the jitted kernels inline the same expressions.
    """
    lo = max(0, s - (n - 1), (s - radius + 1) // 2)
    hi = min(n - 1, s, (s + radius) // 2)
    return lo, hi


def dtw_single(q, c, radius, threshold):
    """Row-wise banded DTW for one pair: ``(distance, steps, abandoned)``.

    Abandons after any row whose minimum exceeds ``threshold`` (every
    warping path visits every row, so this is admissible).  The two row
    buffers carry one +inf sentinel beyond each end of the written band,
    which is exactly the set of out-of-band cells the next row can read
    (the band shifts by at most one per row).
    """
    n = q.shape[0]
    prev = np.empty(n)
    cur = np.empty(n)
    for j in range(n):
        prev[j] = np.inf
    steps = 0
    for i in range(n):
        j_lo = i - radius
        if j_lo < 0:
            j_lo = 0
        j_hi = i + radius
        if j_hi > n - 1:
            j_hi = n - 1
        if j_lo > 0:
            cur[j_lo - 1] = np.inf
        row_min = np.inf
        qi = q[i]
        for j in range(j_lo, j_hi + 1):
            diff = qi - c[j]
            if i == 0 and j == 0:
                best_prev = 0.0
            else:
                best_prev = prev[j]
                if j > 0:
                    if prev[j - 1] < best_prev:
                        best_prev = prev[j - 1]
                    if cur[j - 1] < best_prev:
                        best_prev = cur[j - 1]
            cost = diff * diff + best_prev
            cur[j] = cost
            if cost < row_min:
                row_min = cost
            steps += 1
        if row_min > threshold:
            return np.inf, steps, True
        if j_hi + 1 < n:
            cur[j_hi + 1] = np.inf
        tmp = prev
        prev = cur
        cur = tmp
    final = prev[n - 1]
    if final > threshold:
        return np.inf, steps, True
    return math.sqrt(final), steps, False


def dtw_batch(q, rows, radius, threshold):
    """Anti-diagonal banded DTW of ``q`` against every row of ``rows``.

    Per-candidate twin of the vectorised wavefront kernel: each candidate
    walks the anti-diagonals with three rotating cell buffers and is
    abandoned once the minima of its two most recent diagonals both exceed
    ``threshold`` (every complete path touches one of any two consecutive
    anti-diagonals).  Steps are charged per diagonal *before* the doom
    check, matching the batched kernel's accounting exactly.  Returns
    ``(distances, steps, abandoned)``.
    """
    k = rows.shape[0]
    n = q.shape[0]
    distances = np.full(k, np.inf)
    abandoned = np.zeros(k, dtype=np.bool_)
    total_steps = 0
    p1 = np.empty(n)
    p2 = np.empty(n)
    wr = np.empty(n)
    for t in range(k):
        for x in range(n):
            p1[x] = np.inf
            p2[x] = np.inf
        p1_min = np.inf
        p2_min = np.inf
        doomed = False
        for s in range(2 * n - 1):
            lo = (s - radius + 1) // 2
            if lo < 0:
                lo = 0
            if lo < s - (n - 1):
                lo = s - (n - 1)
            hi = (s + radius) // 2
            if hi > n - 1:
                hi = n - 1
            if hi > s:
                hi = s
            if lo > hi:
                # Empty diagonal (radius=0, odd s): rotate in an all-inf
                # diagonal so predecessor reads stay depth-aligned.
                tmp = p2
                p2 = p1
                p2_min = p1_min
                p1 = tmp
                for x in range(n):
                    p1[x] = np.inf
                p1_min = np.inf
                continue
            if lo > 0:
                wr[lo - 1] = np.inf
            cur_min = np.inf
            for i in range(lo, hi + 1):
                j = s - i
                d = q[i] - rows[t, j]
                local = d * d
                if s == 0:
                    cell = local
                else:
                    up = p1[i - 1] if i > 0 else np.inf
                    left = p1[i]
                    diag = p2[i - 1] if i > 0 else np.inf
                    best_prev = up if up < left else left
                    if diag < best_prev:
                        best_prev = diag
                    cell = local + best_prev
                wr[i] = cell
                if cell < cur_min:
                    cur_min = cell
            total_steps += hi - lo + 1
            if hi + 1 < n:
                wr[hi + 1] = np.inf
            tmp = p2
            p2 = p1
            p2_min = p1_min
            p1 = wr
            p1_min = cur_min
            wr = tmp
            two_diag_min = p1_min if p1_min < p2_min else p2_min
            if two_diag_min > threshold:
                doomed = True
                break
        if doomed:
            abandoned[t] = True
            continue
        final = p1[n - 1]
        if np.isfinite(final) and final <= threshold:
            distances[t] = math.sqrt(final)
        else:
            abandoned[t] = True
    return distances, total_steps, abandoned


def lcss_batch(q, rows, delta, epsilon, required):
    """Anti-diagonal banded LCSS of ``q`` against every row of ``rows``.

    ``required`` is the match count needed to stay viable
    (``min_similarity * n``); a candidate is abandoned once even matching
    every remaining point could not reach it.  Abandoned candidates report
    similarity ``-inf``.  Returns ``(similarities, steps, abandoned)``.
    """
    k = rows.shape[0]
    n = q.shape[0]
    sims = np.full(k, -np.inf)
    abandoned = np.zeros(k, dtype=np.bool_)
    total_steps = 0
    p1 = np.empty(n)
    p2 = np.empty(n)
    wr = np.empty(n)
    for t in range(k):
        for x in range(n):
            p1[x] = 0.0
            p2[x] = 0.0
        p1_best = 0.0
        p2_best = 0.0
        doomed = False
        for s in range(2 * n - 1):
            lo = (s - delta + 1) // 2
            if lo < 0:
                lo = 0
            if lo < s - (n - 1):
                lo = s - (n - 1)
            hi = (s + delta) // 2
            if hi > n - 1:
                hi = n - 1
            if hi > s:
                hi = s
            if lo > hi:
                tmp = p2
                p2 = p1
                p2_best = p1_best
                p1 = tmp
                for x in range(n):
                    p1[x] = 0.0
                p1_best = 0.0
                continue
            if lo > 0:
                wr[lo - 1] = 0.0
            cur_best = -np.inf
            for i in range(lo, hi + 1):
                j = s - i
                d = q[i] - rows[t, j]
                if d < 0.0:
                    d = -d
                match = 1.0 if d <= epsilon else 0.0
                if s == 0:
                    cell = match
                else:
                    up = p1[i - 1] if i > 0 else 0.0
                    left = p1[i]
                    diag = (p2[i - 1] if i > 0 else 0.0) + match
                    cell = up if up > left else left
                    if diag > cell:
                        cell = diag
                wr[i] = cell
                if cell > cur_best:
                    cur_best = cell
            total_steps += hi - lo + 1
            if hi + 1 < n:
                wr[hi + 1] = 0.0
            tmp = p2
            p2 = p1
            p2_best = p1_best
            p1 = wr
            p1_best = cur_best
            wr = tmp
            if required > 0.0:
                # From any cell on diagonal s, at most n - 1 - ceil(s/2)
                # further matches remain (a match advances both coordinates).
                remaining = n - 1 - ((s + 1) // 2)
                reach = p1_best if p1_best > p2_best else p2_best
                if reach + remaining < required:
                    doomed = True
                    break
        if doomed:
            abandoned[t] = True
            continue
        sims[t] = p1[n - 1] / n
    return sims, total_steps, abandoned


def lb_keogh(q, upper, lower, threshold):
    """Early-abandoning LB_Keogh against an expanded envelope.

    The sequential-scan reference of the paper's Table 5: returns
    ``(bound, steps)`` where the bound is ``+inf`` and ``steps`` the
    1-based index of the violating element when the running squared sum
    exceeds ``threshold``.
    """
    n = q.shape[0]
    acc = 0.0
    for i in range(n):
        x = q[i]
        a = x - upper[i]
        if a < 0.0:
            a = 0.0
        b = lower[i] - x
        if b < 0.0:
            b = 0.0
        acc += a * a + b * b
        if acc > threshold:
            return np.inf, i + 1
    return math.sqrt(acc), n


def lb_improved_pass2(q, upper, lower, raw_upper, raw_lower, radius):
    """Second pass of Lemire's LB_Improved: the squared-gap total.

    Projects ``q`` onto the expanded envelope, takes the windowed extrema
    of the projection (the Sakoe-Chiba envelope of the projection), and
    sequentially accumulates the squared gap between the raw wedge arms
    and that envelope.  Returns the squared total; the caller combines it
    with the squared first pass before the final square root.
    """
    n = q.shape[0]
    if radius > n - 1:
        radius = n - 1
    proj = np.empty(n)
    for i in range(n):
        x = q[i]
        if x < lower[i]:
            x = lower[i]
        if x > upper[i]:
            x = upper[i]
        proj[i] = x
    acc = 0.0
    for i in range(n):
        w_lo = i - radius
        if w_lo < 0:
            w_lo = 0
        w_hi = i + radius
        if w_hi > n - 1:
            w_hi = n - 1
        env_hi = -np.inf
        env_lo = np.inf
        for j in range(w_lo, w_hi + 1):
            v = proj[j]
            if v > env_hi:
                env_hi = v
            if v < env_lo:
                env_lo = v
        g = env_lo - raw_upper[i]
        g2 = raw_lower[i] - env_hi
        if g2 > g:
            g = g2
        if g < 0.0:
            g = 0.0
        acc += g * g
    return acc


def lb_improved_batch(rows, upper, lower, raw_upper, raw_lower, radius, threshold):
    """Two-pass LB_Improved of every row against its own ``(m, n)`` envelope.

    Per row: the early-abandoning LB_Keogh first pass (abandoned rows
    report ``+inf`` and the scalar loop's step count), then -- for
    survivors, when ``radius > 0`` -- the projection second pass charged
    ``2n`` extra steps.  The two squared totals are combined with a single
    addition before the square root, matching the batched NumPy kernel.
    Returns ``(bounds, steps)``.
    """
    m = rows.shape[0]
    n = rows.shape[1]
    eff_radius = radius
    if eff_radius > n - 1:
        eff_radius = n - 1
    bounds = np.full(m, np.inf)
    steps = np.empty(m, dtype=np.int64)
    proj = np.empty(n)
    for t in range(m):
        acc = 0.0
        cut = -1
        for i in range(n):
            x = rows[t, i]
            a = x - upper[t, i]
            if a < 0.0:
                a = 0.0
            b = lower[t, i] - x
            if b < 0.0:
                b = 0.0
            acc += a * a + b * b
            if acc > threshold:
                cut = i
                break
        if cut >= 0:
            steps[t] = cut + 1
            continue
        steps[t] = n
        total = acc
        if radius > 0:
            for i in range(n):
                x = rows[t, i]
                if x < lower[t, i]:
                    x = lower[t, i]
                if x > upper[t, i]:
                    x = upper[t, i]
                proj[i] = x
            acc2 = 0.0
            for i in range(n):
                w_lo = i - eff_radius
                if w_lo < 0:
                    w_lo = 0
                w_hi = i + eff_radius
                if w_hi > n - 1:
                    w_hi = n - 1
                env_hi = -np.inf
                env_lo = np.inf
                for j in range(w_lo, w_hi + 1):
                    v = proj[j]
                    if v > env_hi:
                        env_hi = v
                    if v < env_lo:
                        env_lo = v
                g = env_lo - raw_upper[t, i]
                g2 = raw_lower[t, i] - env_hi
                if g2 > g:
                    g = g2
                if g < 0.0:
                    g = 0.0
                acc2 += g * g
            total = acc + acc2
            steps[t] = 3 * n
        bounds[t] = math.sqrt(total)
    return bounds, steps
