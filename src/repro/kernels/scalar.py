"""The ``scalar`` reference backend: interpreted per-cell dynamic programs.

This backend executes the shared kernel sources of
:mod:`repro.kernels._dp` as plain Python.  It is deliberately the slowest
backend -- its job is to be the unambiguous ground truth: the operation
order every compiled or vectorised backend must reproduce bit for bit.

The one exception is :func:`dtw_single_pair`, the row-wise per-pair DTW
over Python lists.  It predates the backend registry (it was
``distances.dtw._dtw_single``) and remains the fastest *interpreted*
implementation of the H-Merge leaf hot path -- list indexing beats NumPy
scalar indexing by a wide margin -- so both the scalar and wavefront
backends route ``dtw_single`` through it.  Its float operations are
ordered identically to the array twin in ``_dp.dtw_single``, which the
parity tests verify.
"""

from __future__ import annotations

import math

import numpy as np

from repro.kernels import KernelBackend
from repro.kernels import _dp

__all__ = ["ScalarBackend", "dtw_single_pair"]


def dtw_single_pair(q, c, radius: int, r: float = math.inf) -> tuple[float, int, bool]:
    """Row-wise banded DTW for a single (pre-validated) pair.

    The anti-diagonal batch kernels pay ~10 small-array numpy dispatches
    per diagonal, which dominates when comparing one pair of short series
    -- exactly the H-Merge leaf case.  This kernel runs the same dynamic
    program over Python floats, abandoning after any row whose minimum
    exceeds ``r^2`` (every warping path visits every row, so this is
    admissible).  Returns ``(distance, steps, abandoned)``.
    """
    q_list = np.asarray(q, dtype=np.float64).tolist()
    c_list = np.asarray(c, dtype=np.float64).tolist()
    n = len(q_list)
    threshold = r * r if math.isfinite(r) else math.inf
    inf = math.inf
    prev = [inf] * n
    steps = 0
    for i in range(n):
        j_lo = max(0, i - radius)
        j_hi = min(n - 1, i + radius)
        cur = [inf] * n
        row_min = inf
        qi = q_list[i]
        for j in range(j_lo, j_hi + 1):
            diff = qi - c_list[j]
            if i == 0 and j == 0:
                best_prev = 0.0
            else:
                best_prev = prev[j]
                if j > 0:
                    if prev[j - 1] < best_prev:
                        best_prev = prev[j - 1]
                    if cur[j - 1] < best_prev:
                        best_prev = cur[j - 1]
            cost = diff * diff + best_prev
            cur[j] = cost
            if cost < row_min:
                row_min = cost
            steps += 1
        if row_min > threshold:
            return math.inf, steps, True
        prev = cur
    final = prev[n - 1]
    if final > threshold:
        return math.inf, steps, True
    return math.sqrt(final), steps, False


class ScalarBackend(KernelBackend):
    """Interpreted reference kernels (the shared ``_dp`` sources, un-jitted)."""

    name = "scalar"
    priority = 0

    def dtw_single(self, q, c, radius, r):
        return dtw_single_pair(q, c, radius, r)

    def dtw_batch(self, q, rows, radius, r):
        q, rows = self._coerce(q, rows)
        dists, steps, abandoned = _dp.dtw_batch(q, rows, radius, self._squared_threshold(r))
        return dists, int(steps), abandoned

    def lcss_batch(self, q, rows, delta, epsilon, min_similarity):
        q, rows = self._coerce(q, rows)
        required = min_similarity * q.shape[0]
        sims, steps, abandoned = _dp.lcss_batch(q, rows, delta, epsilon, required)
        return sims, int(steps), abandoned

    def lb_keogh(self, q, upper, lower, r):
        q, upper, lower = self._coerce(q, upper, lower)
        bound, steps = _dp.lb_keogh(q, upper, lower, self._squared_threshold(r))
        return float(bound), int(steps)

    def lb_improved_pass2(self, q, upper, lower, raw_upper, raw_lower, radius):
        q, upper, lower, raw_upper, raw_lower = self._coerce(
            q, upper, lower, raw_upper, raw_lower
        )
        return float(_dp.lb_improved_pass2(q, upper, lower, raw_upper, raw_lower, radius))

    def lb_improved_batch(self, rows, upper, lower, raw_upper, raw_lower, radius, r):
        rows, u, lo, raw_u, raw_lo = np.broadcast_arrays(
            *self._coerce(rows, upper, lower, raw_upper, raw_lower)
        )
        rows = np.atleast_2d(rows)
        u, lo = np.atleast_2d(u), np.atleast_2d(lo)
        raw_u, raw_lo = np.atleast_2d(raw_u), np.atleast_2d(raw_lo)
        bounds, steps = _dp.lb_improved_batch(
            rows, u, lo, raw_u, raw_lo, radius, self._squared_threshold(r)
        )
        return bounds, steps
