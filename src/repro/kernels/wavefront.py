"""The ``wavefront`` backend: pure-NumPy anti-diagonal kernels.

Cells on one anti-diagonal (constant ``i + j``) of the warping matrix have
no mutual dependencies, so each diagonal is one vectorised update and a
whole chunk of candidates advances simultaneously.  The DTW kernel here
improves on the original batched implementation by keeping the dynamic
program in **three rotating ``(k, n+1)`` buffers** with a permanent +inf
sentinel column (cell ``i`` lives in column ``i + 1``): predecessor reads
become plain slices -- no per-diagonal ``np.full`` allocation, no pad
column concatenation -- while the band edges are kept +inf by clearing one
column on each side of the written band (sufficient because the band
boundaries are non-decreasing in ``s``, so every future read window is
covered).  The floating-point operation sequence per cell is unchanged, so
results and step counts stay bit-identical to the scalar reference.

This backend has no dependencies beyond NumPy and is the auto-selected
fallback whenever the optional numba backend is unavailable.
"""

from __future__ import annotations

import math

import numpy as np

from repro.kernels import KernelBackend
from repro.kernels._dp import diag_bounds
from repro.kernels.scalar import dtw_single_pair

__all__ = ["WavefrontBackend"]


def _dtw_batch_wavefront(q, rows, radius: int, threshold: float):
    """Vectorised anti-diagonal banded DTW with sentinel-column buffers."""
    from repro.core.batch import shared_workspace

    n = q.size
    k = rows.shape[0]
    workspace = shared_workspace()
    p2 = workspace.scratch("wavefront_dtw_a", (k, n + 1))
    p1 = workspace.scratch("wavefront_dtw_b", (k, n + 1))
    wr = workspace.scratch("wavefront_dtw_c", (k, n + 1))
    p2.fill(np.inf)
    p1.fill(np.inf)
    p1_min = np.full(k, np.inf)
    p2_min = np.full(k, np.inf)
    alive = np.ones(k, dtype=bool)
    steps = 0
    finite = math.isfinite(threshold)

    for s in range(2 * n - 1):
        lo, hi = diag_bounds(s, n, radius)
        if lo > hi:
            # Empty diagonal (radius=0, odd s): rotate in an all-inf
            # diagonal so predecessor reads stay depth-aligned.
            wr.fill(np.inf)
            p2, p1, wr = p1, wr, p2
            p2_min = p1_min
            p1_min = np.full(k, np.inf)
            continue
        width = hi - lo + 1
        # Cell i of diagonal s lands in column i+1; its j-coordinate runs
        # s-lo down to s-hi as i runs lo..hi (hence the reversed slice).
        target = wr[:, lo + 1 : hi + 2]
        np.subtract(
            rows[:, s - hi : s - lo + 1][:, ::-1], q[lo : hi + 1][np.newaxis, :], out=target
        )
        np.square(target, out=target)
        if s > 0:
            # Transitions: (i-1, j) and (i, j-1) live on diagonal s-1 at
            # columns i and i+1; (i-1, j-1) on diagonal s-2 at column i.
            up = p1[:, lo : hi + 1]
            left = p1[:, lo + 1 : hi + 2]
            diag = p2[:, lo : hi + 1]
            best_prev = np.minimum(up, left)
            np.minimum(best_prev, diag, out=best_prev)
            target += best_prev
        steps += int(alive.sum()) * width
        new_min = target.min(axis=1)
        # Re-arm the sentinels one column beyond each end of the written
        # band; the band edges never retreat, so this covers every read
        # window of the next two diagonals.
        wr[:, lo] = np.inf
        if hi + 2 <= n:
            wr[:, hi + 2] = np.inf
        p2, p1, wr = p1, wr, p2
        p2_min = p1_min
        p1_min = new_min
        if finite:
            # A complete path must touch anti-diagonal s or s+1, so once
            # the minima of the two most recent diagonals both exceed r^2
            # no path can finish within r.
            doomed = (np.minimum(p1_min, p2_min) > threshold) & alive
            if doomed.any():
                alive &= ~doomed
                if not alive.any():
                    break

    distances = np.full(k, np.inf)
    final = p1[:, n].copy()
    finished = alive & np.isfinite(final)
    if finite:
        finished &= final <= threshold
    distances[finished] = np.sqrt(final[finished])
    abandoned = ~finished
    return distances, steps, abandoned


def _lcss_batch_wavefront(q, rows, delta: int, epsilon: float, required: float):
    """Vectorised anti-diagonal banded LCSS (zero-padded buffers, max DP)."""
    n = q.size
    k = rows.shape[0]

    # Missing predecessors -- the virtual row/column -1 and cells outside
    # the band -- are read as 0.  This is exact: every optimal in-band match
    # sequence can be realised by a skip path that never leaves the band,
    # and LCSS lengths are non-negative, so clamping missing cells to 0
    # neither gains nor loses matches.
    prev1 = np.zeros((k, n))
    prev2 = np.zeros((k, n))
    alive = np.ones(k, dtype=bool)
    prev1_best = np.zeros(k)
    prev2_best = np.zeros(k)
    steps = 0

    for s in range(2 * n - 1):
        lo, hi = diag_bounds(s, n, delta)
        if lo > hi:
            prev2, prev2_best = prev1, prev1_best
            prev1 = np.zeros((k, n))
            prev1_best = np.zeros(k)
            continue
        width = hi - lo + 1
        q_slice = q[lo : hi + 1]
        c_slice = rows[:, s - hi : s - lo + 1][:, ::-1]
        match = (np.abs(c_slice - q_slice[np.newaxis, :]) <= epsilon).astype(np.float64)

        if s == 0:
            current = match
        else:
            up = prev1[:, lo - 1 : hi] if lo >= 1 else _pad_left_zeros(prev1[:, lo:hi], k)
            left = prev1[:, lo : hi + 1]
            diag = prev2[:, lo - 1 : hi] if lo >= 1 else _pad_left_zeros(prev2[:, lo:hi], k)
            # L[i,j] = max(L[i-1,j], L[i,j-1], L[i-1,j-1] + match(i,j)) is
            # the standard skip/extend formulation of LCSS.
            current = np.maximum(np.maximum(up, left), diag + match)

        steps += int(alive.sum()) * width

        new_best = current.max(axis=1)
        prev2 = prev1
        prev2_best = prev1_best
        prev1 = np.zeros((k, n))
        prev1[:, lo : hi + 1] = current
        prev1_best = new_best

        if required > 0:
            # From any cell on diagonal s, at most n - 1 - ceil(s/2) further
            # matches are possible (each match advances both coordinates).
            remaining = n - 1 - ((s + 1) // 2)
            reachable = np.maximum(prev1_best, prev2_best) + remaining
            doomed = (reachable < required) & alive
            if doomed.any():
                alive &= ~doomed
                if not alive.any():
                    break

    sims = np.full(k, -np.inf)
    final = prev1[:, n - 1]
    # A candidate that survived to the last anti-diagonal is finished; a
    # finished candidate that still misses the floor is reported as-is.
    # Only truly abandoned candidates carry -inf.
    sims[alive] = final[alive] / n
    abandoned = ~alive
    return sims, steps, abandoned


def _pad_left_zeros(block: np.ndarray, k: int) -> np.ndarray:
    pad = np.zeros((k, 1))
    if block.shape[1] == 0:
        return pad
    return np.concatenate([pad, block], axis=1)


class WavefrontBackend(KernelBackend):
    """Pure-NumPy anti-diagonal kernels (the no-new-dependencies default)."""

    name = "wavefront"
    priority = 10

    def dtw_single(self, q, c, radius, r):
        # Per-pair DP over short series: the interpreted list loop beats
        # any small-array NumPy formulation, so the wavefront backend
        # shares the scalar implementation for this one operation.
        return dtw_single_pair(q, c, radius, r)

    def dtw_batch(self, q, rows, radius, r):
        q, rows = self._coerce(q, rows)
        return _dtw_batch_wavefront(q, rows, radius, self._squared_threshold(r))

    def lcss_batch(self, q, rows, delta, epsilon, min_similarity):
        q, rows = self._coerce(q, rows)
        required = min_similarity * q.shape[0]
        return _lcss_batch_wavefront(q, rows, delta, epsilon, required)

    def lb_keogh(self, q, upper, lower, r):
        from repro.core.batch import shared_workspace
        from repro.distances.euclidean import _ea_envelope_lb

        return _ea_envelope_lb(q, upper, lower, r, workspace=shared_workspace())

    def lb_improved_pass2(self, q, upper, lower, raw_upper, raw_lower, radius):
        from repro.timeseries.ops import sliding_envelope

        q, upper, lower, raw_upper, raw_lower = self._coerce(
            q, upper, lower, raw_upper, raw_lower
        )
        projection = np.clip(q, lower, upper)
        env_hi, env_lo = sliding_envelope(projection, projection, radius)
        gap = np.maximum(env_lo - raw_upper, raw_lower - env_hi)
        np.maximum(gap, 0.0, out=gap)
        np.square(gap, out=gap)
        # Sequential (cumulative) sum, not a pairwise/BLAS reduction: the
        # library-wide accumulation rule that keeps backends bit-identical.
        return float(np.cumsum(gap)[-1])

    def lb_improved_batch(self, rows, upper, lower, raw_upper, raw_lower, radius, r):
        from repro.core.batch import batch_lb_improved, shared_workspace

        return batch_lb_improved(
            rows,
            upper,
            lower,
            raw_upper,
            raw_lower,
            radius,
            r=r,
            workspace=shared_workspace(),
        )
