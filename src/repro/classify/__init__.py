"""Rotation-invariant 1-NN classification and Table-8 evaluation."""

from repro.classify.evaluation import (
    TableEightRow,
    evaluate_dataset,
    holdout_error,
    train_warping_window,
)
from repro.classify.knn import NearestNeighborClassifier, leave_one_out_error

__all__ = [
    "NearestNeighborClassifier", "leave_one_out_error", "TableEightRow",
    "evaluate_dataset", "holdout_error", "train_warping_window",
]
