"""Rotation-invariant one-nearest-neighbour classification (Table 8).

The paper's effectiveness experiments classify shapes with 1-NN under
rotation-invariant Euclidean / DTW distance, evaluated by leave-one-out.
The classifier here rides on the wedge search engine, so classifying a
dataset *is* a sequence of rotation-invariant NN queries -- every speedup
of Section 4 applies directly.
"""

from __future__ import annotations


import numpy as np

from repro.core.search import RotationQuery, SearchResult, wedge_search
from repro.datasets.shapes_data import Dataset
from repro.distances.base import Measure

__all__ = ["NearestNeighborClassifier", "leave_one_out_error"]


class NearestNeighborClassifier:
    """1-NN classifier under a rotation-invariant distance measure.

    Parameters
    ----------
    measure:
        Euclidean, DTW, or LCSS measure.
    mirror:
        Match mirror images too (enantiomorphic invariance).
    linkage_method:
        Wedge-tree construction method for the underlying search.
    """

    def __init__(self, measure: Measure, mirror: bool = False, linkage_method: str = "average"):
        self.measure = measure
        self.mirror = mirror
        self.linkage_method = linkage_method
        self._train_series: np.ndarray | None = None
        self._train_labels: np.ndarray | None = None

    def fit(self, series, labels) -> "NearestNeighborClassifier":
        """Store the training collection (1-NN is instance-based)."""
        mat = np.asarray(series, dtype=np.float64)
        lab = np.asarray(labels)
        if mat.ndim != 2:
            raise ValueError(f"series must be (N, n), got shape {mat.shape}")
        if lab.shape != (mat.shape[0],):
            raise ValueError(f"labels shape {lab.shape} does not match {mat.shape[0]} series")
        if mat.shape[0] == 0:
            raise ValueError("training set must not be empty")
        self._train_series = mat
        self._train_labels = lab
        return self

    def nearest(self, query) -> SearchResult:
        """The rotation-invariant nearest training instance."""
        if self._train_series is None:
            raise RuntimeError("classifier has not been fitted")
        rq = RotationQuery(query, mirror=self.mirror, linkage_method=self.linkage_method)
        return wedge_search(self._train_series, rq, self.measure)

    def predict_one(self, query):
        """Predicted label for one series."""
        result = self.nearest(query)
        if not result.found:
            raise RuntimeError("no nearest neighbour found (empty training set?)")
        return self._train_labels[result.index]

    def predict(self, series) -> np.ndarray:
        """Predicted labels for a batch of series."""
        return np.asarray([self.predict_one(row) for row in np.asarray(series, dtype=np.float64)])


def leave_one_out_error(
    dataset: Dataset,
    measure: Measure,
    mirror: bool = False,
    max_instances: int | None = None,
    rng: np.random.Generator | None = None,
) -> float:
    """Leave-one-out 1-NN error rate, in percent (the Table 8 metric).

    Parameters
    ----------
    dataset:
        The labelled collection.
    measure:
        The distance measure under evaluation.
    mirror:
        Enantiomorphic matching.
    max_instances:
        Evaluate only a random subsample of this many held-out queries
        (every query still searches the full remainder); ``None`` evaluates
        all ``N``.
    rng:
        Randomness for the subsample (required when ``max_instances`` is
        set below ``N``).
    """
    n_total = len(dataset)
    if n_total < 2:
        raise ValueError("leave-one-out needs at least 2 instances")
    indices = np.arange(n_total)
    if max_instances is not None and max_instances < n_total:
        if rng is None:
            rng = np.random.default_rng(0)
        indices = rng.permutation(n_total)[:max_instances]
    errors = 0
    for held_out in indices:
        rest = np.concatenate([np.arange(held_out), np.arange(held_out + 1, n_total)])
        clf = NearestNeighborClassifier(measure, mirror=mirror)
        clf.fit(dataset.series[rest], dataset.labels[rest])
        predicted = clf.predict_one(dataset.series[held_out])
        if predicted != dataset.labels[held_out]:
            errors += 1
    return 100.0 * errors / len(indices)
