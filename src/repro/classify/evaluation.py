"""Evaluation utilities: warping-window training and error summaries.

Table 8's DTW column reports the error at the best Sakoe-Chiba window
``R``, "learned by looking only at the training data".  This module
reproduces that protocol: candidate windows are scored by leave-one-out on
a training split and the winner is evaluated untouched.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.classify.knn import NearestNeighborClassifier, leave_one_out_error
from repro.datasets.shapes_data import Dataset
from repro.distances.dtw import DTWMeasure
from repro.distances.euclidean import EuclideanMeasure

__all__ = ["train_warping_window", "holdout_error", "TableEightRow", "evaluate_dataset"]


def train_warping_window(
    train: Dataset,
    candidate_radii=(1, 2, 3),
    max_instances: int | None = None,
    rng: np.random.Generator | None = None,
) -> int:
    """Pick the DTW window ``R`` by leave-one-out on the training data only."""
    if not candidate_radii:
        raise ValueError("need at least one candidate radius")
    best_r = None
    best_error = float("inf")
    for radius in candidate_radii:
        error = leave_one_out_error(
            train, DTWMeasure(radius), max_instances=max_instances, rng=rng
        )
        if error < best_error:
            best_error = error
            best_r = radius
    return int(best_r)


def holdout_error(train: Dataset, test: Dataset, measure) -> float:
    """Train-on-train, test-on-test 1-NN error rate in percent."""
    if len(test) == 0:
        raise ValueError("test set must not be empty")
    clf = NearestNeighborClassifier(measure).fit(train.series, train.labels)
    predictions = clf.predict(test.series)
    return 100.0 * float(np.mean(predictions != test.labels))


@dataclass
class TableEightRow:
    """One evaluated row of Table 8: measured vs published error rates."""

    name: str
    n_classes: int
    n_instances: int
    euclidean_error: float
    dtw_error: float
    dtw_radius: int
    paper_euclidean_error: float | None = None
    paper_dtw_error: float | None = None

    def format(self) -> str:
        paper_ed = f"{self.paper_euclidean_error:.2f}" if self.paper_euclidean_error is not None else "-"
        paper_dtw = f"{self.paper_dtw_error:.2f}" if self.paper_dtw_error is not None else "-"
        return (
            f"{self.name:<14} classes={self.n_classes:<3} N={self.n_instances:<5} "
            f"ED={self.euclidean_error:6.2f}% (paper {paper_ed}%)  "
            f"DTW={self.dtw_error:6.2f}% {{R={self.dtw_radius}}} (paper {paper_dtw}%)"
        )


def evaluate_dataset(
    dataset: Dataset,
    candidate_radii=(1, 2, 3),
    max_instances: int | None = None,
    seed: int = 0,
    paper_euclidean_error: float | None = None,
    paper_dtw_error: float | None = None,
) -> TableEightRow:
    """Full Table-8 protocol on one dataset.

    Leave-one-out error under Euclidean distance, then under DTW at the
    window radius trained by nested leave-one-out (using the same
    evaluation subsample for comparability).
    """
    rng = np.random.default_rng(seed)
    ed_error = leave_one_out_error(
        dataset, EuclideanMeasure(), max_instances=max_instances, rng=np.random.default_rng(seed)
    )
    radius = train_warping_window(
        dataset, candidate_radii, max_instances=max_instances, rng=np.random.default_rng(seed + 1)
    )
    dtw_error = leave_one_out_error(
        dataset, DTWMeasure(radius), max_instances=max_instances, rng=np.random.default_rng(seed)
    )
    return TableEightRow(
        name=dataset.name,
        n_classes=dataset.n_classes,
        n_instances=len(dataset),
        euclidean_error=ed_error,
        dtw_error=dtw_error,
        dtw_radius=radius,
        paper_euclidean_error=paper_euclidean_error,
        paper_dtw_error=paper_dtw_error,
    )
