"""Terminal visualisation: series, wedges, and warping paths as ASCII art.

A library about envelopes and alignments should let you *see* them without
a plotting stack.  These renderers are used by the examples and are handy
in a REPL::

    >>> from repro import star_polygon, polygon_to_series
    >>> from repro.viz import plot_series
    >>> print(plot_series(polygon_to_series(star_polygon(5), 80), height=8))
"""

from __future__ import annotations

import numpy as np

from repro.timeseries.ops import as_series

__all__ = ["plot_series", "plot_wedge", "plot_warping_matrix"]


def _scale_to_rows(values: np.ndarray, lo: float, hi: float, height: int) -> np.ndarray:
    span = hi - lo
    if span <= 0:
        return np.full(values.shape, height // 2, dtype=int)
    rows = ((values - lo) / span * (height - 1)).round().astype(int)
    return np.clip(rows, 0, height - 1)


def plot_series(series, height: int = 12, width: int | None = None, marker: str = "*") -> str:
    """Render one series as an ASCII scatter, highest values on top."""
    arr = as_series(series)
    if height < 2:
        raise ValueError(f"height must be at least 2, got {height}")
    if width is not None and width < 2:
        raise ValueError(f"width must be at least 2, got {width}")
    if width is not None and arr.size > width:
        idx = np.linspace(0, arr.size - 1, width).round().astype(int)
        arr = arr[idx]
    rows = _scale_to_rows(arr, float(arr.min()), float(arr.max()), height)
    grid = [[" "] * arr.size for _ in range(height)]
    for col, row in enumerate(rows):
        grid[height - 1 - row][col] = marker
    return "\n".join("".join(line) for line in grid)


def plot_wedge(wedge_or_upper, lower=None, candidate=None, height: int = 12, width: int = 72) -> str:
    """Render a wedge's envelope band, optionally with a candidate overlaid.

    Accepts either a :class:`~repro.core.wedge.Wedge` or explicit
    ``(upper, lower)`` arms.  The band is drawn with ``:`` between the
    arms (``-`` on the arms themselves); the candidate, if given, with
    ``*`` -- so out-of-envelope excursions (the LB_Keogh contributions)
    are immediately visible.
    """
    if lower is None:
        upper_arr = np.asarray(wedge_or_upper.upper, dtype=np.float64)
        lower_arr = np.asarray(wedge_or_upper.lower, dtype=np.float64)
    else:
        upper_arr = as_series(wedge_or_upper)
        lower_arr = as_series(lower)
    if upper_arr.size != lower_arr.size:
        raise ValueError("envelope arms differ in length")
    cand = as_series(candidate) if candidate is not None else None
    if cand is not None and cand.size != upper_arr.size:
        raise ValueError("candidate length does not match the envelope")

    n = upper_arr.size
    if n > width:
        idx = np.linspace(0, n - 1, width).round().astype(int)
        upper_arr, lower_arr = upper_arr[idx], lower_arr[idx]
        if cand is not None:
            cand = cand[idx]
        n = width

    stack = [upper_arr, lower_arr] + ([cand] if cand is not None else [])
    lo = float(min(a.min() for a in stack))
    hi = float(max(a.max() for a in stack))
    up_rows = _scale_to_rows(upper_arr, lo, hi, height)
    lo_rows = _scale_to_rows(lower_arr, lo, hi, height)
    grid = [[" "] * n for _ in range(height)]
    for col in range(n):
        for row in range(lo_rows[col], up_rows[col] + 1):
            grid[height - 1 - row][col] = ":"
        grid[height - 1 - up_rows[col]][col] = "-"
        grid[height - 1 - lo_rows[col]][col] = "-"
    if cand is not None:
        c_rows = _scale_to_rows(cand, lo, hi, height)
        for col in range(n):
            grid[height - 1 - c_rows[col]][col] = "*"
    return "\n".join("".join(line) for line in grid)


def plot_warping_matrix(path, n: int, radius: int | None = None, max_size: int = 40) -> str:
    """Render a DTW warping path (and optionally its band) in matrix space.

    ``path`` is the list of (i, j) cells from
    :func:`repro.distances.dtw.warping_path`; the diagonal is dotted, the
    band (if ``radius`` given) shaded, the path starred.
    """
    if n < 1:
        raise ValueError(f"matrix size must be positive, got {n}")
    size = min(n, max_size)

    def shrink(value: int) -> int:
        return min(size - 1, int(value * size / n))

    grid = [[" "] * size for _ in range(size)]
    if radius is not None:
        for i in range(n):
            for j in (max(0, i - radius), min(n - 1, i + radius)):
                grid[shrink(i)][shrink(j)] = "."
    for d in range(n):
        if grid[shrink(d)][shrink(d)] == " ":
            grid[shrink(d)][shrink(d)] = "."
    for i, j in path:
        grid[shrink(i)][shrink(j)] = "*"
    return "\n".join("".join(line) for line in grid)
