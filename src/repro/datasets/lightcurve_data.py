"""The Light-Curve dataset and unlabelled archives for the indexing figures.

Wraps :mod:`repro.timeseries.lightcurves` into the :class:`Dataset`
container used by the classification harness (Table 8's 3-class Light-Curve
row) and provides the unlabelled archive used by the search-efficiency
experiments on star data (Figures 22-23).
"""

from __future__ import annotations

import numpy as np

from repro.datasets.shapes_data import Dataset
from repro.timeseries.lightcurves import LIGHT_CURVE_CLASSES, light_curve

__all__ = ["light_curve_labelled_dataset", "light_curve_collection"]


def light_curve_labelled_dataset(
    rng: np.random.Generator,
    per_class: int,
    length: int = 512,
    noise: float = 0.05,
) -> Dataset:
    """Labelled light curves across the three periodic-variable classes."""
    series_list: list[np.ndarray] = []
    labels: list[int] = []
    for label, kind in enumerate(LIGHT_CURVE_CLASSES):
        for _ in range(per_class):
            series_list.append(light_curve(rng, kind, length=length, noise=noise))
            labels.append(label)
    return Dataset(
        "light-curves",
        np.vstack(series_list),
        np.asarray(labels),
        class_names=list(LIGHT_CURVE_CLASSES),
    )


def light_curve_collection(
    rng: np.random.Generator,
    size: int,
    length: int = 512,
    noise: float = 0.05,
) -> np.ndarray:
    """An unlabelled archive of ``size`` light curves (classes drawn uniformly)."""
    if size < 1:
        raise ValueError(f"size must be positive, got {size}")
    rows = []
    for _ in range(size):
        kind = LIGHT_CURVE_CLASSES[int(rng.integers(0, len(LIGHT_CURVE_CLASSES)))]
        rows.append(light_curve(rng, kind, length=length, noise=noise))
    return np.vstack(rows)
