"""Synthetic reconstructions of the paper's evaluation datasets."""

from repro.datasets.lightcurve_data import light_curve_collection, light_curve_labelled_dataset
from repro.datasets.registry import (
    TABLE_EIGHT,
    TableEightSpec,
    env_scale,
    heterogeneous_collection,
    load_dataset,
)
from repro.datasets.shapes_data import (
    Dataset,
    make_archetype_dataset,
    projectile_point_collection,
    projectile_point_dataset,
)

__all__ = [
    "Dataset", "make_archetype_dataset", "projectile_point_dataset",
    "projectile_point_collection", "light_curve_labelled_dataset",
    "light_curve_collection", "TABLE_EIGHT", "TableEightSpec", "load_dataset",
    "heterogeneous_collection", "env_scale",
]
