"""Registry of the ten Table-8 datasets and the search-experiment archives.

Each entry reconstructs one row of Table 8 with the published class count
and a scaled-down instance count (CI-sized by default; raise ``scale`` or
set the ``REPRO_SCALE`` environment variable to approach the paper's
sizes).  The paper's reported error rates and trained DTW window ``R`` are
stored alongside so the classification bench can print paper-vs-measured
rows directly.

Dataset personalities are encoded through the generator knobs:

* ``warp_strength`` widens the ED-vs-DTW gap (OSU Leaves, the paper's most
  DTW-favourable dataset, gets the largest warp; MixedBag/Chicken, where
  the paper reports identical errors, get almost none).
* ``complexity`` controls outline feature richness (Diatoms have many
  classes of subtle difference; Yoga has two broad silhouette classes).
* ``jitter``/``noise`` tune the base difficulty toward the published error
  magnitude.
"""

from __future__ import annotations

import math
import os
import zlib
from dataclasses import dataclass

import numpy as np

from repro.datasets.lightcurve_data import light_curve_labelled_dataset
from repro.datasets.shapes_data import (
    Dataset,
    make_archetype_dataset,
    projectile_point_dataset,
)
from repro.timeseries.ops import resample, znormalize

__all__ = ["TableEightSpec", "TABLE_EIGHT", "load_dataset", "heterogeneous_collection", "env_scale"]


@dataclass(frozen=True)
class TableEightSpec:
    """One row of Table 8, with the knobs used to synthesise it."""

    name: str
    n_classes: int
    paper_instances: int
    paper_ed_error: float  # percent
    paper_dtw_error: float  # percent
    paper_r: int  # trained Sakoe-Chiba window (percent of n in the paper's units: cells)
    jitter: float
    warp_strength: float
    noise: float
    complexity: int


TABLE_EIGHT: dict[str, TableEightSpec] = {
    spec.name: spec
    for spec in [
        TableEightSpec("Face", 16, 2240, 3.839, 3.170, 3, 0.10, 0.25, 0.02, 4),
        TableEightSpec("SwedishLeaves", 15, 1125, 13.33, 10.84, 2, 0.16, 0.30, 0.03, 3),
        TableEightSpec("Chicken", 5, 446, 19.96, 19.96, 1, 0.22, 0.10, 0.05, 3),
        TableEightSpec("MixedBag", 9, 160, 4.375, 4.375, 1, 0.10, 0.10, 0.02, 4),
        TableEightSpec("OSULeaves", 6, 442, 33.71, 15.61, 2, 0.18, 0.55, 0.04, 3),
        TableEightSpec("Diatoms", 37, 781, 27.53, 27.53, 1, 0.20, 0.12, 0.04, 5),
        TableEightSpec("Aircraft", 7, 210, 0.95, 0.0, 3, 0.06, 0.25, 0.01, 4),
        TableEightSpec("Fish", 7, 350, 11.43, 9.71, 1, 0.15, 0.28, 0.03, 4),
        TableEightSpec("LightCurve", 3, 954, 14.15, 11.43, 3, 0.0, 0.0, 0.25, 0),
        TableEightSpec("Yoga", 2, 3300, 4.70, 4.85, 1, 0.12, 0.15, 0.02, 2),
    ]
}


def env_scale(default: float = 1.0) -> float:
    """The ``REPRO_SCALE`` environment knob (benchmark sizes multiplier)."""
    raw = os.environ.get("REPRO_SCALE", "")
    if not raw:
        return default
    value = float(raw)
    if value <= 0:
        raise ValueError(f"REPRO_SCALE must be positive, got {raw!r}")
    return value


def load_dataset(
    name: str,
    seed: int = 0,
    per_class: int | None = None,
    length: int = 64,
    scale: float | None = None,
) -> Dataset:
    """Instantiate one Table-8 dataset.

    Parameters
    ----------
    name:
        A :data:`TABLE_EIGHT` key (e.g. ``"OSULeaves"``).
    seed:
        Generator seed; the same seed reproduces the same dataset.
    per_class:
        Instances per class.  Default: a CI-sized count derived from the
        paper's instance count, multiplied by ``scale``.
    length:
        Series length (the paper varies by dataset; 64 keeps leave-one-out
        classification fast while preserving the class geometry).
    scale:
        Size multiplier; defaults to the ``REPRO_SCALE`` environment value.
    """
    if name not in TABLE_EIGHT:
        raise KeyError(f"unknown dataset {name!r}; choose from {sorted(TABLE_EIGHT)}")
    spec = TABLE_EIGHT[name]
    # zlib.crc32, not hash(): str hashes are randomised per process, and
    # datasets must be identical across runs for a reproduction.
    rng = np.random.default_rng(seed + zlib.crc32(name.encode()) % 100_000)
    if per_class is None:
        factor = scale if scale is not None else env_scale()
        base = max(6, min(20, spec.paper_instances // spec.n_classes // 4))
        per_class = max(3, int(math.ceil(base * factor)))
    if spec.name == "LightCurve":
        return light_curve_labelled_dataset(rng, per_class, length=max(length, 64), noise=spec.noise)
    return make_archetype_dataset(
        spec.name,
        rng,
        n_classes=spec.n_classes,
        per_class=per_class,
        length=length,
        jitter=spec.jitter,
        warp_strength=spec.warp_strength,
        noise=spec.noise,
        complexity=spec.complexity,
    )


def heterogeneous_collection(
    rng: np.random.Generator,
    size: int,
    length: int = 1024,
) -> np.ndarray:
    """The mixed archive of Section 5.3 (Figure 21).

    The paper's heterogeneous dataset is "all the data used in the
    classification experiments, plus 1,000 projectile points", interpolated
    to length 1,024.  This pulls instances from every Table-8 family plus
    projectile points, resampled to a common length.
    """
    if size < 1:
        raise ValueError(f"size must be positive, got {size}")
    pools: list[np.ndarray] = []
    families = list(TABLE_EIGHT)
    per_family = max(2, size // (len(families) + 1))
    for name in families:
        ds = load_dataset(name, seed=int(rng.integers(1 << 30)), per_class=max(
            1, per_family // TABLE_EIGHT[name].n_classes + 1
        ), length=128)
        pools.append(ds.series)
    points = projectile_point_dataset(
        rng, per_class=max(1, per_family // 4 + 1), length=251
    )
    pools.append(points.series)
    everything = [row for pool in pools for row in pool]
    order = rng.permutation(len(everything))[:size]
    if len(order) < size:
        raise ValueError(
            f"could only assemble {len(everything)} series for a request of {size}"
        )
    return np.vstack([znormalize(resample(everything[i], length)) for i in order])
