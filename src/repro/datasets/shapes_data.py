"""Synthetic shape datasets: the substitution for the paper's image archives.

The evaluation of Section 5 uses ten labelled image collections (Table 8)
plus a 16,000-item homogeneous projectile-point archive and a mixed
"heterogeneous" collection.  None of those archives are redistributable, so
each is reconstructed here as a *class-archetype* generator: every class is
a fixed set of Fourier-descriptor harmonics (or a parametric outline, for
projectile points), and instances differ by amplitude/phase jitter, smooth
local time warps, noise, and a uniformly random rotation.

What this preserves, and why it is the right substitution: the machinery
under evaluation only ever sees centroid-distance series, and both the
classification results (Table 8) and the search speedups (Figures 19-21)
are driven by (a) within-class similarity vs between-class separation and
(b) the smoothness/self-similarity of the series, which governs wedge
tightness.  Both properties are controlled explicitly by the generators.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.shapes.convert import polygon_to_series
from repro.shapes.generators import fourier_blob, projectile_point
from repro.timeseries.ops import circular_shift, smooth_time_warp, znormalize

__all__ = [
    "Dataset",
    "make_archetype_dataset",
    "projectile_point_dataset",
    "projectile_point_collection",
]

_POINT_STYLES = ("stemmed", "side-notched", "lanceolate", "triangular")


@dataclass
class Dataset:
    """A labelled collection of fixed-length series.

    Attributes
    ----------
    name:
        Dataset identifier (mirrors the Table 8 row names).
    series:
        ``(N, n)`` array of z-normalised centroid-distance series.
    labels:
        ``(N,)`` integer class labels.
    class_names:
        Human-readable class names, indexed by label.
    """

    name: str
    series: np.ndarray
    labels: np.ndarray
    class_names: list[str] = field(default_factory=list)

    def __post_init__(self):
        self.series = np.asarray(self.series, dtype=np.float64)
        self.labels = np.asarray(self.labels, dtype=np.int64)
        if self.series.ndim != 2:
            raise ValueError(f"series must be (N, n), got shape {self.series.shape}")
        if self.labels.shape != (self.series.shape[0],):
            raise ValueError(
                f"labels shape {self.labels.shape} does not match {self.series.shape[0]} series"
            )

    def __len__(self) -> int:
        return self.series.shape[0]

    @property
    def length(self) -> int:
        return self.series.shape[1]

    @property
    def n_classes(self) -> int:
        return len(set(self.labels.tolist()))

    def subset(self, indices) -> "Dataset":
        """A new dataset restricted to ``indices`` (order preserved)."""
        idx = np.asarray(indices, dtype=np.int64)
        return Dataset(self.name, self.series[idx], self.labels[idx], self.class_names)

    def train_test_split(
        self,
        rng: np.random.Generator,
        test_fraction: float = 0.3,
        stratified: bool = True,
    ) -> tuple["Dataset", "Dataset"]:
        """Random train/test split, stratified by class by default.

        Stratification keeps every class represented on both sides (each
        class contributes at least one instance to each side when it has
        at least two), which matters for the small per-class counts the
        CI-sized reconstructions use.
        """
        if not 0.0 < test_fraction < 1.0:
            raise ValueError(f"test_fraction must be in (0, 1), got {test_fraction}")
        if len(self) < 2:
            raise ValueError("cannot split fewer than 2 instances")
        test_ids: list[int] = []
        if stratified:
            for label in sorted(set(self.labels.tolist())):
                members = np.flatnonzero(self.labels == label)
                members = members[rng.permutation(members.size)]
                n_test = int(round(test_fraction * members.size))
                n_test = max(1, min(n_test, members.size - 1)) if members.size >= 2 else 0
                test_ids.extend(int(i) for i in members[:n_test])
        else:
            order = rng.permutation(len(self))
            n_test = max(1, min(int(round(test_fraction * len(self))), len(self) - 1))
            test_ids = [int(i) for i in order[:n_test]]
        test_set = set(test_ids)
        train_ids = [i for i in range(len(self)) if i not in test_set]
        return self.subset(train_ids), self.subset(sorted(test_ids))


def _class_archetypes(rng: np.random.Generator, n_classes: int, complexity: int) -> list[list]:
    """Random-but-seeded harmonic sets, one per class.

    ``complexity`` controls how many harmonics each class carries; more
    harmonics means spikier, more feature-rich outlines (diatoms, fish)
    while fewer gives smooth blobs (yoga silhouettes).
    """
    archetypes = []
    for _ in range(n_classes):
        harmonics = []
        n_harm = int(rng.integers(max(2, complexity - 1), complexity + 2))
        for _ in range(n_harm):
            order = int(rng.integers(2, 3 + complexity * 2))
            amplitude = float(rng.uniform(0.05, 0.35 / max(1, order / 3)))
            phase = float(rng.uniform(0, 2 * np.pi))
            harmonics.append((order, amplitude, phase))
        archetypes.append(harmonics)
    return archetypes


def make_archetype_dataset(
    name: str,
    rng: np.random.Generator,
    n_classes: int,
    per_class: int,
    length: int = 128,
    jitter: float = 0.15,
    warp_strength: float = 0.35,
    noise: float = 0.02,
    complexity: int = 3,
) -> Dataset:
    """Build a labelled shape dataset from Fourier-blob class archetypes.

    Parameters
    ----------
    name:
        Dataset identifier.
    rng:
        Randomness source (fixes both archetypes and instances).
    n_classes, per_class:
        Class structure.
    length:
        Series length ``n``.
    jitter:
        Within-class harmonic amplitude/phase scatter (hurts ED and DTW
        alike).
    warp_strength:
        Within-class smooth time-warping (the distortion DTW absorbs but
        ED cannot; raise it to widen the ED-DTW gap, as in OSU Leaves).
    noise:
        Additive noise on the final series.
    complexity:
        Outline feature richness (harmonic count/order).
    """
    archetypes = _class_archetypes(rng, n_classes, complexity)
    series_list: list[np.ndarray] = []
    labels: list[int] = []
    for label, harmonics in enumerate(archetypes):
        for _ in range(per_class):
            outline = fourier_blob(rng, harmonics, n_vertices=max(length, 128), jitter=jitter)
            series = polygon_to_series(outline, n_points=length, normalize=False)
            if warp_strength > 0:
                series = smooth_time_warp(series, rng, strength=warp_strength, n_knots=8)
            if noise > 0:
                series = series + rng.normal(0.0, noise * series.std(), length)
            # Random rotation: destroy any accidental alignment, as the
            # paper did for the Face and Leaf datasets.
            series = circular_shift(series, int(rng.integers(0, length)))
            series_list.append(znormalize(series))
            labels.append(label)
    return Dataset(
        name,
        np.vstack(series_list),
        np.asarray(labels),
        class_names=[f"{name}-class-{i}" for i in range(n_classes)],
    )


def projectile_point_dataset(
    rng: np.random.Generator,
    per_class: int,
    length: int = 251,
    jitter: float = 0.05,
    broken_fraction: float = 0.0,
) -> Dataset:
    """Labelled projectile points: one class per archaeological style.

    ``length`` defaults to 251, the series length of the paper's
    projectile-point archive.  ``broken_fraction`` of instances get snapped
    tips (useful with LCSS experiments).
    """
    series_list: list[np.ndarray] = []
    labels: list[int] = []
    for label, style in enumerate(_POINT_STYLES):
        for _ in range(per_class):
            broken = bool(rng.uniform() < broken_fraction)
            outline = projectile_point(rng, style, jitter=jitter, broken_tip=broken)
            series = polygon_to_series(outline, n_points=length)
            series = circular_shift(series, int(rng.integers(0, length)))
            series_list.append(series)
            labels.append(label)
    return Dataset(
        "projectile-points",
        np.vstack(series_list),
        np.asarray(labels),
        class_names=list(_POINT_STYLES),
    )


def projectile_point_collection(
    rng: np.random.Generator,
    size: int,
    length: int = 251,
) -> np.ndarray:
    """An unlabelled homogeneous archive of ``size`` projectile points.

    The search-efficiency experiments (Figures 19-20) only need a large
    pile of same-domain objects; styles are drawn uniformly.
    """
    if size < 1:
        raise ValueError(f"size must be positive, got {size}")
    rows = []
    for _ in range(size):
        style = _POINT_STYLES[int(rng.integers(0, len(_POINT_STYLES)))]
        outline = projectile_point(rng, style, jitter=0.06)
        series = polygon_to_series(outline, n_points=length)
        rows.append(circular_shift(series, int(rng.integers(0, length))))
    return np.vstack(rows)
