"""Shape distortions: the invariances of Figure 1, made testable.

Each transform perturbs either the polygon or its centroid-distance series
in a way the matching pipeline is supposed to absorb (scale, offset,
rotation, mirroring) or tolerate (noise, articulation, occlusion).  The
test-suite invariance properties and the articulation sanity check
(Figure 18) are built on these.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "scale_polygon",
    "translate_polygon",
    "mirror_polygon",
    "add_vertex_noise",
    "occlude_polygon",
    "articulate_polygon",
    "random_rotation",
]


def scale_polygon(vertices, factor: float) -> np.ndarray:
    """Uniformly scale about the vertex mean (resize invariance)."""
    if factor <= 0:
        raise ValueError(f"scale factor must be positive, got {factor}")
    pts = np.asarray(vertices, dtype=np.float64)
    center = pts.mean(axis=0)
    return (pts - center) * factor + center


def translate_polygon(vertices, dx: float, dy: float) -> np.ndarray:
    """Shift the whole shape (offset invariance)."""
    pts = np.asarray(vertices, dtype=np.float64)
    return pts + np.array([dx, dy])


def mirror_polygon(vertices, axis: str = "x") -> np.ndarray:
    """Reflect about a vertical (``axis="x"``) or horizontal axis.

    The vertex order is reversed so the polygon stays consistently
    oriented; on the series side this corresponds to reversing the
    traversal, which is exactly the mirror augmentation of Section 3.
    """
    pts = np.asarray(vertices, dtype=np.float64)
    center = pts.mean(axis=0)
    flipped = pts - center
    if axis == "x":
        flipped[:, 0] = -flipped[:, 0]
    elif axis == "y":
        flipped[:, 1] = -flipped[:, 1]
    else:
        raise ValueError(f"axis must be 'x' or 'y', got {axis!r}")
    return (flipped + center)[::-1].copy()


def add_vertex_noise(vertices, rng: np.random.Generator, sigma: float) -> np.ndarray:
    """Perturb every vertex with Gaussian noise (sensor / rasterisation noise)."""
    pts = np.asarray(vertices, dtype=np.float64)
    scale = float(np.ptp(pts, axis=0).mean())
    return pts + rng.normal(0.0, sigma * scale, pts.shape)


def occlude_polygon(vertices, start_fraction: float, length_fraction: float) -> np.ndarray:
    """Cut away a run of boundary vertices (partial occlusion / broken part).

    The gap is closed with a straight chord, mimicking a broken wing or a
    snapped projectile-point tip.
    """
    if not 0 <= start_fraction < 1:
        raise ValueError(f"start_fraction must be in [0, 1), got {start_fraction}")
    if not 0 < length_fraction < 1:
        raise ValueError(f"length_fraction must be in (0, 1), got {length_fraction}")
    pts = np.asarray(vertices, dtype=np.float64)
    k = pts.shape[0]
    start = int(start_fraction * k)
    cut = max(1, int(length_fraction * k))
    if cut >= k - 2:
        raise ValueError("occlusion would remove the whole boundary")
    keep = np.concatenate([np.arange(0, start), np.arange(start + cut, k)]) % k
    return pts[keep]


def articulate_polygon(
    vertices,
    center_fraction: float,
    width_fraction: float,
    degrees: float,
) -> np.ndarray:
    """Bend a local region of the boundary (articulation, Figure 18).

    Vertices within the window are rotated about the window's own centroid
    by up to ``degrees``, tapering to zero at the window edges so the
    boundary stays continuous -- the "bent hindwing" of the paper's
    articulation experiment.
    """
    pts = np.asarray(vertices, dtype=np.float64).copy()
    k = pts.shape[0]
    center = int(center_fraction * k) % k
    half = max(1, int(width_fraction * k / 2))
    idx = (np.arange(center - half, center + half + 1)) % k
    region = pts[idx]
    pivot = region.mean(axis=0)
    # Taper: full rotation at the window centre, zero at the edges.
    taper = 1.0 - np.abs(np.linspace(-1.0, 1.0, idx.size))
    for offset, point_index in enumerate(idx):
        theta = math.radians(degrees) * taper[offset]
        c, s = math.cos(theta), math.sin(theta)
        rel = pts[point_index] - pivot
        pts[point_index] = pivot + np.array([c * rel[0] - s * rel[1], s * rel[0] + c * rel[1]])
    return pts


def random_rotation(vertices, rng: np.random.Generator) -> tuple[np.ndarray, float]:
    """Rotate by a uniformly random angle; returns ``(polygon, degrees)``.

    Dataset builders use this to destroy any accidental alignment, exactly
    as the paper did for the Face and Leaf datasets ("We removed this
    information by randomly rotating the images").
    """
    from repro.shapes.generators import rotate_polygon

    degrees = float(rng.uniform(0.0, 360.0))
    return rotate_polygon(vertices, degrees), degrees
