"""Shape substrate: contours, conversion to series, generators, transforms."""

from repro.shapes.contour import flood_fill_components, largest_contour, moore_trace
from repro.shapes.convert import (
    contour_to_series,
    polygon_centroid,
    polygon_to_series,
    resample_closed_curve,
)
from repro.shapes.generators import (
    butterfly,
    fourier_blob,
    projectile_point,
    regular_polygon,
    rotate_polygon,
    skull_profile,
    star_polygon,
)
from repro.shapes.descriptors import (
    convex_hull,
    d2_histogram,
    perimeter,
    polygon_area,
    shape_signature,
    signature_classify_error,
)
from repro.shapes.image import rasterize_polygon, render_ascii
from repro.shapes.landmarks import (
    align_to_major_axis,
    landmark_series,
    major_axis_angle,
    sharpest_corner_index,
)
from repro.shapes.transforms import (
    add_vertex_noise,
    articulate_polygon,
    mirror_polygon,
    occlude_polygon,
    random_rotation,
    scale_polygon,
    translate_polygon,
)

__all__ = [
    "moore_trace", "largest_contour", "flood_fill_components",
    "polygon_to_series", "contour_to_series", "polygon_centroid", "resample_closed_curve",
    "regular_polygon", "star_polygon", "fourier_blob", "projectile_point",
    "skull_profile", "butterfly", "rotate_polygon",
    "rasterize_polygon", "render_ascii",
    "shape_signature", "d2_histogram", "signature_classify_error",
    "perimeter", "polygon_area", "convex_hull",
    "major_axis_angle", "align_to_major_axis", "sharpest_corner_index",
    "landmark_series",
    "scale_polygon", "translate_polygon", "mirror_polygon", "add_vertex_noise",
    "occlude_polygon", "articulate_polygon", "random_rotation",
]
