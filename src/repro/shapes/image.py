"""Rasterising polygons to bitmaps (closing the loop of Figure 2).

The synthetic generators emit vector outlines; real deployments start from
images.  This module converts between the two so the full
bitmap -> boundary-trace -> centroid-distance pipeline can be exercised and
tested against the direct polygon path.
"""

from __future__ import annotations

import numpy as np

__all__ = ["rasterize_polygon", "render_ascii"]


def rasterize_polygon(vertices, resolution: int = 64, padding: float = 0.05) -> np.ndarray:
    """Scan-convert a closed polygon into a filled boolean bitmap.

    Parameters
    ----------
    vertices:
        ``(k, 2)`` boundary vertices in traversal order.
    resolution:
        Output image is ``resolution x resolution``.
    padding:
        Margin around the shape as a fraction of its bounding box.

    Uses the even-odd rule with scanline crossings, evaluated at pixel
    centres -- the standard polygon fill.
    """
    pts = np.asarray(vertices, dtype=np.float64)
    if pts.ndim != 2 or pts.shape[1] != 2 or pts.shape[0] < 3:
        raise ValueError(f"need at least 3 (x, y) vertices, got shape {pts.shape}")
    if resolution < 4:
        raise ValueError(f"resolution must be at least 4, got {resolution}")
    mins = pts.min(axis=0)
    maxs = pts.max(axis=0)
    span = float(max(maxs[0] - mins[0], maxs[1] - mins[1], 1e-9))
    pad = padding * span
    origin = mins - pad
    scale = (span + 2 * pad) / resolution

    # Pixel-centre coordinates in shape space.
    xs = origin[0] + (np.arange(resolution) + 0.5) * scale
    ys = origin[1] + (np.arange(resolution) + 0.5) * scale

    x1 = pts[:, 0]
    y1 = pts[:, 1]
    x2 = np.roll(x1, -1)
    y2 = np.roll(y1, -1)

    image = np.zeros((resolution, resolution), dtype=bool)
    for row, y in enumerate(ys):
        # Edges crossing this scanline (half-open rule avoids double counts
        # at shared vertices).
        crosses = (y1 <= y) != (y2 <= y)
        if not crosses.any():
            continue
        xa, ya = x1[crosses], y1[crosses]
        xb, yb = x2[crosses], y2[crosses]
        x_at = xa + (y - ya) * (xb - xa) / (yb - ya)
        parity = (x_at[np.newaxis, :] > xs[:, np.newaxis]).sum(axis=1) % 2
        image[row] = parity == 1
    return image


def render_ascii(image: np.ndarray, fg: str = "#", bg: str = ".") -> str:
    """Tiny ASCII visualisation of a boolean bitmap for examples and docs."""
    grid = np.asarray(image, dtype=bool)
    return "\n".join("".join(fg if cell else bg for cell in row) for row in grid)
