"""Converting 2-D shapes to 1-D time series (Figure 2, step B -> C).

"The distance from every point on the profile to the center is measured and
treated as the Y-axis of a time series of length n."  This centroid-distance
representation is the paper's workhorse: translation invariance comes from
measuring relative to the centroid, scale invariance from normalising, and
image rotation becomes circular shift.

Two entry points:

* :func:`polygon_to_series` -- vector path (arbitrary vertex list), sampled
  uniformly by arc length; fast, exact, used by the synthetic dataset
  generators.
* :func:`contour_to_series` -- traced pixel boundary from
  :mod:`repro.shapes.contour`; the full bitmap pipeline.
"""

from __future__ import annotations

import numpy as np

from repro.timeseries.ops import znormalize

__all__ = [
    "polygon_to_series",
    "contour_to_series",
    "resample_closed_curve",
    "polygon_centroid",
]


def polygon_centroid(vertices: np.ndarray) -> np.ndarray:
    """Area centroid of a closed polygon (shoelace formula).

    Falls back to the vertex mean for degenerate (zero-area) polygons.
    """
    pts = np.asarray(vertices, dtype=np.float64)
    if pts.ndim != 2 or pts.shape[1] != 2 or pts.shape[0] < 3:
        raise ValueError(f"need at least 3 (x, y) vertices, got shape {pts.shape}")
    x, y = pts[:, 0], pts[:, 1]
    x2, y2 = np.roll(x, -1), np.roll(y, -1)
    cross = x * y2 - x2 * y
    area = cross.sum() / 2.0
    if abs(area) < 1e-12:
        return pts.mean(axis=0)
    cx = ((x + x2) * cross).sum() / (6.0 * area)
    cy = ((y + y2) * cross).sum() / (6.0 * area)
    return np.array([cx, cy])


def resample_closed_curve(vertices: np.ndarray, n_points: int) -> np.ndarray:
    """``n_points`` samples spaced uniformly by arc length around a closed curve.

    The first sample coincides with the first vertex, so the (arbitrary)
    starting point of the traversal maps to the (arbitrary) rotation of the
    resulting series -- exactly the degree of freedom the rotation-invariant
    machinery absorbs.
    """
    pts = np.asarray(vertices, dtype=np.float64)
    if pts.ndim != 2 or pts.shape[1] != 2 or pts.shape[0] < 2:
        raise ValueError(f"need at least 2 (x, y) vertices, got shape {pts.shape}")
    if n_points < 1:
        raise ValueError(f"n_points must be positive, got {n_points}")
    closed = np.vstack([pts, pts[:1]])
    seg = np.diff(closed, axis=0)
    seg_len = np.hypot(seg[:, 0], seg[:, 1])
    cum = np.concatenate([[0.0], np.cumsum(seg_len)])
    total = cum[-1]
    if total <= 0:
        raise ValueError("curve has zero length")
    targets = np.linspace(0.0, total, n_points, endpoint=False)
    x = np.interp(targets, cum, closed[:, 0])
    y = np.interp(targets, cum, closed[:, 1])
    return np.column_stack([x, y])


def polygon_to_series(
    vertices,
    n_points: int = 256,
    normalize: bool = True,
) -> np.ndarray:
    """Centroid-distance series of a closed polygon.

    Parameters
    ----------
    vertices:
        ``(k, 2)`` array of boundary vertices in traversal order.
    n_points:
        Length ``n`` of the resulting series (arc-length uniform samples).
    normalize:
        Z-normalise the series, giving scale and offset invariance.  Leave
        False to keep raw centroid distances (useful for visualisation).
    """
    pts = np.asarray(vertices, dtype=np.float64)
    samples = resample_closed_curve(pts, n_points)
    centroid = polygon_centroid(pts)
    series = np.hypot(samples[:, 0] - centroid[0], samples[:, 1] - centroid[1])
    if normalize:
        series = znormalize(series)
    return series


def contour_to_series(
    contour_pixels,
    n_points: int = 256,
    normalize: bool = True,
) -> np.ndarray:
    """Centroid-distance series of a traced pixel boundary.

    ``contour_pixels`` is the ``(k, 2)`` (row, col) output of
    :func:`repro.shapes.contour.moore_trace`; the centroid is the mean of
    the boundary pixels (the paper's "center" of the profile).
    """
    pts = np.asarray(contour_pixels, dtype=np.float64)
    if pts.ndim != 2 or pts.shape[1] != 2:
        raise ValueError(f"expected (k, 2) pixel array, got shape {pts.shape}")
    if pts.shape[0] < 3:
        raise ValueError("contour too short to form a closed boundary")
    samples = resample_closed_curve(pts, n_points)
    centroid = pts.mean(axis=0)
    series = np.hypot(samples[:, 0] - centroid[0], samples[:, 1] - centroid[1])
    if normalize:
        series = znormalize(series)
    return series
