"""Extracting closed contours from binary images (Figure 2, step A -> B).

The paper's pipeline starts from a bitmap of a shape, walks its outer
boundary, and measures the distance from every boundary point to the shape's
centroid.  This module provides the bitmap half of that pipeline:

* :func:`moore_trace` -- Moore-neighbourhood boundary tracing with Jacob's
  stopping criterion, the textbook contour-following algorithm;
* :func:`largest_contour` -- convenience wrapper that finds a start pixel
  and returns the traced outer boundary of the largest foreground blob.

Shapes represented as polygons can skip rasterisation entirely via
:mod:`repro.shapes.convert`; this module exists so the *full* image pipeline
of the paper is exercised end-to-end (see ``tests/test_contour.py`` and the
quickstart example).
"""

from __future__ import annotations

import numpy as np

__all__ = ["moore_trace", "largest_contour", "flood_fill_components"]

# Moore neighbourhood in clockwise order, starting from west.
_NEIGHBOURS = [(0, -1), (-1, -1), (-1, 0), (-1, 1), (0, 1), (1, 1), (1, 0), (1, -1)]


def moore_trace(image: np.ndarray, start: tuple[int, int]) -> np.ndarray:
    """Trace the boundary of the blob containing ``start``.

    Parameters
    ----------
    image:
        2-D boolean (or 0/1) array; True marks foreground.
    start:
        A boundary pixel of the blob -- conventionally the first foreground
        pixel met by a left-to-right, top-to-bottom scan, which is always on
        the boundary.

    Returns
    -------
    numpy.ndarray
        ``(k, 2)`` array of (row, col) boundary pixels in traversal order.
        A single isolated pixel yields a length-1 contour.

    Notes
    -----
    Implements Moore-neighbour tracing with Jacob's stopping criterion (stop
    when the start pixel is re-entered from the original direction), which
    is robust on one-pixel-wide appendages where the naive criterion stalls.
    """
    grid = np.asarray(image, dtype=bool)
    rows, cols = grid.shape
    r0, c0 = start
    if not (0 <= r0 < rows and 0 <= c0 < cols) or not grid[r0, c0]:
        raise ValueError(f"start {start} is not a foreground pixel")

    def is_fg(r: int, c: int) -> bool:
        return 0 <= r < rows and 0 <= c < cols and bool(grid[r, c])

    contour = [(r0, c0)]
    # The backtrack starts west of the start pixel (the scan direction
    # guarantees the western neighbour is background for the first pixel of
    # a row scan; if not, rotate until a background neighbour is found).
    backtrack_dir = 0
    if is_fg(r0 + _NEIGHBOURS[0][0], c0 + _NEIGHBOURS[0][1]):
        for d, (dr, dc) in enumerate(_NEIGHBOURS):
            if not is_fg(r0 + dr, c0 + dc):
                backtrack_dir = d
                break
        else:
            # Interior pixel of a filled region passed as start: no boundary
            # from here.
            raise ValueError(f"start {start} has no background neighbour")

    current = (r0, c0)
    entry_dir = backtrack_dir
    first_move: tuple[tuple[int, int], int] | None = None
    max_steps = 4 * rows * cols + 8
    for _ in range(max_steps):
        found = False
        for step in range(1, 9):
            d = (entry_dir + step) % 8
            nr = current[0] + _NEIGHBOURS[d][0]
            nc = current[1] + _NEIGHBOURS[d][1]
            if is_fg(nr, nc):
                # New search origin: the neighbour we came from, one step
                # clockwise past the opposite of the found direction.
                entry_dir = (d + 5) % 8
                current = (nr, nc)
                found = True
                break
        if not found:
            # Isolated pixel: its contour is just itself.
            return np.array(contour)
        # Jacob's stopping criterion: stop when the start pixel is
        # re-entered from the same direction as the very first move.
        if first_move is None:
            first_move = (current, entry_dir)
        elif (current, entry_dir) == first_move:
            break
        contour.append(current)
    # Drop the duplicated closing start pixel if present.
    pts = np.array(contour)
    if len(pts) > 1 and tuple(pts[-1]) == (r0, c0):
        pts = pts[:-1]
    return pts


def flood_fill_components(image: np.ndarray) -> np.ndarray:
    """4-connected component labelling; returns an int label image (0 = bg)."""
    grid = np.asarray(image, dtype=bool)
    labels = np.zeros(grid.shape, dtype=np.int64)
    rows, cols = grid.shape
    next_label = 0
    for r in range(rows):
        for c in range(cols):
            if grid[r, c] and labels[r, c] == 0:
                next_label += 1
                stack = [(r, c)]
                labels[r, c] = next_label
                while stack:
                    cr, cc = stack.pop()
                    for dr, dc in ((1, 0), (-1, 0), (0, 1), (0, -1)):
                        nr, nc = cr + dr, cc + dc
                        if 0 <= nr < rows and 0 <= nc < cols and grid[nr, nc] and labels[nr, nc] == 0:
                            labels[nr, nc] = next_label
                            stack.append((nr, nc))
    return labels


def largest_contour(image: np.ndarray) -> np.ndarray:
    """Boundary of the largest foreground component, in (row, col) order."""
    grid = np.asarray(image, dtype=bool)
    if not grid.any():
        raise ValueError("image contains no foreground pixels")
    labels = flood_fill_components(grid)
    counts = np.bincount(labels.ravel())
    counts[0] = 0
    biggest = int(np.argmax(counts))
    mask = labels == biggest
    rs, cs = np.nonzero(mask)
    order = np.lexsort((cs, rs))
    start = (int(rs[order[0]]), int(cs[order[0]]))
    return moore_trace(mask, start)
