"""Landmarking baselines (Section 2.1 of the paper).

The paper's first family of competitors finds "the one 'true' rotation"
and compares at that single alignment:

* **domain-independent**: align every shape to its *major axis* -- which
  the literature itself calls "sensitive to noise and unreliable" [44],
  with a single extra pixel able to swing the axis by 90 degrees [45];
* **domain-dependent**: start the contour at a detectable feature, e.g.
  the "sharpest corner" used for leaves [39] -- ill-defined on round
  shapes.

Both are implemented so the Figure 3 comparison (landmark vs best
rotation) can be run against the genuine baseline rather than a straw man,
and so the instability claims are testable.
"""

from __future__ import annotations

import math

import numpy as np

from repro.shapes.convert import polygon_to_series, resample_closed_curve

__all__ = [
    "major_axis_angle",
    "align_to_major_axis",
    "sharpest_corner_index",
    "landmark_series",
]


def major_axis_angle(vertices) -> float:
    """Orientation (radians, in [0, pi)) of the boundary's principal axis."""
    pts = np.asarray(vertices, dtype=np.float64)
    if pts.ndim != 2 or pts.shape[1] != 2 or pts.shape[0] < 2:
        raise ValueError(f"need (k, 2) vertices, got shape {pts.shape}")
    sampled = resample_closed_curve(pts, max(256, pts.shape[0]))
    centred = sampled - sampled.mean(axis=0)
    cov = centred.T @ centred / sampled.shape[0]
    eigenvalues, eigenvectors = np.linalg.eigh(cov)
    principal = eigenvectors[:, int(np.argmax(eigenvalues))]
    angle = math.atan2(principal[1], principal[0])
    return angle % math.pi


def align_to_major_axis(vertices) -> np.ndarray:
    """Rotate the shape so its major axis lies along +x.

    The ambiguity the paper points out is intrinsic: the major axis has no
    preferred *direction*, so two visually identical shapes can come out
    180 degrees apart -- one of the reasons landmark clustering fails.
    """
    pts = np.asarray(vertices, dtype=np.float64)
    theta = -major_axis_angle(pts)
    center = pts.mean(axis=0)
    rot = np.array(
        [[math.cos(theta), -math.sin(theta)], [math.sin(theta), math.cos(theta)]]
    )
    return (pts - center) @ rot.T + center


def sharpest_corner_index(vertices, n_samples: int = 256, window: int = 5) -> int:
    """Index (into the arc-length resampling) of the highest-curvature point.

    The "sharpest corner" landmark of [39]: estimate turning angle at each
    boundary sample over a +-``window`` neighbourhood and return the
    sharpest.  On orbicular (circular) shapes the maximum is numerically
    arbitrary -- exactly the paper's objection.
    """
    pts = resample_closed_curve(np.asarray(vertices, dtype=np.float64), n_samples)
    forward = np.roll(pts, -window, axis=0) - pts
    backward = pts - np.roll(pts, window, axis=0)
    dot = np.einsum("ij,ij->i", forward, backward)
    norms = np.hypot(*forward.T) * np.hypot(*backward.T)
    cosine = np.clip(dot / np.maximum(norms, 1e-12), -1.0, 1.0)
    turning = np.arccos(cosine)
    return int(np.argmax(turning))


def landmark_series(
    vertices,
    n_points: int = 256,
    method: str = "major-axis",
) -> np.ndarray:
    """Centroid-distance series starting at a landmark-defined rotation.

    ``method="major-axis"`` rotates the shape to its principal axis before
    conversion; ``method="sharpest-corner"`` starts the traversal at the
    highest-curvature boundary point.  Either way the output is a series
    that a *non*-rotation-invariant pipeline would compare directly.
    """
    pts = np.asarray(vertices, dtype=np.float64)
    if method == "major-axis":
        aligned = align_to_major_axis(pts)
        # Start the traversal at the boundary point with the largest x,
        # (a deterministic, axis-locked starting point).
        sampled = resample_closed_curve(aligned, n_points)
        start = int(np.argmax(sampled[:, 0]))
        rolled = np.roll(sampled, -start, axis=0)
        return polygon_to_series(rolled, n_points)
    if method == "sharpest-corner":
        sampled = resample_closed_curve(pts, max(n_points, 256))
        start = sharpest_corner_index(pts, n_samples=sampled.shape[0])
        rolled = np.roll(sampled, -start, axis=0)
        return polygon_to_series(rolled, n_points)
    raise ValueError(f"unknown landmark method {method!r}")
