"""Rotation-invariant feature baselines (Section 2.2 of the paper).

The paper's second family of competitors achieves fast rotation invariance
by reducing a shape to a vector of rotation-invariant features -- at the
price of discrimination: "all information that contains rotation
information must be discarded; inevitably, some useful information may
also be discarded".  The canonical failure: the pairwise-distance
histogram of Osada et al. [28] "cannot differentiate between the shapes of
the lowercase letters 'd' and 'b'", because mirror images have identical
histograms.

These baselines are implemented here so the claim is *testable* (see
``tests/test_descriptors.py``) and so the classification benchmarks can
show the accuracy gap against the paper's approach:

* :func:`shape_signature` -- a feature vector of the classic invariants
  (circularity, eccentricity/elongation, convex-hull solidity, radial
  statistics);
* :func:`d2_histogram` -- Osada's D2 shape distribution (histogram of
  distances between random boundary point pairs);
* :func:`signature_classify_error` -- 1-NN leave-one-out error using a
  feature vector, the drop-in comparison against Table 8's measures.
"""

from __future__ import annotations

import math

import numpy as np

from repro.shapes.convert import polygon_centroid, resample_closed_curve

__all__ = [
    "perimeter",
    "polygon_area",
    "convex_hull",
    "shape_signature",
    "d2_histogram",
    "signature_classify_error",
]


def perimeter(vertices) -> float:
    """Total boundary length of a closed polygon."""
    pts = np.asarray(vertices, dtype=np.float64)
    closed = np.vstack([pts, pts[:1]])
    return float(np.hypot(*np.diff(closed, axis=0).T).sum())


def polygon_area(vertices) -> float:
    """Unsigned area by the shoelace formula."""
    pts = np.asarray(vertices, dtype=np.float64)
    x, y = pts[:, 0], pts[:, 1]
    return float(abs(np.dot(x, np.roll(y, -1)) - np.dot(y, np.roll(x, -1))) / 2.0)


def convex_hull(vertices) -> np.ndarray:
    """Convex hull by Andrew's monotone chain, counter-clockwise."""
    pts = np.unique(np.asarray(vertices, dtype=np.float64), axis=0)
    if pts.shape[0] < 3:
        return pts
    order = np.lexsort((pts[:, 1], pts[:, 0]))
    pts = pts[order]

    def cross(o, a, b):
        return (a[0] - o[0]) * (b[1] - o[1]) - (a[1] - o[1]) * (b[0] - o[0])

    lower: list[np.ndarray] = []
    for p in pts:
        while len(lower) >= 2 and cross(lower[-2], lower[-1], p) <= 0:
            lower.pop()
        lower.append(p)
    upper: list[np.ndarray] = []
    for p in pts[::-1]:
        while len(upper) >= 2 and cross(upper[-2], upper[-1], p) <= 0:
            upper.pop()
        upper.append(p)
    return np.vstack(lower[:-1] + upper[:-1])


def shape_signature(vertices, n_samples: int = 256) -> np.ndarray:
    """The classic rotation-invariant feature vector of Section 2.2.

    Components (each invariant to rotation, translation, and scale):

    0. circularity ``4 pi A / P^2`` (1 for a disk),
    1. eccentricity of the boundary's covariance ellipse (elongatedness),
    2. solidity ``A / A_hull``,
    3. hull-perimeter ratio ``P_hull / P`` (convexity),
    4. coefficient of variation of the centroid distance,
    5. skewness of the centroid-distance distribution,
    6. normalised min/max centroid-distance ratio.
    """
    pts = resample_closed_curve(np.asarray(vertices, dtype=np.float64), n_samples)
    area = polygon_area(pts)
    boundary = perimeter(pts)
    hull = convex_hull(pts)
    hull_area = polygon_area(hull) if hull.shape[0] >= 3 else area
    hull_perimeter = perimeter(hull) if hull.shape[0] >= 3 else boundary

    centroid = polygon_centroid(pts)
    radii = np.hypot(pts[:, 0] - centroid[0], pts[:, 1] - centroid[1])
    mean_r = radii.mean()
    std_r = radii.std()

    centred = pts - pts.mean(axis=0)
    cov = centred.T @ centred / pts.shape[0]
    eigenvalues = np.sort(np.linalg.eigvalsh(cov))
    eccentricity = math.sqrt(max(0.0, 1.0 - eigenvalues[0] / max(eigenvalues[1], 1e-12)))

    skew = 0.0
    if std_r > 1e-12:
        skew = float(np.mean(((radii - mean_r) / std_r) ** 3))

    return np.array(
        [
            4.0 * math.pi * area / max(boundary**2, 1e-12),
            eccentricity,
            area / max(hull_area, 1e-12),
            hull_perimeter / max(boundary, 1e-12),
            std_r / max(mean_r, 1e-12),
            skew,
            radii.min() / max(radii.max(), 1e-12),
        ]
    )


def d2_histogram(
    vertices,
    rng: np.random.Generator,
    n_pairs: int = 4096,
    n_bins: int = 32,
) -> np.ndarray:
    """Osada et al.'s D2 shape distribution [28].

    The histogram of Euclidean distances between random pairs of boundary
    points, normalised by the maximum distance (scale invariance) and to
    unit mass.  Fast and fully rotation invariant -- and provably blind to
    mirror reflection, since reflections preserve all pairwise distances.
    """
    pts = resample_closed_curve(np.asarray(vertices, dtype=np.float64), 512)
    i = rng.integers(0, pts.shape[0], n_pairs)
    j = rng.integers(0, pts.shape[0], n_pairs)
    dists = np.hypot(pts[i, 0] - pts[j, 0], pts[i, 1] - pts[j, 1])
    top = dists.max()
    if top <= 0:
        return np.full(n_bins, 1.0 / n_bins)
    hist, _edges = np.histogram(dists / top, bins=n_bins, range=(0.0, 1.0))
    return hist / n_pairs


def signature_classify_error(features: np.ndarray, labels) -> float:
    """1-NN leave-one-out error (percent) on any feature-vector table.

    The drop-in comparison against Table 8: feed it shape signatures or D2
    histograms and compare with the rotation-invariant ED/DTW errors.
    Features are standardised per dimension before the Euclidean 1-NN.
    """
    table = np.asarray(features, dtype=np.float64)
    labels = np.asarray(labels)
    if table.ndim != 2 or table.shape[0] != labels.shape[0]:
        raise ValueError(
            f"features {table.shape} do not match {labels.shape[0]} labels"
        )
    if table.shape[0] < 2:
        raise ValueError("need at least two instances")
    std = table.std(axis=0)
    std[std < 1e-12] = 1.0
    normed = (table - table.mean(axis=0)) / std
    errors = 0
    for i in range(normed.shape[0]):
        diff = normed - normed[i]
        dists = np.einsum("ij,ij->i", diff, diff)
        dists[i] = np.inf
        nearest = int(np.argmin(dists))
        if labels[nearest] != labels[i]:
            errors += 1
    return 100.0 * errors / normed.shape[0]
