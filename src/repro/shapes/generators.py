"""Synthetic shape generators (the substitution for the paper's image data).

The paper evaluates on image collections we cannot redistribute (16,000
projectile points from the UCR Lithic Technology Lab, skulls, butterflies,
leaves, ...).  The wedge/LB machinery never sees the images -- only their
centroid-distance series -- so what matters for reproduction is the *class
structure* of those series: smooth closed outlines with class-specific
global geometry, per-instance jitter, random rotation (i.e. random starting
point), and occasional local distortions.

Every generator here emits a closed polygon (``(k, 2)`` vertex array) that
downstream code converts with :func:`repro.shapes.convert.polygon_to_series`.
Shape families:

* :func:`fourier_blob` -- random smooth shapes from low-order Fourier
  descriptors; parameterised archetypes give dataset classes.
* :func:`projectile_point` -- stemmed / side-notched / lanceolate /
  triangular point outlines with controllable blade jitter and optional
  broken tips (the LCSS motivation of Figure 15).
* :func:`star_polygon`, :func:`regular_polygon` -- geometric shapes for
  tests and demos (a 6-pointed star vs hexagon is the classic wedge demo).
* :func:`skull_profile` -- cranium-like outlines with brow/jaw features at
  class-specific proportions (the DTW motivation of Figure 11).
* :func:`butterfly` -- two-winged outline with articulable hindwings (the
  articulation experiment of Figure 18).

All generators accept a ``numpy.random.Generator`` so datasets are
reproducible.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "regular_polygon",
    "star_polygon",
    "fourier_blob",
    "projectile_point",
    "skull_profile",
    "butterfly",
    "rotate_polygon",
]


def rotate_polygon(vertices: np.ndarray, degrees: float) -> np.ndarray:
    """Rotate a polygon about its vertex mean by ``degrees`` (counter-clockwise)."""
    pts = np.asarray(vertices, dtype=np.float64)
    center = pts.mean(axis=0)
    theta = math.radians(degrees)
    rot = np.array(
        [[math.cos(theta), -math.sin(theta)], [math.sin(theta), math.cos(theta)]]
    )
    return (pts - center) @ rot.T + center


def regular_polygon(n_sides: int, radius: float = 1.0) -> np.ndarray:
    """Vertices of a regular ``n_sides``-gon."""
    if n_sides < 3:
        raise ValueError(f"polygon needs at least 3 sides, got {n_sides}")
    angles = np.linspace(0.0, 2.0 * math.pi, n_sides, endpoint=False)
    return np.column_stack([radius * np.cos(angles), radius * np.sin(angles)])


def star_polygon(n_points: int, outer: float = 1.0, inner: float = 0.45) -> np.ndarray:
    """Vertices of an ``n_points``-pointed star."""
    if n_points < 2:
        raise ValueError(f"star needs at least 2 points, got {n_points}")
    if not 0 < inner < outer:
        raise ValueError("need 0 < inner < outer radius")
    angles = np.linspace(0.0, 2.0 * math.pi, 2 * n_points, endpoint=False)
    radii = np.where(np.arange(2 * n_points) % 2 == 0, outer, inner)
    return np.column_stack([radii * np.cos(angles), radii * np.sin(angles)])


def fourier_blob(
    rng: np.random.Generator,
    harmonics=None,
    n_vertices: int = 256,
    jitter: float = 0.0,
) -> np.ndarray:
    """A smooth closed shape from Fourier descriptors of its radius function.

    Parameters
    ----------
    rng:
        Source of randomness (for the jitter).
    harmonics:
        Sequence of ``(order, amplitude, phase)`` triples describing the
        radius function ``r(t) = 1 + sum(a * cos(order * t + phase))``.
        These triples *are* the class archetype: instances of a class share
        harmonics and differ by jitter.
    n_vertices:
        Boundary sampling density.
    jitter:
        Standard deviation of per-harmonic amplitude/phase noise, producing
        within-class variation.
    """
    if harmonics is None:
        harmonics = [(2, 0.2, 0.0), (3, 0.1, 1.0)]
    t = np.linspace(0.0, 2.0 * math.pi, n_vertices, endpoint=False)
    radius = np.ones(n_vertices)
    for order, amplitude, phase in harmonics:
        amp = amplitude + (rng.normal(0.0, jitter * amplitude) if jitter else 0.0)
        ph = phase + (rng.normal(0.0, jitter) if jitter else 0.0)
        radius = radius + amp * np.cos(order * t + ph)
    radius = np.maximum(radius, 0.05)  # keep the contour star-convex
    return np.column_stack([radius * np.cos(t), radius * np.sin(t)])


def projectile_point(
    rng: np.random.Generator,
    style: str = "stemmed",
    n_vertices: int = 200,
    jitter: float = 0.03,
    broken_tip: bool = False,
) -> np.ndarray:
    """An arrowhead-like outline in one of four archaeological styles.

    Styles mimic the broad morphology classes anthropologists use:
    ``"stemmed"`` (shouldered blade over a narrow stem), ``"side-notched"``
    (triangular blade with basal notches), ``"lanceolate"`` (leaf-shaped,
    no shoulders), and ``"triangular"``.  ``broken_tip=True`` truncates the
    tip, the damage pattern that motivates LCSS matching (Figure 15).
    """
    styles = ("stemmed", "side-notched", "lanceolate", "triangular")
    if style not in styles:
        raise ValueError(f"unknown style {style!r}; choose from {styles}")
    # Blade profile: half-width as a function of height t in [0, 1]
    # (t=0 base, t=1 tip), mirrored to close the outline.
    t = np.linspace(0.0, 1.0, n_vertices // 2)
    if style == "lanceolate":
        width = 0.32 * np.sin(math.pi * t) ** 0.8
    elif style == "triangular":
        width = 0.40 * (1.0 - t)
    elif style == "stemmed":
        blade = 0.42 * (1.0 - t) ** 0.9
        stem = 0.14 * np.ones_like(t)
        width = np.where(t < 0.25, stem, blade)
        # Shoulder bump at the stem/blade transition.
        width = width + 0.06 * np.exp(-((t - 0.27) ** 2) / 0.001)
    else:  # side-notched
        width = 0.40 * (1.0 - t) ** 0.95
        width = width - 0.12 * np.exp(-((t - 0.12) ** 2) / 0.0015)
    width = width * (1.0 + rng.normal(0.0, jitter, width.size))
    width = np.maximum(width, 0.02)
    if broken_tip:
        # Snap off the top 10-25% of the point.
        snap = 1.0 - rng.uniform(0.10, 0.25)
        keep = t <= snap
        t = t[keep]
        width = width[keep]
    height = t * 1.2
    right = np.column_stack([width, height])
    left = np.column_stack([-width[::-1], height[::-1]])
    return np.vstack([right, left])


def skull_profile(
    rng: np.random.Generator,
    braincase: float = 1.0,
    brow: float = 0.15,
    jaw: float = 0.35,
    n_vertices: int = 256,
    jitter: float = 0.02,
) -> np.ndarray:
    """A cranium-like lateral outline with tunable proportions.

    ``braincase`` scales the vault, ``brow`` the supraorbital bump, and
    ``jaw`` the lower protrusion -- the proportion differences that make
    DTW preferable to Euclidean distance on morphologically diverse taxa
    (Figure 11's gorillas).
    """
    t = np.linspace(0.0, 2.0 * math.pi, n_vertices, endpoint=False)
    radius = np.ones(n_vertices)
    # Vault: broad low-order swell on the upper half.
    radius = radius + 0.35 * braincase * np.exp(-((t - math.pi / 2) ** 2) / 1.2)
    # Brow ridge: sharp bump near angle ~0.
    radius = radius + brow * np.exp(-(np.minimum(t, 2 * math.pi - t) ** 2) / 0.05)
    # Jaw: protrusion on the lower-left.
    radius = radius + jaw * np.exp(-((t - 4.2) ** 2) / 0.18)
    # Specimen variation: smooth low-order undulations, not white noise --
    # real bone varies smoothly, and jagged boundaries would dominate the
    # arc-length resampling.
    for order in (2, 3, 5):
        radius = radius + rng.normal(0.0, jitter) * np.cos(order * t + rng.uniform(0, 2 * math.pi))
    radius = np.maximum(radius, 0.1)
    return np.column_stack([radius * np.cos(t), radius * np.sin(t)])


def butterfly(
    rng: np.random.Generator,
    forewing: float = 1.0,
    hindwing: float = 0.7,
    hindwing_angle: float = 0.0,
    n_vertices: int = 300,
    jitter: float = 0.01,
) -> np.ndarray:
    """A two-winged Lepidoptera-like outline with articulable hindwings.

    ``hindwing_angle`` (degrees) "bends" the hindwing lobes, the distortion
    of the Figure 18 articulation-invariance experiment: the centroid-
    distance representation barely changes when a wing is bent, so bent
    copies should cluster with their originals.
    """
    t = np.linspace(0.0, 2.0 * math.pi, n_vertices, endpoint=False)
    bend = math.radians(hindwing_angle)
    radius = 0.45 * np.ones(n_vertices)
    # Four lobes: forewings near +-60 degrees, hindwings near +-120.
    for center, scale, shift in (
        (math.pi / 3, forewing, 0.0),
        (2 * math.pi / 3, hindwing, bend),
        (4 * math.pi / 3, hindwing, -bend),
        (5 * math.pi / 3, forewing, 0.0),
    ):
        angle = (t - (center + shift) + math.pi) % (2 * math.pi) - math.pi
        radius = radius + 0.6 * scale * np.exp(-(angle**2) / 0.15)
    radius = radius * (1.0 + rng.normal(0.0, jitter, n_vertices))
    radius = np.maximum(radius, 0.05)
    return np.column_stack([radius * np.cos(t), radius * np.sin(t)])
