"""Time-series operations and the star light-curve simulator."""

from repro.timeseries.lightcurves import LIGHT_CURVE_CLASSES, light_curve, light_curve_dataset
from repro.timeseries.ops import (
    all_rotations,
    as_series,
    circular_shift,
    resample,
    running_extrema,
    sliding_envelope,
    smooth_time_warp,
    znormalize,
)

__all__ = [
    "as_series", "znormalize", "circular_shift", "all_rotations", "resample",
    "running_extrema", "sliding_envelope", "smooth_time_warp",
    "LIGHT_CURVE_CLASSES", "light_curve", "light_curve_dataset",
]
