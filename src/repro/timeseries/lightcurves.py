"""Synthetic star light curves (Section 2.4's astronomy application).

A star light curve is the brightness of a celestial object as a function of
time.  After folding by the star's period, one cycle of a periodic variable
is a fixed-length series with **no natural starting point** -- comparing two
light curves requires testing every circular shift, which is exactly the
rotation-invariance problem for shapes in the 1-D representation.

The paper indexes curves from OGLE/MACHO-scale surveys (the Harvard Time
Series Center); those archives are not redistributable, so this module
simulates the three classic periodic-variable classes that dominate such
catalogues (and match the 3-class "Light-Curve" dataset of Table 8):

* **Cepheid-like**: sawtooth profile -- fast rise, slow exponential-ish
  decline.
* **RR-Lyrae-like**: sharper, more asymmetric burst with a pronounced bump.
* **Eclipsing binary**: two dips of different depths per cycle.

Every sample gets a uniformly random phase (the "no natural start point"
property), multiplicative amplitude scatter, and additive photometric
noise.
"""

from __future__ import annotations


import numpy as np

from repro.timeseries.ops import circular_shift, znormalize

__all__ = ["LIGHT_CURVE_CLASSES", "light_curve", "light_curve_dataset"]

LIGHT_CURVE_CLASSES = ("cepheid", "rr_lyrae", "eclipsing_binary")


def _cepheid_template(phase: np.ndarray) -> np.ndarray:
    # Rapid rise over ~20% of the cycle, slow decline over the rest.
    rise = np.clip(phase / 0.2, 0.0, 1.0)
    decline = np.exp(-np.clip(phase - 0.2, 0.0, None) / 0.35)
    return rise * decline


def _rr_lyrae_template(phase: np.ndarray) -> np.ndarray:
    # Very fast rise, steep early decline, small secondary bump.
    rise = np.clip(phase / 0.08, 0.0, 1.0)
    decline = np.exp(-np.clip(phase - 0.08, 0.0, None) / 0.18)
    bump = 0.15 * np.exp(-((phase - 0.65) ** 2) / 0.004)
    return rise * decline + bump


def _eclipsing_binary_template(phase: np.ndarray) -> np.ndarray:
    # Flat out-of-eclipse brightness with a deep primary and shallower
    # secondary eclipse half a cycle apart.
    primary = 0.9 * np.exp(-((phase - 0.25) ** 2) / 0.0025)
    secondary = 0.45 * np.exp(-((phase - 0.75) ** 2) / 0.0025)
    return 1.0 - primary - secondary


_TEMPLATES = {
    "cepheid": _cepheid_template,
    "rr_lyrae": _rr_lyrae_template,
    "eclipsing_binary": _eclipsing_binary_template,
}


def light_curve(
    rng: np.random.Generator,
    kind: str = "cepheid",
    length: int = 512,
    noise: float = 0.05,
    normalize: bool = True,
) -> np.ndarray:
    """One folded light-curve cycle of the given class.

    Parameters
    ----------
    rng:
        Randomness source (phase, amplitude scatter, photometric noise).
    kind:
        One of :data:`LIGHT_CURVE_CLASSES`.
    length:
        Number of samples per cycle.
    noise:
        Photometric noise standard deviation relative to the signal
        amplitude.
    normalize:
        Z-normalise the result (magnitude zero-point and amplitude
        invariance), the standard preprocessing before indexing.
    """
    if kind not in _TEMPLATES:
        raise ValueError(f"unknown light-curve class {kind!r}; choose from {LIGHT_CURVE_CLASSES}")
    if length < 4:
        raise ValueError(f"length must be at least 4, got {length}")
    phase = np.linspace(0.0, 1.0, length, endpoint=False)
    template = _TEMPLATES[kind](phase)
    amplitude = 1.0 + rng.normal(0.0, 0.15)
    # Mild per-star profile stretch: warp the phase slightly.
    stretch = 1.0 + rng.normal(0.0, 0.05)
    warped_phase = np.mod(phase * stretch, 1.0)
    curve = amplitude * np.interp(warped_phase, phase, template)
    curve = curve + rng.normal(0.0, noise * max(abs(amplitude), 0.1), length)
    # Random phase origin: the defining property of the application.
    curve = circular_shift(curve, int(rng.integers(0, length)))
    if normalize:
        curve = znormalize(curve)
    return curve


def light_curve_dataset(
    rng: np.random.Generator,
    per_class: int = 30,
    length: int = 512,
    noise: float = 0.05,
) -> tuple[list[np.ndarray], list[str]]:
    """A labelled dataset of simulated light curves across all three classes.

    Returns ``(curves, labels)`` with classes interleaved, mirroring the
    3-class Light-Curve dataset of Table 8.
    """
    if per_class < 1:
        raise ValueError(f"per_class must be positive, got {per_class}")
    curves: list[np.ndarray] = []
    labels: list[str] = []
    for i in range(per_class):
        for kind in LIGHT_CURVE_CLASSES:
            curves.append(light_curve(rng, kind, length=length, noise=noise))
            labels.append(kind)
    return curves, labels
