"""Elementary time-series operations shared across the library.

These are the building blocks the paper takes for granted: z-normalisation
(offset and scale invariance), circular shifting (the 1-D equivalent of image
rotation, Section 3), resampling to a common length, and envelope
computations used by the wedge machinery.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "as_series",
    "znormalize",
    "circular_shift",
    "all_rotations",
    "resample",
    "running_extrema",
    "sliding_envelope",
    "smooth_time_warp",
]


def as_series(values, dtype=np.float64) -> np.ndarray:
    """Coerce ``values`` to a 1-D float array, validating shape and finiteness.

    Raises
    ------
    ValueError
        If the input is not 1-dimensional, is empty, or contains NaN/inf.
    """
    arr = np.asarray(values, dtype=dtype)
    if arr.ndim != 1:
        raise ValueError(f"expected a 1-D series, got shape {arr.shape}")
    if arr.size == 0:
        raise ValueError("series must not be empty")
    if not np.all(np.isfinite(arr)):
        raise ValueError("series contains non-finite values")
    return arr


def znormalize(series, epsilon: float = 1e-12) -> np.ndarray:
    """Return ``series`` shifted to mean 0 and scaled to standard deviation 1.

    A constant series (standard deviation below ``epsilon``) is returned as
    all zeros rather than dividing by ~0; this matches the common convention
    in the time-series indexing literature.
    """
    arr = as_series(series)
    centered = arr - arr.mean()
    std = centered.std()
    if std < epsilon:
        return np.zeros_like(centered)
    return centered / std


def circular_shift(series, k: int) -> np.ndarray:
    """Rotate ``series`` left by ``k`` positions (``k`` may be negative).

    ``circular_shift(C, 1)`` yields ``c2, c3, ..., cn, c1`` -- the second row
    of the paper's rotation matrix **C** (Section 3).
    """
    arr = as_series(series)
    k = int(k) % arr.size
    if k == 0:
        return arr.copy()
    return np.concatenate([arr[k:], arr[:k]])


def all_rotations(series) -> np.ndarray:
    """Return the full rotation matrix **C**: one circular shift per row.

    Row ``j`` is ``series`` shifted left by ``j``; row 0 is the original.
    The result has shape ``(n, n)`` for a length-``n`` input, exactly the
    matrix defined in Section 3 of the paper.
    """
    arr = as_series(series)
    n = arr.size
    doubled = np.concatenate([arr, arr])
    # Stride trick: row j is doubled[j : j + n]; copy to decouple from input.
    strides = (doubled.strides[0], doubled.strides[0])
    view = np.lib.stride_tricks.as_strided(doubled, shape=(n, n), strides=strides)
    return view.copy()


def resample(series, length: int) -> np.ndarray:
    """Linearly interpolate ``series`` onto ``length`` evenly spaced points.

    Used to bring shape boundaries and light curves of different raw lengths
    onto a common length ``n`` before comparison.
    """
    arr = as_series(series)
    if length < 1:
        raise ValueError(f"target length must be positive, got {length}")
    if arr.size == length:
        return arr.copy()
    old_x = np.linspace(0.0, 1.0, arr.size)
    new_x = np.linspace(0.0, 1.0, length)
    return np.interp(new_x, old_x, arr)


def smooth_time_warp(
    series,
    rng: np.random.Generator,
    strength: float = 0.1,
    n_knots: int = 6,
) -> np.ndarray:
    """Locally stretch/compress the time axis with a smooth circular warp.

    Dataset builders use this to create the within-class "local distortions"
    the paper attributes to proportion differences between specimens
    (Figure 11) -- the variation DTW absorbs and Euclidean distance cannot.

    The warp is a monotone perturbation of the circular domain: knot
    displacements bounded by ``strength`` of a knot interval guarantee the
    warped sampling positions stay ordered.
    """
    arr = as_series(series)
    if not 0 <= strength < 1:
        raise ValueError(f"strength must be in [0, 1), got {strength}")
    if n_knots < 2:
        raise ValueError(f"n_knots must be at least 2, got {n_knots}")
    n = arr.size
    knots = np.linspace(0.0, n, n_knots + 1)
    interval = n / n_knots
    displaced = knots + rng.uniform(-strength * interval / 2, strength * interval / 2, n_knots + 1)
    displaced[0] = knots[0]
    displaced[-1] = knots[-1]
    positions = np.interp(np.arange(n), knots, displaced)
    # Sample the series at the warped (fractional, circular) positions.
    base = np.floor(positions).astype(int) % n
    frac = positions - np.floor(positions)
    nxt = (base + 1) % n
    return (1.0 - frac) * arr[base] + frac * arr[nxt]


def running_extrema(matrix: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Pointwise max and min over the rows of ``matrix``.

    This is the wedge construction of Section 4.1:
    ``U_i = max(C1_i, ..., Ck_i)`` and ``L_i = min(C1_i, ..., Ck_i)``.
    """
    mat = np.asarray(matrix, dtype=np.float64)
    if mat.ndim != 2 or mat.shape[0] == 0:
        raise ValueError(f"expected a non-empty 2-D matrix, got shape {mat.shape}")
    return mat.max(axis=0), mat.min(axis=0)


def sliding_envelope(upper, lower, radius: int) -> tuple[np.ndarray, np.ndarray]:
    """Expand an envelope by a sliding window of ``radius`` on each side.

    Implements the DTW envelope of Section 4.3:
    ``DTW_U_i = max(U_{i-R} : U_{i+R})`` and
    ``DTW_L_i = min(L_{i-R} : L_{i+R})``,
    with the window clipped at the series boundaries.  ``radius=0`` returns
    copies of the inputs.
    """
    u = as_series(upper)
    lo = as_series(lower)
    if u.size != lo.size:
        raise ValueError(f"envelope arms differ in length: {u.size} vs {lo.size}")
    if radius < 0:
        raise ValueError(f"radius must be non-negative, got {radius}")
    n = u.size
    if radius == 0:
        return u.copy(), lo.copy()
    radius = min(radius, n - 1)
    width = 2 * radius + 1
    padded_u = np.concatenate([np.full(radius, -np.inf), u, np.full(radius, -np.inf)])
    padded_l = np.concatenate([np.full(radius, np.inf), lo, np.full(radius, np.inf)])
    windows_u = np.lib.stride_tricks.sliding_window_view(padded_u, width)
    windows_l = np.lib.stride_tricks.sliding_window_view(padded_l, width)
    return windows_u.max(axis=1), windows_l.min(axis=1)
