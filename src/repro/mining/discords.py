"""Rotation-invariant discord (outlier) discovery.

Section 2.4 cites the exact application: "researchers discover unusual
light curves worthy of further examination by finding the examples with
the least similarity to other objects" [29].  The *discord* of a
collection is the object whose nearest-neighbour distance is largest --
here under rotation-invariant distance, so an oddly *phased* copy of a
common star is not flagged, only a genuinely odd light curve is.

The search uses the classic outer/inner early-termination: while scanning
candidates, an object can be ruled out as soon as any neighbour is found
closer than the best discord score so far, and the wedge machinery prunes
the inner scans.  Exact for all three measures.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.counters import StepCounter
from repro.core.hmerge import h_merge
from repro.core.search import RotationQuery
from repro.distances.base import Measure

__all__ = ["Discord", "find_discords"]


@dataclass(frozen=True)
class Discord:
    """An outlier: its position and its distance to its nearest neighbour."""

    index: int
    nn_distance: float
    nn_index: int


def find_discords(
    collection: Sequence,
    measure: Measure,
    top: int = 1,
    mirror: bool = False,
    wedge_set_size: int = 8,
    counter: StepCounter | None = None,
) -> list[Discord]:
    """The ``top`` objects with the largest rotation-invariant NN distance.

    Parameters
    ----------
    collection:
        The series to mine (each is compared against all others).
    measure:
        Euclidean, DTW, or LCSS.
    top:
        How many discords to report, strongest first.
    mirror:
        Treat mirror images as neighbours.

    Returns
    -------
    list[Discord]
        Sorted by descending nearest-neighbour distance.
    """
    if top < 1:
        raise ValueError(f"top must be positive, got {top}")
    rows = [np.asarray(row, dtype=np.float64) for row in collection]
    if len(rows) < 2:
        raise ValueError("discord discovery needs at least two objects")
    counter = counter if counter is not None else StepCounter()

    # Pre-build each object's rotation wedge tree once; every object serves
    # as a query exactly once, so this is the same O(n^2)-per-object cost
    # the paper charges for search.
    queries = [RotationQuery(row, mirror=mirror) for row in rows]
    frontiers = []
    for rq in queries:
        tree = rq.wedge_tree(counter)
        frontiers.append(tree.frontier(min(wedge_set_size, tree.max_k)))

    scores: list[Discord] = []
    # The pruning floor: the weakest NN-distance still in the current top
    # list.  An object whose NN distance provably falls below it cannot be
    # a reported discord, so its inner scan may stop early.
    floor = 0.0
    for i, _row in enumerate(rows):
        best = math.inf
        best_j = -1
        ruled_out = False
        for j, other in enumerate(rows):
            if j == i:
                continue
            dist, _rotation = h_merge(
                other, frontiers[i], measure, r=min(best, math.inf), counter=counter
            )
            if dist < best:
                best = dist
                best_j = j
            if len(scores) >= top and best < floor:
                # Early termination: some neighbour is already closer than
                # the weakest kept discord; object i cannot make the list.
                ruled_out = True
                break
        if ruled_out:
            continue
        if math.isfinite(best):
            scores.append(Discord(i, best, best_j))
            scores.sort(key=lambda d: -d.nn_distance)
            del scores[top:]
            floor = scores[-1].nn_distance if len(scores) >= top else 0.0
    return scores
