"""k-NN and range queries under rotation invariance.

The paper's engine answers 1-NN queries; real data-mining clients
(classification with k > 1, density estimation, radius joins) need the two
standard generalisations, both of which fall out of the same wedge
machinery:

* **k-NN** -- maintain a max-heap of the k best matches; the pruning
  threshold is the *k-th* best distance instead of the best.
* **range search** -- the threshold is fixed at the query radius; every
  object whose best rotation beats it is reported.

Both are exact (no false dismissals) for Euclidean, DTW, and LCSS.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.counters import StepCounter
from repro.core.hmerge import h_merge
from repro.core.search import RotationQuery
from repro.distances.base import Measure

__all__ = ["Neighbor", "knn_search", "range_search"]


@dataclass(frozen=True)
class Neighbor:
    """One match: database position, distance, aligning rotation."""

    index: int
    distance: float
    rotation: int


@dataclass
class QueryStats:
    counter: StepCounter = field(default_factory=StepCounter)


def _prepare(query, measure, mirror, max_degrees, k_frontier, counter):
    rq = query if isinstance(query, RotationQuery) else RotationQuery(
        query, mirror=mirror, max_degrees=max_degrees
    )
    tree = rq.wedge_tree(counter)
    frontier = tree.frontier(min(k_frontier, tree.max_k))
    return rq, frontier


def knn_search(
    database: Sequence,
    query,
    measure: Measure,
    k: int = 1,
    mirror: bool = False,
    max_degrees: float | None = None,
    wedge_set_size: int = 8,
    counter: StepCounter | None = None,
    tracer=None,
    pruner=None,
    batch_leaves: bool = True,
) -> list[Neighbor]:
    """The k nearest rotation-invariant neighbours, ascending by distance.

    Exact: identical to sorting all rotation-invariant distances and taking
    the first k, but pruned with wedges against the running k-th best.
    Returns fewer than ``k`` entries only when the database is smaller.
    ``tracer`` (a :class:`repro.obs.Tracer`) records per-tier pruning
    spans via ``h_merge``; it never affects answers or step counts.
    ``pruner`` (a :class:`~repro.core.cascade.CascadePolicy`, typically
    configured from a :class:`~repro.core.planner.QueryPlan`) routes leaves
    through the full cascade and accumulates the tier funnel; ``None``
    keeps the plain LB_Keogh traversal.  Answers are identical either way.
    """
    if k < 1:
        raise ValueError(f"k must be positive, got {k}")
    counter = counter if counter is not None else StepCounter()
    _rq, frontier = _prepare(query, measure, mirror, max_degrees, wedge_set_size, counter)
    # Max-heap of (-distance, -index, rotation); its root is the worst kept
    # entry.  Negating the index makes the root the *largest* index among
    # equal-distance ties, so eviction always drops the entry the canonical
    # (distance, index) order prefers least.  The returned set is then
    # exactly "sort every rotation-invariant distance by (distance, index)
    # and take the first k" regardless of scan history -- the property the
    # sharded service's global top-K merge relies on for tie parity.
    heap: list[tuple[float, int, int]] = []
    for i, obj in enumerate(database):
        obj = np.asarray(obj, dtype=np.float64)
        threshold = -heap[0][0] if len(heap) == k else math.inf
        dist, rotation = h_merge(
            obj,
            frontier,
            measure,
            r=threshold,
            counter=counter,
            tracer=tracer,
            pruner=pruner,
            batch_leaves=batch_leaves,
        )
        if not math.isfinite(dist):
            continue
        if len(heap) < k:
            heapq.heappush(heap, (-dist, -i, rotation))
        else:
            heapq.heappushpop(heap, (-dist, -i, rotation))
    neighbours = [Neighbor(-negi, -negd, rot) for negd, negi, rot in heap]
    neighbours.sort(key=lambda nb: (nb.distance, nb.index))
    return neighbours


def range_search(
    database: Sequence,
    query,
    measure: Measure,
    radius: float,
    mirror: bool = False,
    max_degrees: float | None = None,
    wedge_set_size: int = 8,
    counter: StepCounter | None = None,
    tracer=None,
    pruner=None,
    batch_leaves: bool = True,
) -> list[Neighbor]:
    """Every object within ``radius`` of the query under any rotation.

    Results are ordered by ascending database position, one entry per
    position -- the canonical order
    :func:`repro.core.search.merge_range_hits` preserves when shard-level
    hit lists are merged.  Objects at *exactly* ``radius`` are included:
    the threshold below nudges the strict ``<`` pruning comparison by one
    part in 10^12 so boundary hits survive, and the final ``dist <=
    radius`` filter keeps the reported set inclusive.  The threshold never
    shrinks, so pruning power is exactly the paper's "range" semantics for
    early abandoning (Definition 1).
    """
    if radius < 0:
        raise ValueError(f"radius must be non-negative, got {radius}")
    counter = counter if counter is not None else StepCounter()
    _rq, frontier = _prepare(query, measure, mirror, max_degrees, wedge_set_size, counter)
    hits: list[Neighbor] = []
    # h_merge prunes with a strict < threshold; nudge so that objects at
    # exactly ``radius`` are reported, matching inclusive range semantics.
    threshold = radius * (1.0 + 1e-12) + 1e-300
    for i, obj in enumerate(database):
        obj = np.asarray(obj, dtype=np.float64)
        dist, rotation = h_merge(
            obj,
            frontier,
            measure,
            r=threshold,
            counter=counter,
            tracer=tracer,
            pruner=pruner,
            batch_leaves=batch_leaves,
        )
        if math.isfinite(dist) and dist <= radius:
            hits.append(Neighbor(i, dist, rotation))
    return hits
