"""Streaming query filtering over a pattern set ("Atomic Wedgie" style).

The paper highlights that LB_Keogh wedges had already been adopted for
"query filtering ... and monitoring streams" (Wei et al. [40]).  The task:
given a set of query patterns and a threshold ``r``, watch a streaming
series and report every window whose distance to *some* pattern is within
``r`` -- cheaply enough to keep up with the stream.

The wedge trick transfers verbatim: hierarchically cluster the *patterns*
(instead of a query's rotations) into nested envelopes, and test each
incoming window with one early-abandoning H-Merge.  Windows that resemble
no pattern -- the overwhelming majority -- die on the first few points of
the root wedge's lower bound.

Supports Euclidean, DTW, and LCSS matching, optional per-window
z-normalisation, and (unlike a single-shot filter) reports *all* patterns
within ``r`` of a window, not just the best one.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.core.counters import StepCounter
from repro.core.wedge import Wedge
from repro.core.wedge_builder import wedge_tree_from_series
from repro.distances.base import Measure
from repro.timeseries.ops import znormalize

__all__ = ["StreamMatch", "StreamMonitor"]


@dataclass(frozen=True)
class StreamMatch:
    """One detection: stream position of the window end, pattern, distance."""

    end_position: int
    pattern: int
    distance: float


class StreamMonitor:
    """Monitor a stream for windows matching any of a set of patterns.

    Parameters
    ----------
    patterns:
        ``(k, w)`` matrix of equal-length query patterns.
    measure:
        Euclidean, DTW, or LCSS measure for the window-pattern comparison.
    threshold:
        Report a window when its distance to a pattern is ``<= threshold``.
    normalize:
        Z-normalise each window before matching (patterns are normalised at
        construction time when set); leave False for raw matching.
    wedge_set_size:
        Size of the starting wedge frontier.
    linkage_method:
        How the pattern hierarchy is built ("average" is the paper's).
    """

    def __init__(
        self,
        patterns,
        measure: Measure,
        threshold: float,
        normalize: bool = False,
        wedge_set_size: int = 2,
        linkage_method: str = "average",
    ):
        rows = np.asarray(patterns, dtype=np.float64)
        if rows.ndim != 2 or rows.shape[0] == 0:
            raise ValueError(f"expected (k, w) patterns, got shape {rows.shape}")
        if threshold < 0:
            raise ValueError(f"threshold must be non-negative, got {threshold}")
        if normalize:
            rows = np.vstack([znormalize(row) for row in rows])
        self.measure = measure
        self.threshold = float(threshold)
        self.normalize = normalize
        self.window = rows.shape[1]
        self.counter = StepCounter()
        self._tree = wedge_tree_from_series(rows, method=linkage_method, counter=self.counter)
        self._frontier = self._tree.frontier(min(wedge_set_size, self._tree.max_k))
        self._buffer: deque[float] = deque(maxlen=self.window)
        self._position = -1
        self.windows_seen = 0

    def process(self, value: float) -> list[StreamMatch]:
        """Feed one stream sample; returns matches ending at this sample."""
        self._position += 1
        self._buffer.append(float(value))
        if len(self._buffer) < self.window:
            return []
        self.windows_seen += 1
        window = np.asarray(self._buffer, dtype=np.float64)
        if self.normalize:
            window = znormalize(window)
        return self._match_window(window)

    def process_batch(self, values) -> list[StreamMatch]:
        """Feed many samples; returns all matches, in stream order."""
        matches: list[StreamMatch] = []
        for value in np.asarray(values, dtype=np.float64):
            matches.extend(self.process(value))
        return matches

    def _match_window(self, window: np.ndarray) -> list[StreamMatch]:
        """All patterns within the threshold of this window.

        A full H-Merge variant that does not stop at the first hit: every
        wedge whose lower bound stays under the threshold is descended, and
        every leaf within the threshold is reported.
        """
        hits: list[StreamMatch] = []
        # Strictly-greater threshold so distances equal to it are reported.
        limit = self.threshold * (1.0 + 1e-12) + 1e-300
        stack: list[Wedge] = list(self._frontier)
        while stack:
            wedge = stack.pop()
            upper, lower = wedge.envelope_for(self.measure)
            lb = self.measure.lower_bound(window, upper, lower, limit, counter=self.counter)
            if lb >= limit:
                continue
            if wedge.is_leaf:
                if self.measure.lb_exact_for_singleton:
                    dist = lb
                else:
                    dist = self.measure.distance(window, wedge.series, limit, counter=self.counter)
                if dist <= self.threshold:
                    hits.append(StreamMatch(self._position, wedge.indices[0], float(dist)))
            else:
                stack.extend(wedge.children)
        hits.sort(key=lambda match: match.pattern)
        return hits
