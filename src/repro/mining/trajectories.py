"""Rotation-invariant matching of multi-dimensional trajectories.

The wedge framework the paper builds on was introduced for
*multi-dimensional* time series (Vlachos et al. [37], which the paper
cites for its DTW/LCSS bounds), and the paper's conference version was
picked up for hand-geometry biometrics [25] -- closed (x, y) traces of a
hand outline, matched under an arbitrary starting point.

The reduction to the existing 1-D machinery is exact for Euclidean
distance: interleave a closed ``(n, d)`` trajectory into a flat vector of
length ``n*d``; a start-point rotation of the trajectory is then a
circular shift by a multiple of ``d``, and the flat Euclidean distance
equals the trajectory distance ``sqrt(sum_i ||q_i - c_i||^2)``.  Wedges,
H-Merge, and early abandoning apply verbatim to the flattened candidates.

For pairwise use without the index, :func:`trajectory_dtw` provides true
multi-dimensional banded DTW (warping whole points, not interleaved
scalars).
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.core.counters import StepCounter
from repro.core.hmerge import h_merge
from repro.core.search import SearchResult
from repro.core.wedge_builder import wedge_tree_from_series
from repro.distances.euclidean import EuclideanMeasure

__all__ = [
    "flatten_trajectory",
    "trajectory_rotations",
    "trajectory_search",
    "trajectory_dtw",
    "normalize_trajectory",
]


def _as_trajectory(trajectory) -> np.ndarray:
    arr = np.asarray(trajectory, dtype=np.float64)
    if arr.ndim != 2 or arr.shape[0] < 1 or arr.shape[1] < 1:
        raise ValueError(f"expected an (n, d) trajectory, got shape {arr.shape}")
    if not np.all(np.isfinite(arr)):
        raise ValueError("trajectory contains non-finite values")
    return arr


def normalize_trajectory(trajectory) -> np.ndarray:
    """Centre on the centroid and scale to unit RMS radius.

    The trajectory analogue of z-normalisation: translation and scale
    invariance without disturbing the start-point degree of freedom.
    """
    arr = _as_trajectory(trajectory)
    arr = arr - arr.mean(axis=0)
    rms = math.sqrt(float(np.mean(np.einsum("ij,ij->i", arr, arr))))
    if rms > 1e-12:
        arr = arr / rms
    return arr


def flatten_trajectory(trajectory) -> np.ndarray:
    """Interleave an ``(n, d)`` trajectory into a flat length ``n*d`` vector."""
    return _as_trajectory(trajectory).reshape(-1).copy()


def trajectory_rotations(trajectory) -> np.ndarray:
    """All start-point rotations of a closed trajectory, flattened.

    Row ``k`` is the trajectory started at point ``k`` -- a circular shift
    of the flat vector by ``k*d`` positions.
    """
    arr = _as_trajectory(trajectory)
    n = arr.shape[0]
    doubled = np.vstack([arr, arr])
    return np.vstack([doubled[k : k + n].reshape(-1) for k in range(n)])


def trajectory_search(
    database: Sequence,
    query,
    normalize: bool = True,
    wedge_set_size: int = 8,
    counter: StepCounter | None = None,
) -> SearchResult:
    """Exact start-point-invariant 1-NN over closed trajectories.

    Euclidean distance between equal-length ``(n, d)`` trajectories,
    minimised over the query's start point; ``result.rotation`` is the
    aligning start index.  All the wedge pruning of the 1-D machinery
    applies (the candidates are mutually similar, so envelopes are tight).
    """
    query_arr = _as_trajectory(query)
    if normalize:
        query_arr = normalize_trajectory(query_arr)
    counter = counter if counter is not None else StepCounter()
    candidates = trajectory_rotations(query_arr)
    tree = wedge_tree_from_series(candidates, counter=counter)
    frontier = tree.frontier(min(wedge_set_size, tree.max_k))
    measure = EuclideanMeasure()

    best = math.inf
    best_index, best_start = -1, -1
    for i, obj in enumerate(database):
        obj_arr = _as_trajectory(obj)
        if obj_arr.shape != query_arr.shape:
            raise ValueError(
                f"object {i} has shape {obj_arr.shape}, query has {query_arr.shape}"
            )
        if normalize:
            obj_arr = normalize_trajectory(obj_arr)
        flat = obj_arr.reshape(-1)
        dist, start = h_merge(flat, frontier, measure, r=best, counter=counter)
        if dist < best:
            best, best_index, best_start = dist, i, start
    return SearchResult(best_index, best, best_start, counter, "trajectory-wedge")


def trajectory_dtw(
    query,
    candidate,
    radius: int,
    r: float = math.inf,
) -> float:
    """Banded DTW between two ``(n, d)`` trajectories (whole-point warping).

    The ground cost of aligning points ``i`` and ``j`` is their squared
    Euclidean distance in ``R^d``; the result is the square root of the
    optimal path cost, with row-wise early abandoning at ``r``.
    """
    q = _as_trajectory(query)
    c = _as_trajectory(candidate)
    if q.shape != c.shape:
        raise ValueError(f"shape mismatch: {q.shape} vs {c.shape}")
    n = q.shape[0]
    radius = min(int(radius), n - 1)
    if radius < 0:
        raise ValueError("radius must be non-negative")
    threshold = r * r if math.isfinite(r) else math.inf
    inf = math.inf
    prev = [inf] * n
    for i in range(n):
        j_lo = max(0, i - radius)
        j_hi = min(n - 1, i + radius)
        cur = [inf] * n
        row_min = inf
        qi = q[i]
        for j in range(j_lo, j_hi + 1):
            delta = qi - c[j]
            ground = float(np.dot(delta, delta))
            if i == 0 and j == 0:
                best_prev = 0.0
            else:
                best_prev = prev[j]
                if j > 0:
                    if prev[j - 1] < best_prev:
                        best_prev = prev[j - 1]
                    if cur[j - 1] < best_prev:
                        best_prev = cur[j - 1]
            cost = ground + best_prev
            cur[j] = cost
            if cost < row_min:
                row_min = cost
        if row_min > threshold:
            return math.inf
        prev = cur
    final = prev[n - 1]
    if final > threshold:
        return math.inf
    return math.sqrt(final)
