"""Rotation-invariant motif discovery (closest-pair mining).

The paper's future work: "we have begun to use our algorithm as a
subroutine in several data mining algorithms which attempt to cluster,
classify and discover motifs".  The *motif* of a collection is its closest
pair under the rotation-invariant distance -- e.g. the two most similar
projectile points in an archive, whatever their excavation orientation.

The search scans ordered pairs with a shared best-so-far: every pairwise
comparison is an H-Merge against the first element's wedge tree,
early-abandoning against the globally best pair found so far, so the vast
majority of pairs cost a handful of steps.  Exact for all measures.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.counters import StepCounter
from repro.core.hmerge import h_merge
from repro.core.search import RotationQuery
from repro.distances.base import Measure
from repro.index.fourier import fourier_signature

__all__ = ["Motif", "find_motif"]


@dataclass(frozen=True)
class Motif:
    """The closest pair: positions, distance, and the aligning rotation."""

    first: int
    second: int
    distance: float
    rotation: int


def find_motif(
    collection: Sequence,
    measure: Measure,
    mirror: bool = False,
    wedge_set_size: int = 8,
    counter: StepCounter | None = None,
) -> Motif:
    """The closest rotation-invariant pair in ``collection``.

    For Euclidean distance, candidate pairs are pre-ordered by the
    Fourier-magnitude lower bound (Section 4.2): scanning likely-close
    pairs first collapses the best-so-far immediately, and pairs whose
    magnitude bound already exceeds it are skipped without touching the
    raw series.  Other measures scan pairs in index order.
    """
    rows = [np.asarray(row, dtype=np.float64) for row in collection]
    if len(rows) < 2:
        raise ValueError("motif discovery needs at least two objects")
    counter = counter if counter is not None else StepCounter()

    queries: dict[int, tuple] = {}

    def frontier_for(i: int):
        if i not in queries:
            rq = RotationQuery(rows[i], mirror=mirror)
            tree = rq.wedge_tree(counter)
            queries[i] = tree.frontier(min(wedge_set_size, tree.max_k))
        return queries[i]

    pairs = [(i, j) for i in range(len(rows)) for j in range(i + 1, len(rows))]
    magnitude_bounds = None
    if measure.name == "euclidean":
        signatures = [fourier_signature(row) for row in rows]
        magnitude_bounds = {
            (i, j): float(np.linalg.norm(signatures[i] - signatures[j]))
            for i, j in pairs
        }
        pairs.sort(key=magnitude_bounds.__getitem__)

    best = math.inf
    best_pair = (-1, -1)
    best_rotation = -1
    for i, j in pairs:
        if magnitude_bounds is not None and magnitude_bounds[(i, j)] >= best:
            counter.early_abandons += 1
            continue
        dist, rotation = h_merge(rows[j], frontier_for(i), measure, r=best, counter=counter)
        if dist < best:
            best = dist
            best_pair = (i, j)
            best_rotation = rotation
    if best_pair == (-1, -1):
        raise RuntimeError("no finite pair distance found")
    return Motif(best_pair[0], best_pair[1], best, best_rotation)
