"""Uniform-scaling invariant search (the [18] branch of the LB_Keogh family).

The paper lists uniform scaling among the invariances the LB_Keogh
framework already supports ("Indexing Large Human-Motion Databases",
Keogh et al., VLDB 2004): a motion performed 10% faster is the same series
with a uniformly stretched time axis, and matching must minimise over a
range of stretch factors -- structurally identical to minimising over
rotations.

The reduction to the existing machinery is direct:

1. generate the candidate set: the query re-interpolated at each stretch
   factor in a grid over ``[min_factor, max_factor]``;
2. build a wedge tree over the candidates (they are mutually similar, so
   the envelopes are tight);
3. scan the database with H-Merge, exactly as for rotations.

The grid makes the search exact *for the gridded factors* (the standard
formulation -- real systems always discretise the scaling range).
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.core.counters import StepCounter
from repro.core.hmerge import h_merge
from repro.core.search import SearchResult
from repro.core.wedge_builder import wedge_tree_from_series
from repro.distances.base import Measure
from repro.timeseries.ops import as_series

__all__ = ["scaled_candidates", "scaling_invariant_search"]


def scaled_candidates(
    query,
    min_factor: float = 0.8,
    max_factor: float = 1.25,
    n_factors: int = 16,
) -> tuple[np.ndarray, np.ndarray]:
    """The query re-timed at every stretch factor in the grid.

    A factor ``s`` stretches the query's time axis by ``s`` (s > 1 slows
    it down) and re-interpolates back to the original length, so all
    candidates are directly comparable.  Returns ``(candidates, factors)``
    with ``candidates[t]`` the query at ``factors[t]``.
    """
    q = as_series(query)
    if not 0 < min_factor <= max_factor:
        raise ValueError(f"need 0 < min_factor <= max_factor, got [{min_factor}, {max_factor}]")
    if n_factors < 1:
        raise ValueError(f"n_factors must be positive, got {n_factors}")
    n = q.size
    factors = np.linspace(min_factor, max_factor, n_factors)
    base_x = np.arange(n, dtype=np.float64)
    rows = []
    for s in factors:
        # Sample the stretched query at the original n positions; positions
        # beyond the stretched support clamp to the final value.
        positions = np.clip(base_x / s, 0.0, n - 1)
        rows.append(np.interp(positions, base_x, q))
    return np.vstack(rows), factors


def scaling_invariant_search(
    database: Sequence,
    query,
    measure: Measure,
    min_factor: float = 0.8,
    max_factor: float = 1.25,
    n_factors: int = 16,
    wedge_set_size: int = 2,
    counter: StepCounter | None = None,
) -> tuple[SearchResult, float]:
    """Nearest neighbour under uniform scaling of the query.

    Returns ``(result, best_factor)``: the matching database object and the
    stretch factor at which it aligned.  ``result.rotation`` carries the
    index into the factor grid (the machinery is shared with the
    rotation-invariant search, where that slot holds the shift).
    """
    candidates, factors = scaled_candidates(query, min_factor, max_factor, n_factors)
    counter = counter if counter is not None else StepCounter()
    tree = wedge_tree_from_series(candidates, counter=counter)
    frontier = tree.frontier(min(wedge_set_size, tree.max_k))
    best = math.inf
    best_index, best_candidate = -1, -1
    for i, obj in enumerate(database):
        obj = np.asarray(obj, dtype=np.float64)
        dist, candidate = h_merge(obj, frontier, measure, r=best, counter=counter)
        if dist < best:
            best, best_index, best_candidate = dist, i, candidate
    result = SearchResult(best_index, best, best_candidate, counter, "scaling-wedge")
    best_factor = float(factors[best_candidate]) if best_candidate >= 0 else float("nan")
    return result, best_factor
