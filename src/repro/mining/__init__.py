"""Data-mining applications built on the rotation-invariant engine.

The paper's closing section promises to use the wedge search "as a
subroutine in several data mining algorithms which attempt to cluster,
classify and discover motifs"; this subpackage delivers the standard set:
k-NN / range queries, motif (closest-pair) discovery, and discord
(outlier) discovery -- the latter being exactly the "unusual light curve"
application of Section 2.4.
"""

from repro.mining.discords import Discord, find_discords
from repro.mining.motifs import Motif, find_motif
from repro.mining.queries import Neighbor, knn_search, range_search
from repro.mining.scaling import scaled_candidates, scaling_invariant_search
from repro.mining.streaming import StreamMatch, StreamMonitor
from repro.mining.trajectories import (
    flatten_trajectory,
    normalize_trajectory,
    trajectory_dtw,
    trajectory_rotations,
    trajectory_search,
)

__all__ = [
    "Neighbor", "knn_search", "range_search",
    "Motif", "find_motif",
    "Discord", "find_discords",
    "StreamMatch", "StreamMonitor",
    "scaled_candidates", "scaling_invariant_search",
    "trajectory_search", "trajectory_dtw", "trajectory_rotations",
    "flatten_trajectory", "normalize_trajectory",
]
