"""Longest Common SubSequence similarity (Section 4.3, Figures 14-15).

LCSS is DTW's robust cousin: instead of forcing every point to match, it
simply ignores parts of the series that are too difficult to match --
occlusions, broken projectile-point tips, missing skull bones.  Two points
``q_i`` and ``c_j`` *match* when they are within ``epsilon`` in value and
within ``delta`` in time; the LCSS length is the largest number of
monotonically ordered matches.

Following the paper (and Vlachos et al. [37], which it cites for the lower
bound), we report:

* ``similarity(q, c) = lcss_length / n``  in ``[0, 1]``,
* ``distance(q, c)   = 1 - similarity``   so the wedge machinery can treat
  LCSS uniformly as a distance (the paper: "The minor changes include
  reversing some inequality signs since LCSS is a similarity measure").

The dynamic program runs over anti-diagonals exactly like
:mod:`repro.distances.dtw`, with ``max`` in place of ``min``, and abandons
early once even a perfect match of all remaining points could not bring the
distance below the threshold.  The DP itself lives in the pluggable kernel
backends of :mod:`repro.kernels`; this module validates arguments, selects
a backend, and keeps the step accounting.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.counters import StepCounter
from repro.distances.base import Measure
from repro.kernels import get_backend
from repro.timeseries.ops import sliding_envelope

__all__ = ["LCSSMeasure", "lcss_similarity", "lcss_batch"]


def lcss_similarity(q, c, delta: int, epsilon: float) -> float:
    """LCSS similarity of two equal-length series, in ``[0, 1]``."""
    sims, _steps, _abandoned = lcss_batch(q, np.atleast_2d(c), delta, epsilon)
    return float(sims[0])


def lcss_batch(
    q,
    candidates,
    delta: int,
    epsilon: float,
    min_similarity: float = 0.0,
    backend: str | None = None,
) -> tuple[np.ndarray, int, np.ndarray]:
    """Banded LCSS similarity of ``q`` against every row of ``candidates``.

    Parameters
    ----------
    q, candidates:
        Query series and a ``(k, n)`` matrix of candidates.
    delta:
        Maximum time separation ``|i - j|`` of a matched pair.
    epsilon:
        Maximum value separation of a matched pair.
    min_similarity:
        Early-abandonment floor: a candidate is abandoned once even matching
        every remaining point could not reach this similarity.  Abandoned
        candidates report similarity ``-inf``.
    backend:
        Kernel backend name, or ``None`` for the default resolution chain.

    Returns
    -------
    (similarities, steps, abandoned)
    """
    q = np.asarray(q, dtype=np.float64)
    rows = np.atleast_2d(np.asarray(candidates, dtype=np.float64))
    if rows.shape[1] != q.size:
        raise ValueError(f"length mismatch: {rows.shape[1]} vs {q.size}")
    if epsilon < 0:
        raise ValueError(f"epsilon must be non-negative, got {epsilon}")
    delta = min(int(delta), q.size - 1)
    if delta < 0:
        raise ValueError("delta must be non-negative")
    return get_backend(backend).lcss_batch(q, rows, delta, float(epsilon), float(min_similarity))


class LCSSMeasure(Measure):
    """LCSS exposed as a distance (``1 - similarity``) for the wedge engine.

    Parameters
    ----------
    delta:
        Time-warping band (like DTW's ``R``).
    epsilon:
        Value threshold below which two points are considered matched.
    backend:
        Kernel backend name to pin this instance to, or ``None`` (the
        default) to resolve per call.  Backends are exact, so the choice
        never enters :meth:`cache_key`.
    """

    name = "lcss"
    has_improved_bound = True
    # LB_Kim compares raw values; LCSS distance lives in match-count space,
    # where one large value discrepancy proves nothing about the distance.
    kim_compatible = False
    uses_kernel_backends = True

    def __init__(self, delta: int, epsilon: float, backend: str | None = None):
        if delta < 0:
            raise ValueError(f"delta must be non-negative, got {delta}")
        if epsilon < 0:
            raise ValueError(f"epsilon must be non-negative, got {epsilon}")
        self.delta = int(delta)
        self.epsilon = float(epsilon)
        if backend is not None:
            backend = get_backend(backend).name
        self.backend = backend

    def cache_key(self) -> tuple:
        return (self.name, self.delta, self.epsilon)

    def distance(self, q, c, r=math.inf, counter: StepCounter | None = None) -> float:
        floor = max(0.0, 1.0 - r) if math.isfinite(r) else 0.0
        sims, steps, abandoned = lcss_batch(
            q,
            np.atleast_2d(c),
            self.delta,
            self.epsilon,
            min_similarity=floor,
            backend=self.backend,
        )
        if counter is not None:
            counter.distance_calls += 1
            counter.add(steps)
            counter.early_abandons += int(abandoned[0])
        if abandoned[0]:
            return math.inf
        return 1.0 - float(sims[0])

    def expand_envelope(self, upper, lower):
        """Widen the wedge by the time band ``delta`` and value band ``epsilon``."""
        u, lo = sliding_envelope(upper, lower, self.delta)
        return u + self.epsilon, lo - self.epsilon

    def lower_bound(
        self, q, upper, lower, r=math.inf, counter: StepCounter | None = None
    ) -> float:
        """``1 - (matchable points) / n`` lower-bounds the LCSS distance.

        A point of the candidate that lies outside the expanded envelope can
        never participate in a match with any enclosed query rotation, so
        the count of in-envelope points upper-bounds the LCSS length.
        Scanning abandons once the mismatch count alone already exceeds
        ``r * n``.
        """
        q = np.asarray(q, dtype=np.float64)
        upper = np.asarray(upper, dtype=np.float64)
        lower = np.asarray(lower, dtype=np.float64)
        n = q.size
        outside = (q > upper) | (q < lower)
        if counter is not None:
            counter.lb_calls += 1
        if math.isfinite(r):
            misses = np.cumsum(outside)
            allowed = r * n
            cut = int(np.searchsorted(misses, allowed, side="right"))
            if cut < n:
                if counter is not None:
                    counter.add(cut + 1)
                    counter.early_abandons += 1
                return math.inf
        if counter is not None:
            counter.add(n)
        return float(int(outside.sum())) / n

    def improved_lower_bound(
        self,
        q,
        upper,
        lower,
        raw_upper,
        raw_lower,
        r=math.inf,
        keogh: float | None = None,
        counter: StepCounter | None = None,
    ) -> float:
        """The sign-flipped LCSS analogue of LB_Improved.

        Pass 1 counts points of ``q`` no enclosed series can match.  Pass 2
        counts wedge positions ``j`` whose whole raw interval lies outside
        the ``delta``/``epsilon`` band of the projection ``H = clip(q, L,
        U)`` -- unmatchable by *any* point of ``q``: a matchable pair needs
        ``q_i`` inside the expanded envelope (else pass 1 already excludes
        it), and there ``H_i == q_i``.  Each match consumes one position on
        either side, so ``matches <= n - max(pass1, pass2)`` and the bound
        is the *max* of the two passes (summing would be inadmissible --
        unlike DTW's additive cost, a match blocked twice is still just one
        lost match).
        """
        if keogh is None:
            keogh = self.lower_bound(q, upper, lower, r, counter=counter)
        if not math.isfinite(keogh):
            return keogh
        q = np.asarray(q, dtype=np.float64)
        n = q.size
        projection = np.clip(q, lower, upper)
        env_hi, env_lo = sliding_envelope(projection, projection, self.delta)
        unmatchable = (np.asarray(raw_upper) < env_lo - self.epsilon) | (
            np.asarray(raw_lower) > env_hi + self.epsilon
        )
        if counter is not None:
            counter.lb_calls += 1
            counter.add(2 * n)
        return max(keogh, float(int(unmatchable.sum())) / n)

    def batch_wedge_bounds(
        self,
        candidate,
        uppers,
        lowers,
        raw_uppers,
        raw_lowers,
        r=math.inf,
        counter: StepCounter | None = None,
        use_improved: bool = True,
    ) -> np.ndarray:
        """Vectorised mismatch-count bounds against ``k`` stacked envelopes."""
        q = np.asarray(candidate, dtype=np.float64)
        uppers = np.atleast_2d(np.asarray(uppers, dtype=np.float64))
        lowers = np.atleast_2d(np.asarray(lowers, dtype=np.float64))
        raw_uppers = np.atleast_2d(np.asarray(raw_uppers, dtype=np.float64))
        raw_lowers = np.atleast_2d(np.asarray(raw_lowers, dtype=np.float64))
        k, n = uppers.shape
        outside = (q[np.newaxis, :] > uppers) | (q[np.newaxis, :] < lowers)
        bounds = np.full(k, math.inf)
        if math.isfinite(r):
            misses = np.cumsum(outside, axis=1)
            allowed = r * n
            # First column whose running mismatch count exceeds r*n, per row
            # (n when the row finishes the scan).
            cuts = (misses <= allowed).sum(axis=1)
            finished = cuts >= n
            steps = np.where(finished, n, np.minimum(cuts + 1, n)).astype(np.int64)
        else:
            misses = None
            finished = np.ones(k, dtype=bool)
            steps = np.full(k, n, dtype=np.int64)
        first = outside.sum(axis=1) / n
        bounds[finished] = first[finished]
        improve = use_improved and math.isfinite(r) and finished.any()
        if improve:
            from repro.core.batch import batch_sliding_envelope

            projection = np.clip(q[np.newaxis, :], lowers[finished], uppers[finished])
            env_hi, env_lo = batch_sliding_envelope(projection, self.delta)
            unmatchable = (raw_uppers[finished] < env_lo - self.epsilon) | (
                raw_lowers[finished] > env_hi + self.epsilon
            )
            second = unmatchable.sum(axis=1) / n
            bounds[finished] = np.maximum(bounds[finished], second)
            steps[finished] += 2 * n
        if counter is not None:
            counter.lb_calls += k
            counter.add(int(steps.sum()))
            counter.early_abandons += int((~finished).sum())
        return bounds

    def pairwise_cost(self, n: int) -> int:
        from repro.distances.dtw import band_cell_count

        return band_cell_count(n, self.delta)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LCSSMeasure(delta={self.delta}, epsilon={self.epsilon})"
