"""Euclidean distance with early abandoning (Definition 1, Table 1).

The scalar loop of the paper's pseudocode is reproduced with exact semantics
but vectorised: the squared differences are accumulated with a cumulative
sum, and the abandonment point -- the first prefix whose sum exceeds ``r^2``
-- is located with a binary search.  The reported ``num_steps`` is identical
to what the paper's element-at-a-time loop would report: the index of the
element whose contribution pushed the accumulator past ``r^2`` (or ``n``
when no abandonment happens).
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.batch import BatchWorkspace, ea_running_min_scan, shared_workspace
from repro.core.counters import StepCounter
from repro.distances.base import Measure

__all__ = ["EuclideanMeasure", "euclidean_distance", "ea_euclidean_distance"]


def euclidean_distance(q, c) -> float:
    """Plain Euclidean distance ``sqrt(sum((q_i - c_i)^2))``."""
    q = np.asarray(q, dtype=np.float64)
    c = np.asarray(c, dtype=np.float64)
    if q.shape != c.shape:
        raise ValueError(f"length mismatch: {q.shape} vs {c.shape}")
    diff = q - c
    return float(math.sqrt(float(np.dot(diff, diff))))


def ea_euclidean_distance(
    q, c, r: float, workspace: BatchWorkspace | None = None
) -> tuple[float, int]:
    """Early-abandoning Euclidean distance (the paper's Table 1).

    Returns ``(distance, num_steps)`` where ``distance`` is ``math.inf`` when
    the accumulated squared error exceeded ``r^2`` before the scan finished.
    ``num_steps`` counts how many elements were examined, the paper's
    book-keeping device for measuring the benefit of abandoning.

    ``workspace`` lets callers on a hot path (the batch engine, H-Merge leaf
    evaluation) reuse one preallocated scratch buffer for the prefix sums
    instead of allocating a fresh array per call.
    """
    q = np.asarray(q, dtype=np.float64)
    c = np.asarray(c, dtype=np.float64)
    if q.shape != c.shape:
        raise ValueError(f"length mismatch: {q.shape} vs {c.shape}")
    n = q.size
    if workspace is not None:
        prefix = workspace.scratch("ea_pair_prefix", (n,))
        np.subtract(q, c, out=prefix)
        np.square(prefix, out=prefix)
        np.cumsum(prefix, out=prefix)
    else:
        prefix = np.cumsum(np.square(q - c))
    # Even with no threshold the total comes off the same left-to-right
    # cumulative sum as the abandoning path (NOT a pairwise-summed dot
    # product): every partial sum in the library is sequential, so scalar
    # and batched scans agree bit for bit on every accumulated value.
    if not math.isfinite(r):
        return float(math.sqrt(float(prefix[-1]))), n
    threshold = r * r
    # First index whose prefix sum strictly exceeds r^2 (Table 1 tests
    # ``accumulator > r^2`` after adding each contribution).
    cut = int(np.searchsorted(prefix, threshold, side="right"))
    if cut >= n:
        return float(math.sqrt(float(prefix[-1]))), n
    return math.inf, cut + 1


class EuclideanMeasure(Measure):
    """Euclidean distance as a pluggable :class:`~repro.distances.base.Measure`.

    The wedge envelope needs no expansion for Euclidean distance, and the
    lower bound is the original LB_Keogh of Proposition 1.
    """

    name = "euclidean"
    lb_exact_for_singleton = True

    def distance(self, q, c, r=math.inf, counter: StepCounter | None = None) -> float:
        dist, steps = ea_euclidean_distance(q, c, r, workspace=shared_workspace())
        if counter is not None:
            counter.distance_calls += 1
            counter.add(steps)
            if math.isinf(dist):
                counter.early_abandons += 1
        return dist

    def expand_envelope(self, upper, lower):
        return np.asarray(upper, dtype=np.float64), np.asarray(lower, dtype=np.float64)

    def lower_bound(
        self, q, upper, lower, r=math.inf, counter: StepCounter | None = None
    ) -> float:
        lb, steps = _ea_envelope_lb(q, upper, lower, r, workspace=shared_workspace())
        if counter is not None:
            counter.lb_calls += 1
            counter.add(steps)
            if math.isinf(lb):
                counter.early_abandons += 1
        return lb

    def batch_wedge_bounds(
        self,
        candidate,
        uppers,
        lowers,
        raw_uppers,
        raw_lowers,
        r=math.inf,
        counter: StepCounter | None = None,
        use_improved: bool = True,
    ) -> np.ndarray:
        """Batched LB_Keogh against stacked envelopes (no second pass).

        Euclidean expansion is the identity, so LB_Improved's second pass is
        provably zero (``has_improved_bound`` is False); the batched kernel
        runs with ``radius=0``, i.e. pure first-pass LB_Keogh per row.
        """
        from repro.core.batch import batch_lb_improved

        bounds, steps = batch_lb_improved(
            candidate,
            uppers,
            lowers,
            raw_uppers,
            raw_lowers,
            0,
            r=r,
            workspace=shared_workspace(),
        )
        if counter is not None:
            counter.lb_calls += bounds.size
            counter.add(int(steps.sum()))
            counter.early_abandons += int(np.isinf(bounds).sum())
        return bounds

    def batch_min_distance(
        self,
        q,
        candidates,
        r=math.inf,
        counter: StepCounter | None = None,
        early_abandon: bool = True,
    ) -> tuple[float, int]:
        """Scan rows in order with a running best-so-far (Table 2 semantics).

        The per-row cumulative sums are computed in one vectorised pass into
        a reusable scratch buffer; the sequential early-abandonment point of
        each row against the best-so-far at the time that row is reached is
        then recovered with :func:`repro.core.batch.running_scan` (the
        running threshold is a cumulative minimum, so the strictly
        sequential semantics vectorise), giving exactly the step counts of
        the paper's scalar algorithm with no Python-level row loop.
        """
        q = np.asarray(q, dtype=np.float64)
        rows = np.atleast_2d(np.asarray(candidates, dtype=np.float64))
        if rows.shape[1] != q.size:
            raise ValueError(f"length mismatch: {rows.shape[1]} vs {q.size}")
        k, n = rows.shape
        workspace = shared_workspace()
        best_sq = float(r) * float(r) if math.isfinite(r) else math.inf
        best_idx = -1
        steps = 0
        abandons = 0
        if not early_abandon:
            steps = k * n
            prefix = workspace.scratch("batch_min_prefix", (k, n))
            np.subtract(rows, q[np.newaxis, :], out=prefix)
            np.square(prefix, out=prefix)
            np.cumsum(prefix, axis=1, out=prefix)
            totals = prefix[:, -1]
            j = int(np.argmin(totals))
            if totals[j] < best_sq:
                best_sq = float(totals[j])
                best_idx = j
        else:
            best_sq, best_idx, steps, abandons = ea_running_min_scan(
                rows, q, r, workspace=workspace
            )
        if counter is not None:
            counter.distance_calls += k
            counter.add(steps)
            counter.early_abandons += abandons
        if best_idx < 0:
            return math.inf, -1
        return float(math.sqrt(best_sq)), best_idx

    def pairwise_cost(self, n: int) -> int:
        return n


def _ea_envelope_lb(
    q, upper, lower, r: float, workspace: BatchWorkspace | None = None
) -> tuple[float, int]:
    """Early-abandoning LB_Keogh against an envelope (the paper's Table 5).

    Returns ``(lower_bound, num_steps)``; the bound is ``math.inf`` when the
    partial sum exceeded ``r^2``.  ``workspace`` reuses scratch buffers for
    the violation and prefix arrays (one allocation per thread, not per
    wedge test).
    """
    q = np.asarray(q, dtype=np.float64)
    upper = np.asarray(upper, dtype=np.float64)
    lower = np.asarray(lower, dtype=np.float64)
    if not (q.shape == upper.shape == lower.shape):
        raise ValueError(
            f"shape mismatch: q {q.shape}, upper {upper.shape}, lower {lower.shape}"
        )
    n = q.size
    if workspace is not None:
        above = workspace.scratch("lb_above", (n,))
        np.subtract(q, upper, out=above)
        np.maximum(above, 0.0, out=above)
        np.square(above, out=above)
        below = workspace.scratch("lb_below", (n,))
        np.subtract(lower, q, out=below)
        np.maximum(below, 0.0, out=below)
        np.square(below, out=below)
        contributions = above
        contributions += below
    else:
        above = np.maximum(q - upper, 0.0)
        below = np.maximum(lower - q, 0.0)
        contributions = np.square(above) + np.square(below)
    # The total always comes off the same left-to-right cumulative sum as
    # the abandoning path (NOT a pairwise-summed reduction): every partial
    # sum in the library is sequential, so the scalar, wavefront, and numba
    # kernel backends agree bit for bit on every accumulated value.
    prefix = np.cumsum(contributions, out=contributions)
    if not math.isfinite(r):
        return float(math.sqrt(float(prefix[-1]))), n
    threshold = r * r
    cut = int(np.searchsorted(prefix, threshold, side="right"))
    if cut >= n:
        return float(math.sqrt(float(prefix[-1]))), n
    return math.inf, cut + 1
