"""Euclidean distance with early abandoning (Definition 1, Table 1).

The scalar loop of the paper's pseudocode is reproduced with exact semantics
but vectorised: the squared differences are accumulated with a cumulative
sum, and the abandonment point -- the first prefix whose sum exceeds ``r^2``
-- is located with a binary search.  The reported ``num_steps`` is identical
to what the paper's element-at-a-time loop would report: the index of the
element whose contribution pushed the accumulator past ``r^2`` (or ``n``
when no abandonment happens).
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.counters import StepCounter
from repro.distances.base import Measure

__all__ = ["EuclideanMeasure", "euclidean_distance", "ea_euclidean_distance"]


def euclidean_distance(q, c) -> float:
    """Plain Euclidean distance ``sqrt(sum((q_i - c_i)^2))``."""
    q = np.asarray(q, dtype=np.float64)
    c = np.asarray(c, dtype=np.float64)
    if q.shape != c.shape:
        raise ValueError(f"length mismatch: {q.shape} vs {c.shape}")
    diff = q - c
    return float(math.sqrt(float(np.dot(diff, diff))))


def ea_euclidean_distance(q, c, r: float) -> tuple[float, int]:
    """Early-abandoning Euclidean distance (the paper's Table 1).

    Returns ``(distance, num_steps)`` where ``distance`` is ``math.inf`` when
    the accumulated squared error exceeded ``r^2`` before the scan finished.
    ``num_steps`` counts how many elements were examined, the paper's
    book-keeping device for measuring the benefit of abandoning.
    """
    q = np.asarray(q, dtype=np.float64)
    c = np.asarray(c, dtype=np.float64)
    if q.shape != c.shape:
        raise ValueError(f"length mismatch: {q.shape} vs {c.shape}")
    n = q.size
    if not math.isfinite(r):
        return euclidean_distance(q, c), n
    threshold = r * r
    prefix = np.cumsum(np.square(q - c))
    # First index whose prefix sum strictly exceeds r^2 (Table 1 tests
    # ``accumulator > r^2`` after adding each contribution).
    cut = int(np.searchsorted(prefix, threshold, side="right"))
    if cut >= n:
        return float(math.sqrt(float(prefix[-1]))), n
    return math.inf, cut + 1


class EuclideanMeasure(Measure):
    """Euclidean distance as a pluggable :class:`~repro.distances.base.Measure`.

    The wedge envelope needs no expansion for Euclidean distance, and the
    lower bound is the original LB_Keogh of Proposition 1.
    """

    name = "euclidean"
    lb_exact_for_singleton = True

    def distance(self, q, c, r=math.inf, counter: StepCounter | None = None) -> float:
        dist, steps = ea_euclidean_distance(q, c, r)
        if counter is not None:
            counter.distance_calls += 1
            counter.add(steps)
            if math.isinf(dist):
                counter.early_abandons += 1
        return dist

    def expand_envelope(self, upper, lower):
        return np.asarray(upper, dtype=np.float64), np.asarray(lower, dtype=np.float64)

    def lower_bound(
        self, q, upper, lower, r=math.inf, counter: StepCounter | None = None
    ) -> float:
        lb, steps = _ea_envelope_lb(q, upper, lower, r)
        if counter is not None:
            counter.lb_calls += 1
            counter.add(steps)
            if math.isinf(lb):
                counter.early_abandons += 1
        return lb

    def batch_min_distance(
        self,
        q,
        candidates,
        r=math.inf,
        counter: StepCounter | None = None,
        early_abandon: bool = True,
    ) -> tuple[float, int]:
        """Scan rows in order with a running best-so-far (Table 2 semantics).

        The per-row cumulative sums are computed in one vectorised pass;
        the sequential early-abandonment point of each row against the
        best-so-far at the time that row is reached is then recovered with a
        binary search per row, giving exactly the step counts of the paper's
        scalar algorithm.
        """
        q = np.asarray(q, dtype=np.float64)
        rows = np.atleast_2d(np.asarray(candidates, dtype=np.float64))
        if rows.shape[1] != q.size:
            raise ValueError(f"length mismatch: {rows.shape[1]} vs {q.size}")
        k, n = rows.shape
        prefix = np.cumsum(np.square(rows - q[np.newaxis, :]), axis=1)
        best_sq = float(r) * float(r) if math.isfinite(r) else math.inf
        best_idx = -1
        steps = 0
        abandons = 0
        if not early_abandon:
            steps = k * n
            totals = prefix[:, -1]
            j = int(np.argmin(totals))
            if totals[j] < best_sq:
                best_sq = float(totals[j])
                best_idx = j
        else:
            for j in range(k):
                total = prefix[j, -1]
                if total <= best_sq:
                    steps += n
                    if total < best_sq:
                        best_sq = float(total)
                        best_idx = j
                else:
                    cut = int(np.searchsorted(prefix[j], best_sq, side="right"))
                    steps += min(cut + 1, n)
                    abandons += 1
        if counter is not None:
            counter.distance_calls += k
            counter.add(steps)
            counter.early_abandons += abandons
        if best_idx < 0:
            return math.inf, -1
        return float(math.sqrt(best_sq)), best_idx

    def pairwise_cost(self, n: int) -> int:
        return n


def _ea_envelope_lb(q, upper, lower, r: float) -> tuple[float, int]:
    """Early-abandoning LB_Keogh against an envelope (the paper's Table 5).

    Returns ``(lower_bound, num_steps)``; the bound is ``math.inf`` when the
    partial sum exceeded ``r^2``.
    """
    q = np.asarray(q, dtype=np.float64)
    upper = np.asarray(upper, dtype=np.float64)
    lower = np.asarray(lower, dtype=np.float64)
    if not (q.shape == upper.shape == lower.shape):
        raise ValueError(
            f"shape mismatch: q {q.shape}, upper {upper.shape}, lower {lower.shape}"
        )
    n = q.size
    above = np.maximum(q - upper, 0.0)
    below = np.maximum(lower - q, 0.0)
    contributions = np.square(above) + np.square(below)
    if not math.isfinite(r):
        return float(math.sqrt(float(contributions.sum()))), n
    prefix = np.cumsum(contributions)
    threshold = r * r
    cut = int(np.searchsorted(prefix, threshold, side="right"))
    if cut >= n:
        return float(math.sqrt(float(prefix[-1]))), n
    return math.inf, cut + 1
