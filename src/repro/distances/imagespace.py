"""Image-space baselines: Chamfer and Hausdorff distance (Section 2).

"The two most popular measures that operate directly in the image space,
the Chamfer [6] and Hausdorff [27] distance measures, require O(n^2 log n)
time, and recent experiments ... suggest that 1D representations can
achieve comparable or superior accuracy."  On the MixedBag dataset the
paper reports Chamfer at 6.0% and Hausdorff at 7.0% error, "slightly worse
than Euclidean distance" (4.375%).

These baselines are implemented over boundary point sets so that (a) the
comparison is runnable (``benchmarks/test_baseline_measures.py``) and (b)
the paper's thought experiment is testable: the Hausdorff distance is
catastrophically sensitive to a single articulated appendage (the "bent
car antenna"), while the centroid-distance representation is not.

Rotation invariance is obtained the only way these measures support it --
brute-force minimisation over sampled rotations -- which is precisely why
the paper's 1-D machinery is preferable.
"""

from __future__ import annotations

import math

import numpy as np

from repro.shapes.convert import resample_closed_curve

__all__ = [
    "directed_hausdorff",
    "hausdorff_distance",
    "chamfer_distance",
    "rotation_invariant_pointset_distance",
]


def _normalise(points: np.ndarray, n_samples: int) -> np.ndarray:
    """Resample, centre on the centroid, and scale to unit RMS radius."""
    pts = resample_closed_curve(np.asarray(points, dtype=np.float64), n_samples)
    pts = pts - pts.mean(axis=0)
    rms = math.sqrt(float(np.mean(np.einsum("ij,ij->i", pts, pts))))
    if rms > 1e-12:
        pts = pts / rms
    return pts


def _cross_distances(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    diff = a[:, np.newaxis, :] - b[np.newaxis, :, :]
    return np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))


def directed_hausdorff(a, b) -> float:
    """``max_{p in A} min_{q in B} |p - q|`` on raw point sets."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    return float(_cross_distances(a, b).min(axis=1).max())


def hausdorff_distance(a, b) -> float:
    """Symmetric Hausdorff distance: max of the two directed distances."""
    d = _cross_distances(np.asarray(a, float), np.asarray(b, float))
    return float(max(d.min(axis=1).max(), d.min(axis=0).max()))


def chamfer_distance(a, b) -> float:
    """Symmetric Chamfer distance: *mean* nearest-point distance.

    Averaging instead of maximising makes Chamfer far less brittle to a
    single outlying point than Hausdorff -- visible in the articulation
    tests.
    """
    d = _cross_distances(np.asarray(a, float), np.asarray(b, float))
    return float((d.min(axis=1).mean() + d.min(axis=0).mean()) / 2.0)


def rotation_invariant_pointset_distance(
    shape_a,
    shape_b,
    metric: str = "chamfer",
    n_rotations: int = 64,
    n_samples: int = 128,
) -> float:
    """Best-rotation Chamfer/Hausdorff distance between two closed shapes.

    Shapes are normalised for translation and scale, then one is rotated
    through ``n_rotations`` sampled angles (the paper: R "should be
    approximately equal n to guarantee all rotations ... are considered",
    which is exactly the O(R p log p) cost it criticises).
    """
    if metric == "chamfer":
        measure = chamfer_distance
    elif metric == "hausdorff":
        measure = hausdorff_distance
    else:
        raise ValueError(f"unknown metric {metric!r}; choose 'chamfer' or 'hausdorff'")
    if n_rotations < 1:
        raise ValueError(f"n_rotations must be positive, got {n_rotations}")
    a = _normalise(shape_a, n_samples)
    b = _normalise(shape_b, n_samples)
    best = math.inf
    for t in range(n_rotations):
        theta = 2.0 * math.pi * t / n_rotations
        rot = np.array(
            [[math.cos(theta), -math.sin(theta)], [math.sin(theta), math.cos(theta)]]
        )
        best = min(best, measure(a, b @ rot.T))
    return best
