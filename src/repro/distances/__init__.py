"""Distance measures: Euclidean, DTW, LCSS -- all early-abandoning."""

from repro.distances.base import Measure
from repro.distances.dtw import DTWMeasure, band_cell_count, dtw_batch, dtw_distance, warping_path
from repro.distances.euclidean import EuclideanMeasure, ea_euclidean_distance, euclidean_distance
from repro.distances.imagespace import (
    chamfer_distance,
    hausdorff_distance,
    rotation_invariant_pointset_distance,
)
from repro.distances.lcss import LCSSMeasure, lcss_batch, lcss_similarity

__all__ = [
    "Measure", "EuclideanMeasure", "DTWMeasure", "LCSSMeasure",
    "euclidean_distance", "ea_euclidean_distance",
    "dtw_distance", "dtw_batch", "warping_path", "band_cell_count",
    "lcss_similarity", "lcss_batch",
    "chamfer_distance", "hausdorff_distance", "rotation_invariant_pointset_distance",
]
