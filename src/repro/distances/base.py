"""The distance-measure protocol shared by Euclidean, DTW, and LCSS.

The paper's central claim is that its wedge machinery works "with all the
most popular distance measures".  The machinery needs exactly three things
from a measure, captured by :class:`Measure`:

1. ``distance(q, c, r)`` -- the true distance, early-abandoning against a
   threshold ``r`` (Definition 1 / Table 1).
2. ``expand_envelope(U, L)`` -- how a wedge envelope must be widened before
   lower bounding (identity for Euclidean; the Sakoe-Chiba expansion of
   Figure 13 for DTW; a band-and-threshold expansion for LCSS).
3. ``lower_bound(q, EU, EL, r)`` -- the LB_Keogh-style bound of the measure
   against an (expanded) envelope, also early-abandoning (Table 5).

Every method reports work on an optional :class:`~repro.core.counters.StepCounter`
so the benchmark harness can reproduce the paper's implementation-free cost
accounting.
"""

from __future__ import annotations

import abc
import math

import numpy as np

from repro.core.counters import StepCounter

__all__ = ["Measure"]


class Measure(abc.ABC):
    """A distance measure usable by the rotation-invariant search engine.

    Subclasses must be stateless apart from their parameters (e.g. the DTW
    band width), so one instance can be shared across threads and queries.
    """

    #: Short machine-readable name ("euclidean", "dtw", "lcss").
    name: str = "abstract"

    #: True when the lower bound against a single-sequence (degenerate)
    #: wedge equals the true distance, so leaf wedges need no second pass.
    #: Holds for Euclidean distance (LB_Keogh degenerates to ED); not for
    #: DTW or LCSS, whose envelopes are widened by the warping band.
    lb_exact_for_singleton: bool = False

    def cache_key(self) -> tuple:
        """Hashable identity of this measure's envelope expansion.

        Wedges cache their expanded envelopes keyed by this value, so two
        measure instances with identical parameters share cache entries.
        """
        return (self.name,)

    @abc.abstractmethod
    def distance(
        self,
        q: np.ndarray,
        c: np.ndarray,
        r: float = math.inf,
        counter: StepCounter | None = None,
    ) -> float:
        """True distance between ``q`` and ``c``, early-abandoning at ``r``.

        Returns ``math.inf`` when the computation was abandoned because the
        partial sum already proved the distance exceeds ``r``; otherwise the
        exact distance.
        """

    @abc.abstractmethod
    def expand_envelope(
        self, upper: np.ndarray, lower: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Widen a raw wedge envelope ``(U, L)`` as this measure requires.

        For Euclidean distance this is the identity.  For DTW it is the
        sliding-window expansion ``DTW_U / DTW_L`` of Section 4.3.
        """

    @abc.abstractmethod
    def lower_bound(
        self,
        q: np.ndarray,
        upper: np.ndarray,
        lower: np.ndarray,
        r: float = math.inf,
        counter: StepCounter | None = None,
    ) -> float:
        """LB_Keogh of ``q`` against an envelope already expanded for this measure.

        Guaranteed to be ≤ the true distance from ``q`` to every series the
        envelope encloses (Propositions 1 and 2).  Returns ``math.inf`` when
        early-abandoned at ``r``.
        """

    def batch_min_distance(
        self,
        q: np.ndarray,
        candidates: np.ndarray,
        r: float = math.inf,
        counter: StepCounter | None = None,
        early_abandon: bool = True,
    ) -> tuple[float, int]:
        """Minimum distance from ``q`` to any row of ``candidates``.

        The rows are scanned in order, each comparison early-abandoning
        against the best value seen so far (seeded with ``r``), exactly like
        the paper's ``Test_All_Rotations`` (Table 2).  Returns
        ``(best_distance, best_row_index)``; ``best_distance`` is
        ``math.inf`` and the index ``-1`` when nothing beat ``r``.

        Subclasses override this with vectorised implementations; the base
        version simply loops over :meth:`distance`.
        """
        best = float(r)
        best_idx = -1
        for j, row in enumerate(np.atleast_2d(candidates)):
            dist = self.distance(q, row, best, counter=counter)
            if dist < best:
                best = dist
                best_idx = j
        if best_idx < 0:
            return math.inf, -1
        return best, best_idx

    def pairwise_cost(self, n: int) -> int:
        """Worst-case step cost of one full distance computation at length ``n``.

        Used by benchmarks to report analytic brute-force costs without
        actually performing the computation.
        """
        return n

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"
