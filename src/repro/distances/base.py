"""The distance-measure protocol shared by Euclidean, DTW, and LCSS.

The paper's central claim is that its wedge machinery works "with all the
most popular distance measures".  The machinery needs exactly three things
from a measure, captured by :class:`Measure`:

1. ``distance(q, c, r)`` -- the true distance, early-abandoning against a
   threshold ``r`` (Definition 1 / Table 1).
2. ``expand_envelope(U, L)`` -- how a wedge envelope must be widened before
   lower bounding (identity for Euclidean; the Sakoe-Chiba expansion of
   Figure 13 for DTW; a band-and-threshold expansion for LCSS).
3. ``lower_bound(q, EU, EL, r)`` -- the LB_Keogh-style bound of the measure
   against an (expanded) envelope, also early-abandoning (Table 5).

Every method reports work on an optional :class:`~repro.core.counters.StepCounter`
so the benchmark harness can reproduce the paper's implementation-free cost
accounting.
"""

from __future__ import annotations

import abc
import copy
import math

import numpy as np

from repro.core.counters import StepCounter

__all__ = ["Measure"]


class Measure(abc.ABC):
    """A distance measure usable by the rotation-invariant search engine.

    Subclasses must be stateless apart from their parameters (e.g. the DTW
    band width), so one instance can be shared across threads and queries.
    """

    #: Short machine-readable name ("euclidean", "dtw", "lcss").
    name: str = "abstract"

    #: True when the lower bound against a single-sequence (degenerate)
    #: wedge equals the true distance, so leaf wedges need no second pass.
    #: Holds for Euclidean distance (LB_Keogh degenerates to ED); not for
    #: DTW or LCSS, whose envelopes are widened by the warping band.
    lb_exact_for_singleton: bool = False

    #: True when :meth:`improved_lower_bound` can tighten LB_Keogh -- i.e.
    #: when :meth:`expand_envelope` genuinely widens the wedge, leaving room
    #: for a second pass over the projection (Lemire's LB_Improved).  False
    #: for Euclidean distance, whose expansion is the identity and whose
    #: second-pass violations are provably zero.
    has_improved_bound: bool = False

    #: True when the value-space LB_Kim landmark bound is admissible for
    #: this measure.  Holds for Euclidean distance and DTW (both accumulate
    #: value differences); not for LCSS, whose distance lives in match-count
    #: space where a single large value violation proves nothing.
    kim_compatible: bool = True

    #: True when the measure routes its dynamic programs through the
    #: pluggable kernel backends of :mod:`repro.kernels` (DTW and LCSS do;
    #: Euclidean distance has no DP and runs its NumPy kernels directly).
    uses_kernel_backends: bool = False

    #: Requested kernel backend name, or ``None`` for the resolution chain
    #: (env var, then auto-selection).  Every backend produces bit-identical
    #: results, so this never enters :meth:`cache_key`.
    backend: str | None = None

    def with_backend(self, backend: str | None) -> "Measure":
        """A shallow copy of this measure pinned to kernel backend ``backend``.

        ``None`` re-enables the default resolution chain.  Measures that do
        not use kernel backends are returned unchanged (every backend is
        exact, so there is nothing to select).  Unknown names raise
        ``ValueError`` immediately rather than at first use.
        """
        if not self.uses_kernel_backends:
            return self
        if backend is not None:
            from repro.kernels import get_backend

            backend = get_backend(backend).name
        clone = copy.copy(self)
        clone.backend = backend
        return clone

    @property
    def backend_name(self) -> str:
        """The kernel backend this measure would use right now.

        Resolves the full selection chain for kernel-backed measures;
        measures running plain NumPy report ``"numpy"``.  Used to stamp
        provenance, query-log records, and trace spans.
        """
        if not self.uses_kernel_backends:
            return "numpy"
        return self.resolved_backend().name

    def resolved_backend(self):
        """The :class:`~repro.kernels.KernelBackend` selected for this measure."""
        from repro.kernels import get_backend

        return get_backend(self.backend)

    def cache_key(self) -> tuple:
        """Hashable identity of this measure's envelope expansion.

        Wedges cache their expanded envelopes keyed by this value, so two
        measure instances with identical parameters share cache entries.
        """
        return (self.name,)

    @abc.abstractmethod
    def distance(
        self,
        q: np.ndarray,
        c: np.ndarray,
        r: float = math.inf,
        counter: StepCounter | None = None,
    ) -> float:
        """True distance between ``q`` and ``c``, early-abandoning at ``r``.

        Returns ``math.inf`` when the computation was abandoned because the
        partial sum already proved the distance exceeds ``r``; otherwise the
        exact distance.
        """

    @abc.abstractmethod
    def expand_envelope(
        self, upper: np.ndarray, lower: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Widen a raw wedge envelope ``(U, L)`` as this measure requires.

        For Euclidean distance this is the identity.  For DTW it is the
        sliding-window expansion ``DTW_U / DTW_L`` of Section 4.3.
        """

    @abc.abstractmethod
    def lower_bound(
        self,
        q: np.ndarray,
        upper: np.ndarray,
        lower: np.ndarray,
        r: float = math.inf,
        counter: StepCounter | None = None,
    ) -> float:
        """LB_Keogh of ``q`` against an envelope already expanded for this measure.

        Guaranteed to be ≤ the true distance from ``q`` to every series the
        envelope encloses (Propositions 1 and 2).  Returns ``math.inf`` when
        early-abandoned at ``r``.
        """

    def improved_lower_bound(
        self,
        q: np.ndarray,
        upper: np.ndarray,
        lower: np.ndarray,
        raw_upper: np.ndarray,
        raw_lower: np.ndarray,
        r: float = math.inf,
        keogh: float | None = None,
        counter: StepCounter | None = None,
    ) -> float:
        """The two-pass LB_Improved bound (Lemire 2009), wedge-generalised.

        Pass 1 is plain :meth:`lower_bound` of ``q`` against the expanded
        envelope ``(upper, lower)``.  Pass 2 projects ``q`` onto that
        envelope, expands the projection the same way, and accumulates the
        gap between the *raw* (unexpanded) wedge arms ``(raw_upper,
        raw_lower)`` and the projection's envelope.  For a leaf wedge
        (``raw_upper == raw_lower == series``) this is exactly Lemire's
        pairwise LB_Improved; for an internal wedge it lower-bounds the
        distance to every enclosed sequence, so admissibility (no false
        dismissals) is preserved throughout the hierarchy.

        ``keogh`` lets callers that already ran the first pass skip its
        recomputation; ``math.inf`` (an abandoned first pass) is returned
        unchanged.  The base implementation has no second pass and simply
        returns LB_Keogh -- measures opt in by setting
        :attr:`has_improved_bound` and overriding.
        """
        if keogh is None:
            keogh = self.lower_bound(q, upper, lower, r, counter=counter)
        return keogh

    def batch_wedge_bounds(
        self,
        candidate: np.ndarray,
        uppers: np.ndarray,
        lowers: np.ndarray,
        raw_uppers: np.ndarray,
        raw_lowers: np.ndarray,
        r: float = math.inf,
        counter: StepCounter | None = None,
        use_improved: bool = True,
    ) -> np.ndarray:
        """Lower bounds of one ``candidate`` against ``k`` stacked envelopes.

        ``uppers``/``lowers`` are ``(k, n)`` expanded envelope arms and
        ``raw_uppers``/``raw_lowers`` the matching raw wedge arms (for leaf
        wedges, ``k`` copies of each enclosed series).  Returns a ``(k,)``
        array of per-envelope bounds: ``math.inf`` where the first pass
        early-abandoned against ``r``, otherwise LB_Keogh tightened by the
        second pass when ``use_improved`` and the measure supports it.

        The base implementation loops over the scalar bounds; measures
        override it with the batched kernels of :mod:`repro.core.batch`.
        """
        uppers = np.atleast_2d(uppers)
        lowers = np.atleast_2d(lowers)
        raw_uppers = np.atleast_2d(raw_uppers)
        raw_lowers = np.atleast_2d(raw_lowers)
        k = uppers.shape[0]
        bounds = np.empty(k)
        improve = use_improved and self.has_improved_bound and math.isfinite(r)
        for i in range(k):
            lb = self.lower_bound(candidate, uppers[i], lowers[i], r, counter=counter)
            if improve and math.isfinite(lb):
                lb = self.improved_lower_bound(
                    candidate,
                    uppers[i],
                    lowers[i],
                    raw_uppers[i],
                    raw_lowers[i],
                    r,
                    keogh=lb,
                    counter=counter,
                )
            bounds[i] = lb
        return bounds

    def batch_min_distance(
        self,
        q: np.ndarray,
        candidates: np.ndarray,
        r: float = math.inf,
        counter: StepCounter | None = None,
        early_abandon: bool = True,
    ) -> tuple[float, int]:
        """Minimum distance from ``q`` to any row of ``candidates``.

        The rows are scanned in order, each comparison early-abandoning
        against the best value seen so far (seeded with ``r``), exactly like
        the paper's ``Test_All_Rotations`` (Table 2).  Returns
        ``(best_distance, best_row_index)``; ``best_distance`` is
        ``math.inf`` and the index ``-1`` when nothing beat ``r``.

        Subclasses override this with vectorised implementations; the base
        version simply loops over :meth:`distance`.
        """
        best = float(r)
        best_idx = -1
        for j, row in enumerate(np.atleast_2d(candidates)):
            dist = self.distance(q, row, best, counter=counter)
            if dist < best:
                best = dist
                best_idx = j
        if best_idx < 0:
            return math.inf, -1
        return best, best_idx

    def pairwise_cost(self, n: int) -> int:
        """Worst-case step cost of one full distance computation at length ``n``.

        Used by benchmarks to report analytic brute-force costs without
        actually performing the computation.
        """
        return n

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"
