"""Dynamic Time Warping with a Sakoe-Chiba band and early abandoning.

The paper (Section 4.3, Figure 12) uses the classic constrained DTW: an
``n x n`` warping matrix whose path may deviate at most ``R`` cells from the
diagonal.  Two implementation notes from the paper drive this module:

* "a recursive implementation of DTW would always require nR steps, however
  iterative implementation (as used here) can potentially early abandon with
  as few as R steps" -- so the dynamic program here is iterative and checks
  after every anti-diagonal whether any path can still finish below the
  abandonment threshold.
* The cost metric is the number of warping-matrix cells computed
  (``num_steps``), which is what the benchmark figures report.

The dynamic programs themselves live in the pluggable kernel backends of
:mod:`repro.kernels` (scalar reference, pure-NumPy anti-diagonal wavefront,
optional numba); this module validates arguments, selects a backend, and
keeps the paper's ``num_steps`` accounting.  The batch kernels iterate over
*anti-diagonals* (cells with constant ``i + j``) rather than rows: cells on
one anti-diagonal have no mutual dependencies, so each anti-diagonal is one
vectorised update, and a whole chunk of rotations can be advanced
simultaneously (see :func:`dtw_batch`).  A warping path makes ``i + j``
grow by 1 (horizontal/vertical move) or 2 (diagonal move), so every
complete path touches at least one of any two consecutive anti-diagonals;
the batch early-abandon test therefore requires the minimum over the *two*
most recent anti-diagonals to exceed ``r^2``.  Backends are exact: answers
and step counts are bit-identical whichever one runs.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.counters import StepCounter
from repro.distances.base import Measure
from repro.kernels import get_backend
from repro.kernels._dp import diag_bounds as _diag_bounds  # noqa: F401 (re-export)
from repro.timeseries.ops import sliding_envelope

__all__ = ["DTWMeasure", "dtw_distance", "dtw_batch", "warping_path", "band_cell_count"]


def band_cell_count(n: int, radius: int) -> int:
    """Number of warping-matrix cells inside a Sakoe-Chiba band of width ``radius``."""
    if n < 1:
        raise ValueError(f"series length must be positive, got {n}")
    radius = min(int(radius), n - 1)
    if radius < 0:
        raise ValueError("radius must be non-negative")
    full = n * (2 * radius + 1)
    # The band is clipped at the matrix corners: radius rows at each end lose
    # 1..radius cells respectively.
    clipped = radius * (radius + 1)
    return full - clipped


def dtw_distance(
    q,
    c,
    radius: int,
    r: float = math.inf,
    counter: StepCounter | None = None,
    backend: str | None = None,
) -> float:
    """Constrained DTW distance between two equal-length series.

    Parameters
    ----------
    q, c:
        The two series (length ``n`` each).
    radius:
        Sakoe-Chiba band width ``R``; the warping path may not deviate more
        than ``R`` cells from the matrix diagonal.  ``radius=0`` makes DTW
        coincide with Euclidean distance.
    r:
        Early-abandonment threshold; ``math.inf`` is returned as soon as no
        path can finish with distance ≤ ``r``.
    counter:
        Optional step counter; one step is charged per matrix cell computed.
    backend:
        Kernel backend name, or ``None`` for the default resolution chain
        (``REPRO_KERNEL_BACKEND`` env var, then fastest registered).

    Returns
    -------
    float
        ``sqrt`` of the accumulated squared differences along the optimal
        warping path, or ``math.inf`` if abandoned.
    """
    q = np.asarray(q, dtype=np.float64)
    c = np.asarray(c, dtype=np.float64)
    n = q.size
    if c.size != n:
        raise ValueError(f"length mismatch: {c.size} vs {n}")
    radius = min(int(radius), n - 1)
    if radius < 0:
        raise ValueError("radius must be non-negative")
    dist, steps, abandoned = get_backend(backend).dtw_single(q, c, radius, r)
    if counter is not None:
        counter.distance_calls += 1
        counter.add(steps)
        counter.early_abandons += int(abandoned)
    return dist


def dtw_batch(
    q,
    candidates,
    radius: int,
    r: float = math.inf,
    backend: str | None = None,
) -> tuple[np.ndarray, int, np.ndarray]:
    """Run the banded DTW dynamic program on many candidates at once.

    All candidates advance through the same sequence of anti-diagonals; each
    candidate is abandoned individually as soon as the minimum of its two
    most recent anti-diagonals exceeds ``r^2``.  ``backend`` picks the
    kernel backend (``None`` for the default resolution chain).

    Returns
    -------
    (distances, steps, abandoned):
        ``distances[j]`` is the DTW distance of candidate ``j`` or
        ``math.inf`` if it was abandoned; ``steps`` is the total number of
        cells computed across all candidates; ``abandoned[j]`` is a boolean.
    """
    q = np.asarray(q, dtype=np.float64)
    rows = np.atleast_2d(np.asarray(candidates, dtype=np.float64))
    if q.ndim != 1:
        raise ValueError(f"query must be 1-D, got shape {q.shape}")
    if rows.shape[1] != q.size:
        raise ValueError(f"length mismatch: {rows.shape[1]} vs {q.size}")
    radius = min(int(radius), q.size - 1)
    if radius < 0:
        raise ValueError("radius must be non-negative")
    return get_backend(backend).dtw_batch(q, rows, radius, r)


def warping_path(q, c, radius: int) -> tuple[float, list[tuple[int, int]]]:
    """Full DTW with backtracking; returns ``(distance, path)``.

    The path is the list of ``(i, j)`` matrix cells from ``(0, 0)`` to
    ``(n-1, n-1)``.  This routine materialises the whole banded matrix and is
    intended for analysis and visualisation, not for bulk search (use
    :func:`dtw_distance` there).
    """
    q = np.asarray(q, dtype=np.float64)
    c = np.asarray(c, dtype=np.float64)
    if q.shape != c.shape or q.ndim != 1:
        raise ValueError(f"need equal-length 1-D series, got {q.shape} and {c.shape}")
    n = q.size
    radius = min(int(radius), n - 1)
    cost = np.full((n, n), np.inf)
    cost[0, 0] = (q[0] - c[0]) ** 2
    for i in range(n):
        j_lo = max(0, i - radius)
        j_hi = min(n - 1, i + radius)
        for j in range(j_lo, j_hi + 1):
            if i == 0 and j == 0:
                continue
            best_prev = math.inf
            if i > 0:
                best_prev = min(best_prev, cost[i - 1, j])
            if j > 0:
                best_prev = min(best_prev, cost[i, j - 1])
            if i > 0 and j > 0:
                best_prev = min(best_prev, cost[i - 1, j - 1])
            cost[i, j] = (q[i] - c[j]) ** 2 + best_prev
    path = [(n - 1, n - 1)]
    i, j = n - 1, n - 1
    while (i, j) != (0, 0):
        candidates = []
        if i > 0 and j > 0:
            candidates.append((cost[i - 1, j - 1], (i - 1, j - 1)))
        if i > 0:
            candidates.append((cost[i - 1, j], (i - 1, j)))
        if j > 0:
            candidates.append((cost[i, j - 1], (i, j - 1)))
        _, (i, j) = min(candidates, key=lambda item: item[0])
        path.append((i, j))
    path.reverse()
    return float(math.sqrt(cost[n - 1, n - 1])), path


class DTWMeasure(Measure):
    """Constrained DTW as a pluggable measure for the wedge machinery.

    Parameters
    ----------
    radius:
        The Sakoe-Chiba band width ``R`` (the paper's single DTW parameter).
    chunk_size:
        How many candidate rotations to advance simultaneously in
        :meth:`batch_min_distance`; the running best-so-far is refreshed
        between chunks, approximating the strictly sequential scan order of
        Table 2 while retaining vectorised execution.
    backend:
        Kernel backend name to pin this instance to, or ``None`` (the
        default) to resolve per call via the ``REPRO_KERNEL_BACKEND``
        environment variable and auto-selection.  Backends are exact, so
        the choice never enters :meth:`cache_key`.
    """

    name = "dtw"
    has_improved_bound = True
    uses_kernel_backends = True

    def __init__(self, radius: int, chunk_size: int = 32, backend: str | None = None):
        if radius < 0:
            raise ValueError(f"radius must be non-negative, got {radius}")
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be positive, got {chunk_size}")
        self.radius = int(radius)
        self.chunk_size = int(chunk_size)
        if backend is not None:
            backend = get_backend(backend).name
        self.backend = backend

    def cache_key(self) -> tuple:
        return (self.name, self.radius)

    def distance(self, q, c, r=math.inf, counter: StepCounter | None = None) -> float:
        return dtw_distance(q, c, self.radius, r=r, counter=counter, backend=self.backend)

    def expand_envelope(self, upper, lower):
        """The Sakoe-Chiba envelope expansion of Section 4.3 (Figure 13)."""
        return sliding_envelope(upper, lower, self.radius)

    def lower_bound(
        self, q, upper, lower, r=math.inf, counter: StepCounter | None = None
    ) -> float:
        lb, steps = self.resolved_backend().lb_keogh(q, upper, lower, r)
        if counter is not None:
            counter.lb_calls += 1
            counter.add(steps)
            if math.isinf(lb):
                counter.early_abandons += 1
        return lb

    def improved_lower_bound(
        self,
        q,
        upper,
        lower,
        raw_upper,
        raw_lower,
        r=math.inf,
        keogh: float | None = None,
        counter: StepCounter | None = None,
    ) -> float:
        """Lemire's LB_Improved, generalised to wedges.

        Pass 2: project ``q`` onto the expanded envelope, expand the
        projection by the same Sakoe-Chiba band, and accumulate the squared
        gap between the *raw* wedge arms and the projection's envelope.  For
        a leaf wedge (``raw_upper == raw_lower``) this is exactly Lemire's
        pairwise bound; for internal wedges the gap is a lower bound on the
        second-pass violation of every enclosed series, so no false
        dismissals are introduced.  Charged ``2n`` steps (envelope build +
        violation scan) on top of the first pass.
        """
        if keogh is None:
            keogh = self.lower_bound(q, upper, lower, r, counter=counter)
        if not math.isfinite(keogh) or self.radius == 0:
            return keogh
        q = np.asarray(q, dtype=np.float64)
        gap_total = self.resolved_backend().lb_improved_pass2(
            q, upper, lower, raw_upper, raw_lower, self.radius
        )
        if counter is not None:
            counter.lb_calls += 1
            counter.add(2 * q.size)
        return math.sqrt(keogh * keogh + gap_total)

    def batch_wedge_bounds(
        self,
        candidate,
        uppers,
        lowers,
        raw_uppers,
        raw_lowers,
        r=math.inf,
        counter: StepCounter | None = None,
        use_improved: bool = True,
    ) -> np.ndarray:
        radius = self.radius if (use_improved and math.isfinite(r)) else 0
        bounds, steps = self.resolved_backend().lb_improved_batch(
            candidate,
            uppers,
            lowers,
            raw_uppers,
            raw_lowers,
            radius,
            r,
        )
        if counter is not None:
            counter.lb_calls += bounds.size
            counter.add(int(steps.sum()))
            counter.early_abandons += int(np.isinf(bounds).sum())
        return bounds

    def batch_min_distance(
        self,
        q,
        candidates,
        r=math.inf,
        counter: StepCounter | None = None,
        early_abandon: bool = True,
    ) -> tuple[float, int]:
        q = np.asarray(q, dtype=np.float64)
        rows = np.atleast_2d(np.asarray(candidates, dtype=np.float64))
        k = rows.shape[0]
        radius = min(self.radius, q.size - 1)
        kernel = self.resolved_backend()
        best = float(r)
        best_idx = -1
        total_steps = 0
        abandons = 0
        for start in range(0, k, self.chunk_size):
            chunk = rows[start : start + self.chunk_size]
            threshold = best if early_abandon else math.inf
            dists, steps, abandoned = kernel.dtw_batch(q, chunk, radius, threshold)
            total_steps += steps
            abandons += int(abandoned.sum())
            j = int(np.argmin(dists))
            if dists[j] < best:
                best = float(dists[j])
                best_idx = start + j
        if counter is not None:
            counter.distance_calls += k
            counter.add(total_steps)
            counter.early_abandons += abandons
        if best_idx < 0:
            return math.inf, -1
        return best, best_idx

    def pairwise_cost(self, n: int) -> int:
        return band_cell_count(n, self.radius)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DTWMeasure(radius={self.radius})"
