"""Dynamic Time Warping with a Sakoe-Chiba band and early abandoning.

The paper (Section 4.3, Figure 12) uses the classic constrained DTW: an
``n x n`` warping matrix whose path may deviate at most ``R`` cells from the
diagonal.  Two implementation notes from the paper drive this module:

* "a recursive implementation of DTW would always require nR steps, however
  iterative implementation (as used here) can potentially early abandon with
  as few as R steps" -- so the dynamic program here is iterative and checks
  after every anti-diagonal whether any path can still finish below the
  abandonment threshold.
* The cost metric is the number of warping-matrix cells computed
  (``num_steps``), which is what the benchmark figures report.

The dynamic program iterates over *anti-diagonals* (cells with constant
``i + j``) rather than rows: cells on one anti-diagonal have no mutual
dependencies, so each anti-diagonal is one vectorised update, and a whole
chunk of rotations can be advanced simultaneously (see :func:`dtw_batch`).
A warping path makes ``i + j`` grow by 1 (horizontal/vertical move) or 2
(diagonal move), so every complete path touches at least one of any two
consecutive anti-diagonals; the early-abandon test therefore requires the
minimum over the *two* most recent anti-diagonals to exceed ``r^2``.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.counters import StepCounter
from repro.distances.base import Measure
from repro.timeseries.ops import sliding_envelope

__all__ = ["DTWMeasure", "dtw_distance", "dtw_batch", "warping_path", "band_cell_count"]


def band_cell_count(n: int, radius: int) -> int:
    """Number of warping-matrix cells inside a Sakoe-Chiba band of width ``radius``."""
    if n < 1:
        raise ValueError(f"series length must be positive, got {n}")
    radius = min(int(radius), n - 1)
    if radius < 0:
        raise ValueError("radius must be non-negative")
    full = n * (2 * radius + 1)
    # The band is clipped at the matrix corners: radius rows at each end lose
    # 1..radius cells respectively.
    clipped = radius * (radius + 1)
    return full - clipped


def _diag_bounds(s: int, n: int, radius: int) -> tuple[int, int]:
    """Inclusive ``i`` range of banded cells on anti-diagonal ``i + j = s``."""
    lo = max(0, s - (n - 1), (s - radius + 1) // 2)
    hi = min(n - 1, s, (s + radius) // 2)
    return lo, hi


def dtw_distance(
    q,
    c,
    radius: int,
    r: float = math.inf,
    counter: StepCounter | None = None,
) -> float:
    """Constrained DTW distance between two equal-length series.

    Parameters
    ----------
    q, c:
        The two series (length ``n`` each).
    radius:
        Sakoe-Chiba band width ``R``; the warping path may not deviate more
        than ``R`` cells from the matrix diagonal.  ``radius=0`` makes DTW
        coincide with Euclidean distance.
    r:
        Early-abandonment threshold; ``math.inf`` is returned as soon as no
        path can finish with distance ≤ ``r``.
    counter:
        Optional step counter; one step is charged per matrix cell computed.

    Returns
    -------
    float
        ``sqrt`` of the accumulated squared differences along the optimal
        warping path, or ``math.inf`` if abandoned.
    """
    dist, steps, abandoned = _dtw_single(q, c, radius, r)
    if counter is not None:
        counter.distance_calls += 1
        counter.add(steps)
        counter.early_abandons += int(abandoned)
    return dist


def _dtw_single(q, c, radius: int, r: float = math.inf) -> tuple[float, int, bool]:
    """Scalar row-wise banded DTW for a single pair.

    The anti-diagonal batch kernel pays ~10 small-array numpy dispatches
    per diagonal, which dominates when comparing one pair of short series
    -- exactly the H-Merge leaf case.  This kernel runs the same dynamic
    program over Python floats, abandoning after any row whose minimum
    exceeds ``r^2`` (every warping path visits every row, so this is
    admissible).  Returns ``(distance, steps, abandoned)``.
    """
    q_list = np.asarray(q, dtype=np.float64).tolist()
    c_list = np.asarray(c, dtype=np.float64).tolist()
    n = len(q_list)
    if len(c_list) != n:
        raise ValueError(f"length mismatch: {len(c_list)} vs {n}")
    radius = min(int(radius), n - 1)
    if radius < 0:
        raise ValueError("radius must be non-negative")
    threshold = r * r if math.isfinite(r) else math.inf
    inf = math.inf
    prev = [inf] * n
    steps = 0
    for i in range(n):
        j_lo = max(0, i - radius)
        j_hi = min(n - 1, i + radius)
        cur = [inf] * n
        row_min = inf
        qi = q_list[i]
        for j in range(j_lo, j_hi + 1):
            diff = qi - c_list[j]
            if i == 0 and j == 0:
                best_prev = 0.0
            else:
                best_prev = prev[j]
                if j > 0:
                    if prev[j - 1] < best_prev:
                        best_prev = prev[j - 1]
                    if cur[j - 1] < best_prev:
                        best_prev = cur[j - 1]
            cost = diff * diff + best_prev
            cur[j] = cost
            if cost < row_min:
                row_min = cost
            steps += 1
        if row_min > threshold:
            return math.inf, steps, True
        prev = cur
    final = prev[n - 1]
    if final > threshold:
        return math.inf, steps, True
    return math.sqrt(final), steps, False


def dtw_batch(
    q,
    candidates,
    radius: int,
    r: float = math.inf,
) -> tuple[np.ndarray, int, np.ndarray]:
    """Run the banded DTW dynamic program on many candidates at once.

    All candidates advance through the same sequence of anti-diagonals; each
    candidate is abandoned individually as soon as the minimum of its two
    most recent anti-diagonals exceeds ``r^2``.

    Returns
    -------
    (distances, steps, abandoned):
        ``distances[j]`` is the DTW distance of candidate ``j`` or
        ``math.inf`` if it was abandoned; ``steps`` is the total number of
        cells computed across all candidates; ``abandoned[j]`` is a boolean.
    """
    q = np.asarray(q, dtype=np.float64)
    rows = np.atleast_2d(np.asarray(candidates, dtype=np.float64))
    if q.ndim != 1:
        raise ValueError(f"query must be 1-D, got shape {q.shape}")
    if rows.shape[1] != q.size:
        raise ValueError(f"length mismatch: {rows.shape[1]} vs {q.size}")
    n = q.size
    k = rows.shape[0]
    radius = min(int(radius), n - 1)
    if radius < 0:
        raise ValueError("radius must be non-negative")
    threshold = r * r if math.isfinite(r) else math.inf

    # prev1/prev2 hold the costs of anti-diagonals s-1 and s-2, stored in
    # arrays of length n indexed by i (the row coordinate); untouched slots
    # stay at +inf so shifted reads are automatically out-of-band.
    prev1 = np.full((k, n), np.inf)
    prev2 = np.full((k, n), np.inf)
    alive = np.ones(k, dtype=bool)
    prev1_min = np.full(k, np.inf)
    prev2_min = np.full(k, np.inf)
    steps = 0

    for s in range(2 * n - 1):
        lo, hi = _diag_bounds(s, n, radius)
        if lo > hi:
            # Empty diagonal (only happens for radius=0 on odd s): the
            # buffers must still rotate so that predecessor reads stay
            # aligned with their anti-diagonal depth.
            prev2, prev2_min = prev1, prev1_min
            prev1 = np.full((k, n), np.inf)
            prev1_min = np.full(k, np.inf)
            continue
        width = hi - lo + 1
        q_slice = q[lo : hi + 1]
        # Row j-coordinates run s-lo down to s-hi as i runs lo..hi.
        c_slice = rows[:, s - hi : s - lo + 1][:, ::-1]
        local = np.square(c_slice - q_slice[np.newaxis, :])

        if s == 0:
            current = local
        else:
            # Transition costs: (i-1, j) and (i, j-1) live on diagonal s-1 at
            # row indices i-1 and i; (i-1, j-1) lives on diagonal s-2 at i-1.
            up = prev1[:, lo - 1 : hi] if lo >= 1 else _pad_left(prev1[:, lo:hi], k)
            left = prev1[:, lo : hi + 1]
            diag = prev2[:, lo - 1 : hi] if lo >= 1 else _pad_left(prev2[:, lo:hi], k)
            best_prev = np.minimum(np.minimum(up, left), diag)
            current = local + best_prev

        steps += int(alive.sum()) * width

        new_min = current.min(axis=1)
        prev2 = prev1
        prev2_min = prev1_min
        prev1 = np.full((k, n), np.inf)
        prev1[:, lo : hi + 1] = current
        prev1_min = new_min

        if math.isfinite(threshold):
            # A complete path must touch anti-diagonal s or s+1, so once the
            # minima of the two most recent diagonals both exceed r^2 no
            # path can finish within r.
            doomed = (np.minimum(prev1_min, prev2_min) > threshold) & alive
            if doomed.any():
                alive &= ~doomed
                prev1[doomed] = np.inf
                if not alive.any():
                    break

    distances = np.full(k, np.inf)
    final = prev1[:, n - 1]
    finished = alive & np.isfinite(final)
    if math.isfinite(threshold):
        finished &= final <= threshold
    distances[finished] = np.sqrt(final[finished])
    abandoned = ~finished
    return distances, steps, abandoned


def _pad_left(block: np.ndarray, k: int) -> np.ndarray:
    """Prepend a +inf column (out-of-band predecessor) to ``block``."""
    pad = np.full((k, 1), np.inf)
    if block.shape[1] == 0:
        return pad
    return np.concatenate([pad, block], axis=1)


def warping_path(q, c, radius: int) -> tuple[float, list[tuple[int, int]]]:
    """Full DTW with backtracking; returns ``(distance, path)``.

    The path is the list of ``(i, j)`` matrix cells from ``(0, 0)`` to
    ``(n-1, n-1)``.  This routine materialises the whole banded matrix and is
    intended for analysis and visualisation, not for bulk search (use
    :func:`dtw_distance` there).
    """
    q = np.asarray(q, dtype=np.float64)
    c = np.asarray(c, dtype=np.float64)
    if q.shape != c.shape or q.ndim != 1:
        raise ValueError(f"need equal-length 1-D series, got {q.shape} and {c.shape}")
    n = q.size
    radius = min(int(radius), n - 1)
    cost = np.full((n, n), np.inf)
    cost[0, 0] = (q[0] - c[0]) ** 2
    for i in range(n):
        j_lo = max(0, i - radius)
        j_hi = min(n - 1, i + radius)
        for j in range(j_lo, j_hi + 1):
            if i == 0 and j == 0:
                continue
            best_prev = math.inf
            if i > 0:
                best_prev = min(best_prev, cost[i - 1, j])
            if j > 0:
                best_prev = min(best_prev, cost[i, j - 1])
            if i > 0 and j > 0:
                best_prev = min(best_prev, cost[i - 1, j - 1])
            cost[i, j] = (q[i] - c[j]) ** 2 + best_prev
    path = [(n - 1, n - 1)]
    i, j = n - 1, n - 1
    while (i, j) != (0, 0):
        candidates = []
        if i > 0 and j > 0:
            candidates.append((cost[i - 1, j - 1], (i - 1, j - 1)))
        if i > 0:
            candidates.append((cost[i - 1, j], (i - 1, j)))
        if j > 0:
            candidates.append((cost[i, j - 1], (i, j - 1)))
        _, (i, j) = min(candidates, key=lambda item: item[0])
        path.append((i, j))
    path.reverse()
    return float(math.sqrt(cost[n - 1, n - 1])), path


class DTWMeasure(Measure):
    """Constrained DTW as a pluggable measure for the wedge machinery.

    Parameters
    ----------
    radius:
        The Sakoe-Chiba band width ``R`` (the paper's single DTW parameter).
    chunk_size:
        How many candidate rotations to advance simultaneously in
        :meth:`batch_min_distance`; the running best-so-far is refreshed
        between chunks, approximating the strictly sequential scan order of
        Table 2 while retaining vectorised execution.
    """

    name = "dtw"
    has_improved_bound = True

    def __init__(self, radius: int, chunk_size: int = 32):
        if radius < 0:
            raise ValueError(f"radius must be non-negative, got {radius}")
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be positive, got {chunk_size}")
        self.radius = int(radius)
        self.chunk_size = int(chunk_size)

    def cache_key(self) -> tuple:
        return (self.name, self.radius)

    def distance(self, q, c, r=math.inf, counter: StepCounter | None = None) -> float:
        return dtw_distance(q, c, self.radius, r=r, counter=counter)

    def expand_envelope(self, upper, lower):
        """The Sakoe-Chiba envelope expansion of Section 4.3 (Figure 13)."""
        return sliding_envelope(upper, lower, self.radius)

    def lower_bound(
        self, q, upper, lower, r=math.inf, counter: StepCounter | None = None
    ) -> float:
        from repro.core.batch import shared_workspace
        from repro.distances.euclidean import _ea_envelope_lb

        lb, steps = _ea_envelope_lb(q, upper, lower, r, workspace=shared_workspace())
        if counter is not None:
            counter.lb_calls += 1
            counter.add(steps)
            if math.isinf(lb):
                counter.early_abandons += 1
        return lb

    def improved_lower_bound(
        self,
        q,
        upper,
        lower,
        raw_upper,
        raw_lower,
        r=math.inf,
        keogh: float | None = None,
        counter: StepCounter | None = None,
    ) -> float:
        """Lemire's LB_Improved, generalised to wedges.

        Pass 2: project ``q`` onto the expanded envelope, expand the
        projection by the same Sakoe-Chiba band, and accumulate the squared
        gap between the *raw* wedge arms and the projection's envelope.  For
        a leaf wedge (``raw_upper == raw_lower``) this is exactly Lemire's
        pairwise bound; for internal wedges the gap is a lower bound on the
        second-pass violation of every enclosed series, so no false
        dismissals are introduced.  Charged ``2n`` steps (envelope build +
        violation scan) on top of the first pass.
        """
        if keogh is None:
            keogh = self.lower_bound(q, upper, lower, r, counter=counter)
        if not math.isfinite(keogh) or self.radius == 0:
            return keogh
        q = np.asarray(q, dtype=np.float64)
        projection = np.clip(q, lower, upper)
        env_hi, env_lo = sliding_envelope(projection, projection, self.radius)
        gap = np.maximum(env_lo - np.asarray(raw_upper), np.asarray(raw_lower) - env_hi)
        np.maximum(gap, 0.0, out=gap)
        if counter is not None:
            counter.lb_calls += 1
            counter.add(2 * q.size)
        return math.sqrt(keogh * keogh + float(np.dot(gap, gap)))

    def batch_wedge_bounds(
        self,
        candidate,
        uppers,
        lowers,
        raw_uppers,
        raw_lowers,
        r=math.inf,
        counter: StepCounter | None = None,
        use_improved: bool = True,
    ) -> np.ndarray:
        from repro.core.batch import batch_lb_improved, shared_workspace

        radius = self.radius if (use_improved and math.isfinite(r)) else 0
        bounds, steps = batch_lb_improved(
            candidate,
            uppers,
            lowers,
            raw_uppers,
            raw_lowers,
            radius,
            r=r,
            workspace=shared_workspace(),
        )
        if counter is not None:
            counter.lb_calls += bounds.size
            counter.add(int(steps.sum()))
            counter.early_abandons += int(np.isinf(bounds).sum())
        return bounds

    def batch_min_distance(
        self,
        q,
        candidates,
        r=math.inf,
        counter: StepCounter | None = None,
        early_abandon: bool = True,
    ) -> tuple[float, int]:
        q = np.asarray(q, dtype=np.float64)
        rows = np.atleast_2d(np.asarray(candidates, dtype=np.float64))
        k = rows.shape[0]
        best = float(r)
        best_idx = -1
        total_steps = 0
        abandons = 0
        for start in range(0, k, self.chunk_size):
            chunk = rows[start : start + self.chunk_size]
            threshold = best if early_abandon else math.inf
            dists, steps, abandoned = dtw_batch(q, chunk, self.radius, r=threshold)
            total_steps += steps
            abandons += int(abandoned.sum())
            j = int(np.argmin(dists))
            if dists[j] < best:
                best = float(dists[j])
                best_idx = start + j
        if counter is not None:
            counter.distance_calls += k
            counter.add(total_steps)
            counter.early_abandons += abandons
        if best_idx < 0:
            return math.inf, -1
        return best, best_idx

    def pairwise_cost(self, n: int) -> int:
        return band_cell_count(n, self.radius)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DTWMeasure(radius={self.radius})"
