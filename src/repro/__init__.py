"""repro: rotation-invariant shape and light-curve indexing with LB_Keogh wedges.

A faithful, from-scratch reproduction of

    Keogh, Wei, Xi, Vlachos, Lee, Protopapas.
    "LB_Keogh Supports Exact Indexing of Shapes under Rotation Invariance
    with Arbitrary Representations and Distance Measures."  VLDB 2006.

Quick start::

    from repro import EuclideanMeasure, polygon_to_series, star_polygon, wedge_search

    database = [polygon_to_series(star_polygon(k)) for k in range(3, 30)]
    query = polygon_to_series(star_polygon(5))
    result = wedge_search(database, query, EuclideanMeasure())
    print(result.index, result.distance)

Package map (see DESIGN.md for the full inventory):

``repro.core``
    Wedges, the H-Merge search, rotation sets, step counters -- the paper's
    contribution.
``repro.distances``
    Euclidean, DTW, LCSS, all early-abandoning.
``repro.shapes``
    Shape -> time-series conversion and synthetic shape generators.
``repro.timeseries``
    Series operations and the star light-curve simulator.
``repro.clustering``
    Hierarchical clustering (drives wedge construction; also the
    dendrogram sanity checks).
``repro.index``
    Fourier/PAA signatures, VP-tree, and the disk-resident index.
``repro.obs``
    Opt-in observability: query tracing, metrics registry, structured
    run logs, benchmark provenance.
``repro.classify``
    Rotation-invariant 1-NN classification (Table 8).
``repro.datasets``
    Synthetic reconstructions of the paper's datasets.
"""

from repro.classify.evaluation import evaluate_dataset, train_warping_window
from repro.classify.knn import NearestNeighborClassifier, leave_one_out_error
from repro.clustering.dendrogram import Dendrogram
from repro.clustering.linkage import linkage
from repro.core.batch import (
    BatchWorkspace,
    batch_ea_euclidean,
    batch_lb_keogh,
    rotation_matrix,
    shared_workspace,
)
from repro.core.counters import StepCounter
from repro.core.cascade import CascadePolicy, empty_tier_stats, lb_kim
from repro.core.hmerge import DynamicKPolicy, FixedKPolicy, h_merge
from repro.core.rotation import RotationSet
from repro.core.search import (
    AnytimeResult,
    RotationQuery,
    SearchResult,
    brute_force_search,
    early_abandon_search,
    anytime_wedge_search,
    fft_search,
    merge_counters,
    search_many,
    test_all_rotations,
    wedge_search,
)
from repro.core.wedge import Wedge
from repro.core.wedge_builder import WedgeTree, build_wedge_tree
from repro.datasets.registry import TABLE_EIGHT, heterogeneous_collection, load_dataset
from repro.datasets.shapes_data import (
    Dataset,
    projectile_point_collection,
    projectile_point_dataset,
)
from repro.distances.dtw import DTWMeasure, dtw_distance, warping_path
from repro.distances.euclidean import EuclideanMeasure, euclidean_distance
from repro.distances.lcss import LCSSMeasure, lcss_similarity
from repro.index.fourier import fourier_signature, rotation_invariant_ed_lower_bound
from repro.mining.discords import Discord, find_discords
from repro.mining.motifs import Motif, find_motif
from repro.mining.queries import Neighbor, knn_search, range_search
from repro.mining.scaling import scaled_candidates, scaling_invariant_search
from repro.mining.streaming import StreamMatch, StreamMonitor
from repro.mining.trajectories import trajectory_dtw, trajectory_search
from repro.obs import (
    NULL_TRACER,
    MetricsRegistry,
    QueryLogger,
    Span,
    Tracer,
    format_summary,
    funnel_is_monotone,
    global_registry,
    provenance_block,
    read_query_log,
    record_query,
    summarize_query_log,
    tier_funnel,
)
from repro.persistence import (
    inspect_archive,
    load_dataset_file,
    load_index,
    save_dataset,
    save_index,
)
from repro.viz import plot_series, plot_warping_matrix, plot_wedge
from repro.index.linear_scan import SignatureFilteredScan
from repro.index.rtree import Rect, RTree
from repro.index.vptree import VPTree
from repro.shapes.contour import largest_contour, moore_trace
from repro.shapes.convert import contour_to_series, polygon_to_series
from repro.shapes.generators import (
    butterfly,
    fourier_blob,
    projectile_point,
    regular_polygon,
    rotate_polygon,
    skull_profile,
    star_polygon,
)
from repro.shapes.image import rasterize_polygon
from repro.timeseries.lightcurves import light_curve, light_curve_dataset
from repro.timeseries.ops import all_rotations, circular_shift, resample, znormalize

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "StepCounter",
    "RotationSet",
    "RotationQuery",
    "SearchResult",
    "Wedge",
    "WedgeTree",
    "build_wedge_tree",
    "h_merge",
    "DynamicKPolicy",
    "FixedKPolicy",
    "brute_force_search",
    "early_abandon_search",
    "fft_search",
    "wedge_search",
    "anytime_wedge_search",
    "AnytimeResult",
    "CascadePolicy",
    "empty_tier_stats",
    "lb_kim",
    "test_all_rotations",
    "search_many",
    "merge_counters",
    "BatchWorkspace",
    "shared_workspace",
    "rotation_matrix",
    "batch_ea_euclidean",
    "batch_lb_keogh",
    # distances
    "EuclideanMeasure",
    "DTWMeasure",
    "LCSSMeasure",
    "euclidean_distance",
    "dtw_distance",
    "warping_path",
    "lcss_similarity",
    # shapes
    "polygon_to_series",
    "contour_to_series",
    "moore_trace",
    "largest_contour",
    "rasterize_polygon",
    "star_polygon",
    "regular_polygon",
    "fourier_blob",
    "projectile_point",
    "skull_profile",
    "butterfly",
    "rotate_polygon",
    # time series
    "znormalize",
    "circular_shift",
    "all_rotations",
    "resample",
    "light_curve",
    "light_curve_dataset",
    # clustering
    "linkage",
    "Dendrogram",
    # index
    "fourier_signature",
    "rotation_invariant_ed_lower_bound",
    "SignatureFilteredScan",
    "VPTree",
    "RTree",
    "Rect",
    # mining
    "Neighbor",
    "knn_search",
    "range_search",
    "Motif",
    "find_motif",
    "Discord",
    "find_discords",
    "StreamMatch",
    "StreamMonitor",
    "scaled_candidates",
    "scaling_invariant_search",
    "trajectory_search",
    "trajectory_dtw",
    # observability
    "Tracer",
    "Span",
    "NULL_TRACER",
    "MetricsRegistry",
    "global_registry",
    "record_query",
    "QueryLogger",
    "read_query_log",
    "summarize_query_log",
    "format_summary",
    "tier_funnel",
    "funnel_is_monotone",
    "provenance_block",
    # persistence & viz
    "save_dataset",
    "load_dataset_file",
    "save_index",
    "load_index",
    "inspect_archive",
    "plot_series",
    "plot_wedge",
    "plot_warping_matrix",
    # classify
    "NearestNeighborClassifier",
    "leave_one_out_error",
    "evaluate_dataset",
    "train_warping_window",
    # datasets
    "Dataset",
    "TABLE_EIGHT",
    "load_dataset",
    "heterogeneous_collection",
    "projectile_point_dataset",
    "projectile_point_collection",
]
