"""Shard a dataset into N independent format-v2 index archives.

A shard set is a directory: one checksummed ``.npz`` + ``.data.npy``
sidecar per shard (exactly PR 5's archive format, so every existing
durability guarantee -- SHA-256 verification, mmap loading, cross-version
portability -- applies per shard) plus a ``manifest.json`` describing the
layout.  Shards are **contiguous slices** in dataset order; each shard
records the global offset of its first object, so a worker's local result
index ``i`` maps to global index ``offset + i``.  Contiguity is what makes
the coordinator's merge provably exact: the canonical ``(distance,
index)`` order over the whole dataset is the merge of the canonical orders
over the slices.

The manifest also embeds a provenance block (git SHA, platform, versions)
-- a shard set is a benchmark-grade artifact like any BENCH_*.json.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.index.linear_scan import SignatureFilteredScan
from repro.persistence import load_index, save_index

__all__ = [
    "MANIFEST_NAME",
    "SHARD_FORMAT_VERSION",
    "ShardInfo",
    "ShardManifest",
    "load_manifest",
    "load_shard",
    "open_shards",
    "save_shards",
    "shard_slices",
]

MANIFEST_NAME = "manifest.json"
SHARD_FORMAT_VERSION = 1


@dataclass(frozen=True)
class ShardInfo:
    """One shard: archive file, global offset, and object count."""

    shard_id: int
    file: str
    offset: int
    objects: int


@dataclass
class ShardManifest:
    """The layout of one shard set, as stored in ``manifest.json``."""

    n_shards: int
    objects: int
    length: int
    shards: list[ShardInfo]
    index_config: dict
    provenance: dict = field(default_factory=dict)
    directory: Path | None = None
    #: SHA-256 of the ``manifest.json`` bytes this object was read from
    #: (or wrote).  Identifies the shard set as a whole -- the answer
    #: cache scopes its keys by it -- and is derived, never serialized.
    checksum: str | None = None

    def to_dict(self) -> dict:
        return {
            "format_version": SHARD_FORMAT_VERSION,
            "n_shards": self.n_shards,
            "objects": self.objects,
            "length": self.length,
            "shards": [vars(s) for s in self.shards],
            "index_config": self.index_config,
            "provenance": self.provenance,
        }

    @classmethod
    def from_dict(cls, payload: dict, directory: Path | None = None) -> "ShardManifest":
        version = payload.get("format_version")
        if version != SHARD_FORMAT_VERSION:
            raise ValueError(f"unsupported shard manifest version {version!r}")
        return cls(
            n_shards=int(payload["n_shards"]),
            objects=int(payload["objects"]),
            length=int(payload["length"]),
            shards=[ShardInfo(**s) for s in payload["shards"]],
            index_config=dict(payload.get("index_config", {})),
            provenance=dict(payload.get("provenance", {})),
            directory=directory,
        )

    def shard_path(self, shard_id: int) -> Path:
        if self.directory is None:
            raise ValueError("manifest not bound to a directory")
        return self.directory / self.shards[shard_id].file


def shard_slices(n_objects: int, n_shards: int) -> list[tuple[int, int]]:
    """Balanced contiguous ``[lo, hi)`` slices covering ``range(n_objects)``.

    The first ``n_objects % n_shards`` shards get one extra object, so
    shard sizes differ by at most one.
    """
    if n_shards < 1:
        raise ValueError(f"n_shards must be positive, got {n_shards}")
    if n_shards > n_objects:
        raise ValueError(
            f"cannot split {n_objects} objects into {n_shards} non-empty shards "
            "(the index layer rejects empty collections)"
        )
    base, extra = divmod(n_objects, n_shards)
    slices = []
    lo = 0
    for i in range(n_shards):
        hi = lo + base + (1 if i < extra else 0)
        slices.append((lo, hi))
        lo = hi
    return slices


def save_shards(
    database,
    out_dir,
    n_shards: int,
    *,
    n_coefficients: int = 16,
    structure: str = "flat",
    page_size: int = 1,
    buffer_pages: int = 0,
) -> ShardManifest:
    """Split ``database`` into ``n_shards`` format-v2 archives under ``out_dir``.

    Each shard gets its own :class:`SignatureFilteredScan` built over its
    contiguous slice, persisted with :func:`repro.persistence.save_index`
    (checksums + mmap sidecar).  Returns the written manifest.
    """
    from repro.obs.provenance import provenance_block

    data = np.ascontiguousarray(np.asarray(database, dtype=np.float64))
    if data.ndim != 2:
        raise ValueError(f"database must be 2-D (objects x length), got shape {data.shape}")
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    slices = shard_slices(data.shape[0], n_shards)
    index_config = {
        "n_coefficients": n_coefficients,
        "structure": structure,
        "page_size": page_size,
        "buffer_pages": buffer_pages,
    }
    shards: list[ShardInfo] = []
    for shard_id, (lo, hi) in enumerate(slices):
        index = SignatureFilteredScan(
            data[lo:hi],
            n_coefficients=n_coefficients,
            structure=structure,
            page_size=page_size,
            buffer_pages=buffer_pages,
        )
        filename = f"shard-{shard_id:04d}.npz"
        save_index(index, out / filename)
        shards.append(ShardInfo(shard_id=shard_id, file=filename, offset=lo, objects=hi - lo))
    manifest = ShardManifest(
        n_shards=n_shards,
        objects=data.shape[0],
        length=data.shape[1],
        shards=shards,
        index_config=index_config,
        provenance=provenance_block({"artifact": "shard-set", "n_shards": n_shards}),
        directory=out,
    )
    manifest_bytes = json.dumps(manifest.to_dict(), indent=2, sort_keys=True).encode("utf-8")
    (out / MANIFEST_NAME).write_bytes(manifest_bytes)
    manifest.checksum = hashlib.sha256(manifest_bytes).hexdigest()
    return manifest


def load_manifest(directory) -> ShardManifest:
    """Read and validate ``manifest.json``; checks every shard file exists."""
    directory = Path(directory)
    manifest_path = directory / MANIFEST_NAME
    if not manifest_path.exists():
        raise FileNotFoundError(f"no {MANIFEST_NAME} in {directory}")
    manifest_bytes = manifest_path.read_bytes()
    manifest = ShardManifest.from_dict(json.loads(manifest_bytes), directory=directory)
    manifest.checksum = hashlib.sha256(manifest_bytes).hexdigest()
    covered = 0
    for info in manifest.shards:
        path = directory / info.file
        if not path.exists():
            raise FileNotFoundError(f"shard archive missing: {path}")
        if info.offset != covered:
            raise ValueError(
                f"shard {info.shard_id} offset {info.offset} breaks contiguity "
                f"(expected {covered})"
            )
        covered += info.objects
    if covered != manifest.objects:
        raise ValueError(f"shards cover {covered} objects, manifest says {manifest.objects}")
    return manifest


def load_shard(directory, shard_id: int, mmap: bool = True):
    """Open one shard's archive; returns ``(ShardInfo, SignatureFilteredScan)``."""
    manifest = load_manifest(directory)
    info = manifest.shards[shard_id]
    return info, load_index(manifest.shard_path(shard_id), mmap=mmap)


def open_shards(directory, mmap: bool = True):
    """Open every shard in a set; returns ``[(ShardInfo, index), ...]``.

    In-process convenience for tests and tools -- the service proper opens
    each shard inside its own worker process instead.
    """
    manifest = load_manifest(directory)
    return [
        (info, load_index(manifest.shard_path(info.shard_id), mmap=mmap))
        for info in manifest.shards
    ]
