"""Deterministic fault injection for the sharded query service.

Chaos testing only proves something when the chaos is reproducible: a
:class:`FaultPlan` is a seedable, serializable description of *which*
failures to inject *where*, parsed from the ``REPRO_FAULT_SPEC``
environment variable (or built programmatically) and shipped to each
shard worker as plain data.  Every worker derives its own
:class:`FaultInjector` from ``(plan seed, shard id)``, so a given request
stream always produces the same crashes, delays, dropped pipes, and
corrupt frames -- the chaos CI job and the resilience tests rely on this.

Spec grammar (semicolon-separated clauses)::

    REPRO_FAULT_SPEC="seed=7;crash:p=0.05,shard=1;delay:ms=40,every=3;corrupt:after=10,count=1"

Each clause is either ``seed=N`` or ``<kind>[:key=value,...]`` with

* ``kind``: one of ``crash`` (``os._exit`` before answering), ``delay``
  (sleep ``ms`` before answering), ``drop`` (close the pipe and exit --
  the parent sees EOF), ``corrupt`` (send an undecodable frame instead of
  the answer, then exit -- the stream is no longer trustworthy).
* ``p`` / ``probability``: chance of firing when eligible (default 1).
* ``every``: eligible only on every Nth matching trigger (0 = all).
* ``after``: eligible only once more than this many triggers have been
  seen by this worker process (counts reset on respawn).
* ``count``: maximum number of firings per worker process (0 = no cap).
* ``ms`` / ``delay_ms``: sleep duration for ``delay`` rules.
* ``shard``: target a single shard id (-1 = every shard).
* ``op``: which worker op to target (default ``search``; ``*`` = all).

Rules are evaluated in spec order; the first rule that fires wins for
that trigger (a ``delay`` rule firing does not stop a later ``crash``
rule -- delays are side effects, terminal kinds end evaluation).
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass, field

__all__ = [
    "FAULT_ENV_VAR",
    "FAULT_KINDS",
    "FaultInjector",
    "FaultPlan",
    "FaultRule",
]

#: Environment variable the service reads a default plan from.
FAULT_ENV_VAR = "REPRO_FAULT_SPEC"

#: Recognised failure kinds.  ``delay`` is a side effect (evaluation
#: continues); the other three are terminal for the worker process.
FAULT_KINDS = ("crash", "delay", "drop", "corrupt")

_KEY_ALIASES = {
    "p": "probability",
    "probability": "probability",
    "every": "every",
    "after": "after",
    "count": "count",
    "ms": "delay_ms",
    "delay_ms": "delay_ms",
    "shard": "shard",
    "op": "op",
}


@dataclass(frozen=True)
class FaultRule:
    """One injection rule: a kind plus its trigger and targeting knobs."""

    kind: str
    probability: float = 1.0
    every: int = 0
    after: int = 0
    count: int = 0
    delay_ms: float = 0.0
    shard: int = -1
    op: str = "search"

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {self.probability}")
        if self.every < 0 or self.after < 0 or self.count < 0:
            raise ValueError("every/after/count must be non-negative")
        if self.delay_ms < 0:
            raise ValueError(f"delay_ms must be non-negative, got {self.delay_ms}")

    def matches(self, shard_id: int, op: str) -> bool:
        """Whether this rule targets the given shard and worker op."""
        if self.shard >= 0 and self.shard != shard_id:
            return False
        return self.op == "*" or self.op == op

    def to_clause(self) -> str:
        """This rule as one spec clause (inverse of parsing)."""
        parts = []
        if self.probability != 1.0:
            parts.append(f"p={self.probability:g}")
        for key in ("every", "after", "count"):
            value = getattr(self, key)
            if value:
                parts.append(f"{key}={value}")
        if self.delay_ms:
            parts.append(f"ms={self.delay_ms:g}")
        if self.shard >= 0:
            parts.append(f"shard={self.shard}")
        if self.op != "search":
            parts.append(f"op={self.op}")
        return self.kind + (":" + ",".join(parts) if parts else "")


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, ordered collection of :class:`FaultRule`."""

    rules: tuple[FaultRule, ...] = field(default_factory=tuple)
    seed: int = 0

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse the ``REPRO_FAULT_SPEC`` grammar; raises :class:`ValueError`."""
        rules: list[FaultRule] = []
        seed = 0
        for raw_clause in spec.split(";"):
            clause = raw_clause.strip()
            if not clause:
                continue
            if clause.startswith("seed="):
                seed = int(clause[len("seed=") :])
                continue
            kind, _, raw_args = clause.partition(":")
            kind = kind.strip()
            kwargs: dict = {}
            for raw_pair in raw_args.split(","):
                pair = raw_pair.strip()
                if not pair:
                    continue
                key, eq, value = pair.partition("=")
                if not eq:
                    raise ValueError(f"malformed fault clause {clause!r}: {pair!r} is not key=value")
                field_name = _KEY_ALIASES.get(key.strip())
                if field_name is None:
                    raise ValueError(
                        f"unknown fault rule key {key.strip()!r} in {clause!r}; "
                        f"expected one of {sorted(set(_KEY_ALIASES))}"
                    )
                if field_name == "op":
                    kwargs[field_name] = value.strip()
                elif field_name in ("probability", "delay_ms"):
                    kwargs[field_name] = float(value)
                else:
                    kwargs[field_name] = int(value)
            rules.append(FaultRule(kind=kind, **kwargs))
        return cls(rules=tuple(rules), seed=seed)

    @classmethod
    def from_env(cls, environ=None) -> "FaultPlan | None":
        """The plan described by ``REPRO_FAULT_SPEC``, or ``None`` if unset."""
        spec = (environ if environ is not None else os.environ).get(FAULT_ENV_VAR, "").strip()
        return cls.parse(spec) if spec else None

    def to_spec(self) -> str:
        """Round-trippable spec string (``parse(plan.to_spec()) == plan``)."""
        clauses = [f"seed={self.seed}"] if self.seed else []
        clauses.extend(rule.to_clause() for rule in self.rules)
        return ";".join(clauses)

    def to_dict(self) -> dict:
        """Plain-data form shipped to worker processes."""
        return {"seed": self.seed, "rules": [vars(rule) for rule in self.rules]}

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultPlan":
        return cls(
            rules=tuple(FaultRule(**rule) for rule in payload.get("rules", [])),
            seed=int(payload.get("seed", 0)),
        )

    def injector(self, shard_id: int) -> "FaultInjector":
        """The deterministic per-worker dispatcher for ``shard_id``."""
        return FaultInjector(self, shard_id)


class FaultInjector:
    """Per-worker-process fault dispatcher.

    Holds one trigger counter and one firing counter per rule, plus a
    ``random.Random`` seeded by ``(plan seed, shard id)`` so probability
    draws are reproducible for a given request order.  Counters live in
    the worker process and reset when the supervisor respawns it -- an
    ``after``-based crash loop therefore heals on restart, which is
    exactly the behavior a supervisor must cope with.
    """

    def __init__(self, plan: FaultPlan, shard_id: int):
        self.plan = plan
        self.shard_id = shard_id
        self._rng = random.Random(f"{plan.seed}:{shard_id}")
        self._triggers = [0] * len(plan.rules)
        self._fired = [0] * len(plan.rules)

    def draw(self, op: str) -> tuple[list[FaultRule], FaultRule | None]:
        """Evaluate one trigger: ``(delay rules fired, terminal rule or None)``.

        ``delay`` rules are side effects: record the firing but keep
        evaluating, so a delay can co-exist with a later crash rule.  The
        first *terminal* rule (crash/drop/corrupt) that fires wins.
        """
        delays: list[FaultRule] = []
        terminal: FaultRule | None = None
        for i, rule in enumerate(self.plan.rules):
            if not rule.matches(self.shard_id, op):
                continue
            self._triggers[i] += 1
            triggers = self._triggers[i]
            if triggers <= rule.after:
                continue
            if rule.every and triggers % rule.every != 0:
                continue
            if rule.count and self._fired[i] >= rule.count:
                continue
            if rule.probability < 1.0 and self._rng.random() >= rule.probability:
                continue
            self._fired[i] += 1
            if rule.kind == "delay":
                delays.append(rule)
            elif terminal is None:
                terminal = rule
        return delays, terminal
