"""repro.service: a sharded, long-lived query service over the search stack.

The single-process stack answers one query at a time and pays full startup
per process; this package turns it into a serving layer shaped like the
partitioned-cluster design the paper's successors deployed (per-partition
LB_Keogh pruning, exact global merge):

* :mod:`repro.service.shard` -- split a dataset into N format-v2 shard
  archives (:func:`save_shards`), each a checksummed ``.npz`` + mmap
  sidecar so co-located workers share page cache.
* :mod:`repro.service.worker` -- one process per shard, opening its
  archive with ``load_index(mmap=True)`` once at startup and answering
  k-NN / range chunks with a per-worker :class:`MetricsRegistry`.  Each
  worker is wrapped in a :class:`SupervisedWorker` -- a self-healing state
  machine (``live``/``restarting``/``degraded``) that respawns dead
  processes with capped exponential backoff and replays in-flight work.
* :mod:`repro.service.server` -- an asyncio front-end speaking
  length-prefixed JSON over TCP: micro-batches concurrent queries, fans
  each chunk out to every shard under a per-request deadline with a
  bounded retry, and performs the exact global top-K merge (canonical
  ``(distance, index)`` tie-break) at the coordinator.  Requests may opt
  into partial results (``allow_partial``) when shards are degraded.
* :mod:`repro.service.cache` -- a hot-query LRU answer cache keyed by
  (shard-set checksum, query hash, measure ``cache_key()``, operation,
  K); kernel backends are bit-identical so the backend is deliberately
  *not* in the key.
* :mod:`repro.service.faults` -- deterministic fault injection
  (:class:`FaultPlan`, ``REPRO_FAULT_SPEC``) for chaos tests and the CI
  chaos-smoke job.
* :mod:`repro.service.client` -- a small blocking client (with
  reconnect-and-retry) used by the ``repro client`` CLI, tests, and
  benchmarks.
* :mod:`repro.service.telemetry` -- the live telemetry plane: a
  :class:`TraceBuffer` ring of stitched cross-process traces and a
  stdlib HTTP sidecar (:class:`TelemetryServer`, ``--telemetry-port``)
  serving ``/metrics``, ``/health``, ``/slo``, and ``/traces/recent``
  for Prometheus scrapes and the ``repro top`` dashboard.  Every batch
  is traced end to end (queue wait, shard fan-out, worker-side tier
  spans rebased across the process boundary, retries, replays) and a
  :class:`repro.obs.SloEngine` tracks sliding-window latency
  percentiles, QPS, error rate, and cache ratio.

Exactness contract: for any dataset, sharding layout, and concurrency,
the service returns bit-identical answers to single-process
:func:`repro.mining.queries.knn_search` / ``range_search`` over the
concatenated data -- zero false dismissals, enforced by the
``bench_service`` tripwire in CI.  Partial results weaken this only by
announcement: they are the exact merge over the shards named as present,
flagged ``partial`` with an explicit ``missing_shards`` list.
"""

from repro.service.cache import AnswerCache
from repro.service.client import ServiceClient
from repro.service.faults import FaultInjector, FaultPlan, FaultRule
from repro.service.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    error_response,
    measure_from_spec,
    measure_to_spec,
)
from repro.service.server import (
    ServiceHandle,
    ShardedSearchService,
    run_service,
    serve,
    start_service_thread,
)
from repro.service.shard import ShardManifest, load_manifest, open_shards, save_shards
from repro.service.telemetry import TelemetryServer, TraceBuffer, format_dashboard
from repro.service.worker import (
    RestartPolicy,
    ShardDegradedError,
    ShardWorker,
    SupervisedWorker,
    WorkerDiedError,
)

__all__ = [
    "PROTOCOL_VERSION",
    "ProtocolError",
    "AnswerCache",
    "FaultInjector",
    "FaultPlan",
    "FaultRule",
    "RestartPolicy",
    "ServiceClient",
    "ServiceHandle",
    "ShardDegradedError",
    "ShardManifest",
    "ShardWorker",
    "ShardedSearchService",
    "SupervisedWorker",
    "TelemetryServer",
    "TraceBuffer",
    "WorkerDiedError",
    "error_response",
    "format_dashboard",
    "load_manifest",
    "measure_from_spec",
    "measure_to_spec",
    "open_shards",
    "run_service",
    "save_shards",
    "serve",
    "start_service_thread",
]
