"""Shard worker process and its parent-side handle.

One worker per shard: the child process opens its archive with
``load_index(mmap=True)`` exactly once at startup (the expensive part --
checksum verification and signature reconstruction -- is paid per process
lifetime, not per query), then loops answering request chunks from the
coordinator over a :class:`multiprocessing.Pipe`.  Messages are the wire
protocol's JSON bytes via ``send_bytes``/``recv_bytes`` -- never pickle --
so the worker boundary has the same data-only trust model as the archive
format.

The parent-side :class:`ShardWorker` wraps the pipe with a polling
``request`` that watches the child's liveness: a worker that dies
mid-query surfaces as :class:`WorkerDiedError` naming the shard, never as
a coordinator hang on a half-closed pipe.

Each worker keeps a private :class:`MetricsRegistry`; the ``metrics`` op
ships its ``to_dict()`` snapshot for the coordinator to fold via
``registry_from_dict`` + ``merge``.
"""

from __future__ import annotations

import math
import multiprocessing
import threading
import time
from pathlib import Path

import numpy as np

from repro.service.protocol import decode_payload, encode_payload

__all__ = ["ShardWorker", "WorkerDiedError", "worker_main"]


class WorkerDiedError(RuntimeError):
    """A shard worker process is gone (crashed, killed, or pipe broken)."""

    def __init__(self, shard_id: int, detail: str = ""):
        self.shard_id = shard_id
        message = f"shard worker {shard_id} died"
        if detail:
            message += f" ({detail})"
        super().__init__(message)


def _search_one(request: dict, data, measure, counter):
    """Answer one normalized request against this worker's shard slice."""
    from repro.mining.queries import knn_search, range_search

    query = np.asarray(request["query"], dtype=np.float64)
    kind = request["kind"]
    common = {
        "mirror": bool(request.get("mirror", False)),
        "max_degrees": request.get("max_degrees"),
        "wedge_set_size": int(request.get("wedge_set_size", 8)),
        "counter": counter,
    }
    if kind == "knn":
        return knn_search(data, query, measure, k=int(request["k"]), **common)
    if kind == "range":
        return range_search(data, query, measure, radius=float(request["radius"]), **common)
    raise ValueError(f"unknown request kind {kind!r}")


def worker_main(shard_id: int, archive_path: str, offset: int, conn, measure_spec: dict) -> None:
    """Child-process entry point: open the shard, answer until shutdown/EOF."""
    from repro.core.counters import StepCounter
    from repro.core.search import SearchResult
    from repro.obs.metrics import MetricsRegistry, record_query
    from repro.persistence import load_index
    from repro.service.protocol import measure_from_spec

    index = load_index(Path(archive_path), mmap=True)
    data = index.store.peek_all()
    measure = measure_from_spec(measure_spec)
    registry = MetricsRegistry()
    requests_total = registry.counter(
        "service_worker_requests_total", "Requests answered by this shard worker"
    )
    while True:
        try:
            raw = conn.recv_bytes()
        except (EOFError, OSError):
            break  # coordinator went away; nothing left to serve
        message = decode_payload(raw)
        op = message.get("op")
        if op == "shutdown":
            conn.send_bytes(encode_payload({"ok": True}))
            break
        if op == "ping":
            conn.send_bytes(
                encode_payload(
                    {
                        "ok": True,
                        "shard": shard_id,
                        "objects": int(data.shape[0]),
                        "offset": offset,
                        "backend": measure.backend_name,
                    }
                )
            )
            continue
        if op == "metrics":
            conn.send_bytes(
                encode_payload({"ok": True, "shard": shard_id, "metrics": registry.to_dict()})
            )
            continue
        if op == "search":
            results = []
            for request in message.get("requests", []):
                counter = StepCounter()
                start = time.perf_counter()
                neighbors = _search_one(request, data, measure, counter)
                wall = time.perf_counter() - start
                kind = request["kind"]
                requests_total.inc(1, shard=str(shard_id), kind=kind)
                top = neighbors[0] if neighbors else None
                record_query(
                    SearchResult(
                        top.index if top else -1,
                        top.distance if top else math.inf,
                        top.rotation if top else -1,
                        counter,
                        f"service-{kind}",
                    ),
                    measure.name,
                    wall,
                    registry=registry,
                )
                results.append(
                    {
                        # Local index -> global index via the shard offset.
                        "neighbors": [
                            [nb.index + offset, nb.distance, nb.rotation] for nb in neighbors
                        ],
                        "steps": counter.steps,
                    }
                )
            conn.send_bytes(encode_payload({"ok": True, "results": results}))
            continue
        conn.send_bytes(encode_payload({"ok": False, "error": f"unknown op {op!r}"}))


class ShardWorker:
    """Parent-side handle: spawns the process, speaks the pipe protocol."""

    def __init__(self, shard_id: int, archive_path, offset: int, measure_spec: dict, ctx=None):
        self.shard_id = shard_id
        self.archive_path = str(archive_path)
        self.offset = offset
        ctx = ctx if ctx is not None else multiprocessing.get_context()
        parent_conn, child_conn = ctx.Pipe()
        self.process = ctx.Process(
            target=worker_main,
            args=(shard_id, self.archive_path, offset, child_conn, measure_spec),
            name=f"repro-shard-{shard_id}",
            daemon=True,
        )
        self.process.start()
        child_conn.close()
        self._conn = parent_conn
        # One in-flight request per pipe: a metrics snapshot racing a
        # search chunk would interleave responses.
        self._lock = threading.Lock()

    def request(self, message: dict, timeout: float = 120.0) -> dict:
        """One request/response round-trip; raises :class:`WorkerDiedError`.

        Polls in short slices so a worker that dies mid-query is noticed
        within ~50 ms instead of hanging the coordinator until ``timeout``.
        """
        with self._lock:
            try:
                self._conn.send_bytes(encode_payload(message))
                deadline = time.monotonic() + timeout
                while not self._conn.poll(0.05):
                    if not self.process.is_alive() and not self._conn.poll(0):
                        raise WorkerDiedError(
                            self.shard_id, f"exit code {self.process.exitcode}"
                        )
                    if time.monotonic() > deadline:
                        raise TimeoutError(
                            f"shard worker {self.shard_id} gave no answer within {timeout}s"
                        )
                return decode_payload(self._conn.recv_bytes())
            except (BrokenPipeError, EOFError, OSError) as exc:
                raise WorkerDiedError(self.shard_id, str(exc)) from exc

    def stop(self, timeout: float = 5.0) -> None:
        """Best-effort graceful shutdown, then terminate."""
        if self.process.is_alive():
            try:
                self.request({"op": "shutdown"}, timeout=timeout)
            except (WorkerDiedError, TimeoutError):
                pass
        self.process.join(timeout)
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout)
        self._conn.close()
