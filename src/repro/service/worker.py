"""Shard worker process, its parent-side handle, and the supervisor.

One worker per shard: the child process opens its archive with
``load_index(mmap=True)`` exactly once at startup (the expensive part --
checksum verification and signature reconstruction -- is paid per process
lifetime, not per query), then loops answering request chunks from the
coordinator over a :class:`multiprocessing.Pipe`.  Messages are the wire
protocol's JSON bytes via ``send_bytes``/``recv_bytes`` -- never pickle --
so the worker boundary has the same data-only trust model as the archive
format.

Three layers live here:

* :func:`worker_main` -- the child-process loop.  Honors a per-chunk
  ``budget_seconds`` (stops computing once the coordinator's deadline is
  spent) and an optional :class:`~repro.service.faults.FaultPlan` so
  chaos tests can crash/delay/drop/corrupt it deterministically.
* :class:`ShardWorker` -- the parent-side pipe handle.  ``request`` polls
  child liveness (a worker that dies mid-query surfaces as
  :class:`WorkerDiedError` within ~50 ms, never a coordinator hang), and
  the process is **respawnable**: ``respawn()`` reaps whatever is left of
  the child and starts a fresh generation on a fresh pipe.
* :class:`SupervisedWorker` -- the self-healing state machine the
  coordinator actually talks to.  On a death it respawns the child with
  capped exponential backoff plus seeded jitter and replays the in-flight
  chunk exactly once; on a timeout it kills and respawns (a timed-out
  pipe is desynchronized -- a stale reply could pair with the next
  request); after :attr:`RestartPolicy.degrade_after` *consecutive*
  failures it marks the shard **degraded** and stops burning restarts
  (queries then raise :class:`ShardDegradedError`, which the coordinator
  turns into partial results or structured errors).  A background monitor
  may call :meth:`SupervisedWorker.check` to resurrect silently dead
  workers between requests.

Each worker keeps a private :class:`MetricsRegistry`; the ``metrics`` op
ships its ``to_dict()`` snapshot for the coordinator to fold via
``registry_from_dict`` + ``merge``.  The supervisor feeds restart /
degraded counters and a restart-latency histogram into the registry the
coordinator hands it.
"""

from __future__ import annotations

import math
import multiprocessing
import os
import random
import threading
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.service.faults import FaultPlan
from repro.service.protocol import ProtocolError, decode_payload, encode_payload

__all__ = [
    "RESTART_LATENCY_BUCKETS",
    "RestartPolicy",
    "ShardDegradedError",
    "ShardWorker",
    "SupervisedWorker",
    "WorkerDiedError",
    "worker_main",
]

#: Restart-latency histogram buckets (seconds from failure to live again,
#: including the backoff sleep and the archive re-open).
RESTART_LATENCY_BUCKETS = (0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.0, 5.0, 10.0)

#: Supervisor states surfaced by the ``health`` op.
STATE_LIVE = "live"
STATE_RESTARTING = "restarting"
STATE_DEGRADED = "degraded"
STATE_STOPPED = "stopped"


class WorkerDiedError(RuntimeError):
    """A shard worker process is gone (crashed, killed, or pipe broken)."""

    def __init__(self, shard_id: int, detail: str = ""):
        self.shard_id = shard_id
        message = f"shard worker {shard_id} died"
        if detail:
            message += f" ({detail})"
        super().__init__(message)


class ShardDegradedError(RuntimeError):
    """A shard exhausted its crash-loop budget; the supervisor gave up."""

    def __init__(self, shard_id: int, failures: int):
        self.shard_id = shard_id
        self.failures = failures
        super().__init__(
            f"shard {shard_id} is degraded after {failures} consecutive worker failures"
        )


def _search_one(request: dict, data, measure, counter, tracer=None, pruner=None, batch_leaves=True):
    """Answer one normalized request against this worker's shard slice."""
    from repro.mining.queries import knn_search, range_search
    from repro.obs.trace import NULL_TRACER

    query = np.asarray(request["query"], dtype=np.float64)
    kind = request["kind"]
    common = {
        "mirror": bool(request.get("mirror", False)),
        "max_degrees": request.get("max_degrees"),
        "wedge_set_size": int(request.get("wedge_set_size", 8)),
        "counter": counter,
        "tracer": tracer if tracer is not None else NULL_TRACER,
        "pruner": pruner,
        "batch_leaves": batch_leaves,
    }
    if kind == "knn":
        return knn_search(data, query, measure, k=int(request["k"]), **common)
    if kind == "range":
        return range_search(data, query, measure, radius=float(request["radius"]), **common)
    raise ValueError(f"unknown request kind {kind!r}")


def _apply_terminal_fault(rule, conn) -> None:
    """Carry out a crash/drop/corrupt rule.  Never returns normally."""
    if rule.kind == "crash":
        os._exit(13)
    if rule.kind == "drop":
        # Close our end of the pipe: the parent sees EOF while the process
        # is still winding down -- the half-open failure mode.
        conn.close()
        os._exit(14)
    if rule.kind == "corrupt":
        # An answer the parent cannot decode; the stream is untrustworthy
        # afterwards, so exit like a real corrupting worker would be killed.
        conn.send_bytes(b"\xff\xfe not json \x00")
        os._exit(15)
    raise AssertionError(f"not a terminal fault kind: {rule.kind!r}")


def worker_main(
    shard_id: int,
    archive_path: str,
    offset: int,
    conn,
    measure_spec: dict,
    fault_spec: dict | None = None,
) -> None:
    """Child-process entry point: open the shard, answer until shutdown/EOF."""
    from repro.core.cascade import empty_tier_stats
    from repro.core.counters import StepCounter
    from repro.core.search import SearchResult
    from repro.obs.metrics import MetricsRegistry, record_query
    from repro.obs.trace import NULL_TRACER, Tracer
    from repro.persistence import load_index
    from repro.service.protocol import measure_from_spec

    index = load_index(Path(archive_path), mmap=True)
    data = index.store.peek_all()
    measure = measure_from_spec(measure_spec)
    registry = MetricsRegistry()
    requests_total = registry.counter(
        "service_worker_requests_total", "Requests answered by this shard worker"
    )
    injector = (
        FaultPlan.from_dict(fault_spec).injector(shard_id) if fault_spec else None
    )
    while True:
        try:
            raw = conn.recv_bytes()
        except (EOFError, OSError):
            break  # coordinator went away; nothing left to serve
        message = decode_payload(raw)
        op = message.get("op")
        if op == "shutdown":
            conn.send_bytes(encode_payload({"ok": True}))
            break
        if op == "ping":
            conn.send_bytes(
                encode_payload(
                    {
                        "ok": True,
                        "shard": shard_id,
                        "objects": int(data.shape[0]),
                        "offset": offset,
                        "backend": measure.backend_name,
                    }
                )
            )
            continue
        if op == "metrics":
            conn.send_bytes(
                encode_payload({"ok": True, "shard": shard_id, "metrics": registry.to_dict()})
            )
            continue
        if op == "search":
            budget = message.get("budget_seconds")
            # The coordinator resolves the query plan once per micro-batch
            # and ships it in the chunk (the same propagation rule as the
            # kernel backend): workers never re-plan on their own, so every
            # shard runs the identical cascade.  One CascadePolicy serves
            # the whole chunk and is reset() between requests so each
            # query's tier funnel rides home independently.
            plan_spec = message.get("plan")
            pruner = None
            plan_name = None
            batch_leaves = True
            if plan_spec:
                from repro.core.cascade import CascadePolicy
                from repro.core.planner import QueryPlan

                plan = QueryPlan.from_dict(plan_spec)
                plan_name = plan.name
                batch_leaves = plan.batch_leaves
                pruner = CascadePolicy(measure, tiers=plan.tiers)
            # Adopt the coordinator's trace context when one was shipped
            # in the chunk; the subtree rides home in the reply as plain
            # data for the coordinator to stitch (see server._fan_out).
            trace_ctx = message.get("trace")
            if trace_ctx:
                tracer = Tracer(
                    max_spans=int(trace_ctx.get("max_spans", 4096)),
                    trace_id=trace_ctx.get("trace_id"),
                    parent_id=trace_ctx.get("parent_id"),
                )
            else:
                tracer = NULL_TRACER
            chunk_span = tracer.span(
                "worker.chunk", shard=shard_id, requests=len(message.get("requests", []))
            )
            chunk_start = time.perf_counter()
            results = []
            aborted: str | None = None
            for done, request in enumerate(message.get("requests", [])):
                if budget is not None and time.perf_counter() - chunk_start > budget:
                    aborted = (
                        f"budget of {budget:g}s exhausted after "
                        f"{done}/{len(message['requests'])} requests"
                    )
                    break
                if injector is not None:
                    delays, terminal = injector.draw("search")
                    for delay in delays:
                        time.sleep(delay.delay_ms / 1000.0)
                    if terminal is not None:
                        _apply_terminal_fault(terminal, conn)
                counter = StepCounter()
                kind = request["kind"]
                if pruner is not None:
                    pruner.reset()  # independent per-query funnel
                with tracer.span("worker.query", kind=kind) as query_span:
                    start = time.perf_counter()
                    neighbors = _search_one(
                        request,
                        data,
                        measure,
                        counter,
                        tracer if trace_ctx else None,
                        pruner=pruner,
                        batch_leaves=batch_leaves,
                    )
                    wall = time.perf_counter() - start
                    query_span.set(steps=counter.steps)
                    if plan_name is not None:
                        query_span.set(plan=plan_name)
                requests_total.inc(1, shard=str(shard_id), kind=kind)
                tier_stats = pruner.stats() if pruner is not None else None
                top = neighbors[0] if neighbors else None
                record_query(
                    SearchResult(
                        top.index if top else -1,
                        top.distance if top else math.inf,
                        top.rotation if top else -1,
                        counter,
                        f"service-{kind}",
                        tier_stats=tier_stats or empty_tier_stats(),
                        plan=plan_name,
                    ),
                    measure.name,
                    wall,
                    registry=registry,
                )
                entry = {
                    # Local index -> global index via the shard offset.
                    "neighbors": [
                        [nb.index + offset, nb.distance, nb.rotation] for nb in neighbors
                    ],
                    "steps": counter.steps,
                }
                if tier_stats is not None:
                    # Per-query funnel rides home so the coordinator can
                    # feed the planner's cost model (cache hits excluded
                    # coordinator-side).
                    entry["tier_stats"] = tier_stats
                results.append(entry)
            chunk_span.__exit__(None, None, None)
            reply: dict
            if aborted is not None:
                reply = {
                    "ok": False,
                    "error": aborted,
                    "error_type": "deadline-exceeded",
                    "shard": shard_id,
                }
            else:
                reply = {"ok": True, "results": results}
            if trace_ctx and tracer.roots:
                reply["trace"] = tracer.roots[0].to_dict()
                reply["dropped_spans"] = tracer.dropped
            conn.send_bytes(encode_payload(reply))
            continue
        conn.send_bytes(encode_payload({"ok": False, "error": f"unknown op {op!r}"}))


class ShardWorker:
    """Parent-side handle: spawns the process, speaks the pipe protocol.

    The handle outlives any single child process: ``respawn()`` reaps the
    current child (if anything is left of it) and starts a fresh one on a
    fresh pipe, bumping :attr:`generation` so concurrent failure handlers
    can tell whether somebody else already replaced the corpse.
    """

    def __init__(
        self,
        shard_id: int,
        archive_path,
        offset: int,
        measure_spec: dict,
        ctx=None,
        fault_spec: dict | None = None,
    ):
        self.shard_id = shard_id
        self.archive_path = str(archive_path)
        self.offset = offset
        self.measure_spec = measure_spec
        self.fault_spec = fault_spec
        self._ctx = ctx if ctx is not None else multiprocessing.get_context()
        self.generation = 0
        self.process = None
        self._conn = None
        # One in-flight request per pipe: a metrics snapshot racing a
        # search chunk would interleave responses.  Held for the duration
        # of ``request``, so ``respawn`` (which also takes it) can never
        # swap the pipe out from under an in-flight round-trip.
        self._lock = threading.Lock()
        with self._lock:
            self._spawn()

    def _spawn(self) -> None:
        parent_conn, child_conn = self._ctx.Pipe()
        self.generation += 1
        self.process = self._ctx.Process(
            target=worker_main,
            args=(self.shard_id, self.archive_path, self.offset, child_conn, self.measure_spec),
            kwargs={"fault_spec": self.fault_spec},
            name=f"repro-shard-{self.shard_id}-gen{self.generation}",
            daemon=True,
        )
        self.process.start()
        child_conn.close()
        self._conn = parent_conn

    def _teardown(self) -> None:
        if self._conn is not None:
            try:
                self._conn.close()
            except OSError:
                pass
            self._conn = None
        if self.process is not None:
            if self.process.is_alive():
                self.process.kill()
            self.process.join(5)

    def respawn(self) -> None:
        """Reap whatever is left of the child and start a fresh generation."""
        with self._lock:
            self._teardown()
            self._spawn()

    def ensure_dead(self) -> None:
        """Reap the child without starting a replacement (degraded shards)."""
        with self._lock:
            self._teardown()

    def request(self, message: dict, timeout: float = 120.0) -> dict:
        """One request/response round-trip; raises :class:`WorkerDiedError`.

        Polls in short slices so a worker that dies mid-query is noticed
        within ~50 ms instead of hanging the coordinator until ``timeout``.
        A frame that fails to decode (a corrupting worker) is treated as a
        death: the stream can no longer be trusted to frame correctly.
        """
        with self._lock:
            if self._conn is None:
                raise WorkerDiedError(self.shard_id, "no live process")
            try:
                self._conn.send_bytes(encode_payload(message))
                deadline = time.monotonic() + timeout
                while not self._conn.poll(0.05):
                    if not self.process.is_alive() and not self._conn.poll(0):
                        raise WorkerDiedError(
                            self.shard_id, f"exit code {self.process.exitcode}"
                        )
                    if time.monotonic() > deadline:
                        raise TimeoutError(
                            f"shard worker {self.shard_id} gave no answer within {timeout}s"
                        )
                return decode_payload(self._conn.recv_bytes())
            except TimeoutError:
                # Not a death -- and TimeoutError subclasses OSError, so it
                # must be re-raised before the broken-pipe arm below.
                raise
            except (BrokenPipeError, EOFError, OSError) as exc:
                raise WorkerDiedError(self.shard_id, str(exc)) from exc
            except ProtocolError as exc:
                raise WorkerDiedError(self.shard_id, f"corrupt frame: {exc}") from exc

    def stop(self, timeout: float = 5.0) -> None:
        """Best-effort graceful shutdown, then terminate."""
        if self.process is not None and self.process.is_alive():
            try:
                self.request({"op": "shutdown"}, timeout=timeout)
            except (WorkerDiedError, TimeoutError):
                pass
        if self.process is not None:
            self.process.join(timeout)
            if self.process.is_alive():
                self.process.terminate()
                self.process.join(timeout)
        if self._conn is not None:
            try:
                self._conn.close()
            except OSError:
                pass
            self._conn = None


@dataclass(frozen=True)
class RestartPolicy:
    """How a :class:`SupervisedWorker` heals: backoff, jitter, give-up.

    ``degrade_after`` counts *consecutive* failures (deaths or timeouts)
    with no successful reply in between; any success resets the count, so
    a worker that crashes every few hundred queries restarts forever while
    a worker that cannot answer at all stops consuming restarts quickly.
    """

    degrade_after: int = 3
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_cap: float = 2.0
    jitter: float = 0.25
    seed: int | None = None

    def delay(self, failure_count: int, rng: random.Random) -> float:
        """Backoff before the ``failure_count``-th respawn, jittered."""
        delay = min(
            self.backoff_cap,
            self.backoff_base * self.backoff_factor ** max(0, failure_count - 1),
        )
        if self.jitter:
            delay *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return max(0.0, delay)


class SupervisedWorker:
    """Self-healing wrapper around :class:`ShardWorker`.

    State machine: ``live`` -> (failure) -> ``restarting`` -> ``live``,
    or -> ``degraded`` once :attr:`RestartPolicy.degrade_after`
    consecutive failures accumulate.  Deaths trigger respawn + one replay
    of the in-flight chunk (queries are pure reads, so replay is safe);
    timeouts trigger kill + respawn but surface the :class:`TimeoutError`
    to the coordinator, which owns the retry budget.
    """

    def __init__(
        self,
        shard_id: int,
        archive_path,
        offset: int,
        measure_spec: dict,
        *,
        policy: RestartPolicy | None = None,
        registry=None,
        ctx=None,
        fault_plan: FaultPlan | None = None,
        sleep=time.sleep,
    ):
        self.policy = policy if policy is not None else RestartPolicy()
        self.shard_id = shard_id
        self.offset = offset
        seed = self.policy.seed
        self._rng = random.Random(None if seed is None else f"{seed}:{shard_id}")
        self._sleep = sleep
        self._lifecycle = threading.Lock()
        self.state = STATE_LIVE
        self.restarts = 0
        self.consecutive_failures = 0
        self.last_failure: str | None = None
        if registry is not None:
            self._restarts_total = registry.counter(
                "service_worker_restarts_total", "Shard workers respawned by the supervisor"
            )
            self._restart_seconds = registry.histogram(
                "service_worker_restart_seconds",
                "Seconds from observed worker failure to a live replacement",
                buckets=RESTART_LATENCY_BUCKETS,
            )
            self._degraded_total = registry.counter(
                "service_worker_degraded_total", "Shards marked degraded (crash-loop budget spent)"
            )
        else:
            self._restarts_total = self._restart_seconds = self._degraded_total = None
        self.worker = ShardWorker(
            shard_id,
            archive_path,
            offset,
            measure_spec,
            ctx=ctx,
            fault_spec=fault_plan.to_dict() if fault_plan is not None else None,
        )

    # -- request path --------------------------------------------------

    def request(self, message: dict, timeout: float = 120.0, attempt_log: list | None = None) -> dict:
        """Round-trip with self-healing; see the class docstring.

        ``attempt_log``, when given, collects one dict per pipe
        round-trip -- ``{"phase": "attempt"|"replay", "start", "end",
        "outcome", "error"}`` on the caller's ``perf_counter`` clock --
        so the coordinator can materialize failed-attempt and replay
        spans in the stitched trace after the fact.
        """

        def timed(phase: str) -> dict:
            start = time.perf_counter()
            try:
                reply = self.worker.request(message, timeout)
            except Exception as exc:
                if attempt_log is not None:
                    if isinstance(exc, WorkerDiedError):
                        outcome = "died"
                    elif isinstance(exc, TimeoutError):
                        outcome = "timeout"
                    else:
                        outcome = type(exc).__name__
                    attempt_log.append(
                        {
                            "phase": phase,
                            "start": start,
                            "end": time.perf_counter(),
                            "outcome": outcome,
                            "error": str(exc),
                        }
                    )
                raise
            if attempt_log is not None:
                attempt_log.append(
                    {
                        "phase": phase,
                        "start": start,
                        "end": time.perf_counter(),
                        "outcome": "ok",
                        "error": None,
                    }
                )
            return reply

        if self.state == STATE_DEGRADED:
            raise ShardDegradedError(self.shard_id, self.consecutive_failures)
        generation = self.worker.generation
        try:
            reply = timed("attempt")
        except WorkerDiedError as exc:
            if not self._revive(generation, str(exc)):
                raise ShardDegradedError(self.shard_id, self.consecutive_failures) from exc
            # Replay the in-flight chunk exactly once on the fresh process.
            generation = self.worker.generation
            try:
                reply = timed("replay")
            except WorkerDiedError as exc2:
                self._revive(generation, str(exc2))
                raise
            except TimeoutError:
                self._revive(self.worker.generation, "timeout during replay")
                raise
        except TimeoutError:
            # The pipe is desynchronized (a stale reply may surface later);
            # the only safe recovery is a fresh process.  The coordinator
            # owns the retry, so surface the timeout after healing.
            self._revive(generation, f"no answer within {timeout:g}s")
            raise
        self._note_success()
        return reply

    def _note_success(self) -> None:
        with self._lifecycle:
            if self.state != STATE_DEGRADED:
                self.consecutive_failures = 0
                self.state = STATE_LIVE

    def _revive(self, generation: int, reason: str) -> bool:
        """Handle one observed failure; ``False`` once the shard degrades."""
        with self._lifecycle:
            if self.state in (STATE_DEGRADED, STATE_STOPPED):
                return False
            if self.worker.generation != generation:
                # Another thread already replaced this corpse.
                return self.state == STATE_LIVE
            self.consecutive_failures += 1
            self.last_failure = reason
            if self.consecutive_failures >= self.policy.degrade_after:
                self.state = STATE_DEGRADED
                self.worker.ensure_dead()
                if self._degraded_total is not None:
                    self._degraded_total.inc(1, shard=str(self.shard_id))
                return False
            self.state = STATE_RESTARTING
            started = time.perf_counter()
            self._sleep(self.policy.delay(self.consecutive_failures, self._rng))
            self.worker.respawn()
            elapsed = time.perf_counter() - started
            self.restarts += 1
            self.state = STATE_LIVE
            if self._restarts_total is not None:
                self._restarts_total.inc(1, shard=str(self.shard_id))
                self._restart_seconds.observe(elapsed)
            return True

    # -- monitoring ----------------------------------------------------

    def check(self) -> bool:
        """Proactive liveness poll: respawn a silently dead worker.

        Returns ``True`` when the shard is currently usable.  Called by
        the coordinator's monitor loop so a SIGKILLed worker comes back
        even if no query touches its shard in the meantime.
        """
        if self.state != STATE_LIVE:
            return False
        process = self.worker.process
        if process is None or process.is_alive():
            return self.state == STATE_LIVE
        return self._revive(
            self.worker.generation, f"found dead by monitor (exit code {process.exitcode})"
        )

    def describe(self) -> dict:
        """JSON-ready shard health: state, restarts, pid, liveness."""
        process = self.worker.process
        return {
            "shard": self.shard_id,
            "state": self.state,
            "restarts": self.restarts,
            "consecutive_failures": self.consecutive_failures,
            "last_failure": self.last_failure,
            "pid": process.pid if process is not None else None,
            "alive": bool(process is not None and process.is_alive()),
            "generation": self.worker.generation,
        }

    def stop(self, timeout: float = 5.0) -> None:
        with self._lifecycle:
            self.state = STATE_STOPPED
        self.worker.stop(timeout)
