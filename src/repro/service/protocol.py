"""Wire protocol for the sharded query service.

One encoding everywhere: UTF-8 JSON documents.  Over TCP they travel as
**length-prefixed frames** -- a 4-byte big-endian unsigned length followed
by the JSON body -- so a reader never has to guess message boundaries.
Over the coordinator->worker pipes the same JSON bytes travel via
``Connection.send_bytes`` (the pipe frames messages itself), keeping the
whole service pickle-free: a worker can only ever receive data, never
code, matching the persistence layer's trust model.

JSON is sufficient for exactness: Python serializes floats with ``repr``
(shortest round-trip), so a query series survives client -> coordinator ->
worker bit-identically, and distances survive the way back.

Measures cross process boundaries as **specs** -- small dicts naming the
measure and its parameters plus the parent-resolved kernel backend
(mirroring ``search_many``'s resolve-once-then-ship rule, so every worker
uses the same backend the coordinator logged).

Protocol version 2 (backwards compatible with 1) adds the resilience
surface: ``knn``/``range`` requests accept ``timeout_ms`` (per-request
deadline, propagated to the coordinator budget and per-worker slices) and
``allow_partial`` (opt in to an exact merge over surviving shards with a
``missing_shards`` list when a shard stays unreachable); a new ``health``
op reports per-shard supervisor state (live/restarting/degraded),
restart/retry/deadline counters, and pids.  Errors are always structured
-- :func:`error_response` is the one shape every layer emits.
"""

from __future__ import annotations

import asyncio
import json
import socket
import struct

__all__ = [
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "decode_payload",
    "encode_payload",
    "error_response",
    "measure_from_spec",
    "measure_to_spec",
    "read_frame",
    "recv_frame",
    "send_frame",
    "write_frame",
]

#: Version stamped into ping/health responses; bump on incompatible
#: changes.  2 = deadlines (``timeout_ms``), partial results
#: (``allow_partial`` / ``missing_shards``), and the ``health`` op.
PROTOCOL_VERSION = 2

#: Upper bound on one frame, coordinator- and client-side.  Generous for
#: query payloads (a length-1024 float64 series is ~20 KB of JSON) while
#: keeping a malformed or hostile length prefix from allocating gigabytes.
MAX_FRAME_BYTES = 64 * 1024 * 1024

_LENGTH = struct.Struct(">I")


class ProtocolError(RuntimeError):
    """A malformed frame, oversized length prefix, or bad message."""


def error_response(kind: str, message: str, **extra) -> dict:
    """The structured error shape every service layer returns.

    ``kind`` is machine-matchable (``bad-request``, ``worker-died``,
    ``worker-timeout``, ``deadline-exceeded``, ``shard-degraded``, ...);
    ``extra`` carries context such as ``shard`` or ``missing_shards``.
    """
    return {"ok": False, "error": {"type": kind, "message": message, **extra}}


def encode_payload(message: dict) -> bytes:
    """One message as compact UTF-8 JSON bytes (no length prefix)."""
    return json.dumps(message, separators=(",", ":")).encode("utf-8")


def decode_payload(data: bytes) -> dict:
    """Inverse of :func:`encode_payload`; raises :class:`ProtocolError`."""
    try:
        message = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable message: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError(f"message must be a JSON object, got {type(message).__name__}")
    return message


def _check_length(length: int) -> None:
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {length} bytes exceeds cap {MAX_FRAME_BYTES}")


async def read_frame(reader: asyncio.StreamReader) -> dict | None:
    """Read one length-prefixed frame; ``None`` on clean EOF."""
    try:
        prefix = await reader.readexactly(_LENGTH.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("connection closed mid-prefix") from exc
    (length,) = _LENGTH.unpack(prefix)
    _check_length(length)
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError("connection closed mid-frame") from exc
    return decode_payload(body)


async def write_frame(writer: asyncio.StreamWriter, message: dict) -> None:
    """Write one length-prefixed frame and drain."""
    body = encode_payload(message)
    writer.write(_LENGTH.pack(len(body)) + body)
    await writer.drain()


def send_frame(sock: socket.socket, message: dict) -> None:
    """Blocking-socket counterpart of :func:`write_frame`."""
    body = encode_payload(message)
    sock.sendall(_LENGTH.pack(len(body)) + body)


def _recv_exactly(sock: socket.socket, n: int) -> bytes:
    chunks: list[bytes] = []
    remaining = n
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            raise ProtocolError(f"connection closed with {remaining} bytes outstanding")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> dict:
    """Blocking-socket counterpart of :func:`read_frame` (EOF is an error)."""
    (length,) = _LENGTH.unpack(_recv_exactly(sock, _LENGTH.size))
    _check_length(length)
    return decode_payload(_recv_exactly(sock, length))


def measure_to_spec(measure) -> dict:
    """Describe ``measure`` as a JSON-ready spec a worker can rebuild.

    The kernel backend is resolved *here*, in the parent, and shipped by
    name -- workers must never re-run the auto-selection chain, or a
    heterogeneous environment could silently mix backends within one
    service (they are bit-identical, but provenance would lie).
    """
    spec: dict = {"name": measure.name}
    if measure.name == "dtw":
        spec["radius"] = measure.radius
    elif measure.name == "lcss":
        spec["delta"] = measure.delta
        spec["epsilon"] = measure.epsilon
    elif measure.name != "euclidean":
        raise ProtocolError(f"cannot serialize measure {measure.name!r}")
    if measure.uses_kernel_backends:
        spec["backend"] = measure.backend_name
    return spec


def measure_from_spec(spec: dict):
    """Rebuild a measure from :func:`measure_to_spec` output."""
    name = spec.get("name")
    backend = spec.get("backend")
    if name == "euclidean":
        from repro.distances.euclidean import EuclideanMeasure

        return EuclideanMeasure()
    if name == "dtw":
        from repro.distances.dtw import DTWMeasure

        return DTWMeasure(radius=int(spec["radius"]), backend=backend)
    if name == "lcss":
        from repro.distances.lcss import LCSSMeasure

        return LCSSMeasure(
            delta=int(spec["delta"]), epsilon=float(spec["epsilon"]), backend=backend
        )
    raise ProtocolError(f"unknown measure spec {spec!r}")
