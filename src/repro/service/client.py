"""Blocking TCP client for the sharded query service.

Speaks the length-prefixed JSON frame protocol over one persistent
connection; requests are strictly sequential per client instance, so
concurrency tests and benchmarks open one client per simulated user --
exactly how a connection-pooled caller would behave.

Resilience: the connection is **lazy and self-healing**.  A request that
hits a dead connection (server restarted, connection reset, broken pipe)
reconnects with capped exponential backoff and retries -- but only when
the failure happened *before any response bytes arrived*, so a retried
request can never be a duplicate of one the server half-answered.
Queries are pure reads, so even that stronger property is belt-and-
braces; the guard exists for the ``shutdown`` op and future mutating
verbs.  Protocol-level resilience knobs ride each request: ``timeout_ms``
(per-request deadline enforced by the coordinator) and ``allow_partial``
(accept an exact merge over surviving shards when some are down).
"""

from __future__ import annotations

import socket
import time

import numpy as np

from repro.service.protocol import ProtocolError, recv_frame, send_frame

__all__ = ["ServiceClient"]

#: Exceptions that mean "the connection is gone; a fresh one may work".
_RETRYABLE = (
    ConnectionResetError,
    ConnectionRefusedError,
    ConnectionAbortedError,
    BrokenPipeError,
)

#: What :func:`repro.service.protocol.recv_frame` raises on a clean EOF
#: in place of a reply: all 4 length-prefix bytes still outstanding.
_CLEAN_EOF_MESSAGE = "connection closed with 4 bytes outstanding"


class ServiceClient:
    """One connection to a running service; usable as a context manager."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 7043,
        timeout: float = 120.0,
        *,
        reconnect_attempts: int = 5,
        reconnect_backoff: float = 0.05,
        reconnect_cap: float = 2.0,
    ):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.reconnect_attempts = max(0, int(reconnect_attempts))
        self.reconnect_backoff = reconnect_backoff
        self.reconnect_cap = reconnect_cap
        self._sock: socket.socket | None = None
        # Fail fast on a wrong address: the first connection is eager.
        self._connect()

    def _connect(self) -> None:
        self.close()
        self._sock = socket.create_connection((self.host, self.port), timeout=self.timeout)

    def _reconnect_with_backoff(self) -> None:
        """Re-establish the connection; raises the last error when spent."""
        delay = self.reconnect_backoff
        last: Exception | None = None
        for _ in range(self.reconnect_attempts):
            try:
                self._connect()
                return
            except OSError as exc:
                last = exc
                time.sleep(delay)
                delay = min(self.reconnect_cap, delay * 2)
        raise ConnectionError(
            f"could not reconnect to {self.host}:{self.port} "
            f"after {self.reconnect_attempts} attempts"
        ) from last

    def request(self, message: dict) -> dict:
        """One raw request/response round-trip, reconnecting if needed.

        Retries (send + receive) only when the failure arrived before any
        response bytes -- a send-side error or a clean EOF in place of the
        reply.  A connection dying mid-reply raises, because the server
        may already have acted on the request.
        """
        for attempt in range(self.reconnect_attempts + 1):
            if self._sock is None:
                self._reconnect_with_backoff()
            try:
                send_frame(self._sock, message)
            except OSError as exc:
                # Nothing of the reply existed yet: always safe to retry.
                self._sock = None
                if attempt >= self.reconnect_attempts:
                    raise ConnectionError(f"send failed and retries spent: {exc}") from exc
                continue
            try:
                return recv_frame(self._sock)
            except _RETRYABLE as exc:
                self._sock = None
                if attempt >= self.reconnect_attempts:
                    raise
                continue
            except ProtocolError as exc:
                # A clean EOF before any reply bytes (server shut down
                # between our send and its reply) is retryable; a torn
                # frame is not -- the server may have half-acted.
                self._sock = None
                if str(exc) == _CLEAN_EOF_MESSAGE and attempt < self.reconnect_attempts:
                    continue
                raise
        raise AssertionError("unreachable")

    @staticmethod
    def _query_list(query) -> list[float]:
        return [float(x) for x in np.asarray(query, dtype=np.float64).ravel()]

    def knn(
        self,
        query,
        k: int = 1,
        *,
        mirror: bool = False,
        max_degrees: float | None = None,
        no_cache: bool = False,
        timeout_ms: float | None = None,
        allow_partial: bool = False,
    ) -> dict:
        """Global k-NN over every shard; exact, canonical tie-break."""
        message = {
            "op": "knn",
            "query": self._query_list(query),
            "k": k,
            "mirror": mirror,
            "max_degrees": max_degrees,
            "no_cache": no_cache,
        }
        if timeout_ms is not None:
            message["timeout_ms"] = timeout_ms
        if allow_partial:
            message["allow_partial"] = True
        return self.request(message)

    def range_query(
        self,
        query,
        radius: float,
        *,
        mirror: bool = False,
        max_degrees: float | None = None,
        no_cache: bool = False,
        timeout_ms: float | None = None,
        allow_partial: bool = False,
    ) -> dict:
        """Global range search; results ordered by global database position."""
        message = {
            "op": "range",
            "query": self._query_list(query),
            "radius": radius,
            "mirror": mirror,
            "max_degrees": max_degrees,
            "no_cache": no_cache,
        }
        if timeout_ms is not None:
            message["timeout_ms"] = timeout_ms
        if allow_partial:
            message["allow_partial"] = True
        return self.request(message)

    def ping(self) -> dict:
        return self.request({"op": "ping"})

    def health(self) -> dict:
        """Per-shard supervisor state and resilience counters."""
        return self.request({"op": "health"})

    def metrics(self) -> dict:
        return self.request({"op": "metrics"})

    def shutdown(self) -> dict:
        return self.request({"op": "shutdown"})

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
