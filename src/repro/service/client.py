"""Blocking TCP client for the sharded query service.

Speaks the length-prefixed JSON frame protocol over one persistent
connection; requests are strictly sequential per client instance, so
concurrency tests and benchmarks open one client per simulated user --
exactly how a connection-pooled caller would behave.
"""

from __future__ import annotations

import socket

import numpy as np

from repro.service.protocol import recv_frame, send_frame

__all__ = ["ServiceClient"]


class ServiceClient:
    """One connection to a running service; usable as a context manager."""

    def __init__(self, host: str = "127.0.0.1", port: int = 7043, timeout: float = 120.0):
        self._sock = socket.create_connection((host, port), timeout=timeout)

    def request(self, message: dict) -> dict:
        """One raw request/response round-trip."""
        send_frame(self._sock, message)
        return recv_frame(self._sock)

    @staticmethod
    def _query_list(query) -> list[float]:
        return [float(x) for x in np.asarray(query, dtype=np.float64).ravel()]

    def knn(
        self,
        query,
        k: int = 1,
        *,
        mirror: bool = False,
        max_degrees: float | None = None,
        no_cache: bool = False,
    ) -> dict:
        """Global k-NN over every shard; exact, canonical tie-break."""
        return self.request(
            {
                "op": "knn",
                "query": self._query_list(query),
                "k": k,
                "mirror": mirror,
                "max_degrees": max_degrees,
                "no_cache": no_cache,
            }
        )

    def range_query(
        self,
        query,
        radius: float,
        *,
        mirror: bool = False,
        max_degrees: float | None = None,
        no_cache: bool = False,
    ) -> dict:
        """Global range search; results ordered by global database position."""
        return self.request(
            {
                "op": "range",
                "query": self._query_list(query),
                "radius": radius,
                "mirror": mirror,
                "max_degrees": max_degrees,
                "no_cache": no_cache,
            }
        )

    def ping(self) -> dict:
        return self.request({"op": "ping"})

    def metrics(self) -> dict:
        return self.request({"op": "metrics"})

    def shutdown(self) -> dict:
        return self.request({"op": "shutdown"})

    def close(self) -> None:
        self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
