"""The live telemetry plane: trace ring buffer + HTTP exposition sidecar.

The coordinator's obs state (metrics registry, SLO windows, stitched
traces) is only useful if an operator can reach it without speaking the
binary query protocol.  :class:`TelemetryServer` is a stdlib
``http.server`` running on its own daemon thread next to ``repro serve``
(``--telemetry-port``), exposing:

* ``GET /metrics`` -- the merged coordinator+worker registries in
  Prometheus text format (same payload as the ``metrics`` op).
* ``GET /health`` -- the supervisor state machine per shard as JSON,
  including SLO burn alerts (same as the ``health`` op).
* ``GET /slo`` -- the sliding-window p50/p95/p99 / QPS / error-rate /
  cache-ratio stats per window, plus active alerts.
* ``GET /traces/recent`` -- the :class:`TraceBuffer`: the N most recent
  and M slowest stitched cross-process traces, with errors and
  deadline-exceeded traces always sampled into their own ring.

Read-only by construction: every handler snapshots existing state;
nothing here can mutate the query path, so answers stay bit-identical
whether the sidecar is running or not.
"""

from __future__ import annotations

import asyncio
import heapq
import json
import threading
from collections import deque
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

__all__ = ["TraceBuffer", "TelemetryServer", "format_dashboard"]

#: Content type carrying the Prometheus text exposition version.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class TraceBuffer:
    """Ring buffers of stitched traces: recent, slowest, and errors.

    Entries are plain dicts (``{"trace_id", "wall_seconds", "batch_size",
    "error", ..., "trace": <Tracer.to_dict()>}``).  Errors and
    deadline-exceeded batches are *always* sampled into their own ring so
    a flood of healthy traffic cannot evict the interesting failures.
    Thread-safe: the event loop appends, the HTTP sidecar reads.
    """

    def __init__(self, recent: int = 16, slowest: int = 16, errors: int = 16):
        self._lock = threading.Lock()
        self._recent: deque = deque(maxlen=max(1, recent))
        self._errors: deque = deque(maxlen=max(1, errors))
        self._slowest: list = []  # min-heap of (wall, seq, entry)
        self.max_slowest = max(1, slowest)
        self.traces_total = 0
        self.dropped_spans_total = 0
        self._seq = 0

    def add(self, entry: dict) -> None:
        with self._lock:
            self._seq += 1
            self.traces_total += 1
            self.dropped_spans_total += int(entry.get("dropped_spans", 0))
            self._recent.append(entry)
            if entry.get("error"):
                self._errors.append(entry)
            heapq.heappush(self._slowest, (float(entry.get("wall_seconds", 0.0)), self._seq, entry))
            if len(self._slowest) > self.max_slowest:
                heapq.heappop(self._slowest)

    def to_dict(self) -> dict:
        """JSON-ready snapshot; slowest ordered worst-first."""
        with self._lock:
            slowest = sorted(self._slowest, key=lambda item: (-item[0], -item[1]))
            return {
                "traces_total": self.traces_total,
                "dropped_spans_total": self.dropped_spans_total,
                "recent": list(self._recent),
                "slowest": [entry for _, _, entry in slowest],
                "errors": list(self._errors),
            }


def _make_handler(telemetry: "TelemetryServer"):
    class Handler(BaseHTTPRequestHandler):
        server_version = "repro-telemetry"

        def log_message(self, fmt, *args):  # quiet by default
            return

        def _send(self, status: int, body: bytes, content_type: str) -> None:
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def _send_json(self, payload: dict, status: int = 200) -> None:
            self._send(status, json.dumps(payload).encode("utf-8"), "application/json")

        def do_GET(self):  # noqa: N802 - http.server API
            path = self.path.split("?", 1)[0].rstrip("/") or "/"
            try:
                if path == "/metrics":
                    self._send(200, telemetry.prometheus_text().encode("utf-8"), PROMETHEUS_CONTENT_TYPE)
                elif path == "/health":
                    self._send_json(telemetry.service._health_response())
                elif path == "/slo":
                    self._send_json(telemetry.slo_payload())
                elif path == "/traces/recent":
                    self._send_json(telemetry.service.traces.to_dict())
                else:
                    self._send_json({"ok": False, "error": f"unknown path {path!r}"}, status=404)
            except BrokenPipeError:
                pass
            except Exception as exc:  # never kill the sidecar thread
                with _suppress_broken_pipe():
                    self._send_json({"ok": False, "error": repr(exc)}, status=500)

    return Handler


class _suppress_broken_pipe:
    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return exc_type is not None and issubclass(exc_type, (BrokenPipeError, OSError))


class TelemetryServer:
    """The HTTP sidecar thread serving one service's telemetry.

    ``loop`` is the service's event loop: ``/metrics`` needs the workers'
    registries, which only the coordinator may request, so the handler
    submits ``_metrics_response`` onto the loop and waits.  If the loop
    is unreachable (shutting down), it degrades to the coordinator-only
    registry rather than failing the scrape.
    """

    def __init__(self, service, loop, host: str = "127.0.0.1", port: int = 0):
        self.service = service
        self.loop = loop
        self.host = host
        self.httpd = ThreadingHTTPServer((host, port), _make_handler(self))
        self.httpd.daemon_threads = True
        self.port = self.httpd.server_address[1]
        self.thread = threading.Thread(
            target=self.httpd.serve_forever, name="repro-telemetry", daemon=True
        )
        self.thread.start()

    def prometheus_text(self) -> str:
        try:
            future = asyncio.run_coroutine_threadsafe(self.service._metrics_response(), self.loop)
            reply = future.result(10.0)
            return reply["prometheus"]
        except Exception:
            return self.service.registry.to_prometheus()

    def slo_payload(self) -> dict:
        snapshot = self.service.slo.snapshot()
        return {
            "ok": True,
            "windows": snapshot,
            "alerts": self.service.slo.alerts(snapshot),
        }

    def close(self) -> None:
        self.httpd.shutdown()
        self.httpd.server_close()
        self.thread.join(5)


def _fmt_window(name: str, stats: dict) -> str:
    return (
        f"{name:>4}  n={stats['count']:<6} qps={stats['qps']:7.1f}  "
        f"p50={stats['p50_ms']:8.2f}ms p95={stats['p95_ms']:8.2f}ms p99={stats['p99_ms']:8.2f}ms  "
        f"err={stats['error_rate'] * 100:5.1f}%  cache={stats['cache_hit_ratio'] * 100:5.1f}%"
    )


def format_dashboard(slo: dict, health: dict, traces: dict) -> str:
    """Render one ``repro top`` frame from the three telemetry payloads."""
    lines = ["repro service telemetry", "=" * 78, ""]
    status = health.get("status", "?")
    counters = health.get("counters", {})
    lines.append(
        f"status: {status}   restarts={health.get('restarts', 0)} "
        f"deaths={counters.get('worker_deaths', 0)} retries={counters.get('shard_retries', 0)} "
        f"deadline_exceeded={counters.get('deadline_exceeded', 0)} "
        f"partial={counters.get('partial_results', 0)}"
    )
    for shard in health.get("shards", ()):  # one line per shard
        lines.append(
            f"  shard {shard['shard']}: {shard['state']} pid={shard['pid']} "
            f"restarts={shard['restarts']} gen={shard['generation']}"
        )
    lines.append("")
    lines.append("sliding windows")
    for name in ("10s", "1m", "5m"):
        stats = slo.get("windows", {}).get(name)
        if stats is not None:
            lines.append("  " + _fmt_window(name, stats))
    alerts = slo.get("alerts", [])
    if alerts:
        lines.append("")
        lines.append("SLO BURN:")
        for alert in alerts:
            lines.append(
                f"  !! {alert['slo']} over {alert['window']}: "
                f"{alert['value']:.2f} > budget {alert['threshold']:.2f}"
            )
    events = slo.get("windows", {}).get("1m", {}).get("events", {})
    if events:
        lines.append("")
        lines.append("events (1m): " + "  ".join(f"{k}={v}" for k, v in sorted(events.items())))
    lines.append("")
    lines.append(
        f"traces: total={traces.get('traces_total', 0)} "
        f"dropped_spans={traces.get('dropped_spans_total', 0)}"
    )
    for entry in traces.get("slowest", ())[:5]:
        lines.append(
            f"  slow {entry.get('trace_id', '?')[:16]}  {entry.get('wall_seconds', 0.0) * 1e3:9.2f}ms  "
            f"batch={entry.get('batch_size', '?')}"
            + ("  ERROR" if entry.get("error") else "")
        )
    return "\n".join(lines)
