"""Hot-query LRU answer cache for the sharded service.

Real query streams are heavily skewed -- the same few shapes get looked up
again and again -- and an exact answer, once computed, stays exact for the
lifetime of an immutable shard set.  The coordinator therefore memoizes
whole answers keyed by

``(shard-manifest checksum, operation kind, K or radius, mirror,
max_degrees, measure.cache_key(), SHA-256 of the query's float64 bytes)``

The manifest checksum scopes every entry to the exact shard set it was
computed over: serve a different (or rebuilt) shard set and the key
changes, so stale answers are structurally impossible; ``invalidate``
evicts a retired data version explicitly and ``clear`` drops everything.

The kernel backend is **deliberately excluded** from the key: backends are
bit-identical (CI-enforced), so an answer computed under ``wavefront`` is
byte-for-byte the answer under ``numba``, and a backend switch must not
cold the cache.  Hits and misses are counted for the ``/metrics``
exposition; eviction is plain LRU under a size cap.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict

import numpy as np

__all__ = ["AnswerCache"]


class AnswerCache:
    """Thread-safe LRU map from query identity to a finished answer."""

    def __init__(self, capacity: int = 1024):
        if capacity < 1:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: OrderedDict[tuple, dict] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @staticmethod
    def make_key(kind: str, query, measure, *, scope: str | None = None, **params) -> tuple:
        """The cache identity of one request.

        ``params`` carries the operation knobs (``k`` or ``radius``,
        ``mirror``, ``max_degrees``); the query series is hashed from its
        canonical float64 byte representation so a list arriving over JSON
        and the ndarray it round-trips to share an identity.  ``scope``
        names the data the answer was computed over -- the coordinator
        passes the shard-manifest checksum, so answers from one shard set
        can never be served for another and :meth:`invalidate` can evict
        by data version.
        """
        series = np.ascontiguousarray(np.asarray(query, dtype=np.float64))
        digest = hashlib.sha256(series.tobytes()).hexdigest()
        return (
            scope,
            kind,
            tuple(sorted(params.items())),
            tuple(measure.cache_key()),
            series.shape,
            digest,
        )

    def get(self, key: tuple) -> dict | None:
        """The cached answer for ``key``, or ``None``; counts hit/miss."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry

    def put(self, key: tuple, answer: dict) -> None:
        """Insert (or refresh) ``key``, evicting the LRU entry if full."""
        with self._lock:
            self._entries[key] = answer
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def clear(self) -> int:
        """Drop every entry; returns how many were evicted.

        Hit/miss/eviction counters are monotone (Prometheus semantics)
        and survive a clear.
        """
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            self.evictions += dropped
            return dropped

    def invalidate(self, scope: str) -> int:
        """Drop every entry keyed to ``scope`` (a shard-manifest checksum).

        Returns the number of entries evicted.  After a shard set is
        rebuilt in place, invalidating the *old* checksum guarantees no
        answer computed over the old data outlives it.
        """
        with self._lock:
            stale = [key for key in self._entries if key[0] == scope]
            for key in stale:
                del self._entries[key]
            self.evictions += len(stale)
            return len(stale)

    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> dict:
        """Hit/miss/eviction counts and current size, JSON-ready."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "size": len(self._entries),
                "capacity": self.capacity,
            }

    def record_into(self, registry) -> None:
        """Export the current stats as metric families into ``registry``.

        Call on a *freshly built* snapshot registry (the coordinator
        assembles one per ``/metrics`` request): the cumulative counts are
        written with ``inc`` onto zero-valued counters, so the exposition
        shows true monotone totals.
        """
        stats = self.stats()
        registry.counter(
            "answer_cache_hits_total", "Service answers served from the LRU cache"
        ).inc(stats["hits"])
        registry.counter(
            "answer_cache_misses_total", "Service answers computed (cache miss)"
        ).inc(stats["misses"])
        registry.counter("answer_cache_evictions_total", "LRU evictions").inc(stats["evictions"])
        registry.gauge("answer_cache_entries", "Answers currently cached").set(stats["size"])
