"""The asyncio coordinator: micro-batching, fan-out, exact global merge.

Request lifecycle: a TCP frame lands in :meth:`ShardedSearchService.
handle_request`, which enqueues it; the dispatcher coroutine drains the
queue into a micro-batch (everything that arrives within ``batch_window``
seconds, capped at ``max_batch`` -- the service-side analogue of
``search_many``'s query chunks), resolves cache hits, computes each
distinct miss **once**, and fans the chunk out to every shard worker in
parallel.  Each worker returns its shard's canonical top-k (global
indices, exact distances); the coordinator folds them with
:func:`repro.core.search.merge_neighbors`, whose ``(distance, index)``
tie-break makes the merged answer bit-identical to a single-process
``knn_search`` over the concatenated data.

Failure model: a worker that dies mid-query produces a structured
``{"ok": false, "error": {"type": "worker-died", "shard": ...}}`` response
for every query in the affected batch -- the coordinator never hangs on a
dead pipe, and the error names the shard so an operator knows what to
restart.

Metrics: the coordinator keeps its own registry (request counts, batch
sizes, worker deaths) and answers the ``metrics`` op by pulling each
worker's snapshot, rebuilding it with ``registry_from_dict``, and folding
everything into one Prometheus exposition.
"""

from __future__ import annotations

import asyncio
import contextlib
import threading
import time
from concurrent.futures import ThreadPoolExecutor

from repro.obs.metrics import MetricsRegistry, registry_from_dict
from repro.service.cache import AnswerCache
from repro.service.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    measure_to_spec,
    read_frame,
    write_frame,
)
from repro.service.shard import load_manifest
from repro.service.worker import ShardWorker, WorkerDiedError

__all__ = ["ServiceHandle", "ShardedSearchService", "serve", "start_service_thread"]

#: Batch-size histogram buckets (requests per micro-batch).
BATCH_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)


def _error(kind: str, message: str, **extra) -> dict:
    return {"ok": False, "error": {"type": kind, "message": message, **extra}}


class ShardedSearchService:
    """Coordinator over one shard set: workers, cache, merge, metrics."""

    def __init__(
        self,
        shards_dir,
        measure,
        *,
        cache_size: int = 1024,
        batch_window: float = 0.002,
        max_batch: int = 64,
        request_timeout: float = 120.0,
        query_log=None,
    ):
        self.manifest = load_manifest(shards_dir)
        self.measure = measure
        self.measure_spec = measure_to_spec(measure)
        #: Resolved once here and shipped to every worker by name, so the
        #: whole service provably runs one backend (satellite: stamped
        #: into query-log records and benchmark provenance).
        self.backend = self.measure_spec.get("backend", measure.backend_name)
        self.batch_window = batch_window
        self.max_batch = max_batch
        self.request_timeout = request_timeout
        self.cache = AnswerCache(cache_size) if cache_size else None
        self.query_log = query_log
        self.registry = MetricsRegistry()
        self._requests_total = self.registry.counter(
            "service_requests_total", "Requests accepted by the front-end"
        )
        self._batch_sizes = self.registry.histogram(
            "service_batch_size", "Queries per micro-batch", buckets=BATCH_BUCKETS
        )
        self._worker_deaths = self.registry.counter(
            "service_worker_deaths_total", "Shard workers observed dead"
        )
        self.workers = [
            ShardWorker(
                info.shard_id,
                self.manifest.shard_path(info.shard_id),
                info.offset,
                self.measure_spec,
            )
            for info in self.manifest.shards
        ]
        # Two slots per worker: one for in-flight search chunks, one so a
        # metrics snapshot is never queued behind a long chunk.
        self._executor = ThreadPoolExecutor(
            max_workers=2 * len(self.workers), thread_name_prefix="repro-service"
        )
        self._queue: asyncio.Queue | None = None
        self._dispatcher: asyncio.Task | None = None
        self.shutdown_event: asyncio.Event | None = None
        self._query_seq = 0
        self._handler_tasks: set = set()
        self._client_writers: set = set()

    # -- lifecycle ----------------------------------------------------

    async def start(self) -> None:
        """Bind the dispatcher to the running loop (idempotent)."""
        if self._dispatcher is None:
            self._queue = asyncio.Queue()
            self.shutdown_event = asyncio.Event()
            self._dispatcher = asyncio.create_task(self._dispatch_loop())

    async def aclose(self) -> None:
        """Stop the dispatcher and every worker; fail leftover requests."""
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._dispatcher
            self._dispatcher = None
        if self._queue is not None:
            while not self._queue.empty():
                _, fut = self._queue.get_nowait()
                if not fut.done():
                    fut.set_result(_error("shutdown", "service is shutting down"))
        loop = asyncio.get_running_loop()
        await asyncio.gather(
            *(loop.run_in_executor(self._executor, worker.stop) for worker in self.workers),
            return_exceptions=True,
        )
        self._executor.shutdown(wait=True)

    # -- request entry ------------------------------------------------

    async def handle_request(self, message: dict) -> dict:
        """Answer one decoded request message (any op)."""
        op = message.get("op")
        self._requests_total.inc(1, op=str(op))
        if op == "ping":
            return {
                "ok": True,
                "server": "repro-service",
                "protocol": PROTOCOL_VERSION,
                "shards": self.manifest.n_shards,
                "objects": self.manifest.objects,
                "length": self.manifest.length,
                "measure": self.measure.name,
                "backend": self.backend,
                "cache": self.cache is not None,
            }
        if op == "metrics":
            return await self._metrics_response()
        if op == "shutdown":
            if self.shutdown_event is not None:
                self.shutdown_event.set()
            return {"ok": True, "message": "shutting down"}
        if op in ("knn", "range"):
            if self._queue is None:
                return _error("not-started", "service dispatcher is not running")
            fut = asyncio.get_running_loop().create_future()
            await self._queue.put((message, fut))
            return await fut
        return _error("bad-request", f"unknown op {op!r}")

    # -- dispatcher ---------------------------------------------------

    async def _dispatch_loop(self) -> None:
        while True:
            batch = [await self._queue.get()]
            if self.batch_window > 0:
                # Let concurrently arriving requests join this batch.
                await asyncio.sleep(self.batch_window)
            while len(batch) < self.max_batch:
                try:
                    batch.append(self._queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            try:
                await self._run_batch(batch)
            except Exception as exc:  # pragma: no cover - defensive
                for _, fut in batch:
                    if not fut.done():
                        fut.set_result(_error("internal", repr(exc)))

    def _normalize(self, message: dict) -> dict:
        kind = message["op"]
        query = message.get("query")
        if not isinstance(query, list) or not query:
            raise ValueError("query must be a non-empty list of numbers")
        if len(query) != self.manifest.length:
            raise ValueError(
                f"query length {len(query)} != shard set length {self.manifest.length}"
            )
        request = {
            "kind": kind,
            "query": [float(x) for x in query],
            "mirror": bool(message.get("mirror", False)),
            "max_degrees": message.get("max_degrees"),
            "wedge_set_size": int(message.get("wedge_set_size", 8)),
        }
        if kind == "knn":
            k = int(message.get("k", 1))
            if k < 1:
                raise ValueError(f"k must be positive, got {k}")
            request["k"] = k
        else:
            radius = float(message["radius"])
            if radius < 0:
                raise ValueError(f"radius must be non-negative, got {radius}")
            request["radius"] = radius
        return request

    def _cache_key(self, request: dict) -> tuple:
        knobs = {
            "mirror": request["mirror"],
            "max_degrees": request["max_degrees"],
            "wedge_set_size": request["wedge_set_size"],
        }
        if request["kind"] == "knn":
            knobs["k"] = request["k"]
        else:
            knobs["radius"] = request["radius"]
        return AnswerCache.make_key(request["kind"], request["query"], self.measure, **knobs)

    async def _run_batch(self, batch: list) -> None:
        self._batch_sizes.observe(len(batch))
        jobs: list[dict] = []  # distinct requests to actually compute
        job_keys: list[tuple | None] = []
        job_by_key: dict[tuple, int] = {}
        plans: list[tuple] = []  # per batch item: ("done", resp) | ("job", idx, req)
        for message, _fut in batch:
            try:
                request = self._normalize(message)
            except (KeyError, TypeError, ValueError) as exc:
                plans.append(("done", _error("bad-request", str(exc))))
                continue
            use_cache = self.cache is not None and not message.get("no_cache", False)
            key = self._cache_key(request) if use_cache else None
            if use_cache:
                cached = self.cache.get(key)
                if cached is not None:
                    response = {**cached, "ok": True, "cached": True}
                    self._log_query(request, response)
                    plans.append(("done", response))
                    continue
                if key in job_by_key:
                    # Identical query already in this batch: compute once.
                    plans.append(("job", job_by_key[key], request))
                    continue
                job_by_key[key] = len(jobs)
            plans.append(("job", len(jobs), request))
            jobs.append(request)
            job_keys.append(key)

        answers: list[dict] = []
        failure: dict | None = None
        if jobs:
            failure, shard_replies, wall = await self._fan_out(jobs)
            if failure is None:
                for j, request in enumerate(jobs):
                    answer = self._merge_job(request, j, shard_replies, wall)
                    if job_keys[j] is not None:
                        self.cache.put(job_keys[j], answer)
                    answers.append(answer)

        for (message, fut), plan in zip(batch, plans):
            if fut.done():
                continue
            if plan[0] == "done":
                fut.set_result(plan[1])
                continue
            _tag, idx, request = plan
            if failure is not None:
                fut.set_result(failure)
                continue
            response = {**answers[idx], "ok": True, "cached": False}
            self._log_query(request, response)
            fut.set_result(response)

    async def _fan_out(self, jobs: list[dict]):
        """Ship one chunk to every worker; returns (failure, replies, wall)."""
        loop = asyncio.get_running_loop()
        chunk = {"op": "search", "requests": jobs}
        start = time.perf_counter()
        replies = await asyncio.gather(
            *(
                loop.run_in_executor(self._executor, worker.request, chunk, self.request_timeout)
                for worker in self.workers
            ),
            return_exceptions=True,
        )
        wall = time.perf_counter() - start
        shard_replies = []
        for worker, reply in zip(self.workers, replies):
            if isinstance(reply, WorkerDiedError):
                self._worker_deaths.inc(1, shard=str(reply.shard_id))
                return (
                    _error(
                        "worker-died",
                        f"shard worker {reply.shard_id} died mid-query: {reply}",
                        shard=reply.shard_id,
                    ),
                    None,
                    wall,
                )
            if isinstance(reply, TimeoutError):
                return (
                    _error("worker-timeout", str(reply), shard=worker.shard_id),
                    None,
                    wall,
                )
            if isinstance(reply, BaseException):
                return (
                    _error("internal", repr(reply), shard=worker.shard_id),
                    None,
                    wall,
                )
            if not reply.get("ok"):
                return (
                    _error(
                        "worker-error",
                        str(reply.get("error", "unknown worker error")),
                        shard=worker.shard_id,
                    ),
                    None,
                    wall,
                )
            shard_replies.append(reply)
        return None, shard_replies, wall

    def _merge_job(self, request: dict, j: int, shard_replies: list, wall: float) -> dict:
        from repro.core.search import merge_neighbors
        from repro.mining.queries import Neighbor

        partials = [
            [Neighbor(int(i), float(d), int(rot)) for i, d, rot in reply["results"][j]["neighbors"]]
            for reply in shard_replies
        ]
        if request["kind"] == "knn":
            merged = merge_neighbors(partials, request["k"])
        else:
            # range_search orders by database position; the global answer
            # does the same over global indices.
            merged = sorted((nb for part in partials for nb in part), key=lambda nb: nb.index)
        steps = sum(reply["results"][j]["steps"] for reply in shard_replies)
        return {
            "kind": request["kind"],
            "neighbors": [[nb.index, nb.distance, nb.rotation] for nb in merged],
            "steps": steps,
            "wall_seconds": wall,
            "shards": self.manifest.n_shards,
            "backend": self.backend,
            "measure": self.measure.name,
        }

    def _log_query(self, request: dict, response: dict) -> None:
        if self.query_log is None:
            return
        self._query_seq += 1
        top = response["neighbors"][0] if response["neighbors"] else None
        self.query_log.log(
            {
                "query_id": f"svc-{self._query_seq:06d}",
                "op": request["kind"],
                "measure": self.measure.name,
                "backend": self.backend,
                "shards": self.manifest.n_shards,
                "cached": response.get("cached", False),
                "k": request.get("k"),
                "radius": request.get("radius"),
                "steps": response["steps"],
                "wall_seconds": response["wall_seconds"],
                "n_results": len(response["neighbors"]),
                "result_index": top[0] if top else None,
                "distance": top[1] if top else None,
                "rotation": top[2] if top else None,
            }
        )

    # -- metrics ------------------------------------------------------

    async def _metrics_response(self) -> dict:
        loop = asyncio.get_running_loop()
        replies = await asyncio.gather(
            *(
                loop.run_in_executor(
                    self._executor, worker.request, {"op": "metrics"}, self.request_timeout
                )
                for worker in self.workers
            ),
            return_exceptions=True,
        )
        merged = MetricsRegistry()
        for worker, reply in zip(self.workers, replies):
            if isinstance(reply, WorkerDiedError):
                self._worker_deaths.inc(1, shard=str(reply.shard_id))
                return _error(
                    "worker-died",
                    f"shard worker {reply.shard_id} is dead",
                    shard=reply.shard_id,
                )
            if isinstance(reply, BaseException):
                return _error("internal", repr(reply), shard=worker.shard_id)
            merged.merge(registry_from_dict(reply["metrics"]))
        merged.merge(self.registry)
        if self.cache is not None:
            self.cache.record_into(merged)
        response = {"ok": True, "prometheus": merged.to_prometheus()}
        if self.cache is not None:
            response["cache"] = self.cache.stats()
        return response


# -- TCP front-end ----------------------------------------------------


async def serve(service: ShardedSearchService, host: str = "127.0.0.1", port: int = 0):
    """Start the length-prefixed-JSON TCP server; returns the asyncio server.

    Open connections and their handler tasks are tracked on the service so
    a shutdown can drain them gracefully (close the transports, let each
    handler observe EOF and finish) instead of leaving tasks to be killed
    mid-read by loop teardown.
    """

    async def handler(reader, writer):
        task = asyncio.current_task()
        service._handler_tasks.add(task)
        service._client_writers.add(writer)
        try:
            while True:
                try:
                    message = await read_frame(reader)
                except ProtocolError as exc:
                    with contextlib.suppress(Exception):
                        await write_frame(writer, _error("protocol", str(exc)))
                    break
                if message is None:
                    break
                response = await service.handle_request(message)
                await write_frame(writer, response)
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            service._handler_tasks.discard(task)
            service._client_writers.discard(writer)
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    await service.start()
    return await asyncio.start_server(handler, host, port)


async def _serve_until_shutdown(service, host, port, ready_callback=None) -> None:
    server = await serve(service, host, port)
    actual_port = server.sockets[0].getsockname()[1]
    if ready_callback is not None:
        ready_callback(service, actual_port, asyncio.get_running_loop())
    try:
        await service.shutdown_event.wait()
    finally:
        server.close()
        await server.wait_closed()
        # Drain live connections: closing the transports lets each handler
        # see EOF and exit on its own before the loop is torn down.
        for writer in list(service._client_writers):
            writer.close()
        if service._handler_tasks:
            await asyncio.gather(*list(service._handler_tasks), return_exceptions=True)
        await service.aclose()


def run_service(shards_dir, measure, host: str = "127.0.0.1", port: int = 0, **kwargs) -> None:
    """Blocking entry point for ``repro serve``: serve until a shutdown op."""
    on_ready = kwargs.pop("on_ready", None)
    service = ShardedSearchService(shards_dir, measure, **kwargs)
    asyncio.run(_serve_until_shutdown(service, host, port, on_ready))


class ServiceHandle:
    """A service running in a background thread (tests, benchmarks, CI)."""

    def __init__(self):
        self.service: ShardedSearchService | None = None
        self.loop: asyncio.AbstractEventLoop | None = None
        self.port: int | None = None
        self.thread: threading.Thread | None = None
        self.error: BaseException | None = None

    def request(self, message: dict, timeout: float = 120.0) -> dict:
        """Thread-safe in-process request (bypasses TCP, same code path)."""
        future = asyncio.run_coroutine_threadsafe(
            self.service.handle_request(message), self.loop
        )
        return future.result(timeout)

    def close(self, timeout: float = 30.0) -> None:
        if self.thread is None or not self.thread.is_alive():
            return
        self.loop.call_soon_threadsafe(self.service.shutdown_event.set)
        self.thread.join(timeout)


def start_service_thread(shards_dir, measure, **kwargs) -> ServiceHandle:
    """Run a full service (TCP included) in a daemon thread; returns its handle."""
    host = kwargs.pop("host", "127.0.0.1")
    port = kwargs.pop("port", 0)
    handle = ServiceHandle()
    ready = threading.Event()

    def on_ready(service, actual_port, loop):
        handle.service = service
        handle.port = actual_port
        handle.loop = loop
        ready.set()

    def runner():
        try:
            run_service(shards_dir, measure, host, port, on_ready=on_ready, **kwargs)
        except BaseException as exc:  # startup or serve failure
            handle.error = exc
            ready.set()

    handle.thread = threading.Thread(target=runner, name="repro-service", daemon=True)
    handle.thread.start()
    ready.wait(60.0)
    if handle.error is not None:
        raise handle.error
    if handle.port is None:
        raise RuntimeError("service failed to start within 60s")
    return handle
