"""The asyncio coordinator: micro-batching, fan-out, exact global merge.

Request lifecycle: a TCP frame lands in :meth:`ShardedSearchService.
handle_request`, which enqueues it; the dispatcher coroutine drains the
queue into a micro-batch (everything that arrives within ``batch_window``
seconds, capped at ``max_batch`` -- the service-side analogue of
``search_many``'s query chunks), resolves cache hits, computes each
distinct miss **once**, and fans the chunk out to every shard worker in
parallel.  Each worker returns its shard's canonical top-k (global
indices, exact distances); the coordinator folds them with
:func:`repro.core.search.merge_neighbors`, whose ``(distance, index)``
tie-break makes the merged answer bit-identical to a single-process
``knn_search`` over the concatenated data.

Failure model (the self-healing layer):

* Workers are :class:`~repro.service.worker.SupervisedWorker` state
  machines: a dead worker is respawned with capped exponential backoff
  and the in-flight chunk replayed once; a background **monitor thread**
  resurrects silently dead workers between requests; a shard that fails
  ``RestartPolicy.degrade_after`` times in a row is marked *degraded*
  and stops consuming restarts.
* Every query carries a **deadline** (``timeout_ms``, default the
  service's ``request_timeout``): the coordinator splits the remaining
  budget across the initial fan-out and ``retry_budget`` bounded retries
  of shards that died or timed out, and ships the slice to the worker as
  ``budget_seconds`` so a worker stops computing once the budget is spent.
* A shard that stays unanswerable fails the affected queries with a
  structured error -- unless the request opted in with
  ``allow_partial=true``, in which case the reply is the **exact** merge
  over the shards that did answer, flagged ``partial`` with a
  ``missing_shards`` list.  Exactness over reachable data is preserved
  bit for bit; partial answers are never cached.

Metrics: the coordinator keeps its own registry (request counts, batch
sizes, worker deaths/restarts/degradations, retries, deadline misses,
partial results, restart-latency histogram) and answers the ``metrics``
op by pulling each *reachable* worker's snapshot, rebuilding it with
``registry_from_dict``, and folding everything into one Prometheus
exposition.  The ``health`` op reports the supervisor state machine
per shard without touching the workers at all.
"""

from __future__ import annotations

import asyncio
import atexit
import contextlib
import signal
import threading
import time
from concurrent.futures import ThreadPoolExecutor

from repro.core.planner import DatasetStats, Planner, parse_plan
from repro.obs.metrics import MetricsRegistry, registry_from_dict
from repro.obs.slo import SloEngine, SloThresholds
from repro.obs.trace import Tracer, new_span_id
from repro.service.cache import AnswerCache
from repro.service.faults import FaultPlan
from repro.service.telemetry import TelemetryServer, TraceBuffer
from repro.service.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    error_response,
    measure_to_spec,
    read_frame,
    write_frame,
)
from repro.service.shard import load_manifest
from repro.service.worker import (
    RestartPolicy,
    ShardDegradedError,
    SupervisedWorker,
    WorkerDiedError,
)

__all__ = ["ServiceHandle", "ShardedSearchService", "serve", "start_service_thread"]

#: Batch-size histogram buckets (requests per micro-batch).
BATCH_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)

#: Floor on a per-worker wait slice so a retry attempt is never handed a
#: microscopic timeout by rounding.
MIN_SLICE_SECONDS = 0.05

_error = error_response

#: Keys of a normalized request that are coordinator-internal and must
#: not ride the worker pipes.
_COORDINATOR_KEYS = ("deadline", "allow_partial")


class ShardedSearchService:
    """Coordinator over one shard set: workers, cache, merge, metrics."""

    def __init__(
        self,
        shards_dir,
        measure,
        *,
        cache_size: int = 1024,
        batch_window: float = 0.002,
        max_batch: int = 64,
        request_timeout: float = 120.0,
        query_log=None,
        restart_policy: RestartPolicy | None = None,
        retry_budget: int = 1,
        monitor_interval: float = 0.25,
        fault_plan: FaultPlan | None = None,
        tracing: bool = True,
        trace_recent: int = 16,
        trace_slowest: int = 16,
        trace_max_spans: int = 20_000,
        worker_trace_max_spans: int = 4096,
        slo_thresholds: SloThresholds | None = None,
        plan: str = "auto",
    ):
        self.manifest = load_manifest(shards_dir)
        self.measure = measure
        self.measure_spec = measure_to_spec(measure)
        #: Resolved once here and shipped to every worker by name, so the
        #: whole service provably runs one backend (satellite: stamped
        #: into query-log records and benchmark provenance).
        self.backend = self.measure_spec.get("backend", measure.backend_name)
        self.batch_window = batch_window
        self.max_batch = max_batch
        self.request_timeout = request_timeout
        self.retry_budget = max(0, int(retry_budget))
        self.monitor_interval = monitor_interval
        self.restart_policy = restart_policy if restart_policy is not None else RestartPolicy()
        #: Chaos hook: an explicit plan wins, else ``REPRO_FAULT_SPEC``.
        self.fault_plan = fault_plan if fault_plan is not None else FaultPlan.from_env()
        self.cache = AnswerCache(cache_size) if cache_size else None
        self.query_log = query_log
        #: Query planning: ``"auto"`` builds a live :class:`Planner` fed by
        #: the merged worker tier funnels (cache hits excluded);
        #: ``"fixed:..."`` pins one plan for the process lifetime.  Either
        #: way the plan is resolved once per micro-batch, shipped in the
        #: worker chunk, and stamped on spans, query-log records, and
        #: ``/health`` -- and either way answers are bit-identical.
        self.plan_spec = plan
        fixed = parse_plan(plan, measure, backend=self.backend)
        if fixed is None:
            self.planner = Planner(
                measure,
                DatasetStats(
                    size=self.manifest.objects,
                    length=self.manifest.length,
                    n_rotations=self.manifest.length,
                    measure=measure.name,
                ),
                backend=self.backend,
            )
            self.fixed_plan = None
        else:
            self.planner = None
            self.fixed_plan = fixed
        self.registry = MetricsRegistry()
        self._requests_total = self.registry.counter(
            "service_requests_total", "Requests accepted by the front-end"
        )
        self._batch_sizes = self.registry.histogram(
            "service_batch_size", "Queries per micro-batch", buckets=BATCH_BUCKETS
        )
        self._worker_deaths = self.registry.counter(
            "service_worker_deaths_total", "Shard workers observed dead"
        )
        self._shard_retries = self.registry.counter(
            "service_shard_retries_total", "Shard chunks retried after a death or timeout"
        )
        self._deadline_exceeded = self.registry.counter(
            "service_deadline_exceeded_total", "Requests that ran out of deadline budget"
        )
        self._partial_results = self.registry.counter(
            "service_partial_results_total", "Replies served as exact merges over surviving shards"
        )
        self._cache_served = self.registry.counter(
            "service_cache_served_total",
            "Replies replayed from the answer cache (excluded from planner feedback)",
        )
        self._plan_switches = self.registry.counter(
            "service_plan_switches_total", "Times the planner changed the active query plan"
        )
        self._trace_dropped_spans = self.registry.counter(
            "service_trace_dropped_spans_total",
            "Spans discarded at a tracer cap (coordinator or worker side)",
        )
        self._traces_total = self.registry.counter(
            "service_traces_total", "Stitched cross-process traces recorded"
        )
        #: Tracing is observation-only: answers and step counts are
        #: bit-identical with it on or off (regression-tested).
        self.tracing = bool(tracing)
        self.trace_max_spans = trace_max_spans
        self.worker_trace_max_spans = worker_trace_max_spans
        self.traces = TraceBuffer(recent=trace_recent, slowest=trace_slowest, errors=trace_recent)
        self.slo = SloEngine(thresholds=slo_thresholds)
        self.telemetry: TelemetryServer | None = None
        self._current_trace_id: str | None = None
        self._restarts_seen: dict[int, int] = {}
        self._degraded_seen: set[int] = set()
        self.workers = [
            SupervisedWorker(
                info.shard_id,
                self.manifest.shard_path(info.shard_id),
                info.offset,
                self.measure_spec,
                policy=self.restart_policy,
                registry=self.registry,
                fault_plan=self.fault_plan,
            )
            for info in self.manifest.shards
        ]
        # Two slots per worker: one for in-flight search chunks, one so a
        # metrics snapshot is never queued behind a long chunk.
        self._executor = ThreadPoolExecutor(
            max_workers=2 * len(self.workers), thread_name_prefix="repro-service"
        )
        self._queue: asyncio.Queue | None = None
        self._dispatcher: asyncio.Task | None = None
        self.shutdown_event: asyncio.Event | None = None
        self._query_seq = 0
        self._handler_tasks: set = set()
        self._client_writers: set = set()
        self._monitor_thread: threading.Thread | None = None
        self._monitor_stop = threading.Event()

    # -- lifecycle ----------------------------------------------------

    async def start(self) -> None:
        """Bind the dispatcher to the running loop (idempotent)."""
        if self._dispatcher is None:
            self._queue = asyncio.Queue()
            self.shutdown_event = asyncio.Event()
            self._dispatcher = asyncio.create_task(self._dispatch_loop())
        if self._monitor_thread is None and self.monitor_interval > 0:
            self._monitor_stop.clear()
            self._monitor_thread = threading.Thread(
                target=self._monitor_loop, name="repro-service-monitor", daemon=True
            )
            self._monitor_thread.start()

    def _monitor_loop(self) -> None:
        """Poll worker liveness so dead shards heal without traffic."""
        while not self._monitor_stop.wait(self.monitor_interval):
            for worker in self.workers:
                try:
                    worker.check()
                except Exception:  # pragma: no cover - monitor must never die
                    pass
            self._window_worker_events()

    def _window_worker_events(self) -> None:
        """Feed restart/degradation deltas into the SLO sliding windows."""
        for worker in self.workers:
            seen = self._restarts_seen.get(worker.shard_id, 0)
            if worker.restarts > seen:
                self.slo.record_event("restarts", worker.restarts - seen, shard=worker.shard_id)
                self._restarts_seen[worker.shard_id] = worker.restarts
            if worker.state == "degraded" and worker.shard_id not in self._degraded_seen:
                self._degraded_seen.add(worker.shard_id)
                self.slo.record_event("degraded", 1, shard=worker.shard_id)

    async def aclose(self) -> None:
        """Stop the dispatcher and every worker; fail leftover requests."""
        self._monitor_stop.set()
        if self._monitor_thread is not None:
            self._monitor_thread.join(5)
            self._monitor_thread = None
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._dispatcher
            self._dispatcher = None
        if self.telemetry is not None:
            self.telemetry.close()
            self.telemetry = None
        if self._queue is not None:
            while not self._queue.empty():
                _, fut, _ = self._queue.get_nowait()
                if not fut.done():
                    fut.set_result(_error("shutdown", "service is shutting down"))
        loop = asyncio.get_running_loop()
        await asyncio.gather(
            *(loop.run_in_executor(self._executor, worker.stop) for worker in self.workers),
            return_exceptions=True,
        )
        self._executor.shutdown(wait=True)

    def reap_workers(self) -> None:
        """Last-resort synchronous cleanup: kill any surviving children.

        Registered via ``atexit`` by :func:`run_service` so an interpreter
        that exits without the graceful path (an exception past the loop,
        a signal handled as a plain exit) never leaves orphaned shard
        workers burning CPU.  Safe to call repeatedly.
        """
        self._monitor_stop.set()
        for supervisor in self.workers:
            try:
                process = supervisor.worker.process
                if process is not None and process.is_alive():
                    process.kill()
                    process.join(2)
            except Exception:
                pass

    # -- request entry ------------------------------------------------

    async def handle_request(self, message: dict) -> dict:
        """Answer one decoded request message (any op)."""
        op = message.get("op")
        self._requests_total.inc(1, op=str(op))
        if op == "ping":
            return {
                "ok": True,
                "server": "repro-service",
                "protocol": PROTOCOL_VERSION,
                "shards": self.manifest.n_shards,
                "objects": self.manifest.objects,
                "length": self.manifest.length,
                "measure": self.measure.name,
                "backend": self.backend,
                "cache": self.cache is not None,
                "plan": self.current_plan().name,
            }
        if op == "health":
            return self._health_response()
        if op == "metrics":
            return await self._metrics_response()
        if op == "shutdown":
            if self.shutdown_event is not None:
                self.shutdown_event.set()
            return {"ok": True, "message": "shutting down"}
        if op in ("knn", "range"):
            if self._queue is None:
                return _error("not-started", "service dispatcher is not running")
            fut = asyncio.get_running_loop().create_future()
            accepted = time.perf_counter()
            await self._queue.put((message, fut, accepted))
            response = await fut
            self.slo.record(
                time.perf_counter() - accepted,
                error=not response.get("ok", False),
                cached=bool(response.get("cached", False)),
            )
            return response
        return _error("bad-request", f"unknown op {op!r}")

    # -- dispatcher ---------------------------------------------------

    async def _dispatch_loop(self) -> None:
        while True:
            batch = [await self._queue.get()]
            if self.batch_window > 0:
                # Let concurrently arriving requests join this batch.
                await asyncio.sleep(self.batch_window)
            while len(batch) < self.max_batch:
                try:
                    batch.append(self._queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            try:
                await self._run_batch(batch)
            except Exception as exc:  # pragma: no cover - defensive
                for _, fut, _ in batch:
                    if not fut.done():
                        fut.set_result(_error("internal", repr(exc)))

    def _normalize(self, message: dict) -> dict:
        kind = message["op"]
        query = message.get("query")
        if not isinstance(query, list) or not query:
            raise ValueError("query must be a non-empty list of numbers")
        if len(query) != self.manifest.length:
            raise ValueError(
                f"query length {len(query)} != shard set length {self.manifest.length}"
            )
        timeout_ms = message.get("timeout_ms")
        if timeout_ms is None:
            budget = self.request_timeout
        else:
            budget = float(timeout_ms) / 1000.0
            if budget <= 0:
                raise ValueError(f"timeout_ms must be positive, got {timeout_ms}")
        request = {
            "kind": kind,
            "query": [float(x) for x in query],
            "mirror": bool(message.get("mirror", False)),
            "max_degrees": message.get("max_degrees"),
            "wedge_set_size": int(message.get("wedge_set_size", 8)),
            "allow_partial": bool(message.get("allow_partial", False)),
            "deadline": time.monotonic() + budget,
        }
        if kind == "knn":
            k = int(message.get("k", 1))
            if k < 1:
                raise ValueError(f"k must be positive, got {k}")
            request["k"] = k
        else:
            radius = float(message["radius"])
            if radius < 0:
                raise ValueError(f"radius must be non-negative, got {radius}")
            request["radius"] = radius
        return request

    def _cache_key(self, request: dict) -> tuple:
        knobs = {
            "mirror": request["mirror"],
            "max_degrees": request["max_degrees"],
            "wedge_set_size": request["wedge_set_size"],
        }
        if request["kind"] == "knn":
            knobs["k"] = request["k"]
        else:
            knobs["radius"] = request["radius"]
        # The shard-manifest checksum scopes every entry to this exact
        # shard set: a re-sharded or rebuilt dataset can never serve a
        # stale answer, even through a process that kept its cache.
        return AnswerCache.make_key(
            request["kind"],
            request["query"],
            self.measure,
            scope=self.manifest.checksum,
            **knobs,
        )

    def current_plan(self):
        """The plan this micro-batch will run: fixed, or the planner's pick."""
        if self.fixed_plan is not None:
            return self.fixed_plan
        before = self.planner.plan_switches
        plan = self.planner.plan()
        if self.planner.plan_switches > before:
            self._plan_switches.inc(self.planner.plan_switches - before)
        return plan

    async def _run_batch(self, batch: list) -> None:
        self._batch_sizes.observe(len(batch))
        # Consult the planner once per micro-batch; every shard chunk in
        # this batch ships the same frozen plan (workers never re-plan).
        plan = self.current_plan()
        # One stitched trace per micro-batch: the batch root span, a
        # queue-wait span per member, fan-out spans per shard attempt
        # (with worker subtrees rebased in), and the merge.  Tracing is
        # observation-only; every branch below behaves identically with
        # ``tracer is None``.
        tracer: Tracer | None = None
        batch_span = None
        batch_start = time.perf_counter()
        if self.tracing:
            tracer = Tracer(max_spans=self.trace_max_spans)
            batch_span = tracer.span("service.batch", batch_size=len(batch), plan=plan.name)
        self._current_trace_id = tracer.trace_id if tracer is not None else None
        jobs: list[dict] = []  # distinct requests to actually compute
        job_keys: list[tuple | None] = []
        job_by_key: dict[tuple, int] = {}
        plans: list[tuple] = []  # per batch item: ("done", resp) | ("job", idx, req)
        for message, _fut, enqueued_at in batch:
            if tracer is not None:
                tracer.attach(
                    batch_span,
                    "queue.wait",
                    enqueued_at,
                    batch_start,
                    op=str(message.get("op")),
                    queue_ms=round((batch_start - enqueued_at) * 1e3, 3),
                )
            try:
                request = self._normalize(message)
            except (KeyError, TypeError, ValueError) as exc:
                plans.append(("done", _error("bad-request", str(exc))))
                continue
            if request["deadline"] <= time.monotonic():
                self._deadline_exceeded.inc(1)
                self.slo.record_event("deadline_exceeded")
                plans.append(
                    ("done", _error("deadline-exceeded", "deadline expired before dispatch"))
                )
                continue
            use_cache = self.cache is not None and not message.get("no_cache", False)
            key = self._cache_key(request) if use_cache else None
            if use_cache:
                cached = self.cache.get(key)
                if cached is not None:
                    if tracer is not None:
                        tracer.event("cache.hit", kind=request["kind"])
                    self._cache_served.inc(1, kind=request["kind"])
                    response = {**cached, "ok": True, "cached": True}
                    if self.planner is not None:
                        # A replayed answer's tier_stats describe work that
                        # ran once, possibly under an older plan; feeding
                        # them back would double-count and let a hot cached
                        # query pin the plan.  Counted, never folded in.
                        self.planner.observe(response.get("tier_stats"), cached=True)
                    self._log_query(request, response)
                    plans.append(("done", response))
                    continue
                if key in job_by_key:
                    # Identical query already in this batch: compute once.
                    plans.append(("job", job_by_key[key], request))
                    continue
                job_by_key[key] = len(jobs)
            plans.append(("job", len(jobs), request))
            jobs.append(request)
            job_keys.append(key)

        answers: list[dict | None] = []
        missing: list[tuple[int, dict]] = []  # (shard_id, structured error)
        if jobs:
            outcomes, wall = await self._fan_out(jobs, tracer, batch_span, plan=plan)
            ok_replies = [
                outcome for _status, outcome in (outcomes[w.shard_id] for w in self.workers)
                if _status == "ok"
            ]
            missing = [
                (w.shard_id, outcome)
                for w in self.workers
                for _status, outcome in (outcomes[w.shard_id],)
                if _status != "ok"
            ]
            missing_ids = [shard_id for shard_id, _ in missing]
            merge_start = time.perf_counter()
            for j, request in enumerate(jobs):
                if not ok_replies:
                    answers.append(None)
                    continue
                answer = self._merge_job(request, j, ok_replies, wall, missing_ids, plan=plan)
                if self.planner is not None and not missing:
                    # Feed the merged worker funnel back into the cost
                    # model.  Partial merges are skipped: a missing shard's
                    # funnel would bias the rejection rates low.
                    self.planner.observe(answer.get("tier_stats"))
                if job_keys[j] is not None and not missing:
                    # Partial answers are never cached: the cache must
                    # only ever serve the full exact merge.
                    self.cache.put(job_keys[j], answer)
                answers.append(answer)
            if tracer is not None:
                tracer.attach(
                    batch_span,
                    "coordinator.merge",
                    merge_start,
                    time.perf_counter(),
                    jobs=len(jobs),
                    shards_answered=len(ok_replies),
                )

        batch_error = False
        for (message, fut, _enqueued_at), plan in zip(batch, plans):
            if fut.done():
                continue
            if plan[0] == "done":
                response = plan[1]
            else:
                _tag, idx, request = plan
                response = self._job_response(request, answers[idx], missing)
            if not response.get("ok", False):
                batch_error = True
            fut.set_result(response)

        if tracer is not None:
            batch_span.set(jobs=len(jobs))
            if batch_error:
                batch_span.set(error=True)
            batch_span.__exit__(None, None, None)
            self._record_trace(tracer, batch_span, len(batch), batch_error, missing)
            self._current_trace_id = None

    def _record_trace(self, tracer, batch_span, batch_size: int, error: bool, missing: list) -> None:
        """Fold one finished batch's trace into the ring buffers + metrics."""
        self._traces_total.inc(1)
        if tracer.dropped:
            self._trace_dropped_spans.inc(tracer.dropped, side="coordinator")
        entry = {
            "trace_id": tracer.trace_id,
            "wall_seconds": batch_span.duration,
            "batch_size": batch_size,
            "error": error,
            "missing_shards": [shard_id for shard_id, _ in missing],
            "dropped_spans": tracer.dropped,
            "trace": tracer.to_dict(),
        }
        self.traces.add(entry)

    def _job_response(self, request: dict, answer: dict | None, missing: list) -> dict:
        """Decide one message's reply from its job answer + missing shards."""
        if not missing:
            response = {**answer, "ok": True, "cached": False}
            self._log_query(request, response)
            return response
        missing_ids = [shard_id for shard_id, _ in missing]
        if answer is not None and request["allow_partial"]:
            self._partial_results.inc(1)
            response = {**answer, "ok": True, "cached": False}
            self._log_query(request, response)
            return response
        # Surface the first failing shard's structured error, annotated
        # with the full missing set so the caller knows the blast radius.
        first_error = missing[0][1]["error"]
        if first_error["type"] == "deadline-exceeded":
            self._deadline_exceeded.inc(1)
            self.slo.record_event("deadline_exceeded")
        return {
            "ok": False,
            "error": {**first_error, "missing_shards": missing_ids},
        }

    def _timed_request(self, worker, chunk: dict, timeout: float):
        """Executor-thread wrapper: round-trip one shard, never raise.

        Returns ``(reply_or_exception, start, end, attempt_log)`` on the
        coordinator's ``perf_counter`` clock, so the fan-out can build
        trace spans for the attempt (and any supervisor replay) after
        the fact without a barrier between concurrent shards.
        """
        attempt_log: list = []
        start = time.perf_counter()
        try:
            reply = worker.request(chunk, timeout, attempt_log)
        except Exception as exc:
            return exc, start, time.perf_counter(), attempt_log
        return reply, start, time.perf_counter(), attempt_log

    def _stitch_shard(self, tracer, batch_span, worker, span_id, result, attempt, status) -> None:
        """Attach one shard attempt's spans (and worker subtree) to the trace."""
        reply, t0, t1, attempt_log = result
        fanout = tracer.attach(
            batch_span,
            "fanout.shard",
            t0,
            t1,
            span_id=span_id,
            shard=worker.shard_id,
            attempt=attempt,
            status=status,
        )
        if fanout is None:
            return
        for note in attempt_log:
            attrs = {"outcome": note["outcome"]}
            if note["error"]:
                attrs["error"] = note["error"]
            tracer.attach(fanout, f"worker.{note['phase']}", note["start"], note["end"], **attrs)
        worker_trace = reply.get("trace") if isinstance(reply, dict) else None
        if worker_trace is not None:
            # Rebase the worker's private clock onto ours: its subtree
            # started (one pipe transit after) the successful round-trip
            # began.  The leftover gap is the pipe + queue transit.
            ok_notes = [note for note in attempt_log if note["outcome"] == "ok"]
            local_start = ok_notes[-1]["start"] if ok_notes else t0
            local_end = ok_notes[-1]["end"] if ok_notes else t1
            shift = local_start - worker_trace["start"]
            transit = (local_end - local_start) - worker_trace.get("duration", 0.0)
            stitched = tracer.attach_tree(fanout, worker_trace, shift=shift)
            if stitched is not None:
                stitched.set(transit_ms=round(max(transit, 0.0) * 1e3, 3))
        dropped = reply.get("dropped_spans", 0) if isinstance(reply, dict) else 0
        if dropped:
            tracer.dropped += dropped
            self._trace_dropped_spans.inc(dropped, side="worker")

    async def _fan_out(self, jobs: list[dict], tracer=None, batch_span=None, plan=None):
        """Ship one chunk to every worker, retrying failed shards once.

        Returns ``(outcomes, wall)`` where ``outcomes`` maps shard id to
        ``(status, payload)``: ``("ok", reply)`` for answered shards, or a
        failure status with a structured error.  The deadline budget (the
        tightest in the batch -- members arrive within one 2 ms window) is
        split across the initial attempt and ``retry_budget`` retries.

        With ``tracer`` set, each shard's chunk carries a trace context
        (``trace_id`` + a pre-minted fan-out span id as the worker's
        parent) and the reply's span subtree is stitched under a
        ``fanout.shard`` span recording attempt timing, retries, replays,
        and pipe transit.
        """
        loop = asyncio.get_running_loop()
        wire = [{k: v for k, v in job.items() if k not in _COORDINATOR_KEYS} for job in jobs]
        deadline = min(job["deadline"] for job in jobs)
        start = time.perf_counter()
        outcomes: dict[int, tuple[str, dict]] = {}
        ask = list(self.workers)
        for attempt in range(self.retry_budget + 1):
            if not ask:
                break
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            reserve = self.retry_budget - attempt
            if reserve > 0:
                slice_timeout = min(
                    remaining, max(remaining / (reserve + 1), MIN_SLICE_SECONDS)
                )
            else:
                slice_timeout = remaining
            base_chunk = {"op": "search", "requests": wire, "budget_seconds": slice_timeout}
            if plan is not None:
                # The resolved plan rides the pipe as plain data (like the
                # backend in the measure spec): every shard runs the same
                # cascade this micro-batch.
                base_chunk["plan"] = plan.to_dict()
            span_ids: list[str | None] = []
            calls = []
            for worker in ask:
                if tracer is not None:
                    span_id = new_span_id()
                    chunk = {
                        **base_chunk,
                        "trace": {
                            "trace_id": tracer.trace_id,
                            "parent_id": span_id,
                            "max_spans": self.worker_trace_max_spans,
                        },
                    }
                else:
                    span_id = None
                    chunk = base_chunk
                span_ids.append(span_id)
                calls.append(
                    loop.run_in_executor(self._executor, self._timed_request, worker, chunk, slice_timeout)
                )
            results = await asyncio.gather(*calls, return_exceptions=True)
            retry: list = []
            for worker, span_id, result in zip(ask, span_ids, results):
                if isinstance(result, BaseException):  # executor itself failed
                    result = (result, start, time.perf_counter(), [])
                reply = result[0]
                status, outcome = self._classify(worker, reply)
                if tracer is not None:
                    self._stitch_shard(tracer, batch_span, worker, span_id, result, attempt, status)
                if status in ("died", "timeout") and attempt < self.retry_budget:
                    self._shard_retries.inc(1, shard=str(worker.shard_id))
                    self.slo.record_event("shard_retries", shard=worker.shard_id)
                    retry.append(worker)
                else:
                    outcomes[worker.shard_id] = (status, outcome)
            ask = retry
        for worker in ask:
            # Deadline spent before this shard's (re)try could run.
            self.slo.record_event("deadline_exceeded", shard=worker.shard_id)
            if tracer is not None:
                now = time.perf_counter()
                tracer.attach(
                    batch_span,
                    "fanout.shard",
                    now,
                    now,
                    shard=worker.shard_id,
                    status="deadline-exhausted",
                )
            outcomes[worker.shard_id] = (
                "timeout",
                _error(
                    "deadline-exceeded",
                    f"deadline exhausted before shard {worker.shard_id} answered",
                    shard=worker.shard_id,
                ),
            )
        wall = time.perf_counter() - start
        return outcomes, wall

    def _classify(self, worker, reply) -> tuple[str, dict]:
        """Map one shard's raw fan-out result to ``(status, payload)``."""
        shard = worker.shard_id
        if isinstance(reply, dict):
            if reply.get("ok"):
                return ("ok", reply)
            if reply.get("error_type") == "deadline-exceeded":
                return (
                    "timeout",
                    _error("worker-timeout", str(reply.get("error")), shard=shard),
                )
            return (
                "fatal",
                _error(
                    "worker-error",
                    str(reply.get("error", "unknown worker error")),
                    shard=shard,
                ),
            )
        if isinstance(reply, WorkerDiedError):
            self._worker_deaths.inc(1, shard=str(reply.shard_id))
            self.slo.record_event("worker_deaths", shard=reply.shard_id)
            return (
                "died",
                _error(
                    "worker-died",
                    f"shard worker {reply.shard_id} died mid-query: {reply}",
                    shard=reply.shard_id,
                ),
            )
        if isinstance(reply, ShardDegradedError):
            return ("fatal", _error("shard-degraded", str(reply), shard=shard))
        if isinstance(reply, TimeoutError):
            return ("timeout", _error("worker-timeout", str(reply), shard=shard))
        return ("fatal", _error("internal", repr(reply), shard=shard))

    def _merge_job(
        self,
        request: dict,
        j: int,
        shard_replies: list,
        wall: float,
        missing_ids: list[int] | None = None,
        plan=None,
    ) -> dict:
        from repro.core.search import merge_neighbors, merge_range_hits
        from repro.mining.queries import Neighbor

        partials = [
            [Neighbor(int(i), float(d), int(rot)) for i, d, rot in reply["results"][j]["neighbors"]]
            for reply in shard_replies
        ]
        if request["kind"] == "knn":
            merged = merge_neighbors(partials, request["k"])
        else:
            # The explicit sharded range contract: ascending global index,
            # deduplicated, partition-invariant (see merge_range_hits).
            merged = merge_range_hits(partials)
        steps = sum(reply["results"][j]["steps"] for reply in shard_replies)
        answer = {
            "kind": request["kind"],
            "neighbors": [[nb.index, nb.distance, nb.rotation] for nb in merged],
            "steps": steps,
            "wall_seconds": wall,
            "shards": self.manifest.n_shards,
            "shards_answered": len(shard_replies),
            "partial": bool(missing_ids),
            "backend": self.backend,
            "measure": self.measure.name,
        }
        if plan is not None:
            answer["plan"] = plan.name
        tier_totals: dict[str, int] | None = None
        for reply in shard_replies:
            stats = reply["results"][j].get("tier_stats")
            if not stats:
                continue
            if tier_totals is None:
                tier_totals = dict.fromkeys(stats, 0)
            for key, value in stats.items():
                tier_totals[key] = tier_totals.get(key, 0) + int(value)
        if tier_totals is not None:
            answer["tier_stats"] = tier_totals
        if missing_ids:
            answer["missing_shards"] = list(missing_ids)
        return answer

    def _log_query(self, request: dict, response: dict) -> None:
        if self.query_log is None:
            return
        self._query_seq += 1
        top = response["neighbors"][0] if response["neighbors"] else None
        self.query_log.log(
            {
                "query_id": f"svc-{self._query_seq:06d}",
                # Joins this record against the stitched trace in
                # /traces/recent (None with tracing disabled).
                "trace_id": self._current_trace_id,
                "op": request["kind"],
                "measure": self.measure.name,
                "backend": self.backend,
                "shards": self.manifest.n_shards,
                "cached": response.get("cached", False),
                "plan": response.get("plan"),
                "partial": response.get("partial", False),
                "k": request.get("k"),
                "radius": request.get("radius"),
                "steps": response["steps"],
                "wall_seconds": response["wall_seconds"],
                "n_results": len(response["neighbors"]),
                "result_index": top[0] if top else None,
                "distance": top[1] if top else None,
                "rotation": top[2] if top else None,
            }
        )

    # -- health and metrics -------------------------------------------

    def _health_response(self) -> dict:
        """Supervisor state per shard, plus resilience counters.

        Never touches the workers themselves -- health must stay cheap
        and answerable even while every shard is crash-looping.
        """
        shards = [worker.describe() for worker in self.workers]
        states = {entry["state"] for entry in shards}
        if "degraded" in states:
            status = "degraded"
        elif "restarting" in states:
            status = "restarting"
        else:
            status = "ok"
        slo_snapshot = self.slo.snapshot()
        if self.planner is not None:
            planner_block = {"mode": "auto", **self.planner.snapshot()}
        else:
            planner_block = {"mode": "fixed", "plan": self.fixed_plan.name}
        return {
            "planner": planner_block,
            "slo": {"alerts": self.slo.alerts(slo_snapshot), "windows": slo_snapshot},
            "ok": True,
            "server": "repro-service",
            "protocol": PROTOCOL_VERSION,
            "status": status,
            "shards": shards,
            "restarts": sum(entry["restarts"] for entry in shards),
            "counters": {
                "worker_deaths": self._worker_deaths.total(),
                "worker_restarts": self.registry.counter(
                    "service_worker_restarts_total"
                ).total(),
                "shard_retries": self._shard_retries.total(),
                "deadline_exceeded": self._deadline_exceeded.total(),
                "partial_results": self._partial_results.total(),
            },
        }

    async def _metrics_response(self) -> dict:
        loop = asyncio.get_running_loop()
        replies = await asyncio.gather(
            *(
                loop.run_in_executor(
                    self._executor, worker.request, {"op": "metrics"}, self.request_timeout
                )
                for worker in self.workers
            ),
            return_exceptions=True,
        )
        merged = MetricsRegistry()
        unreachable: list[int] = []
        for worker, reply in zip(self.workers, replies):
            # A dead or degraded shard must not take /metrics down with
            # it: fold what is reachable and name the rest.
            if isinstance(reply, WorkerDiedError):
                self._worker_deaths.inc(1, shard=str(reply.shard_id))
                unreachable.append(worker.shard_id)
                continue
            if isinstance(reply, BaseException):
                unreachable.append(worker.shard_id)
                continue
            merged.merge(registry_from_dict(reply["metrics"]))
        merged.merge(self.registry)
        if self.cache is not None:
            self.cache.record_into(merged)
        response = {"ok": True, "prometheus": merged.to_prometheus()}
        if unreachable:
            response["unreachable_shards"] = unreachable
        if self.cache is not None:
            response["cache"] = self.cache.stats()
        return response


# -- TCP front-end ----------------------------------------------------


async def serve(service: ShardedSearchService, host: str = "127.0.0.1", port: int = 0):
    """Start the length-prefixed-JSON TCP server; returns the asyncio server.

    Open connections and their handler tasks are tracked on the service so
    a shutdown can drain them gracefully (close the transports, let each
    handler observe EOF and finish) instead of leaving tasks to be killed
    mid-read by loop teardown.
    """

    async def handler(reader, writer):
        task = asyncio.current_task()
        service._handler_tasks.add(task)
        service._client_writers.add(writer)
        try:
            while True:
                try:
                    message = await read_frame(reader)
                except ProtocolError as exc:
                    with contextlib.suppress(Exception):
                        await write_frame(writer, _error("protocol", str(exc)))
                    break
                if message is None:
                    break
                response = await service.handle_request(message)
                await write_frame(writer, response)
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            service._handler_tasks.discard(task)
            service._client_writers.discard(writer)
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    await service.start()
    return await asyncio.start_server(handler, host, port)


async def _serve_until_shutdown(
    service,
    host,
    port,
    ready_callback=None,
    install_signal_handlers=None,
    telemetry_port=None,
    telemetry_host="127.0.0.1",
) -> None:
    server = await serve(service, host, port)
    actual_port = server.sockets[0].getsockname()[1]
    loop = asyncio.get_running_loop()
    if telemetry_port is not None:
        # The sidecar serves /metrics, /health, /slo, /traces/recent from
        # its own thread; closed by ``aclose`` during the drain below.
        service.telemetry = TelemetryServer(service, loop, host=telemetry_host, port=telemetry_port)
    if install_signal_handlers is None:
        install_signal_handlers = threading.current_thread() is threading.main_thread()
    installed: list = []
    if install_signal_handlers:
        # SIGTERM/SIGINT become a graceful shutdown: drain connections,
        # stop the workers -- the fix for the orphaned-worker leak when
        # `repro serve` is killed by the init system or Ctrl-C.
        for sig in (signal.SIGTERM, signal.SIGINT):
            with contextlib.suppress(NotImplementedError, RuntimeError, ValueError):
                loop.add_signal_handler(sig, service.shutdown_event.set)
                installed.append(sig)
    if ready_callback is not None:
        ready_callback(service, actual_port, loop)
    try:
        await service.shutdown_event.wait()
    finally:
        for sig in installed:
            with contextlib.suppress(Exception):
                loop.remove_signal_handler(sig)
        server.close()
        await server.wait_closed()
        # Drain live connections: closing the transports lets each handler
        # see EOF and exit on its own before the loop is torn down.
        for writer in list(service._client_writers):
            writer.close()
        if service._handler_tasks:
            await asyncio.gather(*list(service._handler_tasks), return_exceptions=True)
        await service.aclose()


def run_service(shards_dir, measure, host: str = "127.0.0.1", port: int = 0, **kwargs) -> None:
    """Blocking entry point for ``repro serve``: serve until a shutdown op.

    Installs SIGTERM/SIGINT handlers (when running on the main thread)
    that trigger the graceful drain, plus an ``atexit`` reaper so shard
    worker processes are never orphaned however the interpreter exits.
    """
    on_ready = kwargs.pop("on_ready", None)
    install_signal_handlers = kwargs.pop("install_signal_handlers", None)
    telemetry_port = kwargs.pop("telemetry_port", None)
    telemetry_host = kwargs.pop("telemetry_host", "127.0.0.1")
    service = ShardedSearchService(shards_dir, measure, **kwargs)
    atexit.register(service.reap_workers)
    try:
        asyncio.run(
            _serve_until_shutdown(
                service,
                host,
                port,
                on_ready,
                install_signal_handlers,
                telemetry_port=telemetry_port,
                telemetry_host=telemetry_host,
            )
        )
    finally:
        atexit.unregister(service.reap_workers)
        service.reap_workers()


class ServiceHandle:
    """A service running in a background thread (tests, benchmarks, CI)."""

    def __init__(self):
        self.service: ShardedSearchService | None = None
        self.loop: asyncio.AbstractEventLoop | None = None
        self.port: int | None = None
        self.thread: threading.Thread | None = None
        self.error: BaseException | None = None

    def request(self, message: dict, timeout: float = 120.0) -> dict:
        """Thread-safe in-process request (bypasses TCP, same code path)."""
        future = asyncio.run_coroutine_threadsafe(
            self.service.handle_request(message), self.loop
        )
        return future.result(timeout)

    def close(self, timeout: float = 30.0) -> None:
        if self.thread is None or not self.thread.is_alive():
            return
        self.loop.call_soon_threadsafe(self.service.shutdown_event.set)
        self.thread.join(timeout)


def start_service_thread(shards_dir, measure, **kwargs) -> ServiceHandle:
    """Run a full service (TCP included) in a daemon thread; returns its handle."""
    host = kwargs.pop("host", "127.0.0.1")
    port = kwargs.pop("port", 0)
    handle = ServiceHandle()
    ready = threading.Event()

    def on_ready(service, actual_port, loop):
        handle.service = service
        handle.port = actual_port
        handle.loop = loop
        ready.set()

    def runner():
        try:
            run_service(shards_dir, measure, host, port, on_ready=on_ready, **kwargs)
        except BaseException as exc:  # startup or serve failure
            handle.error = exc
            ready.set()

    handle.thread = threading.Thread(target=runner, name="repro-service", daemon=True)
    handle.thread.start()
    ready.wait(60.0)
    if handle.error is not None:
        raise handle.error
    if handle.port is None:
        raise RuntimeError("service failed to start within 60s")
    return handle
