"""The asyncio coordinator: micro-batching, fan-out, exact global merge.

Request lifecycle: a TCP frame lands in :meth:`ShardedSearchService.
handle_request`, which enqueues it; the dispatcher coroutine drains the
queue into a micro-batch (everything that arrives within ``batch_window``
seconds, capped at ``max_batch`` -- the service-side analogue of
``search_many``'s query chunks), resolves cache hits, computes each
distinct miss **once**, and fans the chunk out to every shard worker in
parallel.  Each worker returns its shard's canonical top-k (global
indices, exact distances); the coordinator folds them with
:func:`repro.core.search.merge_neighbors`, whose ``(distance, index)``
tie-break makes the merged answer bit-identical to a single-process
``knn_search`` over the concatenated data.

Failure model (the self-healing layer):

* Workers are :class:`~repro.service.worker.SupervisedWorker` state
  machines: a dead worker is respawned with capped exponential backoff
  and the in-flight chunk replayed once; a background **monitor thread**
  resurrects silently dead workers between requests; a shard that fails
  ``RestartPolicy.degrade_after`` times in a row is marked *degraded*
  and stops consuming restarts.
* Every query carries a **deadline** (``timeout_ms``, default the
  service's ``request_timeout``): the coordinator splits the remaining
  budget across the initial fan-out and ``retry_budget`` bounded retries
  of shards that died or timed out, and ships the slice to the worker as
  ``budget_seconds`` so a worker stops computing once the budget is spent.
* A shard that stays unanswerable fails the affected queries with a
  structured error -- unless the request opted in with
  ``allow_partial=true``, in which case the reply is the **exact** merge
  over the shards that did answer, flagged ``partial`` with a
  ``missing_shards`` list.  Exactness over reachable data is preserved
  bit for bit; partial answers are never cached.

Metrics: the coordinator keeps its own registry (request counts, batch
sizes, worker deaths/restarts/degradations, retries, deadline misses,
partial results, restart-latency histogram) and answers the ``metrics``
op by pulling each *reachable* worker's snapshot, rebuilding it with
``registry_from_dict``, and folding everything into one Prometheus
exposition.  The ``health`` op reports the supervisor state machine
per shard without touching the workers at all.
"""

from __future__ import annotations

import asyncio
import atexit
import contextlib
import signal
import threading
import time
from concurrent.futures import ThreadPoolExecutor

from repro.obs.metrics import MetricsRegistry, registry_from_dict
from repro.service.cache import AnswerCache
from repro.service.faults import FaultPlan
from repro.service.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    error_response,
    measure_to_spec,
    read_frame,
    write_frame,
)
from repro.service.shard import load_manifest
from repro.service.worker import (
    RestartPolicy,
    ShardDegradedError,
    SupervisedWorker,
    WorkerDiedError,
)

__all__ = ["ServiceHandle", "ShardedSearchService", "serve", "start_service_thread"]

#: Batch-size histogram buckets (requests per micro-batch).
BATCH_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)

#: Floor on a per-worker wait slice so a retry attempt is never handed a
#: microscopic timeout by rounding.
MIN_SLICE_SECONDS = 0.05

_error = error_response

#: Keys of a normalized request that are coordinator-internal and must
#: not ride the worker pipes.
_COORDINATOR_KEYS = ("deadline", "allow_partial")


class ShardedSearchService:
    """Coordinator over one shard set: workers, cache, merge, metrics."""

    def __init__(
        self,
        shards_dir,
        measure,
        *,
        cache_size: int = 1024,
        batch_window: float = 0.002,
        max_batch: int = 64,
        request_timeout: float = 120.0,
        query_log=None,
        restart_policy: RestartPolicy | None = None,
        retry_budget: int = 1,
        monitor_interval: float = 0.25,
        fault_plan: FaultPlan | None = None,
    ):
        self.manifest = load_manifest(shards_dir)
        self.measure = measure
        self.measure_spec = measure_to_spec(measure)
        #: Resolved once here and shipped to every worker by name, so the
        #: whole service provably runs one backend (satellite: stamped
        #: into query-log records and benchmark provenance).
        self.backend = self.measure_spec.get("backend", measure.backend_name)
        self.batch_window = batch_window
        self.max_batch = max_batch
        self.request_timeout = request_timeout
        self.retry_budget = max(0, int(retry_budget))
        self.monitor_interval = monitor_interval
        self.restart_policy = restart_policy if restart_policy is not None else RestartPolicy()
        #: Chaos hook: an explicit plan wins, else ``REPRO_FAULT_SPEC``.
        self.fault_plan = fault_plan if fault_plan is not None else FaultPlan.from_env()
        self.cache = AnswerCache(cache_size) if cache_size else None
        self.query_log = query_log
        self.registry = MetricsRegistry()
        self._requests_total = self.registry.counter(
            "service_requests_total", "Requests accepted by the front-end"
        )
        self._batch_sizes = self.registry.histogram(
            "service_batch_size", "Queries per micro-batch", buckets=BATCH_BUCKETS
        )
        self._worker_deaths = self.registry.counter(
            "service_worker_deaths_total", "Shard workers observed dead"
        )
        self._shard_retries = self.registry.counter(
            "service_shard_retries_total", "Shard chunks retried after a death or timeout"
        )
        self._deadline_exceeded = self.registry.counter(
            "service_deadline_exceeded_total", "Requests that ran out of deadline budget"
        )
        self._partial_results = self.registry.counter(
            "service_partial_results_total", "Replies served as exact merges over surviving shards"
        )
        self.workers = [
            SupervisedWorker(
                info.shard_id,
                self.manifest.shard_path(info.shard_id),
                info.offset,
                self.measure_spec,
                policy=self.restart_policy,
                registry=self.registry,
                fault_plan=self.fault_plan,
            )
            for info in self.manifest.shards
        ]
        # Two slots per worker: one for in-flight search chunks, one so a
        # metrics snapshot is never queued behind a long chunk.
        self._executor = ThreadPoolExecutor(
            max_workers=2 * len(self.workers), thread_name_prefix="repro-service"
        )
        self._queue: asyncio.Queue | None = None
        self._dispatcher: asyncio.Task | None = None
        self.shutdown_event: asyncio.Event | None = None
        self._query_seq = 0
        self._handler_tasks: set = set()
        self._client_writers: set = set()
        self._monitor_thread: threading.Thread | None = None
        self._monitor_stop = threading.Event()

    # -- lifecycle ----------------------------------------------------

    async def start(self) -> None:
        """Bind the dispatcher to the running loop (idempotent)."""
        if self._dispatcher is None:
            self._queue = asyncio.Queue()
            self.shutdown_event = asyncio.Event()
            self._dispatcher = asyncio.create_task(self._dispatch_loop())
        if self._monitor_thread is None and self.monitor_interval > 0:
            self._monitor_stop.clear()
            self._monitor_thread = threading.Thread(
                target=self._monitor_loop, name="repro-service-monitor", daemon=True
            )
            self._monitor_thread.start()

    def _monitor_loop(self) -> None:
        """Poll worker liveness so dead shards heal without traffic."""
        while not self._monitor_stop.wait(self.monitor_interval):
            for worker in self.workers:
                try:
                    worker.check()
                except Exception:  # pragma: no cover - monitor must never die
                    pass

    async def aclose(self) -> None:
        """Stop the dispatcher and every worker; fail leftover requests."""
        self._monitor_stop.set()
        if self._monitor_thread is not None:
            self._monitor_thread.join(5)
            self._monitor_thread = None
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._dispatcher
            self._dispatcher = None
        if self._queue is not None:
            while not self._queue.empty():
                _, fut = self._queue.get_nowait()
                if not fut.done():
                    fut.set_result(_error("shutdown", "service is shutting down"))
        loop = asyncio.get_running_loop()
        await asyncio.gather(
            *(loop.run_in_executor(self._executor, worker.stop) for worker in self.workers),
            return_exceptions=True,
        )
        self._executor.shutdown(wait=True)

    def reap_workers(self) -> None:
        """Last-resort synchronous cleanup: kill any surviving children.

        Registered via ``atexit`` by :func:`run_service` so an interpreter
        that exits without the graceful path (an exception past the loop,
        a signal handled as a plain exit) never leaves orphaned shard
        workers burning CPU.  Safe to call repeatedly.
        """
        self._monitor_stop.set()
        for supervisor in self.workers:
            try:
                process = supervisor.worker.process
                if process is not None and process.is_alive():
                    process.kill()
                    process.join(2)
            except Exception:
                pass

    # -- request entry ------------------------------------------------

    async def handle_request(self, message: dict) -> dict:
        """Answer one decoded request message (any op)."""
        op = message.get("op")
        self._requests_total.inc(1, op=str(op))
        if op == "ping":
            return {
                "ok": True,
                "server": "repro-service",
                "protocol": PROTOCOL_VERSION,
                "shards": self.manifest.n_shards,
                "objects": self.manifest.objects,
                "length": self.manifest.length,
                "measure": self.measure.name,
                "backend": self.backend,
                "cache": self.cache is not None,
            }
        if op == "health":
            return self._health_response()
        if op == "metrics":
            return await self._metrics_response()
        if op == "shutdown":
            if self.shutdown_event is not None:
                self.shutdown_event.set()
            return {"ok": True, "message": "shutting down"}
        if op in ("knn", "range"):
            if self._queue is None:
                return _error("not-started", "service dispatcher is not running")
            fut = asyncio.get_running_loop().create_future()
            await self._queue.put((message, fut))
            return await fut
        return _error("bad-request", f"unknown op {op!r}")

    # -- dispatcher ---------------------------------------------------

    async def _dispatch_loop(self) -> None:
        while True:
            batch = [await self._queue.get()]
            if self.batch_window > 0:
                # Let concurrently arriving requests join this batch.
                await asyncio.sleep(self.batch_window)
            while len(batch) < self.max_batch:
                try:
                    batch.append(self._queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            try:
                await self._run_batch(batch)
            except Exception as exc:  # pragma: no cover - defensive
                for _, fut in batch:
                    if not fut.done():
                        fut.set_result(_error("internal", repr(exc)))

    def _normalize(self, message: dict) -> dict:
        kind = message["op"]
        query = message.get("query")
        if not isinstance(query, list) or not query:
            raise ValueError("query must be a non-empty list of numbers")
        if len(query) != self.manifest.length:
            raise ValueError(
                f"query length {len(query)} != shard set length {self.manifest.length}"
            )
        timeout_ms = message.get("timeout_ms")
        if timeout_ms is None:
            budget = self.request_timeout
        else:
            budget = float(timeout_ms) / 1000.0
            if budget <= 0:
                raise ValueError(f"timeout_ms must be positive, got {timeout_ms}")
        request = {
            "kind": kind,
            "query": [float(x) for x in query],
            "mirror": bool(message.get("mirror", False)),
            "max_degrees": message.get("max_degrees"),
            "wedge_set_size": int(message.get("wedge_set_size", 8)),
            "allow_partial": bool(message.get("allow_partial", False)),
            "deadline": time.monotonic() + budget,
        }
        if kind == "knn":
            k = int(message.get("k", 1))
            if k < 1:
                raise ValueError(f"k must be positive, got {k}")
            request["k"] = k
        else:
            radius = float(message["radius"])
            if radius < 0:
                raise ValueError(f"radius must be non-negative, got {radius}")
            request["radius"] = radius
        return request

    def _cache_key(self, request: dict) -> tuple:
        knobs = {
            "mirror": request["mirror"],
            "max_degrees": request["max_degrees"],
            "wedge_set_size": request["wedge_set_size"],
        }
        if request["kind"] == "knn":
            knobs["k"] = request["k"]
        else:
            knobs["radius"] = request["radius"]
        # The shard-manifest checksum scopes every entry to this exact
        # shard set: a re-sharded or rebuilt dataset can never serve a
        # stale answer, even through a process that kept its cache.
        return AnswerCache.make_key(
            request["kind"],
            request["query"],
            self.measure,
            scope=self.manifest.checksum,
            **knobs,
        )

    async def _run_batch(self, batch: list) -> None:
        self._batch_sizes.observe(len(batch))
        jobs: list[dict] = []  # distinct requests to actually compute
        job_keys: list[tuple | None] = []
        job_by_key: dict[tuple, int] = {}
        plans: list[tuple] = []  # per batch item: ("done", resp) | ("job", idx, req)
        for message, _fut in batch:
            try:
                request = self._normalize(message)
            except (KeyError, TypeError, ValueError) as exc:
                plans.append(("done", _error("bad-request", str(exc))))
                continue
            if request["deadline"] <= time.monotonic():
                self._deadline_exceeded.inc(1)
                plans.append(
                    ("done", _error("deadline-exceeded", "deadline expired before dispatch"))
                )
                continue
            use_cache = self.cache is not None and not message.get("no_cache", False)
            key = self._cache_key(request) if use_cache else None
            if use_cache:
                cached = self.cache.get(key)
                if cached is not None:
                    response = {**cached, "ok": True, "cached": True}
                    self._log_query(request, response)
                    plans.append(("done", response))
                    continue
                if key in job_by_key:
                    # Identical query already in this batch: compute once.
                    plans.append(("job", job_by_key[key], request))
                    continue
                job_by_key[key] = len(jobs)
            plans.append(("job", len(jobs), request))
            jobs.append(request)
            job_keys.append(key)

        answers: list[dict | None] = []
        missing: list[tuple[int, dict]] = []  # (shard_id, structured error)
        if jobs:
            outcomes, wall = await self._fan_out(jobs)
            ok_replies = [
                outcome for _status, outcome in (outcomes[w.shard_id] for w in self.workers)
                if _status == "ok"
            ]
            missing = [
                (w.shard_id, outcome)
                for w in self.workers
                for _status, outcome in (outcomes[w.shard_id],)
                if _status != "ok"
            ]
            missing_ids = [shard_id for shard_id, _ in missing]
            for j, request in enumerate(jobs):
                if not ok_replies:
                    answers.append(None)
                    continue
                answer = self._merge_job(request, j, ok_replies, wall, missing_ids)
                if job_keys[j] is not None and not missing:
                    # Partial answers are never cached: the cache must
                    # only ever serve the full exact merge.
                    self.cache.put(job_keys[j], answer)
                answers.append(answer)

        for (message, fut), plan in zip(batch, plans):
            if fut.done():
                continue
            if plan[0] == "done":
                fut.set_result(plan[1])
                continue
            _tag, idx, request = plan
            fut.set_result(self._job_response(request, answers[idx], missing))

    def _job_response(self, request: dict, answer: dict | None, missing: list) -> dict:
        """Decide one message's reply from its job answer + missing shards."""
        if not missing:
            response = {**answer, "ok": True, "cached": False}
            self._log_query(request, response)
            return response
        missing_ids = [shard_id for shard_id, _ in missing]
        if answer is not None and request["allow_partial"]:
            self._partial_results.inc(1)
            response = {**answer, "ok": True, "cached": False}
            self._log_query(request, response)
            return response
        # Surface the first failing shard's structured error, annotated
        # with the full missing set so the caller knows the blast radius.
        first_error = missing[0][1]["error"]
        if first_error["type"] == "deadline-exceeded":
            self._deadline_exceeded.inc(1)
        return {
            "ok": False,
            "error": {**first_error, "missing_shards": missing_ids},
        }

    async def _fan_out(self, jobs: list[dict]):
        """Ship one chunk to every worker, retrying failed shards once.

        Returns ``(outcomes, wall)`` where ``outcomes`` maps shard id to
        ``(status, payload)``: ``("ok", reply)`` for answered shards, or a
        failure status with a structured error.  The deadline budget (the
        tightest in the batch -- members arrive within one 2 ms window) is
        split across the initial attempt and ``retry_budget`` retries.
        """
        loop = asyncio.get_running_loop()
        wire = [{k: v for k, v in job.items() if k not in _COORDINATOR_KEYS} for job in jobs]
        deadline = min(job["deadline"] for job in jobs)
        start = time.perf_counter()
        outcomes: dict[int, tuple[str, dict]] = {}
        ask = list(self.workers)
        for attempt in range(self.retry_budget + 1):
            if not ask:
                break
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            reserve = self.retry_budget - attempt
            if reserve > 0:
                slice_timeout = min(
                    remaining, max(remaining / (reserve + 1), MIN_SLICE_SECONDS)
                )
            else:
                slice_timeout = remaining
            chunk = {"op": "search", "requests": wire, "budget_seconds": slice_timeout}
            replies = await asyncio.gather(
                *(
                    loop.run_in_executor(self._executor, worker.request, chunk, slice_timeout)
                    for worker in ask
                ),
                return_exceptions=True,
            )
            retry: list = []
            for worker, reply in zip(ask, replies):
                status, outcome = self._classify(worker, reply)
                if status in ("died", "timeout") and attempt < self.retry_budget:
                    self._shard_retries.inc(1, shard=str(worker.shard_id))
                    retry.append(worker)
                else:
                    outcomes[worker.shard_id] = (status, outcome)
            ask = retry
        for worker in ask:
            # Deadline spent before this shard's (re)try could run.
            outcomes[worker.shard_id] = (
                "timeout",
                _error(
                    "deadline-exceeded",
                    f"deadline exhausted before shard {worker.shard_id} answered",
                    shard=worker.shard_id,
                ),
            )
        wall = time.perf_counter() - start
        return outcomes, wall

    def _classify(self, worker, reply) -> tuple[str, dict]:
        """Map one shard's raw fan-out result to ``(status, payload)``."""
        shard = worker.shard_id
        if isinstance(reply, dict):
            if reply.get("ok"):
                return ("ok", reply)
            if reply.get("error_type") == "deadline-exceeded":
                return (
                    "timeout",
                    _error("worker-timeout", str(reply.get("error")), shard=shard),
                )
            return (
                "fatal",
                _error(
                    "worker-error",
                    str(reply.get("error", "unknown worker error")),
                    shard=shard,
                ),
            )
        if isinstance(reply, WorkerDiedError):
            self._worker_deaths.inc(1, shard=str(reply.shard_id))
            return (
                "died",
                _error(
                    "worker-died",
                    f"shard worker {reply.shard_id} died mid-query: {reply}",
                    shard=reply.shard_id,
                ),
            )
        if isinstance(reply, ShardDegradedError):
            return ("fatal", _error("shard-degraded", str(reply), shard=shard))
        if isinstance(reply, TimeoutError):
            return ("timeout", _error("worker-timeout", str(reply), shard=shard))
        return ("fatal", _error("internal", repr(reply), shard=shard))

    def _merge_job(
        self,
        request: dict,
        j: int,
        shard_replies: list,
        wall: float,
        missing_ids: list[int] | None = None,
    ) -> dict:
        from repro.core.search import merge_neighbors
        from repro.mining.queries import Neighbor

        partials = [
            [Neighbor(int(i), float(d), int(rot)) for i, d, rot in reply["results"][j]["neighbors"]]
            for reply in shard_replies
        ]
        if request["kind"] == "knn":
            merged = merge_neighbors(partials, request["k"])
        else:
            # range_search orders by database position; the global answer
            # does the same over global indices.
            merged = sorted((nb for part in partials for nb in part), key=lambda nb: nb.index)
        steps = sum(reply["results"][j]["steps"] for reply in shard_replies)
        answer = {
            "kind": request["kind"],
            "neighbors": [[nb.index, nb.distance, nb.rotation] for nb in merged],
            "steps": steps,
            "wall_seconds": wall,
            "shards": self.manifest.n_shards,
            "shards_answered": len(shard_replies),
            "partial": bool(missing_ids),
            "backend": self.backend,
            "measure": self.measure.name,
        }
        if missing_ids:
            answer["missing_shards"] = list(missing_ids)
        return answer

    def _log_query(self, request: dict, response: dict) -> None:
        if self.query_log is None:
            return
        self._query_seq += 1
        top = response["neighbors"][0] if response["neighbors"] else None
        self.query_log.log(
            {
                "query_id": f"svc-{self._query_seq:06d}",
                "op": request["kind"],
                "measure": self.measure.name,
                "backend": self.backend,
                "shards": self.manifest.n_shards,
                "cached": response.get("cached", False),
                "partial": response.get("partial", False),
                "k": request.get("k"),
                "radius": request.get("radius"),
                "steps": response["steps"],
                "wall_seconds": response["wall_seconds"],
                "n_results": len(response["neighbors"]),
                "result_index": top[0] if top else None,
                "distance": top[1] if top else None,
                "rotation": top[2] if top else None,
            }
        )

    # -- health and metrics -------------------------------------------

    def _health_response(self) -> dict:
        """Supervisor state per shard, plus resilience counters.

        Never touches the workers themselves -- health must stay cheap
        and answerable even while every shard is crash-looping.
        """
        shards = [worker.describe() for worker in self.workers]
        states = {entry["state"] for entry in shards}
        if "degraded" in states:
            status = "degraded"
        elif "restarting" in states:
            status = "restarting"
        else:
            status = "ok"
        return {
            "ok": True,
            "server": "repro-service",
            "protocol": PROTOCOL_VERSION,
            "status": status,
            "shards": shards,
            "restarts": sum(entry["restarts"] for entry in shards),
            "counters": {
                "worker_deaths": self._worker_deaths.total(),
                "worker_restarts": self.registry.counter(
                    "service_worker_restarts_total"
                ).total(),
                "shard_retries": self._shard_retries.total(),
                "deadline_exceeded": self._deadline_exceeded.total(),
                "partial_results": self._partial_results.total(),
            },
        }

    async def _metrics_response(self) -> dict:
        loop = asyncio.get_running_loop()
        replies = await asyncio.gather(
            *(
                loop.run_in_executor(
                    self._executor, worker.request, {"op": "metrics"}, self.request_timeout
                )
                for worker in self.workers
            ),
            return_exceptions=True,
        )
        merged = MetricsRegistry()
        unreachable: list[int] = []
        for worker, reply in zip(self.workers, replies):
            # A dead or degraded shard must not take /metrics down with
            # it: fold what is reachable and name the rest.
            if isinstance(reply, WorkerDiedError):
                self._worker_deaths.inc(1, shard=str(reply.shard_id))
                unreachable.append(worker.shard_id)
                continue
            if isinstance(reply, BaseException):
                unreachable.append(worker.shard_id)
                continue
            merged.merge(registry_from_dict(reply["metrics"]))
        merged.merge(self.registry)
        if self.cache is not None:
            self.cache.record_into(merged)
        response = {"ok": True, "prometheus": merged.to_prometheus()}
        if unreachable:
            response["unreachable_shards"] = unreachable
        if self.cache is not None:
            response["cache"] = self.cache.stats()
        return response


# -- TCP front-end ----------------------------------------------------


async def serve(service: ShardedSearchService, host: str = "127.0.0.1", port: int = 0):
    """Start the length-prefixed-JSON TCP server; returns the asyncio server.

    Open connections and their handler tasks are tracked on the service so
    a shutdown can drain them gracefully (close the transports, let each
    handler observe EOF and finish) instead of leaving tasks to be killed
    mid-read by loop teardown.
    """

    async def handler(reader, writer):
        task = asyncio.current_task()
        service._handler_tasks.add(task)
        service._client_writers.add(writer)
        try:
            while True:
                try:
                    message = await read_frame(reader)
                except ProtocolError as exc:
                    with contextlib.suppress(Exception):
                        await write_frame(writer, _error("protocol", str(exc)))
                    break
                if message is None:
                    break
                response = await service.handle_request(message)
                await write_frame(writer, response)
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            service._handler_tasks.discard(task)
            service._client_writers.discard(writer)
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    await service.start()
    return await asyncio.start_server(handler, host, port)


async def _serve_until_shutdown(
    service, host, port, ready_callback=None, install_signal_handlers=None
) -> None:
    server = await serve(service, host, port)
    actual_port = server.sockets[0].getsockname()[1]
    loop = asyncio.get_running_loop()
    if install_signal_handlers is None:
        install_signal_handlers = threading.current_thread() is threading.main_thread()
    installed: list = []
    if install_signal_handlers:
        # SIGTERM/SIGINT become a graceful shutdown: drain connections,
        # stop the workers -- the fix for the orphaned-worker leak when
        # `repro serve` is killed by the init system or Ctrl-C.
        for sig in (signal.SIGTERM, signal.SIGINT):
            with contextlib.suppress(NotImplementedError, RuntimeError, ValueError):
                loop.add_signal_handler(sig, service.shutdown_event.set)
                installed.append(sig)
    if ready_callback is not None:
        ready_callback(service, actual_port, loop)
    try:
        await service.shutdown_event.wait()
    finally:
        for sig in installed:
            with contextlib.suppress(Exception):
                loop.remove_signal_handler(sig)
        server.close()
        await server.wait_closed()
        # Drain live connections: closing the transports lets each handler
        # see EOF and exit on its own before the loop is torn down.
        for writer in list(service._client_writers):
            writer.close()
        if service._handler_tasks:
            await asyncio.gather(*list(service._handler_tasks), return_exceptions=True)
        await service.aclose()


def run_service(shards_dir, measure, host: str = "127.0.0.1", port: int = 0, **kwargs) -> None:
    """Blocking entry point for ``repro serve``: serve until a shutdown op.

    Installs SIGTERM/SIGINT handlers (when running on the main thread)
    that trigger the graceful drain, plus an ``atexit`` reaper so shard
    worker processes are never orphaned however the interpreter exits.
    """
    on_ready = kwargs.pop("on_ready", None)
    install_signal_handlers = kwargs.pop("install_signal_handlers", None)
    service = ShardedSearchService(shards_dir, measure, **kwargs)
    atexit.register(service.reap_workers)
    try:
        asyncio.run(
            _serve_until_shutdown(service, host, port, on_ready, install_signal_handlers)
        )
    finally:
        atexit.unregister(service.reap_workers)
        service.reap_workers()


class ServiceHandle:
    """A service running in a background thread (tests, benchmarks, CI)."""

    def __init__(self):
        self.service: ShardedSearchService | None = None
        self.loop: asyncio.AbstractEventLoop | None = None
        self.port: int | None = None
        self.thread: threading.Thread | None = None
        self.error: BaseException | None = None

    def request(self, message: dict, timeout: float = 120.0) -> dict:
        """Thread-safe in-process request (bypasses TCP, same code path)."""
        future = asyncio.run_coroutine_threadsafe(
            self.service.handle_request(message), self.loop
        )
        return future.result(timeout)

    def close(self, timeout: float = 30.0) -> None:
        if self.thread is None or not self.thread.is_alive():
            return
        self.loop.call_soon_threadsafe(self.service.shutdown_event.set)
        self.thread.join(timeout)


def start_service_thread(shards_dir, measure, **kwargs) -> ServiceHandle:
    """Run a full service (TCP included) in a daemon thread; returns its handle."""
    host = kwargs.pop("host", "127.0.0.1")
    port = kwargs.pop("port", 0)
    handle = ServiceHandle()
    ready = threading.Event()

    def on_ready(service, actual_port, loop):
        handle.service = service
        handle.port = actual_port
        handle.loop = loop
        ready.set()

    def runner():
        try:
            run_service(shards_dir, measure, host, port, on_ready=on_ready, **kwargs)
        except BaseException as exc:  # startup or serve failure
            handle.error = exc
            ready.set()

    handle.thread = threading.Thread(target=runner, name="repro-service", daemon=True)
    handle.thread.start()
    ready.wait(60.0)
    if handle.error is not None:
        raise handle.error
    if handle.port is None:
        raise RuntimeError("service failed to start within 60s")
    return handle
