"""Agglomerative hierarchical clustering, built from scratch.

The paper derives its wedge sets from "the result of a hierarchal clustering
algorithm" using **group average linkage** (Figure 9), and its sanity-check
experiments cluster primate and reptile skulls the same way (Figures 16-17).
This module implements single, complete, and group-average linkage over an
arbitrary precomputed distance matrix.

The implementation uses the **nearest-neighbour-chain** algorithm, which is
exact for any reducible linkage (all three offered here) and runs in
``O(k^2)`` time with vectorised Lance-Williams updates -- fast enough to
cluster all 1,024 rotations of a long query series.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Merge", "linkage", "LINKAGES"]

LINKAGES = ("single", "complete", "average")


@dataclass(frozen=True)
class Merge:
    """One agglomeration step.

    ``left`` and ``right`` are node ids: ids ``0..k-1`` are the original
    observations; merge ``t`` creates node ``k + t``.  ``height`` is the
    linkage distance at which the two clusters were joined, and ``size`` the
    number of observations in the new cluster.
    """

    left: int
    right: int
    height: float
    size: int


def linkage(distance_matrix, method: str = "average") -> list[Merge]:
    """Cluster ``k`` observations given their ``k x k`` distance matrix.

    Parameters
    ----------
    distance_matrix:
        Symmetric matrix of pairwise distances with a zero diagonal.
    method:
        One of ``"single"``, ``"complete"``, ``"average"`` (the paper's
        group-average linkage).

    Returns
    -------
    list[Merge]
        ``k - 1`` merges ordered by non-decreasing height (the standard
        dendrogram ordering).  A single observation yields an empty list.
    """
    if method not in LINKAGES:
        raise ValueError(f"unknown linkage {method!r}; choose from {LINKAGES}")
    dist = np.array(distance_matrix, dtype=np.float64)
    if dist.ndim != 2 or dist.shape[0] != dist.shape[1]:
        raise ValueError(f"distance matrix must be square, got shape {dist.shape}")
    k = dist.shape[0]
    if k == 0:
        raise ValueError("cannot cluster zero observations")
    if not np.allclose(dist, dist.T, atol=1e-9):
        raise ValueError("distance matrix must be symmetric")
    if k == 1:
        return []

    # Active working copy; row/col ``i`` describes current cluster ``i``.
    work = dist.copy()
    np.fill_diagonal(work, np.inf)
    active = np.ones(k, dtype=bool)
    sizes = np.ones(k, dtype=np.int64)
    # node_id[i] is the dendrogram id currently living in slot i.
    node_id = np.arange(k)
    merges: list[Merge] = []
    next_id = k
    chain: list[int] = []

    while len(merges) < k - 1:
        if not chain:
            chain.append(int(np.flatnonzero(active)[0]))
        # Distances of rotation sets are near-circulant: huge families of
        # pairs tie up to ~1e-14 of numerical noise.  Exact comparisons make
        # the chain orbit those pseudo-ties forever, so ties are detected
        # with a relative tolerance and always resolved toward the previous
        # chain element (forcing a reciprocal pair).
        n_active = int(active.sum())
        while True:
            tip = chain[-1]
            row = work[tip]
            nearest = int(np.argmin(row))
            if len(chain) > 1:
                prev = chain[-2]
                tolerance = 1e-9 * max(abs(row[nearest]), 1e-30) + 1e-12
                if row[prev] <= row[nearest] + tolerance:
                    nearest = prev
                if nearest == prev:
                    break
            if len(chain) > n_active:
                # Safety net: a chain longer than the number of live
                # clusters must contain a repeat; merge the tip with its
                # nearest neighbour rather than walking on.
                chain = [tip]
                chain.append(nearest)
                break
            chain.append(nearest)
        b = chain.pop()
        a = chain.pop()
        height = float(work[a, b])
        merged_size = int(sizes[a] + sizes[b])
        merges.append(Merge(int(node_id[a]), int(node_id[b]), height, merged_size))

        # Lance-Williams update into slot ``a``; slot ``b`` is retired.
        if method == "single":
            new_row = np.minimum(work[a], work[b])
        elif method == "complete":
            new_row = np.maximum(work[a], work[b])
        else:  # average
            new_row = (sizes[a] * work[a] + sizes[b] * work[b]) / merged_size
        new_row[~active] = np.inf
        new_row[a] = np.inf
        new_row[b] = np.inf
        work[a] = new_row
        work[:, a] = new_row
        work[b] = np.inf
        work[:, b] = np.inf
        active[b] = False
        sizes[a] = merged_size
        node_id[a] = next_id
        next_id += 1

    # NN-chain may discover merges out of height order; renumber into the
    # standard sorted-by-height dendrogram encoding.
    return _sort_merges(merges, k)


def _sort_merges(merges: list[Merge], k: int) -> list[Merge]:
    """Re-encode merges in non-decreasing height order with stable ids.

    Reducible linkages are mathematically monotone (a parent's height is
    never below its children's), but floating-point averaging can dip a
    parent 1 ulp under a child; heights are clamped monotone first so the
    (height, creation-index) sort always places children before parents.
    """
    clamped: list[float] = []
    for t, merge in enumerate(merges):
        height = merge.height
        for child in (merge.left, merge.right):
            if child >= k:
                height = max(height, clamped[child - k])
        clamped.append(height)
        if height != merge.height:
            merges[t] = Merge(merge.left, merge.right, height, merge.size)
    order = sorted(range(len(merges)), key=lambda t: (merges[t].height, t))
    remap: dict[int, int] = {}
    for new_pos, old_pos in enumerate(order):
        remap[k + old_pos] = k + new_pos

    def translate(node: int) -> int:
        return remap.get(node, node)

    result = []
    for old_pos in order:
        m = merges[old_pos]
        result.append(Merge(translate(m.left), translate(m.right), m.height, m.size))
    return result
