"""Dendrogram trees built from merge lists, with K-frontier cuts.

The paper derives wedge sets "of every size from 1 to 5" from a dendrogram
(Figure 10): cutting a dendrogram into ``K`` subtrees yields the ``K`` wedge
sets of the H-Merge search.  :meth:`Dendrogram.cut` performs that operation
for any ``K``, and :meth:`Dendrogram.render` draws the tree as ASCII art for
the clustering sanity-check examples (Figures 16-18).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.clustering.linkage import Merge

__all__ = ["ClusterNode", "Dendrogram"]


@dataclass
class ClusterNode:
    """A node of the dendrogram.

    Leaves carry a single observation index; internal nodes carry the merge
    height at which their two children were joined.
    """

    id: int
    height: float = 0.0
    children: tuple["ClusterNode", ...] = ()
    members: tuple[int, ...] = field(default_factory=tuple)

    @property
    def is_leaf(self) -> bool:
        return not self.children

    def __iter__(self):
        yield self
        for child in self.children:
            yield from child


class Dendrogram:
    """The full agglomeration tree over ``k`` observations."""

    def __init__(self, merges: list[Merge], k: int, labels: list[str] | None = None):
        if labels is not None and len(labels) != k:
            raise ValueError(f"expected {k} labels, got {len(labels)}")
        if len(merges) != max(0, k - 1):
            raise ValueError(f"expected {k - 1} merges for {k} observations, got {len(merges)}")
        self.k = k
        self.labels = list(labels) if labels is not None else [str(i) for i in range(k)]
        nodes: dict[int, ClusterNode] = {
            i: ClusterNode(id=i, members=(i,)) for i in range(k)
        }
        for t, merge in enumerate(merges):
            left = nodes[merge.left]
            right = nodes[merge.right]
            nodes[k + t] = ClusterNode(
                id=k + t,
                height=merge.height,
                children=(left, right),
                members=tuple(sorted(left.members + right.members)),
            )
        self.root = nodes[k + len(merges) - 1] if merges else nodes[0]
        self._nodes = nodes

    def node(self, node_id: int) -> ClusterNode:
        """Look up a node by id (0..k-1 leaves, then merges in order)."""
        return self._nodes[node_id]

    def cut(self, k_clusters: int) -> list[ClusterNode]:
        """Split the tree into ``k_clusters`` subtrees (Figure 10's wedge sets).

        Repeatedly splits the frontier node with the greatest merge height,
        which is equivalent to removing the ``k_clusters - 1`` tallest
        merges.  Returns the frontier ordered by each subtree's smallest
        member index, so cuts are deterministic.
        """
        if not 1 <= k_clusters <= self.k:
            raise ValueError(f"k_clusters must be in [1, {self.k}], got {k_clusters}")
        frontier = [self.root]
        while len(frontier) < k_clusters:
            split_idx = max(
                (i for i, node in enumerate(frontier) if not node.is_leaf),
                key=lambda i: frontier[i].height,
            )
            node = frontier.pop(split_idx)
            frontier.extend(node.children)
        return sorted(frontier, key=lambda node: node.members[0])

    def cluster_assignments(self, k_clusters: int) -> list[int]:
        """Cluster label (0-based) of every observation under a ``k`` cut."""
        assignment = [0] * self.k
        for label, node in enumerate(self.cut(k_clusters)):
            for member in node.members:
                assignment[member] = label
        return assignment

    def render(self, max_width: int = 72) -> str:
        """ASCII rendering of the tree with labelled leaves."""
        lines: list[str] = []

        def walk(node: ClusterNode, prefix: str, connector: str) -> None:
            if node.is_leaf:
                lines.append(f"{prefix}{connector}{self.labels[node.id]}")
                return
            lines.append(f"{prefix}{connector}+ h={node.height:.4g}")
            child_prefix = prefix + ("|  " if connector == "|- " else "   ")
            walk(node.children[0], child_prefix, "|- ")
            walk(node.children[1], child_prefix, "`- ")

        walk(self.root, "", "")
        return "\n".join(line[:max_width] for line in lines)

    def cophenetic_distance(self, i: int, j: int) -> float:
        """Height of the smallest subtree containing both observations."""
        if i == j:
            return 0.0
        node = self.root
        while not node.is_leaf:
            in_left = [i in child.members for child in node.children]
            in_both_same = None
            for child in node.children:
                if i in child.members and j in child.members:
                    in_both_same = child
                    break
            if in_both_same is None:
                return node.height
            node = in_both_same
        raise KeyError(f"observations {i}, {j} not found in tree")
