"""Hierarchical clustering (from scratch) and dendrograms."""

from repro.clustering.dendrogram import ClusterNode, Dendrogram
from repro.clustering.linkage import LINKAGES, Merge, linkage

__all__ = ["linkage", "Merge", "LINKAGES", "Dendrogram", "ClusterNode"]
