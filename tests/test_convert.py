"""Tests for shape -> time-series conversion (Figure 2, B -> C)."""

import math

import numpy as np
import pytest

from repro.shapes.convert import (
    contour_to_series,
    polygon_centroid,
    polygon_to_series,
    resample_closed_curve,
)
from repro.shapes.generators import regular_polygon, rotate_polygon, star_polygon
from repro.shapes.transforms import scale_polygon, translate_polygon


class TestPolygonCentroid:
    def test_square_centroid(self):
        square = np.array([[0.0, 0.0], [2.0, 0.0], [2.0, 2.0], [0.0, 2.0]])
        assert np.allclose(polygon_centroid(square), [1.0, 1.0])

    def test_translation_covariance(self, rng):
        poly = star_polygon(5)
        shifted = translate_polygon(poly, 3.0, -7.0)
        assert np.allclose(polygon_centroid(shifted), polygon_centroid(poly) + [3.0, -7.0])

    def test_centroid_weighted_by_area_not_vertices(self):
        """Extra collinear vertices must not move the area centroid."""
        square = np.array([[0.0, 0.0], [2.0, 0.0], [2.0, 2.0], [0.0, 2.0]])
        dense = np.array(
            [[0.0, 0.0], [0.5, 0.0], [1.0, 0.0], [1.5, 0.0], [2.0, 0.0], [2.0, 2.0], [0.0, 2.0]]
        )
        assert np.allclose(polygon_centroid(dense), polygon_centroid(square))

    def test_rejects_degenerate_input(self):
        with pytest.raises(ValueError):
            polygon_centroid(np.array([[0.0, 0.0], [1.0, 1.0]]))


class TestResampleClosedCurve:
    def test_sample_count_and_start(self):
        poly = regular_polygon(6)
        samples = resample_closed_curve(poly, 60)
        assert samples.shape == (60, 2)
        assert np.allclose(samples[0], poly[0])

    def test_uniform_arc_spacing(self):
        samples = resample_closed_curve(regular_polygon(4), 40)
        closed = np.vstack([samples, samples[:1]])
        gaps = np.hypot(*np.diff(closed, axis=0).T)
        assert gaps.max() / gaps.min() < 1.2

    def test_rejects_zero_length_curve(self):
        with pytest.raises(ValueError):
            resample_closed_curve(np.zeros((3, 2)), 10)


class TestPolygonToSeries:
    def test_circle_is_flat(self):
        series = polygon_to_series(regular_polygon(180), 64, normalize=False)
        assert series.std() / series.mean() < 0.01

    def test_star_has_peaks_per_point(self):
        series = polygon_to_series(star_polygon(5), 200, normalize=False)
        # Autocorrelation at lag n/5 should be strong (5-fold symmetry).
        z = series - series.mean()
        autocorr = np.correlate(np.concatenate([z, z]), z, mode="valid")[:200]
        assert autocorr[40] > 0.8 * autocorr[0]

    def test_scale_invariance_when_normalized(self):
        poly = star_polygon(7)
        a = polygon_to_series(poly, 90)
        b = polygon_to_series(scale_polygon(poly, 13.0), 90)
        assert np.allclose(a, b, atol=1e-9)

    def test_offset_invariance(self):
        poly = star_polygon(7)
        a = polygon_to_series(poly, 90)
        b = polygon_to_series(translate_polygon(poly, 100.0, -50.0), 90)
        assert np.allclose(a, b, atol=1e-9)

    def test_rigid_rotation_leaves_series_unchanged(self):
        """Rotating coordinates does not move the traversal start: the
        series is identical.  (Image rotation enters as a *shift* of the
        trace start; see the rotation tests.)"""
        poly = star_polygon(5)
        a = polygon_to_series(poly, 100)
        b = polygon_to_series(rotate_polygon(poly, 72.0), 100)
        assert np.allclose(a, b, atol=1e-6)

    def test_vertex_roll_becomes_circular_shift(self):
        """Starting the traversal k vertices later shifts the series."""
        poly = star_polygon(4, outer=1.0, inner=0.5)  # 8 vertices
        n = 160  # 20 samples per vertex gap
        a = polygon_to_series(poly, n)
        b = polygon_to_series(np.roll(poly, -2, axis=0), n)
        shifted = np.roll(a, -2 * n // 8)
        assert np.allclose(b, shifted, atol=1e-6)


class TestContourToSeries:
    def test_matches_polygon_path_for_smooth_shape(self):
        """Bitmap pipeline and vector pipeline agree up to rasterisation."""
        from repro.core.search import brute_force_search
        from repro.distances.euclidean import EuclideanMeasure
        from repro.shapes.contour import largest_contour
        from repro.shapes.image import rasterize_polygon

        poly = star_polygon(5)
        vector_series = polygon_to_series(poly, 128)
        img = rasterize_polygon(poly, resolution=96)
        pixel_series = contour_to_series(largest_contour(img), 128)
        # Compare rotation-invariantly: the trace start is arbitrary.
        result = brute_force_search([vector_series], pixel_series, EuclideanMeasure())
        assert result.distance < 0.2 * math.sqrt(128)

    def test_rejects_short_contours(self):
        with pytest.raises(ValueError):
            contour_to_series(np.array([[0, 0], [1, 1]]), 16)

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            contour_to_series(np.zeros((5, 3)), 16)
