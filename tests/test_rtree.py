"""Tests for the STR bulk-loaded R-tree."""

import math

import numpy as np
import pytest

from repro.index.rtree import Rect, RTree


class TestRect:
    def test_from_points(self, rng):
        pts = rng.normal(size=(10, 3))
        rect = Rect.from_points(pts)
        assert np.array_equal(rect.lows, pts.min(axis=0))
        assert np.array_equal(rect.highs, pts.max(axis=0))

    def test_union(self):
        a = Rect.from_bounds([0, 0], [1, 1])
        b = Rect.from_bounds([2, -1], [3, 0.5])
        u = a.union(b)
        assert u.lows.tolist() == [0, -1]
        assert u.highs.tolist() == [3, 1]

    def test_mindist_point_inside_is_zero(self):
        rect = Rect.from_bounds([0, 0], [2, 2])
        assert rect.mindist_point(np.array([1.0, 1.0])) == 0.0

    def test_mindist_point_outside(self):
        rect = Rect.from_bounds([0, 0], [1, 1])
        assert math.isclose(rect.mindist_point(np.array([4.0, 5.0])), 5.0)

    def test_mindist_rect_overlapping_is_zero(self):
        a = Rect.from_bounds([0, 0], [2, 2])
        b = Rect.from_bounds([1, 1], [3, 3])
        assert a.mindist_rect(b) == 0.0

    def test_mindist_rect_disjoint(self):
        a = Rect.from_bounds([0, 0], [1, 1])
        b = Rect.from_bounds([4, 5], [6, 7])
        assert math.isclose(a.mindist_rect(b), 5.0)

    def test_mindist_rect_symmetric(self, rng):
        a = Rect.from_points(rng.normal(size=(4, 3)))
        b = Rect.from_points(rng.normal(size=(4, 3)) + 3)
        assert math.isclose(a.mindist_rect(b), b.mindist_rect(a))

    def test_contains_point(self):
        rect = Rect.from_bounds([0, 0], [1, 1])
        assert rect.contains_point([0.5, 1.0])
        assert not rect.contains_point([1.5, 0.5])

    def test_validation(self):
        with pytest.raises(ValueError):
            Rect.from_bounds([1, 0], [0, 1])
        with pytest.raises(ValueError):
            Rect.from_points(np.zeros((0, 2)))


class TestRTreeConstruction:
    def test_rejects_bad_input(self, rng):
        with pytest.raises(ValueError):
            RTree(np.zeros((0, 2)))
        with pytest.raises(ValueError):
            RTree(rng.normal(size=(5, 2)), leaf_capacity=1)

    def test_height_grows_logarithmically(self, rng):
        small = RTree(rng.normal(size=(10, 2)), leaf_capacity=4)
        large = RTree(rng.normal(size=(500, 2)), leaf_capacity=4)
        assert small.height <= large.height <= 6

    def test_every_point_inside_root_mbr(self, rng):
        pts = rng.normal(size=(100, 4))
        tree = RTree(pts, leaf_capacity=8)
        for p in pts:
            assert tree._root.rect.contains_point(p)


class TestRTreeSearch:
    def drain(self, tree, query, radius):
        return list(tree.candidates_within(query, lambda: radius))

    def test_point_query_matches_bruteforce(self, rng):
        pts = rng.normal(size=(80, 5))
        tree = RTree(pts, leaf_capacity=6)
        for _ in range(8):
            q = rng.normal(size=5)
            radius = float(rng.uniform(0.5, 3.0))
            got = {i for _d, i in self.drain(tree, q, radius)}
            want = {i for i, p in enumerate(pts) if np.linalg.norm(p - q) < radius}
            assert got == want

    def test_ascending_order(self, rng):
        pts = rng.normal(size=(50, 3))
        tree = RTree(pts)
        dists = [d for d, _ in self.drain(tree, rng.normal(size=3), 10.0)]
        assert dists == sorted(dists)

    def test_rect_query_matches_bruteforce(self, rng):
        pts = rng.normal(size=(60, 4))
        tree = RTree(pts, leaf_capacity=5)
        rect = Rect.from_bounds(np.full(4, -0.3), np.full(4, 0.3))
        got = {i for _d, i in self.drain(tree, rect, 0.8)}
        want = {
            i for i, p in enumerate(pts) if rect.mindist_point(p) < 0.8
        }
        assert got == want

    def test_multi_rect_query_uses_minimum(self, rng):
        pts = rng.normal(size=(60, 2))
        tree = RTree(pts, leaf_capacity=5)
        rects = [
            Rect.from_bounds([-3, -3], [-2, -2]),
            Rect.from_bounds([2, 2], [3, 3]),
        ]
        got = {i for _d, i in self.drain(tree, rects, 0.7)}
        want = {
            i
            for i, p in enumerate(pts)
            if min(r.mindist_point(p) for r in rects) < 0.7
        }
        assert got == want

    def test_shrinking_radius_nn_is_exact(self, rng):
        pts = rng.normal(size=(120, 4))
        tree = RTree(pts, leaf_capacity=8)
        q = rng.normal(size=4)
        best, best_i = math.inf, -1
        for d, i in tree.candidates_within(q, lambda: best):
            if d < best:
                best, best_i = d, i
        truth = np.linalg.norm(pts - q, axis=1)
        assert best_i == int(np.argmin(truth))

    def test_pruning_saves_evaluations(self, rng):
        pts = rng.normal(size=(600, 4))
        tree = RTree(pts, leaf_capacity=8)
        tree.mindist_evaluations = 0
        list(tree.candidates_within(pts[5] + 0.001, lambda: 0.05))
        assert tree.mindist_evaluations < 400

    def test_single_point_tree(self):
        tree = RTree(np.array([[1.0, 2.0]]))
        assert self.drain(tree, np.array([1.0, 2.0]), 0.5) == [(0.0, 0)]

    def test_one_dimensional_points(self, rng):
        pts = rng.normal(size=(30, 1))
        tree = RTree(pts, leaf_capacity=4)
        q = np.array([0.0])
        got = {i for _d, i in self.drain(tree, q, 0.5)}
        want = {i for i, p in enumerate(pts) if abs(p[0]) < 0.5}
        assert got == want
