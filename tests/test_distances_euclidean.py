"""Tests for Euclidean distance with early abandoning (Table 1)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.counters import StepCounter
from repro.distances.euclidean import (
    EuclideanMeasure,
    ea_euclidean_distance,
    euclidean_distance,
)
from tests.conftest import naive_euclidean

floats = st.floats(min_value=-100, max_value=100, allow_nan=False)
pair_strategy = st.integers(2, 40).flatmap(
    lambda n: st.tuples(
        arrays(np.float64, n, elements=floats), arrays(np.float64, n, elements=floats)
    )
)


class TestEuclideanDistance:
    def test_matches_naive(self, rng):
        for _ in range(20):
            n = int(rng.integers(1, 30))
            q, c = rng.normal(size=n), rng.normal(size=n)
            assert math.isclose(euclidean_distance(q, c), naive_euclidean(q, c), abs_tol=1e-9)

    def test_identity(self, random_walk):
        series = random_walk(20)
        assert euclidean_distance(series, series) == 0.0

    def test_symmetry(self, rng):
        q, c = rng.normal(size=10), rng.normal(size=10)
        assert euclidean_distance(q, c) == euclidean_distance(c, q)

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            euclidean_distance([1.0], [1.0, 2.0])


class TestEarlyAbandoning:
    @given(pair_strategy, st.floats(min_value=0.0, max_value=50.0))
    @settings(max_examples=100, deadline=None)
    def test_never_lies(self, pair, r):
        """EA returns the exact distance or proves it exceeds r -- never both wrong."""
        q, c = pair
        true = euclidean_distance(q, c)
        dist, steps = ea_euclidean_distance(q, c, r)
        if math.isinf(dist):
            assert true > r or math.isclose(true, r, rel_tol=1e-12)
            assert steps <= q.size
        else:
            assert math.isclose(dist, true, rel_tol=1e-9, abs_tol=1e-12)
            assert steps == q.size

    def test_infinite_threshold_never_abandons(self, rng):
        q, c = rng.normal(size=15), rng.normal(size=15)
        dist, steps = ea_euclidean_distance(q, c, math.inf)
        assert math.isfinite(dist)
        assert steps == 15

    def test_abandons_at_first_element_when_possible(self):
        q = np.array([100.0, 0.0, 0.0])
        c = np.zeros(3)
        dist, steps = ea_euclidean_distance(q, c, 1.0)
        assert math.isinf(dist)
        assert steps == 1

    def test_exact_match_below_threshold(self):
        q = np.array([1.0, 2.0])
        dist, steps = ea_euclidean_distance(q, q, 0.5)
        assert dist == 0.0
        assert steps == 2

    def test_step_count_matches_scalar_semantics(self):
        """Abandon at the element whose contribution pushed past r^2."""
        q = np.array([1.0, 1.0, 1.0, 1.0])
        c = np.zeros(4)
        # r = 1.5 -> r^2 = 2.25; prefix sums 1, 2, 3 -> abandons at element 3.
        dist, steps = ea_euclidean_distance(q, c, 1.5)
        assert math.isinf(dist)
        assert steps == 3


class TestEuclideanMeasure:
    def test_distance_counts_steps(self, rng):
        measure = EuclideanMeasure()
        counter = StepCounter()
        q, c = rng.normal(size=12), rng.normal(size=12)
        measure.distance(q, c, counter=counter)
        assert counter.steps == 12
        assert counter.distance_calls == 1
        assert counter.early_abandons == 0

    def test_distance_counts_abandons(self):
        measure = EuclideanMeasure()
        counter = StepCounter()
        measure.distance(np.array([10.0, 0.0]), np.zeros(2), r=1.0, counter=counter)
        assert counter.early_abandons == 1

    def test_envelope_expansion_is_identity(self, rng):
        measure = EuclideanMeasure()
        u, lo = rng.normal(size=8), rng.normal(size=8) - 5
        u2, l2 = measure.expand_envelope(u, lo)
        assert np.array_equal(u2, u)
        assert np.array_equal(l2, lo)

    def test_lb_is_exact_for_singleton(self, rng):
        measure = EuclideanMeasure()
        assert measure.lb_exact_for_singleton
        q, c = rng.normal(size=10), rng.normal(size=10)
        lb = measure.lower_bound(q, c, c)
        assert math.isclose(lb, euclidean_distance(q, c), rel_tol=1e-12)

    def test_cache_key_stable(self):
        assert EuclideanMeasure().cache_key() == EuclideanMeasure().cache_key()

    def test_pairwise_cost(self):
        assert EuclideanMeasure().pairwise_cost(251) == 251


class TestBatchMinDistance:
    def test_matches_sequential_loop(self, rng):
        measure = EuclideanMeasure()
        for _ in range(10):
            n, k = int(rng.integers(3, 20)), int(rng.integers(1, 15))
            q = rng.normal(size=n)
            rows = rng.normal(size=(k, n))
            best, idx = measure.batch_min_distance(q, rows)
            dists = [euclidean_distance(q, row) for row in rows]
            assert idx == int(np.argmin(dists))
            assert math.isclose(best, min(dists), rel_tol=1e-9)

    def test_early_abandon_and_full_scan_agree(self, rng):
        measure = EuclideanMeasure()
        q = rng.normal(size=16)
        rows = rng.normal(size=(20, 16))
        fast = measure.batch_min_distance(q, rows, early_abandon=True)
        slow = measure.batch_min_distance(q, rows, early_abandon=False)
        assert fast[1] == slow[1]
        assert math.isclose(fast[0], slow[0], rel_tol=1e-12)

    def test_threshold_filters_everything(self, rng):
        measure = EuclideanMeasure()
        q = rng.normal(size=8)
        rows = q[np.newaxis, :] + 100.0
        best, idx = measure.batch_min_distance(q, rows, r=1.0)
        assert math.isinf(best)
        assert idx == -1

    def test_early_abandon_is_cheaper(self, rng):
        measure = EuclideanMeasure()
        q = rng.normal(size=64)
        rows = np.vstack([q + rng.normal(0, 0.01, 64)] + [rng.normal(size=64) * 10 for _ in range(30)])
        fast, slow = StepCounter(), StepCounter()
        measure.batch_min_distance(q, rows, counter=fast, early_abandon=True)
        measure.batch_min_distance(q, rows, counter=slow, early_abandon=False)
        assert fast.steps < slow.steps
        assert slow.steps == rows.shape[0] * 64
