"""Tests for the Wedge data structure (Section 4.1, Figures 6-8)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.wedge import Wedge
from repro.distances.dtw import DTWMeasure
from repro.distances.euclidean import EuclideanMeasure

floats = st.floats(min_value=-50, max_value=50, allow_nan=False)


def make_leaves(matrix):
    return [Wedge.from_series(row, i) for i, row in enumerate(matrix)]


class TestWedgeConstruction:
    def test_leaf_has_equal_arms(self, random_walk):
        series = random_walk(12)
        leaf = Wedge.from_series(series, 3)
        assert leaf.is_leaf
        assert leaf.cardinality == 1
        assert leaf.indices == (3,)
        assert np.array_equal(leaf.upper, leaf.lower)
        assert np.array_equal(leaf.series, series)
        assert leaf.area() == 0.0

    def test_merge_envelopes_pointwise(self, rng):
        a, b = rng.normal(size=10), rng.normal(size=10)
        merged = Wedge.merge(Wedge.from_series(a, 0), Wedge.from_series(b, 1), height=1.5)
        assert np.array_equal(merged.upper, np.maximum(a, b))
        assert np.array_equal(merged.lower, np.minimum(a, b))
        assert merged.height == 1.5
        assert not merged.is_leaf
        assert merged.cardinality == 2

    def test_merged_wedge_encloses_children(self, rng):
        rows = rng.normal(size=(4, 15))
        leaves = make_leaves(rows)
        w12 = Wedge.merge(leaves[0], leaves[1])
        w34 = Wedge.merge(leaves[2], leaves[3])
        root = Wedge.merge(w12, w34)
        for row in rows:
            assert root.encloses(row)

    def test_series_on_internal_node_raises(self, rng):
        rows = rng.normal(size=(2, 5))
        merged = Wedge.merge(*make_leaves(rows))
        with pytest.raises(ValueError):
            _ = merged.series

    def test_merge_rejects_shared_indices(self, rng):
        a = Wedge.from_series(rng.normal(size=5), 0)
        b = Wedge.from_series(rng.normal(size=5), 0)
        with pytest.raises(ValueError, match="share"):
            Wedge.merge(a, b)

    def test_merge_rejects_length_mismatch(self, rng):
        a = Wedge.from_series(rng.normal(size=5), 0)
        b = Wedge.from_series(rng.normal(size=6), 1)
        with pytest.raises(ValueError, match="length"):
            Wedge.merge(a, b)

    def test_rejects_inverted_arms(self):
        with pytest.raises(ValueError, match="dips"):
            Wedge(np.zeros(3), np.ones(3), (0,))


class TestWedgeArea:
    @given(arrays(np.float64, (3, 12), elements=floats))
    @settings(max_examples=50, deadline=None)
    def test_area_grows_with_merging(self, rows):
        """Figure 8: merging can only fatten the envelope."""
        leaves = make_leaves(rows)
        w01 = Wedge.merge(leaves[0], leaves[1])
        root = Wedge.merge(w01, leaves[2])
        assert w01.area() >= 0
        assert root.area() >= w01.area() - 1e-9

    def test_area_is_sum_of_gaps(self):
        upper = np.array([2.0, 3.0])
        lower = np.array([0.0, 1.0])
        assert Wedge(upper, lower, (0, 1)).area() == 4.0


class TestEncloses:
    def test_rejects_wrong_length(self, rng):
        wedge = Wedge.from_series(rng.normal(size=6), 0)
        assert not wedge.encloses(rng.normal(size=7))

    def test_detects_violations(self):
        wedge = Wedge(np.ones(4), -np.ones(4), (0,))
        assert wedge.encloses(np.zeros(4))
        assert not wedge.encloses(np.full(4, 2.0))


class TestEnvelopeCache:
    def test_cached_per_measure(self, rng):
        rows = rng.normal(size=(2, 20))
        wedge = Wedge.merge(*make_leaves(rows))
        ed = EuclideanMeasure()
        first = wedge.envelope_for(ed)
        second = wedge.envelope_for(ed)
        assert first[0] is second[0]  # same cached arrays

    def test_different_measures_get_different_envelopes(self, rng):
        rows = rng.normal(size=(2, 20))
        wedge = Wedge.merge(*make_leaves(rows))
        ed_env = wedge.envelope_for(EuclideanMeasure())
        dtw_env = wedge.envelope_for(DTWMeasure(radius=3))
        assert np.all(dtw_env[0] >= ed_env[0] - 1e-12)
        assert np.all(dtw_env[1] <= ed_env[1] + 1e-12)
        assert not np.array_equal(dtw_env[0], ed_env[0])

    def test_same_params_share_cache_entry(self, rng):
        rows = rng.normal(size=(2, 10))
        wedge = Wedge.merge(*make_leaves(rows))
        first = wedge.envelope_for(DTWMeasure(radius=2))
        second = wedge.envelope_for(DTWMeasure(radius=2))
        assert first[0] is second[0]
