"""End-to-end integration tests across the full pipeline.

Each test exercises a complete user journey: bitmap to answer, dataset to
classification table, archive to disk-indexed query -- the paths the
examples and benchmarks rely on.
"""

import math

import numpy as np

from repro import (
    DTWMeasure,
    Dendrogram,
    EuclideanMeasure,
    NearestNeighborClassifier,
    SignatureFilteredScan,
    brute_force_search,
    circular_shift,
    contour_to_series,
    largest_contour,
    linkage,
    load_dataset,
    polygon_to_series,
    projectile_point_collection,
    rasterize_polygon,
    star_polygon,
    wedge_search,
)
from repro.classify.evaluation import evaluate_dataset
from repro.timeseries.lightcurves import light_curve


class TestBitmapToAnswer:
    def test_full_figure2_pipeline_retrieval(self, rng):
        """Rasterise shapes, trace them, index them, query them."""
        database, names = [], []
        for points in range(3, 8):
            poly = star_polygon(points)
            img = rasterize_polygon(poly, resolution=96)
            series = contour_to_series(largest_contour(img), 128)
            database.append(circular_shift(series, int(rng.integers(128))))
            names.append(points)
        query = polygon_to_series(star_polygon(5), 128)  # vector path
        result = wedge_search(database, query, EuclideanMeasure())
        assert names[result.index] == 5

    def test_rotated_bitmap_matches_unrotated(self, rng):
        """Rotating the *image* (not just the vertices) is still absorbed."""
        from repro.shapes.generators import rotate_polygon

        poly = star_polygon(6)
        img_a = rasterize_polygon(poly, resolution=96)
        img_b = rasterize_polygon(rotate_polygon(poly, 25.0), resolution=96)
        a = contour_to_series(largest_contour(img_a), 128)
        b = contour_to_series(largest_contour(img_b), 128)
        dist = brute_force_search([b], a, EuclideanMeasure()).distance
        assert dist < 0.15 * math.sqrt(128)  # rasterisation noise only


class TestDatasetToTable:
    def test_table8_protocol_on_one_dataset(self):
        dataset = load_dataset("Aircraft", per_class=4, length=32)
        row = evaluate_dataset(dataset, candidate_radii=(1, 2), max_instances=10)
        assert row.n_classes == 7
        assert 0 <= row.euclidean_error <= 100
        assert 0 <= row.dtw_error <= 100

    def test_classifier_generalises_across_rotation(self, rng):
        dataset = load_dataset("Fish", per_class=5, length=48)
        clf = NearestNeighborClassifier(EuclideanMeasure())
        clf.fit(dataset.series, dataset.labels)
        correct = 0
        probes = 10
        for i in range(probes):
            rotated = circular_shift(dataset.series[i], int(rng.integers(48)))
            correct += clf.predict_one(rotated) == dataset.labels[i]
        assert correct == probes  # own rotated copy is distance ~0


class TestArchiveToDisk:
    def test_disk_index_agrees_with_cpu_search(self, rng):
        archive = projectile_point_collection(rng, 50, length=64)
        index = SignatureFilteredScan(archive, n_coefficients=16)
        for measure in (EuclideanMeasure(), DTWMeasure(radius=3)):
            query = archive[13] + rng.normal(0, 0.05, 64)
            cpu = wedge_search(archive, query, measure)
            disk = index.query(query, measure)
            assert disk.result.index == cpu.index
            assert math.isclose(disk.result.distance, cpu.distance, rel_tol=1e-9)
            assert disk.fraction_retrieved < 1.0


class TestAstronomyPath:
    def test_light_curves_index_without_modification(self, rng):
        """The paper's closing claim: same machinery, star data."""
        archive = [light_curve(rng, kind, length=128) for kind in
                   ("cepheid", "rr_lyrae", "eclipsing_binary") for _ in range(6)]
        query = circular_shift(archive[4], 37)  # re-phased copy of an rr_lyrae
        result = wedge_search(archive, query, EuclideanMeasure())
        assert result.index == 4
        assert result.distance < 1e-9


class TestClusteringPath:
    def test_rotation_invariant_dendrogram_recovers_taxa(self, rng):
        """The Figure 16 sanity check, miniaturised."""
        from repro.shapes.generators import skull_profile

        taxa = [(0.6, 0.04, 0.10), (1.0, 0.15, 0.35), (1.5, 0.35, 0.65)]
        series, labels = [], []
        for t, (braincase, brow, jaw) in enumerate(taxa):
            for _ in range(2):
                poly = skull_profile(rng, braincase=braincase, brow=brow, jaw=jaw, jitter=0.003)
                raw = polygon_to_series(poly, 96)
                series.append(circular_shift(raw, int(rng.integers(96))))
                labels.append(t)
        k = len(series)
        measure = EuclideanMeasure()
        matrix = np.zeros((k, k))
        for i in range(k):
            for j in range(i + 1, k):
                d = brute_force_search([series[j]], series[i], measure).distance
                matrix[i, j] = matrix[j, i] = d
        dendro = Dendrogram(linkage(matrix, "average"), k)
        assignments = dendro.cluster_assignments(3)
        # Each taxon's two specimens share a cluster.
        for t in range(3):
            members = [assignments[i] for i in range(k) if labels[i] == t]
            assert members[0] == members[1]
