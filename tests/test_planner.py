"""Planner tests: the exactness contract, the cost model, and plan specs.

The hard invariant this file enforces is **plan invariance**: every plan
:func:`~repro.core.planner.enumerate_plans` can emit -- any tier subset,
any legal order, batch or scalar leaves -- returns answers bit-identical
to brute force and to every other plan.  The planner is free to trade
work; it is never free to change an answer.

On top of that sit the cost-model properties the issue pins:

* a tier whose measured rejection rate is 0 is *always* dropped once the
  planner trusts its telemetry (its expected saving is exactly
  ``-test_cost``);
* cache-served answers never enter the cost model, so a hot cached query
  cannot shift the plan.
"""

import math

import numpy as np
import pytest

from repro.core.planner import (
    DatasetStats,
    Planner,
    QueryPlan,
    default_plan,
    enumerate_plans,
    parse_plan,
)
from repro.core.cascade import CASCADE_TIERS, empty_tier_stats
from repro.core.search import auto_search, wedge_search
from repro.distances.dtw import DTWMeasure
from repro.distances.euclidean import EuclideanMeasure
from repro.distances.lcss import LCSSMeasure
from repro.mining.queries import knn_search


def _measures():
    return [
        EuclideanMeasure(),
        DTWMeasure(radius=3),
        LCSSMeasure(delta=3, epsilon=0.5),
    ]


def _brute_force(database, query, measure):
    """(distance, index) of the true rotation-invariant 1-NN, canonical
    (distance, index) tie-break, no pruning anywhere."""
    best_d, best_i = math.inf, -1
    q = np.asarray(query, dtype=np.float64)
    for i, obj in enumerate(database):
        obj = np.asarray(obj, dtype=np.float64)
        d = min(measure.distance(np.roll(q, rot), obj, math.inf) for rot in range(len(q)))
        if d < best_d:
            best_d, best_i = d, i
    return best_d, best_i


class TestPlanInvariance:
    """Every enumerable plan is bit-identical to every other and to brute
    force -- the fuzz suite the exactness contract demands."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize(
        "measure", _measures(), ids=lambda m: m.name
    )
    def test_all_plans_bit_identical_1nn(self, measure, seed):
        rng = np.random.default_rng(seed)
        database = [np.cumsum(rng.standard_normal(24)) for _ in range(14)]
        query = np.cumsum(rng.standard_normal(24))
        reference = wedge_search(database, query, measure)
        plans = enumerate_plans(measure)
        assert len(plans) >= 5
        for plan in plans:
            result = wedge_search(database, query, measure, plan=plan)
            assert (result.index, result.distance, result.rotation) == (
                reference.index,
                reference.distance,
                reference.rotation,
            ), f"plan {plan.name} diverged from the default plan"

    @pytest.mark.parametrize("measure", _measures(), ids=lambda m: m.name)
    def test_default_plan_matches_brute_force(self, measure):
        rng = np.random.default_rng(7)
        database = [np.cumsum(rng.standard_normal(16)) for _ in range(10)]
        query = np.cumsum(rng.standard_normal(16))
        result = wedge_search(database, query, measure, plan=default_plan(measure))
        brute_d, brute_i = _brute_force(database, query, measure)
        assert result.index == brute_i
        assert math.isclose(result.distance, brute_d, rel_tol=1e-9, abs_tol=1e-12)

    @pytest.mark.parametrize("radius_q", [0.5, 1.0])
    def test_all_plans_bit_identical_knn_and_range(self, radius_q):
        """Plans thread through knn_search / range_search via the pruner."""
        from repro.core.cascade import CascadePolicy
        from repro.mining.queries import range_search

        measure = DTWMeasure(radius=2)
        rng = np.random.default_rng(13)
        database = np.cumsum(rng.standard_normal((12, 20)), axis=1)
        query = np.cumsum(rng.standard_normal(20))
        ref_knn = knn_search(database, query, measure, k=4)
        probe = knn_search(database, query, measure, k=6)
        radius = probe[-1].distance * radius_q
        ref_range = range_search(database, query, measure, radius=radius)
        for plan in enumerate_plans(measure):
            pruner = CascadePolicy(measure, tiers=plan.tiers)
            got_knn = knn_search(
                database, query, measure, k=4, pruner=pruner,
                batch_leaves=plan.batch_leaves,
            )
            assert [(nb.index, nb.distance, nb.rotation) for nb in got_knn] == [
                (nb.index, nb.distance, nb.rotation) for nb in ref_knn
            ], plan.name
            pruner.reset()
            got_range = range_search(
                database, query, measure, radius=radius, pruner=pruner,
                batch_leaves=plan.batch_leaves,
            )
            assert [(nb.index, nb.distance, nb.rotation) for nb in got_range] == [
                (nb.index, nb.distance, nb.rotation) for nb in ref_range
            ], plan.name

    def test_auto_search_bit_identical_while_planner_warms(self):
        """The planner may switch plans mid-stream; answers never move."""
        measure = DTWMeasure(radius=2)
        rng = np.random.default_rng(3)
        database = [np.cumsum(rng.standard_normal(20)) for _ in range(15)]
        planner = Planner(measure, DatasetStats(size=15, length=20))
        for _ in range(6):
            query = np.cumsum(rng.standard_normal(20))
            expected = wedge_search(database, query, measure)
            got = auto_search(database, query, measure, planner=planner)
            assert (got.index, got.distance, got.rotation) == (
                expected.index,
                expected.distance,
                expected.rotation,
            )
        assert planner.observations == 6


class TestPlannerCostModel:
    def _planner(self, measure=None):
        measure = measure or DTWMeasure(radius=3)
        return Planner(measure, DatasetStats(size=100, length=64))

    def _stats(self, **overrides):
        stats = empty_tier_stats()
        stats.update(overrides)
        return stats

    def test_cold_planner_emits_the_canonical_default(self):
        planner = self._planner()
        assert planner.plan() == default_plan(planner.measure)

    def test_untrusted_telemetry_keeps_the_default(self):
        planner = self._planner()
        # Fewer leaf candidates than MIN_OBSERVATIONS: still canonical.
        planner.observe(
            self._stats(leaf_candidates=8, keogh_reached=8, improved_reached=8,
                        full_computations=8)
        )
        assert planner.plan() == default_plan(planner.measure)

    @pytest.mark.parametrize("tier", ["kim", "keogh", "improved"])
    def test_zero_rejection_tier_always_dropped(self, tier):
        """The monotonicity property: rate 0 => saving = -test_cost < 0."""
        planner = self._planner()
        # Every candidate reaches every tier, nothing is ever rejected
        # except at the *other* tiers, which reject everything they see.
        n = 10 * Planner.MIN_OBSERVATIONS
        counts = {
            "leaf_candidates": n,
            "kim_rejections": 0,
            "keogh_reached": n,
            "keogh_rejections": 0,
            "improved_reached": n,
            "improved_rejections": 0,
            "full_computations": n,
        }
        for other in ("kim", "keogh", "improved"):
            if other != tier:
                counts[f"{other}_rejections"] = counts[
                    "leaf_candidates" if other == "kim" else f"{other}_reached"
                ]
        planner.observe(counts)
        plan = planner.plan()
        assert tier not in plan.tiers, plan.name
        for other in ("kim", "keogh", "improved"):
            if other != tier and not (other == "improved" and tier == "keogh"):
                assert other in plan.tiers, plan.name
        # Whatever the model drops, the plan must remain executable.
        from repro.core.cascade import CascadePolicy

        CascadePolicy(planner.measure, tiers=plan.tiers)

    def test_high_rejection_tiers_all_kept_in_canonical_order(self):
        planner = self._planner()
        n = 10 * Planner.MIN_OBSERVATIONS
        planner.observe(
            self._stats(
                leaf_candidates=n, kim_rejections=n // 2,
                keogh_reached=n // 2, keogh_rejections=n // 4,
                improved_reached=n // 4, improved_rejections=n // 8,
                full_computations=n // 8,
            )
        )
        assert planner.plan().tiers == ("kim", "keogh", "improved")

    def test_euclidean_never_drops_keogh(self):
        """For exact-at-Keogh measures the Keogh pass IS the distance."""
        planner = self._planner(EuclideanMeasure())
        n = 10 * Planner.MIN_OBSERVATIONS
        planner.observe(
            self._stats(leaf_candidates=n, keogh_reached=n,
                        improved_reached=n, full_computations=0)
        )
        assert "keogh" in planner.plan().tiers

    def test_cached_observations_never_shift_the_plan(self):
        """Satellite bugfix: replayed cache hits stay out of the model."""
        planner = self._planner()
        n = 10 * Planner.MIN_OBSERVATIONS
        real = self._stats(
            leaf_candidates=n, kim_rejections=n - 4,
            keogh_reached=4, keogh_rejections=2,
            improved_reached=2, improved_rejections=1, full_computations=1,
        )
        planner.observe(real)
        before = planner.plan()
        totals_before = dict(planner.totals)
        # A hot cached query replaying very different stats, many times over:
        hot = self._stats(leaf_candidates=n, keogh_reached=n,
                          improved_reached=n, full_computations=n)
        for _ in range(50):
            planner.observe(hot, cached=True)
        assert planner.totals == totals_before
        assert planner.plan() == before
        assert planner.cached_skipped == 50
        assert planner.observations == 1

    def test_plan_switches_counted(self):
        planner = self._planner()
        first = planner.plan()
        assert planner.plan_switches == 0
        n = 10 * Planner.MIN_OBSERVATIONS
        planner.observe(
            self._stats(leaf_candidates=n, keogh_reached=n,
                        improved_reached=n, full_computations=n)
        )
        second = planner.plan()
        assert second != first
        assert planner.plan_switches == 1
        planner.plan()  # same decision: no switch
        assert planner.plan_switches == 1
        assert len(planner.decisions) == 2

    def test_snapshot_is_json_safe(self):
        import json

        planner = self._planner()
        planner.observe(self._stats(leaf_candidates=5, keogh_reached=5,
                                    improved_reached=5, full_computations=5))
        snap = planner.snapshot()
        parsed = json.loads(json.dumps(snap))
        assert parsed["plan"] == planner.current_plan.name
        assert parsed["observations"] == 1
        assert set(parsed["tier_estimates"]) <= set(CASCADE_TIERS)


class TestPlanSpecs:
    def test_auto_returns_none(self):
        assert parse_plan("auto") is None

    def test_fixed_round_trips_through_name_and_dict(self):
        measure = DTWMeasure(radius=2)
        for plan in enumerate_plans(measure):
            assert QueryPlan.from_dict(plan.to_dict()) == plan
        plan = parse_plan("fixed:keogh>improved:batch", measure)
        assert plan.name == "wedge:keogh>improved:batch"
        assert parse_plan("fixed:none").tiers == ()

    def test_scalar_and_default_leaf_modes(self):
        assert parse_plan("fixed:kim>keogh:scalar").batch_leaves is False
        assert parse_plan("fixed:kim>keogh").batch_leaves is True
        # Batch silently downgrades when the order cannot run batched.
        assert parse_plan("fixed:keogh>kim:batch").batch_leaves is False

    def test_measure_filters_unsupported_tiers(self):
        lcss = LCSSMeasure(delta=2, epsilon=0.5)
        plan = parse_plan("fixed:kim>keogh>improved", lcss)
        assert plan.tiers == ("keogh", "improved")

    @pytest.mark.parametrize(
        "spec",
        [
            "bogus",
            "fixed:keogh:maybe",
            "fixed:keogh:batch:extra",
            "fixed:frobnicate",
            "fixed:keogh>keogh",
            "fixed:improved",
            "fixed:improved>keogh",
        ],
    )
    def test_malformed_specs_rejected(self, spec):
        with pytest.raises(ValueError):
            parse_plan(spec)

    def test_enumerate_plans_covers_the_advertised_space(self):
        measure = DTWMeasure(radius=2)
        plans = enumerate_plans(measure)
        names = {p.name for p in plans}
        assert len(names) == len(plans)  # no duplicates
        assert "wedge:kim>keogh>improved:batch" in names
        assert "wedge:none:scalar" in names
        assert "wedge:keogh>kim:scalar" in names
        # Illegal orders never appear.
        for p in plans:
            if "improved" in p.tiers:
                assert p.tiers.index("keogh") < p.tiers.index("improved")
        # Euclidean has no improved tier anywhere in its space.
        for p in enumerate_plans(EuclideanMeasure()):
            assert "improved" not in p.tiers
