"""Tests for the budgeted (anytime) wedge search."""

import math

import pytest

from repro.core.search import anytime_wedge_search, wedge_search
from repro.distances.dtw import DTWMeasure
from repro.distances.euclidean import EuclideanMeasure
from repro.timeseries.ops import circular_shift


@pytest.fixture
def database(random_walk):
    return [random_walk(24) for _ in range(20)]


@pytest.fixture
def query(random_walk):
    return random_walk(24)


class TestAnytimeSearch:
    def test_generous_budget_is_exact(self, database, query):
        measure = EuclideanMeasure()
        reference = wedge_search(database, query, measure)
        answer = anytime_wedge_search(database, query, measure, step_budget=10**9)
        assert answer.exact
        assert answer.objects_scanned == len(database)
        assert answer.result.index == reference.index
        assert math.isclose(answer.result.distance, reference.distance, rel_tol=1e-9)

    def test_tiny_budget_stops_early(self, database, query):
        # Just above the wedge build cost: barely any scanning happens.
        n = len(query)
        answer = anytime_wedge_search(
            database, query, EuclideanMeasure(), step_budget=(n - 1) * n + 1,
            order_by_signature=False,
        )
        assert not answer.exact
        assert answer.objects_scanned < len(database)

    def test_quality_monotone_in_budget(self, database, query):
        measure = EuclideanMeasure()
        distances = []
        for budget in (2_000, 20_000, 10**8):
            answer = anytime_wedge_search(
                database, query, measure, step_budget=budget, order_by_signature=False
            )
            distances.append(answer.result.distance)
        assert distances[0] >= distances[1] >= distances[2]

    def test_signature_ordering_finds_planted_match_fast(self, database, random_walk):
        """With signature ordering, the true NN is verified first, so even
        a small post-setup budget returns the planted exact match."""
        query = random_walk(24)
        planted = list(database)
        planted[15] = circular_shift(query, 9)
        n = 24
        from repro.core.counters import fft_step_cost

        setup = (n - 1) * n + len(planted) * fft_step_cost(n)
        answer = anytime_wedge_search(
            planted, query, EuclideanMeasure(), step_budget=setup + 30 * n
        )
        assert answer.result.index == 15
        assert answer.result.distance < 1e-9

    def test_works_with_dtw(self, database, query):
        measure = DTWMeasure(radius=2)
        reference = wedge_search(database, query, measure)
        answer = anytime_wedge_search(database, query, measure, step_budget=10**9)
        assert answer.exact
        assert answer.result.index == reference.index

    def test_empty_database(self, query):
        answer = anytime_wedge_search([], query, EuclideanMeasure(), step_budget=10**6)
        assert answer.exact
        assert answer.objects_scanned == 0
        assert not answer.result.found

    def test_rejects_non_positive_budget(self, database, query):
        with pytest.raises(ValueError):
            anytime_wedge_search(database, query, EuclideanMeasure(), step_budget=0)
