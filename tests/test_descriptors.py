"""Tests for the rotation-invariant feature baselines (Section 2.2)."""

import math

import numpy as np
import pytest

from repro.shapes.descriptors import (
    convex_hull,
    d2_histogram,
    perimeter,
    polygon_area,
    shape_signature,
    signature_classify_error,
)
from repro.shapes.generators import (
    fourier_blob,
    regular_polygon,
    rotate_polygon,
    star_polygon,
)
from repro.shapes.transforms import mirror_polygon, scale_polygon, translate_polygon


class TestPrimitives:
    def test_perimeter_of_unit_square(self):
        square = np.array([[0.0, 0.0], [1.0, 0.0], [1.0, 1.0], [0.0, 1.0]])
        assert math.isclose(perimeter(square), 4.0)

    def test_area_of_unit_square(self):
        square = np.array([[0.0, 0.0], [1.0, 0.0], [1.0, 1.0], [0.0, 1.0]])
        assert math.isclose(polygon_area(square), 1.0)

    def test_area_orientation_independent(self):
        square = np.array([[0.0, 0.0], [1.0, 0.0], [1.0, 1.0], [0.0, 1.0]])
        assert math.isclose(polygon_area(square[::-1]), 1.0)

    def test_convex_hull_of_star_is_outer_points(self):
        star = star_polygon(5, outer=1.0, inner=0.3)
        hull = convex_hull(star)
        radii = np.hypot(hull[:, 0], hull[:, 1])
        assert hull.shape[0] == 5
        assert np.allclose(radii, 1.0, atol=1e-9)

    def test_convex_hull_of_convex_shape_is_itself(self):
        hexagon = regular_polygon(6)
        hull = convex_hull(hexagon)
        assert hull.shape[0] == 6


class TestShapeSignature:
    def test_rotation_scale_translation_invariant(self):
        blob = fourier_blob(np.random.default_rng(3), [(2, 0.25, 0.4), (5, 0.12, 1.0)], jitter=0.0)
        base = shape_signature(blob)
        for transformed in (
            rotate_polygon(blob, 73.0),
            scale_polygon(blob, 5.5),
            translate_polygon(blob, 40.0, -3.0),
            np.roll(blob, 17, axis=0),
        ):
            assert np.allclose(shape_signature(transformed), base, atol=2e-2)

    def test_circle_has_circularity_one(self):
        circle = regular_polygon(256)
        sig = shape_signature(circle)
        assert abs(sig[0] - 1.0) < 0.01  # circularity
        assert sig[1] < 0.15  # eccentricity
        assert abs(sig[2] - 1.0) < 0.01  # solidity

    def test_star_less_circular_and_less_solid_than_disk(self):
        disk = shape_signature(regular_polygon(64))
        star = shape_signature(star_polygon(5, inner=0.35))
        assert star[0] < disk[0]
        assert star[2] < disk[2]

    def test_coarse_discrimination_works(self):
        """The paper concedes these features manage 'quick coarse
        discriminations' -- a disk and a 4-star must separate."""
        disk = shape_signature(regular_polygon(64))
        star = shape_signature(star_polygon(4, inner=0.25))
        assert np.linalg.norm(disk - star) > 0.5


class TestD2Histogram:
    def test_is_a_distribution(self):
        hist = d2_histogram(star_polygon(5), np.random.default_rng(0))
        assert hist.sum() == pytest.approx(1.0)
        assert np.all(hist >= 0)

    def test_rotation_invariant(self):
        rng_a, rng_b = np.random.default_rng(1), np.random.default_rng(1)
        blob = fourier_blob(np.random.default_rng(5), [(3, 0.3, 0.2)], jitter=0.0)
        a = d2_histogram(blob, rng_a, n_pairs=20000)
        b = d2_histogram(rotate_polygon(blob, 121.0), rng_b, n_pairs=20000)
        assert np.abs(a - b).sum() < 0.05

    def test_cannot_distinguish_mirror_images(self):
        """The paper's 'd' vs 'b' failure, verified: reflections preserve
        all pairwise distances, so the D2 histograms coincide."""
        chiral = fourier_blob(
            np.random.default_rng(7), [(1, 0.3, 0.2), (2, 0.2, 1.1), (5, 0.15, 0.4)], jitter=0.0
        )
        mirrored = mirror_polygon(chiral)
        a = d2_histogram(chiral, np.random.default_rng(2), n_pairs=40000)
        b = d2_histogram(mirrored, np.random.default_rng(3), n_pairs=40000)
        assert np.abs(a - b).sum() < 0.05
        # ... while the rotation-invariant series distance DOES separate
        # them when mirroring is not requested.
        from repro.core.search import wedge_search
        from repro.distances.euclidean import EuclideanMeasure
        from repro.shapes.convert import polygon_to_series

        sa = polygon_to_series(chiral, 96)
        sb = polygon_to_series(mirrored, 96)
        plain = wedge_search([sb], sa, EuclideanMeasure())
        assert plain.distance > 0.1


class TestSignatureClassification:
    def test_separates_trivial_classes(self):
        shapes = [regular_polygon(48) for _ in range(5)] + [
            star_polygon(5, inner=0.3) for _ in range(5)
        ]
        features = np.vstack([shape_signature(s) for s in shapes])
        labels = [0] * 5 + [1] * 5
        assert signature_classify_error(features, labels) == 0.0

    def test_validates_input(self):
        with pytest.raises(ValueError):
            signature_classify_error(np.zeros((3, 2)), [0, 1])
        with pytest.raises(ValueError):
            signature_classify_error(np.zeros((1, 2)), [0])

    def test_loses_to_series_matching_on_fine_classes(self):
        """Section 2.2's conclusion: feature vectors suffer 'very poor
        discrimination ability' next to full-resolution matching.

        The construction makes the failure mode explicit: classes share
        identical harmonic orders and amplitudes and differ only in the
        *relative phases* -- so their circularity/solidity/radial
        statistics nearly coincide, while the actual boundary arrangements
        (and thus the centroid-distance series) differ distinctly.
        """
        from repro.classify.knn import leave_one_out_error
        from repro.datasets.shapes_data import Dataset
        from repro.distances.euclidean import EuclideanMeasure
        from repro.shapes.convert import polygon_to_series
        from repro.shapes.generators import fourier_blob
        from repro.timeseries.ops import circular_shift

        rng = np.random.default_rng(5)
        classes = []
        for _ in range(4):
            phases = rng.uniform(0, 2 * np.pi, 3)
            classes.append(
                [(2, 0.25, phases[0]), (3, 0.2, phases[1]), (5, 0.15, phases[2])]
            )
        polygons, labels, series = [], [], []
        for label, harmonics in enumerate(classes):
            for _ in range(5):
                poly = fourier_blob(rng, harmonics, jitter=0.08)
                polygons.append(poly)
                labels.append(label)
                series.append(
                    circular_shift(polygon_to_series(poly, 64), int(rng.integers(64)))
                )
        features = np.vstack([shape_signature(p) for p in polygons])
        feature_error = signature_classify_error(features, labels)

        ds = Dataset("phase-classes", np.vstack(series), np.asarray(labels))
        series_error = leave_one_out_error(ds, EuclideanMeasure())
        assert series_error < feature_error
        assert feature_error >= 10.0  # the features genuinely struggle
        assert series_error <= 5.0  # full-resolution matching does not
