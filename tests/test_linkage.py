"""Tests for the from-scratch agglomerative clustering (Figure 9)."""

import numpy as np
import pytest

from repro.clustering.linkage import LINKAGES, linkage


def points_to_distance_matrix(points):
    pts = np.asarray(points, dtype=float)
    diff = pts[:, np.newaxis, :] - pts[np.newaxis, :, :]
    return np.sqrt((diff**2).sum(axis=2))


class TestLinkageBasics:
    def test_single_observation(self):
        assert linkage(np.zeros((1, 1))) == []

    def test_two_observations(self):
        dist = np.array([[0.0, 3.0], [3.0, 0.0]])
        merges = linkage(dist)
        assert len(merges) == 1
        assert merges[0].height == 3.0
        assert {merges[0].left, merges[0].right} == {0, 1}
        assert merges[0].size == 2

    def test_produces_k_minus_one_merges(self, rng):
        for k in (2, 5, 11):
            pts = rng.normal(size=(k, 2))
            merges = linkage(points_to_distance_matrix(pts))
            assert len(merges) == k - 1
            assert merges[-1].size == k

    def test_heights_non_decreasing(self, rng):
        for method in LINKAGES:
            pts = rng.normal(size=(20, 2))
            merges = linkage(points_to_distance_matrix(pts), method)
            heights = [m.height for m in merges]
            assert heights == sorted(heights)

    def test_children_exist_before_parents(self, rng):
        pts = rng.normal(size=(15, 3))
        merges = linkage(points_to_distance_matrix(pts))
        k = 15
        created = set(range(k))
        for t, merge in enumerate(merges):
            assert merge.left in created
            assert merge.right in created
            created.add(k + t)

    def test_every_observation_merged_exactly_once_per_level(self, rng):
        pts = rng.normal(size=(9, 2))
        merges = linkage(points_to_distance_matrix(pts))
        used = set()
        for merge in merges:
            assert merge.left not in used
            assert merge.right not in used
            used.add(merge.left)
            used.add(merge.right)

    def test_rejects_bad_matrices(self):
        with pytest.raises(ValueError):
            linkage(np.zeros((2, 3)))
        with pytest.raises(ValueError):
            linkage([[0.0, 1.0], [2.0, 0.0]])  # asymmetric
        with pytest.raises(ValueError):
            linkage(np.zeros((2, 2)), method="median")


class TestLinkageSemantics:
    def test_single_linkage_matches_mst_heights(self, rng):
        """Single-linkage merge heights are the MST edge weights, sorted."""
        import networkx as nx

        pts = rng.normal(size=(12, 2))
        dist = points_to_distance_matrix(pts)
        merges = linkage(dist, "single")
        graph = nx.Graph()
        for i in range(12):
            for j in range(i + 1, 12):
                graph.add_edge(i, j, weight=dist[i, j])
        mst_weights = sorted(
            d["weight"] for _u, _v, d in nx.minimum_spanning_tree(graph).edges(data=True)
        )
        got = [m.height for m in merges]
        assert np.allclose(got, mst_weights, atol=1e-9)

    def test_two_obvious_clusters_split_last(self, rng):
        """Two well-separated blobs: the final merge joins the blobs."""
        left = rng.normal(size=(6, 2)) * 0.1
        right = rng.normal(size=(6, 2)) * 0.1 + 100.0
        pts = np.vstack([left, right])
        for method in LINKAGES:
            merges = linkage(points_to_distance_matrix(pts), method)
            assert merges[-1].height > 90.0
            assert all(m.height < 10.0 for m in merges[:-1])

    def test_average_linkage_height_formula(self):
        """Three points where the group-average height is hand-checkable."""
        # d(0,1)=1; d(0,2)=4, d(1,2)=6 -> merge (0,1) at 1, then the
        # average distance of 2 to {0,1} is (4+6)/2 = 5.
        dist = np.array([[0.0, 1.0, 4.0], [1.0, 0.0, 6.0], [4.0, 6.0, 0.0]])
        merges = linkage(dist, "average")
        assert merges[0].height == 1.0
        assert merges[1].height == 5.0

    def test_complete_linkage_height_formula(self):
        dist = np.array([[0.0, 1.0, 4.0], [1.0, 0.0, 6.0], [4.0, 6.0, 0.0]])
        merges = linkage(dist, "complete")
        assert merges[1].height == 6.0

    def test_handles_massive_ties(self):
        """A perfectly uniform matrix (all pairs tie) must terminate."""
        k = 12
        dist = np.ones((k, k)) - np.eye(k)
        merges = linkage(dist, "average")
        assert len(merges) == k - 1
        assert all(abs(m.height - 1.0) < 1e-9 for m in merges)

    def test_handles_near_tie_noise(self, rng):
        """Distances differing by ~1e-14 (circulant rotation matrices) must terminate."""
        from repro.core.rotation import RotationSet

        series = rng.normal(size=64).cumsum()
        matrix = RotationSet.full(series).distance_matrix()
        merges = linkage(matrix, "average")
        assert len(merges) == 63
