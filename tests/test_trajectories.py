"""Tests for rotation-invariant trajectory matching."""

import math

import numpy as np
import pytest

from repro.mining.trajectories import (
    flatten_trajectory,
    normalize_trajectory,
    trajectory_dtw,
    trajectory_rotations,
    trajectory_search,
)


def closed_loop(rng, n=24, d=2):
    """A smooth closed trajectory in R^d."""
    t = np.linspace(0, 2 * np.pi, n, endpoint=False)
    base = np.column_stack(
        [np.cos(t) + 0.3 * np.cos(3 * t + rng.uniform(0, 6)), np.sin(t) + 0.3 * np.sin(2 * t + rng.uniform(0, 6))]
        + [np.sin((k + 2) * t + rng.uniform(0, 6)) * 0.2 for k in range(d - 2)]
    )
    return base


class TestBasics:
    def test_flatten_interleaves(self):
        traj = np.array([[1.0, 2.0], [3.0, 4.0]])
        assert flatten_trajectory(traj).tolist() == [1.0, 2.0, 3.0, 4.0]

    def test_rotations_shape_and_content(self, rng):
        traj = closed_loop(rng, n=6)
        rotations = trajectory_rotations(traj)
        assert rotations.shape == (6, 12)
        assert np.allclose(rotations[0], traj.reshape(-1))
        assert np.allclose(rotations[2], np.roll(traj, -2, axis=0).reshape(-1))

    def test_normalize(self, rng):
        traj = closed_loop(rng) * 17.0 + np.array([100.0, -40.0])
        normed = normalize_trajectory(traj)
        assert np.allclose(normed.mean(axis=0), 0.0, atol=1e-9)
        rms = math.sqrt(float(np.mean(np.einsum("ij,ij->i", normed, normed))))
        assert math.isclose(rms, 1.0, rel_tol=1e-9)

    def test_validation(self):
        with pytest.raises(ValueError):
            flatten_trajectory(np.zeros(5))
        with pytest.raises(ValueError):
            normalize_trajectory(np.array([[np.nan, 1.0]]))


class TestTrajectorySearch:
    def test_finds_restarted_copy(self, rng):
        traj = closed_loop(rng)
        database = [closed_loop(rng) for _ in range(6)]
        database[3] = np.roll(traj, 7, axis=0)  # same loop, different start
        result = trajectory_search(database, traj)
        assert result.index == 3
        assert result.distance < 1e-9
        assert result.rotation in (7, 24 - 7, 17)

    def test_matches_bruteforce(self, rng):
        query = closed_loop(rng)
        database = [closed_loop(rng) for _ in range(8)]
        result = trajectory_search(database, query, normalize=False)
        best = math.inf
        best_i = -1
        for i, obj in enumerate(database):
            for k in range(obj.shape[0]):
                d = float(np.linalg.norm(np.roll(query, -k, axis=0) - obj))
                if d < best:
                    best, best_i = d, i
        assert result.index == best_i
        assert math.isclose(result.distance, best, rel_tol=1e-9)

    def test_normalization_absorbs_scale_and_offset(self, rng):
        traj = closed_loop(rng)
        scaled = np.roll(traj, 4, axis=0) * 9.0 + np.array([5.0, -2.0])
        result = trajectory_search([scaled], traj, normalize=True)
        assert result.distance < 1e-9

    def test_rejects_shape_mismatch(self, rng):
        query = closed_loop(rng, n=10)
        with pytest.raises(ValueError, match="shape"):
            trajectory_search([closed_loop(rng, n=12)], query)

    def test_three_dimensional_trajectories(self, rng):
        query = closed_loop(rng, n=16, d=3)
        database = [closed_loop(rng, n=16, d=3) for _ in range(4)]
        database[1] = np.roll(query, 5, axis=0)
        result = trajectory_search(database, query)
        assert result.index == 1


class TestTrajectoryDTW:
    def test_identity_zero(self, rng):
        traj = closed_loop(rng)
        assert trajectory_dtw(traj, traj, radius=3) == 0.0

    def test_matches_scalar_dtw_in_1d(self, rng):
        from repro.distances.dtw import dtw_distance

        q = rng.normal(size=15)
        c = rng.normal(size=15)
        got = trajectory_dtw(q[:, np.newaxis], c[:, np.newaxis], radius=3)
        assert math.isclose(got, dtw_distance(q, c, 3), rel_tol=1e-9)

    def test_absorbs_local_time_distortion(self, rng):
        traj = closed_loop(rng, n=30)
        # Repeat one point (a local slowdown).
        warped = np.vstack([traj[:10], traj[10:11], traj[10:29]])
        ed = float(np.linalg.norm(traj - warped))
        dtw = trajectory_dtw(traj, warped, radius=3)
        assert dtw < 0.5 * ed + 1e-9

    def test_early_abandon(self, rng):
        traj = closed_loop(rng)
        far = traj + 100.0
        assert math.isinf(trajectory_dtw(traj, far, radius=2, r=1.0))

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            trajectory_dtw(closed_loop(rng, 8), closed_loop(rng, 9), radius=1)
        with pytest.raises(ValueError):
            trajectory_dtw(closed_loop(rng, 8), closed_loop(rng, 8), radius=-1)
