"""Tests for rotation-invariant 1-NN classification."""

import numpy as np
import pytest

from repro.classify.knn import NearestNeighborClassifier, leave_one_out_error
from repro.datasets.shapes_data import Dataset, projectile_point_dataset
from repro.distances.dtw import DTWMeasure
from repro.distances.euclidean import EuclideanMeasure
from repro.timeseries.ops import circular_shift


@pytest.fixture
def tiny_dataset(rng):
    return projectile_point_dataset(rng, per_class=4, length=48)


class TestClassifier:
    def test_requires_fit(self, tiny_dataset):
        clf = NearestNeighborClassifier(EuclideanMeasure())
        with pytest.raises(RuntimeError):
            clf.nearest(tiny_dataset.series[0])

    def test_fit_validates(self, rng):
        clf = NearestNeighborClassifier(EuclideanMeasure())
        with pytest.raises(ValueError):
            clf.fit(rng.normal(size=(3, 4)), [0, 1])
        with pytest.raises(ValueError):
            clf.fit(np.zeros((0, 4)), [])
        with pytest.raises(ValueError):
            clf.fit(rng.normal(size=4), [0])

    def test_predicts_planted_rotated_copy(self, tiny_dataset, rng):
        clf = NearestNeighborClassifier(EuclideanMeasure())
        clf.fit(tiny_dataset.series, tiny_dataset.labels)
        for i in (0, 5, 11):
            rotated = circular_shift(tiny_dataset.series[i], int(rng.integers(48)))
            assert clf.predict_one(rotated) == tiny_dataset.labels[i]

    def test_predict_batch(self, tiny_dataset):
        clf = NearestNeighborClassifier(EuclideanMeasure())
        clf.fit(tiny_dataset.series, tiny_dataset.labels)
        predictions = clf.predict(tiny_dataset.series[:4])
        assert predictions.shape == (4,)
        assert np.array_equal(predictions, tiny_dataset.labels[:4])

    def test_string_labels_work(self, rng):
        series = rng.normal(size=(4, 16))
        labels = np.array(["cat", "cat", "dog", "dog"])
        clf = NearestNeighborClassifier(EuclideanMeasure())
        clf.fit(series, labels)
        assert clf.predict_one(series[2] + 0.001) == "dog"

    def test_nearest_reports_rotation(self, tiny_dataset):
        clf = NearestNeighborClassifier(EuclideanMeasure())
        clf.fit(tiny_dataset.series, tiny_dataset.labels)
        shifted = circular_shift(tiny_dataset.series[3], 10)
        result = clf.nearest(shifted)
        assert result.index == 3
        assert result.rotation in (10, 48 - 10, 38)


class TestLeaveOneOut:
    def test_zero_error_on_well_separated_classes(self, rng):
        base_a = np.sin(np.linspace(0, 2 * np.pi, 32))
        base_b = np.sign(base_a) * 1.0
        rows, labels = [], []
        for i in range(5):
            rows.append(circular_shift(base_a + rng.normal(0, 0.05, 32), int(rng.integers(32))))
            labels.append(0)
            rows.append(circular_shift(base_b + rng.normal(0, 0.05, 32), int(rng.integers(32))))
            labels.append(1)
        ds = Dataset("sep", np.vstack(rows), np.asarray(labels))
        assert leave_one_out_error(ds, EuclideanMeasure()) == 0.0

    def test_error_is_percentage(self, tiny_dataset):
        error = leave_one_out_error(tiny_dataset, EuclideanMeasure())
        assert 0.0 <= error <= 100.0

    def test_subsampled_evaluation(self, tiny_dataset, rng):
        error = leave_one_out_error(
            tiny_dataset, EuclideanMeasure(), max_instances=5, rng=rng
        )
        assert 0.0 <= error <= 100.0

    def test_requires_two_instances(self, rng):
        ds = Dataset("one", rng.normal(size=(1, 8)), np.zeros(1, dtype=int))
        with pytest.raises(ValueError):
            leave_one_out_error(ds, EuclideanMeasure())

    def test_dtw_not_worse_on_warped_classes(self, rng):
        """Classes distinguished through warping: DTW must not lose to ED."""
        from repro.timeseries.ops import smooth_time_warp

        base_a = np.sin(np.linspace(0, 4 * np.pi, 40))
        base_b = np.abs(np.sin(np.linspace(0, 4 * np.pi, 40))) * 2 - 1
        rows, labels = [], []
        for i in range(6):
            for label, base in ((0, base_a), (1, base_b)):
                warped = smooth_time_warp(base, rng, strength=0.8, n_knots=5)
                rows.append(circular_shift(warped + rng.normal(0, 0.05, 40), int(rng.integers(40))))
                labels.append(label)
        ds = Dataset("warped", np.vstack(rows), np.asarray(labels))
        ed_error = leave_one_out_error(ds, EuclideanMeasure())
        dtw_error = leave_one_out_error(ds, DTWMeasure(radius=4))
        assert dtw_error <= ed_error
