"""Tests for polygon rasterisation."""

import numpy as np
import pytest

from repro.shapes.generators import regular_polygon, star_polygon
from repro.shapes.image import rasterize_polygon, render_ascii


class TestRasterizePolygon:
    def test_fills_a_square(self):
        square = np.array([[0.0, 0.0], [10.0, 0.0], [10.0, 10.0], [0.0, 10.0]])
        img = rasterize_polygon(square, resolution=20, padding=0.1)
        filled = img.mean()
        # The square occupies (1/1.2)^2 ~ 69% of the padded frame.
        assert 0.55 < filled < 0.8

    def test_disk_area_close_to_pi_r_squared(self):
        disk = regular_polygon(180)
        img = rasterize_polygon(disk, resolution=100, padding=0.0)
        # Inscribed in the full frame: area ratio = pi/4 ~ 0.785.
        assert abs(img.mean() - np.pi / 4) < 0.03

    def test_star_less_filled_than_disk(self):
        res = 64
        disk = rasterize_polygon(regular_polygon(60), res)
        star = rasterize_polygon(star_polygon(5, inner=0.3), res)
        assert star.sum() < disk.sum()

    def test_concavities_are_empty(self):
        star = star_polygon(4, outer=1.0, inner=0.2)
        img = rasterize_polygon(star, resolution=41, padding=0.0)
        # Point midway between two arms (diagonal, outside inner radius)
        # must be background.
        r = 41 // 2
        offset = int(0.35 * 41 / 2)
        assert not img[r + offset, r + offset]
        assert img[r, r]  # centre is foreground

    def test_resolution_validated(self):
        with pytest.raises(ValueError):
            rasterize_polygon(regular_polygon(3), resolution=2)

    def test_vertex_shape_validated(self):
        with pytest.raises(ValueError):
            rasterize_polygon(np.zeros((2, 2)), resolution=16)

    def test_degenerate_polygon_does_not_crash(self):
        """A zero-area polygon rasterises to (almost) nothing."""
        flat = np.array([[0.0, 0.0], [1.0, 0.0], [2.0, 0.0]])
        img = rasterize_polygon(flat, resolution=16)
        assert img.sum() <= 16


class TestRenderAscii:
    def test_round_trip_characters(self):
        img = np.array([[True, False], [False, True]])
        text = render_ascii(img)
        assert text == "#.\n.#"

    def test_custom_glyphs(self):
        img = np.array([[True]])
        assert render_ascii(img, fg="@", bg=" ") == "@"
