"""Unit tests for the step-count instrumentation."""

import math

import pytest

from repro.core.counters import StepCounter, fft_step_cost


class TestStepCounter:
    def test_starts_at_zero(self):
        counter = StepCounter()
        assert counter.steps == 0
        assert counter.distance_calls == 0
        assert counter.lb_calls == 0
        assert counter.early_abandons == 0
        assert counter.disk_accesses == 0

    def test_add_accumulates(self):
        counter = StepCounter()
        counter.add(10)
        counter.add(5)
        assert counter.steps == 15

    def test_add_coerces_to_int(self):
        counter = StepCounter()
        counter.add(3.0)
        assert counter.steps == 3
        assert isinstance(counter.steps, int)

    def test_merge_folds_all_fields(self):
        a = StepCounter(
            steps=5,
            distance_calls=1,
            lb_calls=2,
            early_abandons=3,
            disk_accesses=4,
            envelope_cache_hits=5,
            envelope_cache_misses=6,
        )
        b = StepCounter(
            steps=7,
            distance_calls=10,
            lb_calls=20,
            early_abandons=30,
            disk_accesses=40,
            envelope_cache_hits=50,
            envelope_cache_misses=60,
        )
        a.merge(b)
        assert a.steps == 12
        assert a.distance_calls == 11
        assert a.lb_calls == 22
        assert a.early_abandons == 33
        assert a.disk_accesses == 44
        assert a.envelope_cache_hits == 55
        assert a.envelope_cache_misses == 66

    def test_merge_rejects_unsettled_other(self):
        a, b = StepCounter(), StepCounter()
        b.add(5)
        b.checkpoint()
        with pytest.raises(ValueError, match="pending"):
            a.merge(b)
        assert b.since_checkpoint() == 0
        a.merge(b)  # settled now
        assert a.steps == 5

    def test_merge_keeps_own_checkpoints_valid(self):
        a, b = StepCounter(), StepCounter()
        a.add(10)
        a.checkpoint()
        b.add(7)
        a.merge(b)
        assert a.since_checkpoint() == 7

    def test_iadd_is_merge(self):
        a = StepCounter(steps=1, lb_calls=2)
        b = StepCounter(steps=3, lb_calls=4)
        a += b
        assert a.steps == 4
        assert a.lb_calls == 6

    def test_add_operator_builds_fresh_counter(self):
        a = StepCounter(steps=1, distance_calls=2)
        b = StepCounter(steps=10, distance_calls=20)
        c = a + b
        assert c is not a and c is not b
        assert c.steps == 11
        assert c.distance_calls == 22
        assert (a.steps, b.steps) == (1, 10)

    def test_add_operator_supports_sum_folds(self):
        counters = [StepCounter(steps=i) for i in (1, 2, 3)]
        total = sum(counters, StepCounter())
        assert total.steps == 6

    def test_add_operator_rejects_non_counters(self):
        with pytest.raises(TypeError):
            StepCounter() + 3

    def test_add_operator_rejects_pending_checkpoints(self):
        a = StepCounter()
        a.checkpoint()
        with pytest.raises(ValueError):
            a + StepCounter()

    def test_reset(self):
        counter = StepCounter(steps=5, distance_calls=1)
        counter.checkpoint()
        counter.reset()
        assert counter.steps == 0
        assert counter.distance_calls == 0
        with pytest.raises(IndexError):
            counter.since_checkpoint()

    def test_checkpoint_measures_delta(self):
        counter = StepCounter()
        counter.add(100)
        counter.checkpoint()
        counter.add(42)
        assert counter.since_checkpoint() == 42

    def test_checkpoints_nest_like_a_stack(self):
        counter = StepCounter()
        counter.checkpoint()
        counter.add(10)
        counter.checkpoint()
        counter.add(5)
        assert counter.since_checkpoint() == 5
        counter.add(1)
        assert counter.since_checkpoint() == 16

    def test_since_checkpoint_without_checkpoint_raises(self):
        with pytest.raises(IndexError):
            StepCounter().since_checkpoint()

    def test_snapshot_is_plain_dict(self):
        counter = StepCounter(steps=3, lb_calls=1)
        snap = counter.snapshot()
        assert snap == {
            "steps": 3,
            "distance_calls": 0,
            "lb_calls": 1,
            "early_abandons": 0,
            "disk_accesses": 0,
            "envelope_cache_hits": 0,
            "envelope_cache_misses": 0,
        }


class TestFFTStepCost:
    def test_matches_nlogn(self):
        assert fft_step_cost(1024) == 1024 * 10

    def test_rounds_up_non_powers(self):
        n = 100
        assert fft_step_cost(n) == math.ceil(n * math.log2(n))

    def test_floor_of_n(self):
        assert fft_step_cost(1) == 1
        assert fft_step_cost(2) >= 2

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            fft_step_cost(0)
