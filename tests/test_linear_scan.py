"""Tests for the disk-based filter-and-refine index (Section 5.4, Figure 24)."""

import math

import pytest

from repro.core.search import brute_force_search
from repro.distances.dtw import DTWMeasure
from repro.distances.euclidean import EuclideanMeasure
from repro.distances.lcss import LCSSMeasure
from repro.index.linear_scan import SignatureFilteredScan


@pytest.fixture
def archive(rng):
    from repro.datasets.shapes_data import projectile_point_collection

    return projectile_point_collection(rng, 40, length=64)


class TestExactness:
    @pytest.mark.parametrize("measure", [EuclideanMeasure(), DTWMeasure(radius=3)], ids=["ed", "dtw"])
    @pytest.mark.parametrize("n_coefficients", [4, 16])
    def test_same_answer_as_bruteforce(self, archive, rng, measure, n_coefficients):
        index = SignatureFilteredScan(archive, n_coefficients=n_coefficients)
        for _ in range(4):
            query = archive[int(rng.integers(len(archive)))] + rng.normal(0, 0.1, 64)
            reference = brute_force_search(archive, query, measure)
            answer = index.query(query, measure)
            assert answer.result.index == reference.index
            assert math.isclose(answer.result.distance, reference.distance, rel_tol=1e-9)

    def test_vptree_route_same_answer(self, archive, rng):
        flat = SignatureFilteredScan(archive, n_coefficients=8)
        treed = SignatureFilteredScan(archive, n_coefficients=8, use_vptree=True)
        measure = EuclideanMeasure()
        for _ in range(4):
            query = archive[int(rng.integers(len(archive)))] + rng.normal(0, 0.1, 64)
            a = flat.query(query, measure)
            b = treed.query(query, measure)
            assert a.result.index == b.result.index
            assert math.isclose(a.result.distance, b.result.distance, rel_tol=1e-9)

    @pytest.mark.parametrize("measure", [EuclideanMeasure(), DTWMeasure(radius=2)], ids=["ed", "dtw"])
    def test_rtree_route_same_answer(self, archive, rng, measure):
        flat = SignatureFilteredScan(archive, n_coefficients=8)
        rtree = SignatureFilteredScan(archive, n_coefficients=8, structure="rtree")
        for _ in range(4):
            query = archive[int(rng.integers(len(archive)))] + rng.normal(0, 0.1, 64)
            a = flat.query(query, measure)
            b = rtree.query(query, measure)
            assert a.result.index == b.result.index
            assert math.isclose(a.result.distance, b.result.distance, rel_tol=1e-9)

    def test_rtree_dtw_matches_bruteforce(self, archive, rng):
        measure = DTWMeasure(radius=3)
        index = SignatureFilteredScan(archive, n_coefficients=16, structure="rtree")
        for _ in range(3):
            query = archive[int(rng.integers(len(archive)))] + rng.normal(0, 0.1, 64)
            reference = brute_force_search(archive, query, measure)
            answer = index.query(query, measure)
            assert answer.result.index == reference.index
            assert math.isclose(answer.result.distance, reference.distance, rel_tol=1e-9)

    def test_unknown_structure_rejected(self, archive):
        with pytest.raises(ValueError, match="structure"):
            SignatureFilteredScan(archive, structure="btree")

    def test_mirror_queries_supported(self, archive, rng):
        measure = EuclideanMeasure()
        index = SignatureFilteredScan(archive, n_coefficients=8)
        query = archive[5][::-1].copy()
        reference = brute_force_search(archive, query, measure, mirror=True)
        answer = index.query(query, measure, mirror=True)
        assert answer.result.index == reference.index


class TestRetrievalAccounting:
    def test_fraction_between_zero_and_one(self, archive, rng):
        index = SignatureFilteredScan(archive, n_coefficients=16)
        query = archive[3] + rng.normal(0, 0.05, 64)
        answer = index.query(query, EuclideanMeasure())
        assert 0.0 < answer.fraction_retrieved <= 1.0
        assert answer.objects_retrieved == round(answer.fraction_retrieved * len(archive))

    def test_close_queries_retrieve_little(self, archive, rng):
        """A near-duplicate query should fetch only a handful of objects."""
        index = SignatureFilteredScan(archive, n_coefficients=16)
        query = archive[7] + rng.normal(0, 0.01, 64)
        answer = index.query(query, EuclideanMeasure())
        assert answer.fraction_retrieved <= 0.25

    def test_more_coefficients_never_hurt_much(self, archive, rng):
        """Higher D tightens the ED filter (Figure 24's trend)."""
        query = archive[11] + rng.normal(0, 0.05, 64)
        fractions = []
        for d in (4, 8, 16, 32):
            index = SignatureFilteredScan(archive, n_coefficients=d)
            fractions.append(index.query(query, EuclideanMeasure()).fraction_retrieved)
        assert fractions[-1] <= fractions[0] + 1e-9

    def test_dtw_index_wedge_granularity(self, archive, rng):
        """More index wedges can only tighten the DTW filter."""
        query = archive[2] + rng.normal(0, 0.05, 64)
        measure = DTWMeasure(radius=2)
        index = SignatureFilteredScan(archive, n_coefficients=16)
        coarse = index.query(query, measure, index_wedges=2).fraction_retrieved
        fine = index.query(query, measure, index_wedges=32).fraction_retrieved
        assert fine <= coarse + 1e-9

    def test_signature_tests_reported(self, archive, rng):
        index = SignatureFilteredScan(archive, n_coefficients=8)
        answer = index.query(archive[0], EuclideanMeasure())
        assert answer.signature_tests == len(archive)


class TestValidation:
    def test_rejects_lcss(self, archive):
        index = SignatureFilteredScan(archive)
        with pytest.raises(ValueError):
            index.query(archive[0], LCSSMeasure(1, 0.5))

    def test_rejects_bad_coefficients(self, archive):
        with pytest.raises(ValueError):
            SignatureFilteredScan(archive, n_coefficients=0)

    def test_coefficients_capped_at_spectrum(self, archive):
        index = SignatureFilteredScan(archive, n_coefficients=10_000)
        assert index.n_coefficients == 64 // 2 + 1
