"""Tests for the landmarking baselines (Section 2.1)."""

import math

import numpy as np
import pytest

from repro.distances.euclidean import euclidean_distance
from repro.shapes.generators import fourier_blob, regular_polygon, rotate_polygon, star_polygon
from repro.shapes.landmarks import (
    align_to_major_axis,
    landmark_series,
    major_axis_angle,
    sharpest_corner_index,
)
from repro.shapes.transforms import add_vertex_noise


def elongated_blob(seed=4):
    """A clearly elongated shape with a well-defined major axis."""
    blob = fourier_blob(np.random.default_rng(seed), [(2, 0.55, 0.0)], jitter=0.0)
    return blob


class TestMajorAxis:
    def test_detects_known_orientation(self):
        shape = elongated_blob()
        base = major_axis_angle(shape)
        for degrees in (30.0, 75.0, 120.0):
            rotated = rotate_polygon(shape, degrees)
            got = major_axis_angle(rotated)
            expected = (base + math.radians(degrees)) % math.pi
            delta = min(abs(got - expected), math.pi - abs(got - expected))
            assert delta < 0.05

    def test_alignment_normalises_rotation(self):
        shape = elongated_blob()
        a = align_to_major_axis(shape)
        b = align_to_major_axis(rotate_polygon(shape, 67.0))
        assert abs(major_axis_angle(a)) < 0.05 or abs(major_axis_angle(a) - math.pi) < 0.05
        # Both alignments land on the same axis (possibly flipped 180).
        assert (
            min(
                abs(major_axis_angle(a) - major_axis_angle(b)),
                math.pi - abs(major_axis_angle(a) - major_axis_angle(b)),
            )
            < 0.05
        )

    def test_unreliable_on_round_shapes(self):
        """The paper's objection, verified: on a near-circular shape a tiny
        perturbation can swing the major axis arbitrarily."""
        rng_a, rng_b = np.random.default_rng(1), np.random.default_rng(2)
        circle = regular_polygon(128)
        a = major_axis_angle(add_vertex_noise(circle, rng_a, 0.01))
        b = major_axis_angle(add_vertex_noise(circle, rng_b, 0.01))
        # Not asserting instability deterministically -- asserting that the
        # axis is *defined by noise*: the clean circle's covariance is
        # isotropic to machine precision.
        sampled = circle - circle.mean(axis=0)
        cov = sampled.T @ sampled
        eigenvalues = np.linalg.eigvalsh(cov)
        assert eigenvalues[1] - eigenvalues[0] < 1e-6 * eigenvalues[1]

    def test_rejects_degenerate(self):
        with pytest.raises(ValueError):
            major_axis_angle(np.zeros((1, 2)))


class TestSharpestCorner:
    def test_finds_star_tip(self):
        star = star_polygon(3, outer=1.0, inner=0.4)
        idx = sharpest_corner_index(star, n_samples=300)
        from repro.shapes.convert import resample_closed_curve

        pts = resample_closed_curve(star, 300)
        radius = math.hypot(*pts[idx])
        # The sharpest turns on a 3-star are at the inner notches or the
        # tips; either way the point is an extreme radius, not mid-edge.
        assert radius > 0.9 or radius < 0.55

    def test_stable_across_rotation_for_pointy_shape(self):
        """On a shape with ONE dominant corner the landmark is meaningful."""
        # A teardrop: one sharp tip.
        t = np.linspace(0, 2 * math.pi, 256, endpoint=False)
        radius = 1.0 + 0.8 * np.exp(-((np.minimum(t, 2 * math.pi - t)) ** 2) / 0.02)
        teardrop = np.column_stack([radius * np.cos(t), radius * np.sin(t)])
        a = landmark_series(teardrop, 128, method="sharpest-corner")
        b = landmark_series(np.roll(teardrop, 91, axis=0), 128, method="sharpest-corner")
        assert euclidean_distance(a, b) < 0.35 * euclidean_distance(a, np.roll(a, 64))


class TestLandmarkSeries:
    def test_major_axis_series_aligns_elongated_shapes(self):
        shape = elongated_blob()
        a = landmark_series(shape, 128, method="major-axis")
        b = landmark_series(rotate_polygon(shape, 140.0), 128, method="major-axis")
        # Either aligned, or 180-degrees flipped (the direction ambiguity).
        flipped = np.roll(b, 64)
        assert min(euclidean_distance(a, b), euclidean_distance(a, flipped)) < 0.2

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            landmark_series(regular_polygon(5), method="astrology")

    def test_landmark_fails_on_round_shapes_where_invariant_succeeds(self):
        """Figure 3, quantified: on low-eccentricity shapes the major axis
        is defined by specimen noise, so the landmark alignment of two
        same-class specimens is essentially random -- while best-rotation
        matching recovers their similarity."""
        from repro.core.search import brute_force_search
        from repro.distances.euclidean import EuclideanMeasure
        from repro.shapes.convert import polygon_to_series

        harmonics = [(3, 0.2, 0.3), (5, 0.15, 1.2)]
        specimen_a = fourier_blob(np.random.default_rng(1), harmonics, jitter=0.0)
        specimen_b = fourier_blob(np.random.default_rng(2), harmonics, jitter=0.05)
        for degrees in (25.0, 80.0, 200.0):
            rotated = rotate_polygon(specimen_b, degrees)
            landmark_dist = euclidean_distance(
                landmark_series(specimen_a, 96, method="major-axis"),
                landmark_series(rotated, 96, method="major-axis"),
            )
            invariant = brute_force_search(
                [polygon_to_series(rotated, 96)],
                polygon_to_series(specimen_a, 96),
                EuclideanMeasure(),
            ).distance
            # "A small amount of rotation error results in a large
            # difference in the distance measure."
            assert invariant < 0.5 * landmark_dist
