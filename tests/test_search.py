"""Tests for the four search strategies: exactness, accounting, invariances."""

import math

import pytest

from repro.core.hmerge import FixedKPolicy
from repro.core.search import (
    RotationQuery,
    brute_force_search,
    early_abandon_search,
    fft_search,
    test_all_rotations as scan_all_rotations,
    wedge_search,
)
from repro.distances.dtw import DTWMeasure
from repro.distances.euclidean import EuclideanMeasure
from repro.distances.lcss import LCSSMeasure
from repro.timeseries.ops import circular_shift
from tests.conftest import naive_euclidean, naive_rotation_min

MEASURES = [EuclideanMeasure(), DTWMeasure(radius=2), LCSSMeasure(delta=2, epsilon=0.5)]


@pytest.fixture
def database(random_walk):
    return [random_walk(18) for _ in range(15)]


@pytest.fixture
def query(random_walk):
    return random_walk(18)


class TestTestAllRotations:
    def test_matches_naive_rotation_min(self, database, query):
        rq = RotationQuery(query)
        measure = EuclideanMeasure()
        for candidate in database[:5]:
            dist, rotation = scan_all_rotations(candidate, rq, measure)
            want, want_j = naive_rotation_min(candidate, query, naive_euclidean)
            assert math.isclose(dist, want, rel_tol=1e-9)
            assert rotation == want_j

    def test_threshold_semantics(self, database, query):
        rq = RotationQuery(query)
        measure = EuclideanMeasure()
        true, _ = scan_all_rotations(database[0], rq, measure)
        hit, _ = scan_all_rotations(database[0], rq, measure, r=true * 1.01)
        miss, _ = scan_all_rotations(database[0], rq, measure, r=true * 0.99)
        assert math.isclose(hit, true, rel_tol=1e-9)
        assert math.isinf(miss)


class TestStrategyEquivalence:
    """The paper's core guarantee: no false dismissals, every strategy."""

    @pytest.mark.parametrize("measure", MEASURES, ids=["ed", "dtw", "lcss"])
    def test_all_strategies_agree(self, database, query, measure):
        reference = brute_force_search(database, query, measure)
        assert reference.found
        results = [
            early_abandon_search(database, query, measure),
            wedge_search(database, query, measure),
            wedge_search(database, query, measure, k_policy=FixedKPolicy(1)),
            wedge_search(database, query, measure, order="best-first"),
            wedge_search(database, query, measure, linkage_method="contiguous"),
        ]
        if measure.name == "euclidean":
            results.append(fft_search(database, query))
        for result in results:
            assert result.index == reference.index, result.strategy
            assert math.isclose(result.distance, reference.distance, rel_tol=1e-9), result.strategy

    @pytest.mark.parametrize("measure", MEASURES[:2], ids=["ed", "dtw"])
    def test_mirror_agreement(self, database, query, measure):
        reference = brute_force_search(database, query, measure, mirror=True)
        result = wedge_search(database, query, measure, mirror=True)
        assert result.index == reference.index
        assert math.isclose(result.distance, reference.distance, rel_tol=1e-9)

    def test_rotation_limited_agreement(self, database, query):
        measure = EuclideanMeasure()
        reference = brute_force_search(database, query, measure, max_degrees=45.0)
        result = wedge_search(database, query, measure, max_degrees=45.0)
        assert result.index == reference.index
        assert math.isclose(result.distance, reference.distance, rel_tol=1e-9)


class TestInvariances:
    def test_finds_planted_rotation(self, database, random_walk):
        """A rotated copy of the query must be found at distance ~0."""
        query = random_walk(18)
        planted = list(database)
        planted[7] = circular_shift(query, 11)
        for search in (brute_force_search, early_abandon_search, wedge_search):
            result = search(planted, query, EuclideanMeasure())
            assert result.index == 7
            assert result.distance < 1e-9

    def test_query_rotation_does_not_change_answer(self, database, query):
        measure = EuclideanMeasure()
        base = brute_force_search(database, query, measure)
        for k in (3, 9):
            rotated = wedge_search(database, circular_shift(query, k), measure)
            assert rotated.index == base.index
            assert math.isclose(rotated.distance, base.distance, rel_tol=1e-9)

    def test_mirror_finds_reversed_copy(self, database, random_walk):
        query = random_walk(18)
        planted = list(database)
        planted[2] = circular_shift(query[::-1].copy(), 5)
        plain = wedge_search(planted, query, EuclideanMeasure())
        mirrored = wedge_search(planted, query, EuclideanMeasure(), mirror=True)
        assert mirrored.index == 2
        assert mirrored.distance < 1e-9
        assert mirrored.distance <= plain.distance

    def test_rotation_limit_excludes_big_shifts(self, database, random_walk):
        query = random_walk(36)
        db36 = [random_walk(36) for _ in range(8)]
        db36[4] = circular_shift(query, 18)  # 180 degrees away
        unrestricted = wedge_search(db36, query, EuclideanMeasure())
        limited = wedge_search(db36, query, EuclideanMeasure(), max_degrees=20.0)
        assert unrestricted.index == 4
        assert unrestricted.distance < 1e-9
        assert limited.distance > 1e-6 or limited.index != 4


class TestAccounting:
    def test_brute_force_step_count_is_deterministic(self, database, query):
        result = brute_force_search(database, query, EuclideanMeasure())
        n = len(query)
        assert result.counter.steps == len(database) * n * n

    def test_early_abandon_never_costs_more_than_brute(self, database, query):
        for measure in MEASURES[:2]:
            brute = brute_force_search(database, query, measure)
            fast = early_abandon_search(database, query, measure)
            assert fast.counter.steps <= brute.counter.steps

    def test_fft_charges_nlogn_per_object(self, database, query):
        result = fft_search(database, query)
        n = len(query)
        from repro.core.counters import fft_step_cost

        assert result.counter.steps >= len(database) * fft_step_cost(n)
        assert result.counter.lb_calls == len(database)

    def test_wedge_search_charges_setup(self, database, query):
        charged = wedge_search(database, query, EuclideanMeasure(), charge_setup=True)
        free = wedge_search(database, query, EuclideanMeasure(), charge_setup=False)
        n = len(query)
        assert charged.counter.steps >= free.counter.steps + (n - 1) * n - 1

    def test_empty_database(self, query):
        result = wedge_search([], query, EuclideanMeasure())
        assert not result.found
        assert result.index == -1
        assert math.isinf(result.distance)

    def test_fft_rejects_non_euclidean(self, database, query):
        with pytest.raises(ValueError, match="Euclidean"):
            fft_search(database, query, DTWMeasure(2))


class TestRotationQuery:
    def test_reused_query_object_accepted_everywhere(self, database, query):
        rq = RotationQuery(query)
        a = brute_force_search(database, rq, EuclideanMeasure())
        b = wedge_search(database, rq, EuclideanMeasure())
        assert a.index == b.index

    def test_wedge_tree_built_once(self, query):
        rq = RotationQuery(query)
        assert rq.wedge_tree() is rq.wedge_tree()

    def test_signature_cached(self, query):
        rq = RotationQuery(query)
        assert rq.signature(8) is rq.signature(8)
        assert rq.signature(8).size == 8

    def test_linkage_method_is_plumbed_through(self, database, query):
        """Regression: wedge_search must honour linkage_method when it
        builds the RotationQuery itself (it was once silently dropped)."""
        import repro.core.search as search_mod

        captured = {}
        original = search_mod.RotationQuery

        class Recorder(original):
            def __init__(self, series, **kwargs):
                captured.update(kwargs)
                super().__init__(series, **kwargs)

        search_mod.RotationQuery = Recorder
        try:
            wedge_search(database, query, EuclideanMeasure(), linkage_method="contiguous")
        finally:
            search_mod.RotationQuery = original
        assert captured.get("linkage_method") == "contiguous"

    def test_linkage_methods_build_different_trees(self, query):
        avg = RotationQuery(query, linkage_method="average").wedge_tree()
        contiguous = RotationQuery(query, linkage_method="contiguous").wedge_tree()
        partition = lambda tree: sorted(tuple(sorted(w.indices)) for w in tree.frontier(4))
        # Same leaves, (almost surely) different groupings for a random walk.
        assert partition(avg) != partition(contiguous)
