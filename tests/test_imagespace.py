"""Tests for the Chamfer / Hausdorff image-space baselines (Section 2)."""


import numpy as np
import pytest

from repro.distances.imagespace import (
    chamfer_distance,
    directed_hausdorff,
    hausdorff_distance,
    rotation_invariant_pointset_distance,
)
from repro.shapes.generators import butterfly, regular_polygon, rotate_polygon, star_polygon
from repro.shapes.transforms import articulate_polygon


class TestPointSetDistances:
    def test_identical_sets_distance_zero(self, rng):
        pts = rng.normal(size=(20, 2))
        assert hausdorff_distance(pts, pts) == 0.0
        assert chamfer_distance(pts, pts) == 0.0

    def test_directed_hausdorff_asymmetric(self):
        a = np.array([[0.0, 0.0]])
        b = np.array([[0.0, 0.0], [10.0, 0.0]])
        assert directed_hausdorff(a, b) == 0.0
        assert directed_hausdorff(b, a) == 10.0

    def test_symmetric_hausdorff_is_max_of_directed(self):
        a = np.array([[0.0, 0.0], [1.0, 0.0]])
        b = np.array([[0.0, 0.5], [5.0, 0.0]])
        expected = max(directed_hausdorff(a, b), directed_hausdorff(b, a))
        assert hausdorff_distance(a, b) == expected

    def test_chamfer_below_hausdorff(self, rng):
        a = rng.normal(size=(15, 2))
        b = rng.normal(size=(15, 2))
        assert chamfer_distance(a, b) <= hausdorff_distance(a, b) + 1e-12

    def test_single_outlier_dominates_hausdorff_not_chamfer(self):
        """The paper's bent-antenna thought experiment."""
        base = np.column_stack([np.linspace(0, 1, 50), np.zeros(50)])
        bent = base.copy()
        bent[-1] = [1.0, 1.0]  # one point swings away
        h = hausdorff_distance(base, bent)
        c = chamfer_distance(base, bent)
        assert h > 0.9
        assert c < 0.1 * h


class TestRotationInvariantPointset:
    def test_recovers_rotated_copy(self):
        star = star_polygon(5)
        rotated = rotate_polygon(star, 36.0)
        d = rotation_invariant_pointset_distance(star, rotated, "chamfer", n_rotations=72)
        assert d < 0.02

    def test_separates_different_shapes(self):
        star = star_polygon(5, inner=0.3)
        disk = regular_polygon(32)
        d = rotation_invariant_pointset_distance(star, disk, "chamfer", n_rotations=32)
        assert d > 0.1

    def test_hausdorff_variant(self):
        star = star_polygon(4)
        d_same = rotation_invariant_pointset_distance(star, rotate_polygon(star, 45.0), "hausdorff")
        d_diff = rotation_invariant_pointset_distance(star, regular_polygon(16), "hausdorff")
        assert d_same < d_diff

    def test_articulation_hurts_hausdorff_more_than_centroid_series(self):
        """Figure 18's comparison, quantified: bending a wing moves the
        Hausdorff distance by a large fraction of the inter-shape scale,
        while the rotation-invariant series distance barely moves."""
        from repro.core.search import brute_force_search
        from repro.distances.euclidean import EuclideanMeasure
        from repro.shapes.convert import polygon_to_series

        moth = butterfly(np.random.default_rng(2), jitter=0.0)
        bent = articulate_polygon(moth, center_fraction=2 / 3, width_fraction=0.18, degrees=25)
        other = butterfly(np.random.default_rng(2), forewing=0.6, hindwing=1.1, jitter=0.0)

        h_bend = rotation_invariant_pointset_distance(moth, bent, "hausdorff", n_rotations=36)
        h_species = rotation_invariant_pointset_distance(moth, other, "hausdorff", n_rotations=36)

        measure = EuclideanMeasure()
        s_moth = polygon_to_series(moth, 96)
        s_bend = brute_force_search([polygon_to_series(bent, 96)], s_moth, measure).distance
        s_species = brute_force_search([polygon_to_series(other, 96)], s_moth, measure).distance

        # Articulation-to-species ratio: much smaller for the 1-D method.
        assert s_bend / s_species < h_bend / h_species

    def test_validation(self):
        with pytest.raises(ValueError):
            rotation_invariant_pointset_distance(
                regular_polygon(4), regular_polygon(4), metric="manhattan"
            )
        with pytest.raises(ValueError):
            rotation_invariant_pointset_distance(
                regular_polygon(4), regular_polygon(4), n_rotations=0
            )
