"""API surface tests: exports resolve, public items are documented."""

import importlib
import inspect

import pytest

import repro

SUBPACKAGES = [
    "repro.core",
    "repro.distances",
    "repro.shapes",
    "repro.timeseries",
    "repro.clustering",
    "repro.index",
    "repro.classify",
    "repro.datasets",
    "repro.mining",
]


class TestExports:
    def test_version(self):
        assert repro.__version__.count(".") == 2

    def test_top_level_all_resolves(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    @pytest.mark.parametrize("module_name", SUBPACKAGES)
    def test_subpackage_all_resolves(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__all__, module_name
        for name in module.__all__:
            assert hasattr(module, name), f"{module_name}.{name}"

    def test_no_duplicate_exports(self):
        assert len(repro.__all__) == len(set(repro.__all__))


class TestDocumentation:
    @pytest.mark.parametrize("module_name", SUBPACKAGES + ["repro", "repro.viz", "repro.persistence", "repro.cli"])
    def test_module_docstrings(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__ and len(module.__doc__.strip()) > 20, module_name

    def test_every_public_item_documented(self):
        undocumented = []
        for name in repro.__all__:
            if name.startswith("__"):
                continue
            obj = getattr(repro, name)
            if inspect.isfunction(obj) or inspect.isclass(obj):
                if not (obj.__doc__ and obj.__doc__.strip()):
                    undocumented.append(name)
        assert undocumented == []

    def test_public_methods_documented(self):
        """Every public method carries a docstring, possibly inherited:
        an override documented by its base-class contract counts."""

        def documented(cls, method_name):
            for base in cls.__mro__:
                candidate = base.__dict__.get(method_name)
                if candidate is not None:
                    doc = getattr(candidate, "__doc__", None)
                    if doc and doc.strip():
                        return True
            return False

        undocumented = []
        for name in repro.__all__:
            obj = getattr(repro, name)
            if not inspect.isclass(obj):
                continue
            for method_name, _method in inspect.getmembers(obj, inspect.isfunction):
                if method_name.startswith("_"):
                    continue
                if not documented(obj, method_name):
                    undocumented.append(f"{name}.{method_name}")
        assert undocumented == []


class TestMeasureContract:
    """Every measure honours the Measure interface obligations."""

    def measures(self):
        from repro.distances.dtw import DTWMeasure
        from repro.distances.euclidean import EuclideanMeasure
        from repro.distances.lcss import LCSSMeasure

        return [EuclideanMeasure(), DTWMeasure(2), LCSSMeasure(2, 0.5)]

    def test_names_distinct(self):
        names = [m.name for m in self.measures()]
        assert len(set(names)) == len(names)

    def test_cache_keys_start_with_name(self):
        for measure in self.measures():
            assert measure.cache_key()[0] == measure.name

    def test_pairwise_cost_positive(self):
        for measure in self.measures():
            assert measure.pairwise_cost(100) >= 100 or measure.name == "euclidean"
            assert measure.pairwise_cost(100) > 0
