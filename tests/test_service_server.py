"""End-to-end service tests: coordinator, workers, cache, TCP, failures.

Everything runs against real worker processes over real pipes (and one
real TCP round-trip), scaled small so the suite stays fast on one core.
"""

import numpy as np
import pytest

from repro.distances.euclidean import EuclideanMeasure
from repro.mining.queries import knn_search, range_search
from repro.obs.metrics import parse_prometheus_text
from repro.obs.querylog import read_query_log
from repro.service import ServiceClient, save_shards, start_service_thread


@pytest.fixture(scope="module")
def walks():
    rng = np.random.default_rng(21)
    data = np.cumsum(rng.normal(size=(21, 16)), axis=1)
    data[15] = data[1]  # exact duplicate across shards: tie-break coverage
    return data


@pytest.fixture(scope="module")
def shard_dir(walks, tmp_path_factory):
    directory = tmp_path_factory.mktemp("shards")
    save_shards(walks, directory, 3, n_coefficients=8)
    return directory


@pytest.fixture(scope="module")
def handle(shard_dir):
    handle = start_service_thread(shard_dir, EuclideanMeasure(), cache_size=32)
    yield handle
    handle.close()


class TestQueries:
    def test_knn_matches_single_process_bitwise(self, handle, walks):
        measure = EuclideanMeasure()
        for qi, k in ((0, 1), (4, 5), (1, 3)):
            query = walks[qi] + 0.01
            response = handle.request(
                {"op": "knn", "query": list(query), "k": k, "no_cache": True}
            )
            assert response["ok"], response
            expected = knn_search(walks, query, measure, k=k)
            assert response["neighbors"] == [
                [nb.index, nb.distance, nb.rotation] for nb in expected
            ]
            assert response["shards"] == 3
            assert response["backend"] == measure.backend_name

    def test_knn_duplicate_across_shards_tie_parity(self, handle, walks):
        query = walks[1]  # distance 0 to objects 1 and 15 (different shards)
        response = handle.request(
            {"op": "knn", "query": list(query), "k": 2, "no_cache": True}
        )
        expected = knn_search(walks, query, EuclideanMeasure(), k=2)
        assert [nb.index for nb in expected] == [1, 15]
        assert response["neighbors"] == [
            [nb.index, nb.distance, nb.rotation] for nb in expected
        ]

    def test_k_larger_than_any_shard(self, handle, walks):
        query = walks[8]
        response = handle.request(
            {"op": "knn", "query": list(query), "k": 10, "no_cache": True}
        )
        expected = knn_search(walks, query, EuclideanMeasure(), k=10)
        assert response["neighbors"] == [
            [nb.index, nb.distance, nb.rotation] for nb in expected
        ]

    def test_range_matches_single_process(self, handle, walks):
        measure = EuclideanMeasure()
        query = walks[6] + 0.02
        probe = knn_search(walks, query, measure, k=4)
        radius = probe[3].distance
        response = handle.request(
            {"op": "range", "query": list(query), "radius": radius, "no_cache": True}
        )
        expected = range_search(walks, query, measure, radius=radius)
        assert len(expected) >= 1
        assert response["neighbors"] == [
            [nb.index, nb.distance, nb.rotation] for nb in expected
        ]

    def test_ping_describes_the_deployment(self, handle):
        response = handle.request({"op": "ping"})
        assert response["ok"]
        assert response["shards"] == 3
        assert response["objects"] == 21
        assert response["length"] == 16
        assert response["measure"] == "euclidean"

    def test_bad_requests_get_structured_errors(self, handle):
        wrong_length = handle.request({"op": "knn", "query": [1.0, 2.0], "k": 1})
        assert not wrong_length["ok"]
        assert wrong_length["error"]["type"] == "bad-request"
        bad_k = handle.request({"op": "knn", "query": [0.0] * 16, "k": 0})
        assert not bad_k["ok"]
        missing_radius = handle.request({"op": "range", "query": [0.0] * 16})
        assert not missing_radius["ok"]
        unknown = handle.request({"op": "frobnicate"})
        assert not unknown["ok"]


class TestCache:
    def test_hit_on_repeat_and_no_cache_bypass(self, handle, walks):
        query = walks[10] + 0.5
        first = handle.request({"op": "knn", "query": list(query), "k": 2})
        again = handle.request({"op": "knn", "query": list(query), "k": 2})
        bypass = handle.request(
            {"op": "knn", "query": list(query), "k": 2, "no_cache": True}
        )
        assert first["cached"] is False
        assert again["cached"] is True
        assert bypass["cached"] is False
        assert first["neighbors"] == again["neighbors"] == bypass["neighbors"]

    def test_different_k_is_a_different_entry(self, handle, walks):
        query = walks[11] + 0.25
        handle.request({"op": "knn", "query": list(query), "k": 1})
        other_k = handle.request({"op": "knn", "query": list(query), "k": 3})
        assert other_k["cached"] is False


class TestMetrics:
    def test_exposition_merges_workers_and_parses(self, handle, walks):
        handle.request({"op": "knn", "query": list(walks[3]), "k": 1, "no_cache": True})
        response = handle.request({"op": "metrics"})
        assert response["ok"], response
        parsed = parse_prometheus_text(response["prometheus"])
        families = parsed["families"]
        # Coordinator-side families
        assert families["service_requests_total"]["type"] == "counter"
        assert families["service_batch_size"]["type"] == "histogram"
        # Worker-side families, folded via registry_from_dict + merge
        assert families["service_worker_requests_total"]["type"] == "counter"
        assert families["queries_total"]["type"] == "counter"
        # Cache families
        assert families["answer_cache_hits_total"]["type"] == "counter"
        shard_labels = {
            labels["shard"]
            for name, labels, _value in parsed["samples"]
            if name == "service_worker_requests_total"
        }
        assert shard_labels == {"0", "1", "2"}
        assert response["cache"]["capacity"] == 32


class TestTcpFrontEnd:
    def test_client_round_trip_over_tcp(self, handle, walks):
        with ServiceClient(port=handle.port) as client:
            ping = client.ping()
            assert ping["ok"] and ping["server"] == "repro-service"
            query = walks[2] + 0.1
            response = client.knn(query, k=3, no_cache=True)
            expected = knn_search(walks, query, EuclideanMeasure(), k=3)
            assert response["neighbors"] == [
                [nb.index, nb.distance, nb.rotation] for nb in expected
            ]
            metrics = client.metrics()
            assert "service_requests_total" in metrics["prometheus"]


class TestWorkerDeath:
    def test_killed_worker_self_heals_bit_identically(self, shard_dir, walks):
        """The PR's headline acceptance: SIGKILL a worker, the next query to
        that shard succeeds bit-identically and the restart counter moved."""
        handle = start_service_thread(shard_dir, EuclideanMeasure(), cache_size=0)
        try:
            query = walks[0] + 0.07
            before = handle.request({"op": "knn", "query": list(query), "k": 3})
            assert before["ok"]
            victim = handle.service.workers[1]
            victim.worker.process.kill()
            victim.worker.process.join(10)
            after = handle.request({"op": "knn", "query": list(query), "k": 3})
            assert after["ok"], after
            assert after["neighbors"] == before["neighbors"]
            assert after.get("partial") is False
            expected = knn_search(walks, query, EuclideanMeasure(), k=3)
            assert after["neighbors"] == [
                [nb.index, nb.distance, nb.rotation] for nb in expected
            ]
            metrics = handle.request({"op": "metrics"})
            parsed = parse_prometheus_text(metrics["prometheus"])
            restarts = sum(
                value
                for name, _labels, value in parsed["samples"]
                if name == "service_worker_restarts_total"
            )
            assert restarts >= 1
            health = handle.request({"op": "health"})
            assert health["ok"]
            assert health["shards"][1]["restarts"] >= 1
            assert health["shards"][1]["state"] == "live"
            # The front-end itself stays responsive.
            assert handle.request({"op": "ping"})["ok"]
        finally:
            handle.close()


class TestServicePlanner:
    def test_health_exposes_the_planner_and_answers_stamp_the_plan(self, handle, walks):
        query = walks[9] + 0.4
        response = handle.request(
            {"op": "knn", "query": list(query), "k": 2, "no_cache": True}
        )
        assert response["ok"]
        assert response["plan"].startswith("wedge:")
        assert response["tier_stats"]["leaf_candidates"] > 0
        health = handle.request({"op": "health"})
        planner = health["planner"]
        assert planner["mode"] == "auto"
        assert planner["plan"].startswith("wedge:")
        assert planner["observations"] >= 1
        ping = handle.request({"op": "ping"})
        assert ping["plan"] == planner["plan"] or ping["plan"].startswith("wedge:")

    def test_hot_cache_loop_does_not_shift_the_plan(self, shard_dir, walks):
        """Satellite bugfix: cache-served answers replay recorded telemetry
        and must not keep feeding the planner's cost model."""
        handle = start_service_thread(shard_dir, EuclideanMeasure(), cache_size=32)
        try:
            query = walks[7] + 0.6
            handle.request({"op": "knn", "query": list(query), "k": 2})
            # One cache-hit batch so the snapshot reflects the warmed plan
            # (plans are recomputed at the top of each micro-batch).
            assert handle.request({"op": "knn", "query": list(query), "k": 2})["cached"]
            before = handle.request({"op": "health"})["planner"]
            for _ in range(20):
                hit = handle.request({"op": "knn", "query": list(query), "k": 2})
                assert hit["cached"] is True
            after = handle.request({"op": "health"})["planner"]
            assert after["plan"] == before["plan"]
            assert after["observations"] == before["observations"]
            assert after["totals"] == before["totals"]
            assert after["cached_skipped"] >= 20
            metrics = handle.request({"op": "metrics"})
            parsed = parse_prometheus_text(metrics["prometheus"])
            served = sum(
                value
                for name, _labels, value in parsed["samples"]
                if name == "service_cache_served_total"
            )
            assert served >= 20
        finally:
            handle.close()

    def test_fixed_plan_mode_bit_identical_and_reported(self, shard_dir, walks):
        measure = EuclideanMeasure()
        handle = start_service_thread(
            shard_dir, measure, cache_size=0, plan="fixed:keogh:scalar"
        )
        try:
            query = walks[3] + 0.15
            response = handle.request({"op": "knn", "query": list(query), "k": 3})
            assert response["ok"]
            # The service stamps its resolved backend onto the plan name.
            assert response["plan"].startswith("wedge:keogh:scalar")
            expected = knn_search(walks, query, measure, k=3)
            assert response["neighbors"] == [
                [nb.index, nb.distance, nb.rotation] for nb in expected
            ]
            health = handle.request({"op": "health"})
            assert health["planner"]["mode"] == "fixed"
            assert health["planner"]["plan"].startswith("wedge:keogh:scalar")
        finally:
            handle.close()

    def test_every_enumerable_fixed_plan_matches_auto(self, shard_dir, walks):
        from repro.core.planner import enumerate_plans

        measure = EuclideanMeasure()
        query = walks[12] + 0.33
        auto = start_service_thread(shard_dir, measure, cache_size=0)
        try:
            reference = auto.request({"op": "knn", "query": list(query), "k": 4})
        finally:
            auto.close()
        assert reference["ok"]
        for plan in enumerate_plans(measure):
            spec = "fixed:" + (">".join(plan.tiers) or "none")
            spec += ":batch" if plan.batch_leaves else ":scalar"
            handle = start_service_thread(shard_dir, measure, cache_size=0, plan=spec)
            try:
                got = handle.request({"op": "knn", "query": list(query), "k": 4})
            finally:
                handle.close()
            assert got["neighbors"] == reference["neighbors"], spec


class TestQueryLog:
    def test_records_stamp_backend_and_shard_count(self, shard_dir, walks, tmp_path):
        from repro.obs.querylog import QueryLogger

        log_path = tmp_path / "svc.jsonl"
        logger = QueryLogger(log_path)
        handle = start_service_thread(
            shard_dir, EuclideanMeasure(), cache_size=8, query_log=logger
        )
        try:
            query = walks[5] + 0.3
            handle.request({"op": "knn", "query": list(query), "k": 2})
            handle.request({"op": "knn", "query": list(query), "k": 2})  # cache hit
        finally:
            handle.close()
            logger.close()
        records = read_query_log(log_path)
        assert len(records) == 2
        for record in records:
            assert record["backend"] == EuclideanMeasure().backend_name
            assert record["shards"] == 3
            assert record["op"] == "knn"
            assert record["steps"] > 0
            assert record["plan"].startswith("wedge:")
        assert [record["cached"] for record in records] == [False, True]
