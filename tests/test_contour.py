"""Tests for boundary tracing and component labelling (Figure 2, A -> B)."""

import numpy as np
import pytest

from repro.shapes.contour import flood_fill_components, largest_contour, moore_trace


def image_from_strings(rows):
    return np.array([[c == "#" for c in row] for row in rows])


class TestMooreTrace:
    def test_single_pixel(self):
        img = image_from_strings([".#.", "...", "..."])
        contour = moore_trace(img, (0, 1))
        assert contour.tolist() == [[0, 1]]

    def test_square_block(self):
        img = image_from_strings(["####", "####", "####", "####"])
        contour = moore_trace(img, (0, 0))
        pts = {tuple(p) for p in contour}
        # All 12 border pixels, no interior pixels.
        assert (1, 1) not in pts
        assert (1, 2) not in pts
        border = {(r, c) for r in range(4) for c in range(4) if r in (0, 3) or c in (0, 3)}
        assert pts == border

    def test_line_is_traced_both_sides(self):
        img = image_from_strings(["#####"])
        contour = moore_trace(img, (0, 0))
        pts = [tuple(p) for p in contour]
        assert set(pts) == {(0, c) for c in range(5)}
        # A 1-pixel line is walked out and back.
        assert len(pts) >= 5

    def test_l_shape_connectivity(self):
        img = image_from_strings(
            [
                "##...",
                "##...",
                "#####",
                "#####",
            ]
        )
        contour = moore_trace(img, (0, 0))
        pts = {tuple(p) for p in contour}
        assert (0, 0) in pts and (3, 4) in pts and (0, 1) in pts
        assert (3, 1) in pts  # bottom edge
        # The inner corner pixel (1, 1)... (1,1) is on the boundary of the L.
        assert all(img[r, c] for r, c in pts)

    def test_contour_pixels_are_8_connected(self):
        img = image_from_strings(
            [
                "..###..",
                ".#####.",
                "#######",
                ".#####.",
                "..###..",
            ]
        )
        contour = moore_trace(img, (0, 2))
        for (r1, c1), (r2, c2) in zip(contour, np.roll(contour, -1, axis=0)):
            assert max(abs(r1 - r2), abs(c1 - c2)) <= 1

    def test_rejects_background_start(self):
        img = image_from_strings(["#.", ".."])
        with pytest.raises(ValueError):
            moore_trace(img, (1, 1))

    def test_rejects_out_of_bounds_start(self):
        img = image_from_strings(["#"])
        with pytest.raises(ValueError):
            moore_trace(img, (5, 5))


class TestFloodFill:
    def test_labels_two_components(self):
        img = image_from_strings(["##..", "....", "..##"])
        labels = flood_fill_components(img)
        assert labels.max() == 2
        assert labels[0, 0] == labels[0, 1]
        assert labels[2, 2] == labels[2, 3]
        assert labels[0, 0] != labels[2, 2]
        assert labels[1, 1] == 0

    def test_diagonal_pixels_are_separate_components(self):
        img = image_from_strings(["#.", ".#"])
        labels = flood_fill_components(img)
        assert labels.max() == 2

    def test_empty_image(self):
        labels = flood_fill_components(np.zeros((3, 3), dtype=bool))
        assert labels.max() == 0


class TestLargestContour:
    def test_picks_biggest_blob(self):
        img = image_from_strings(
            [
                "#....",
                ".....",
                ".####",
                ".####",
            ]
        )
        contour = largest_contour(img)
        pts = {tuple(p) for p in contour}
        assert (0, 0) not in pts
        assert all(r >= 2 for r, _c in pts)

    def test_rejects_empty_image(self):
        with pytest.raises(ValueError):
            largest_contour(np.zeros((4, 4), dtype=bool))

    def test_roundtrip_with_rasterizer(self):
        """Rasterise a disk, trace it, and sanity-check the boundary."""
        from repro.shapes.generators import regular_polygon
        from repro.shapes.image import rasterize_polygon

        img = rasterize_polygon(regular_polygon(36), resolution=48)
        contour = largest_contour(img)
        assert len(contour) > 40
        # Every contour pixel is foreground and touches background.
        padded = np.pad(img, 1)
        for r, c in contour:
            assert img[r, c]
            neighbourhood = padded[r : r + 3, c : c + 3]
            assert not neighbourhood.all()
