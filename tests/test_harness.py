"""Tests for the benchmark harness (benchmarks/harness.py).

The harness is the part of the reproduction that *defines* what the
figures mean -- worth testing like library code.
"""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "benchmarks"))

from harness import (  # noqa: E402
    SpeedupResult,
    brute_force_steps,
    ea_strategy,
    run_speedup_experiment,
    size_grid,
    wedge_strategy,
)
from repro.distances.euclidean import EuclideanMeasure  # noqa: E402


class TestSizeGrid:
    def test_doubles_from_minimum(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert size_grid(256) == [32, 64, 128, 256]

    def test_non_power_maximum_appended(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert size_grid(300) == [32, 64, 128, 256, 300]

    def test_scale_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "2")
        grid = size_grid(100)
        assert grid[-1] == 200


class TestBruteForceSteps:
    def test_formula(self):
        assert brute_force_steps(10, 64, 64) == 10 * 64 * 64


class TestSpeedupResult:
    def test_format_contains_all_series(self):
        result = SpeedupResult("Demo", [32, 64])
        result.fractions["brute-force"] = [1.0, 1.0]
        result.fractions["wedge"] = [0.5, 0.25]
        text = result.format()
        assert "Demo" in text
        assert "brute-force" in text and "wedge" in text
        assert "0.25000" in text


class TestRunSpeedupExperiment:
    @pytest.fixture
    def archive(self, rng):
        walks = rng.normal(size=(40, 16)).cumsum(axis=1)
        return (walks - walks.mean(axis=1, keepdims=True)) / walks.std(
            axis=1, keepdims=True
        )

    def test_fractions_in_unit_interval(self, archive):
        result = run_speedup_experiment(
            "demo",
            archive,
            EuclideanMeasure(),
            strategies={"early-abandon": ea_strategy, "wedge": wedge_strategy},
            m_values=[8, 20, 40],
            n_queries=2,
        )
        assert result.m_values == [8, 20, 40]
        for name in ("early-abandon", "wedge"):
            assert len(result.fractions[name]) == 3
            assert all(0 < f < 5 for f in result.fractions[name])
        assert result.fractions["brute-force"] == [1.0, 1.0, 1.0]

    def test_m_values_clipped_to_archive(self, archive):
        result = run_speedup_experiment(
            "demo",
            archive,
            EuclideanMeasure(),
            strategies={"early-abandon": ea_strategy},
            m_values=[8, 9999],
            n_queries=1,
        )
        assert result.m_values == [8]

    def test_extra_brute_lines_are_constant_ratio(self, archive):
        result = run_speedup_experiment(
            "demo",
            archive,
            EuclideanMeasure(),
            strategies={"early-abandon": ea_strategy},
            m_values=[8, 16],
            n_queries=1,
            brute_pairwise_cost=16 * 16,
            extra_brute_lines={"banded": 16 * 5},
        )
        expected = (16 * 5) / (16 * 16)
        assert result.fractions["banded"] == [expected, expected]

    def test_deterministic_for_fixed_seed(self, archive):
        kwargs = dict(
            measure=EuclideanMeasure(),
            strategies={"wedge": wedge_strategy},
            m_values=[10],
            n_queries=2,
            seed=5,
        )
        a = run_speedup_experiment("a", archive, **kwargs)
        b = run_speedup_experiment("b", archive, **kwargs)
        assert a.fractions["wedge"] == b.fractions["wedge"]
