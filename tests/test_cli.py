"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_search_defaults(self):
        args = build_parser().parse_args(["search"])
        assert args.collection == "points"
        assert args.strategy == "wedge"
        assert args.measure == "euclidean"
        assert not args.mirror

    def test_rejects_unknown_collection(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["search", "--collection", "mnist"])


class TestDatasetsCommand:
    def test_lists_all_rows(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        for name in ("Face", "OSULeaves", "Yoga", "LightCurve"):
            assert name in out


class TestSearchCommand:
    def test_wedge_search_runs(self, capsys):
        code = main(["search", "--collection", "lightcurves", "--size", "20", "--length", "48", "--query-index", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "best match" in out
        assert "of brute force" in out

    def test_strategies_agree(self, capsys):
        answers = {}
        for strategy in ("wedge", "brute", "early-abandon", "fft"):
            main(
                [
                    "search",
                    "--collection",
                    "points",
                    "--size",
                    "15",
                    "--length",
                    "32",
                    "--query-index",
                    "2",
                    "--strategy",
                    strategy,
                ]
            )
            out = capsys.readouterr().out
            answers[strategy] = [line for line in out.splitlines() if "best match" in line][0]
        assert len(set(answers.values())) == 1

    def test_dtw_and_options(self, capsys):
        code = main(
            [
                "search",
                "--collection",
                "points",
                "--size",
                "12",
                "--length",
                "32",
                "--measure",
                "dtw",
                "--radius",
                "2",
                "--mirror",
                "--max-degrees",
                "90",
            ]
        )
        assert code == 0
        assert "best match" in capsys.readouterr().out


class TestClassifyCommand:
    def test_runs_one_dataset(self, capsys):
        code = main(["classify", "--dataset", "Yoga", "--per-class", "3", "--length", "32", "--max-instances", "6"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Yoga" in out
        assert "ED=" in out and "DTW=" in out

    def test_unknown_dataset_exits(self):
        with pytest.raises(SystemExit):
            main(["classify", "--dataset", "MNIST"])


class TestMiningCommands:
    def test_discords(self, capsys):
        code = main(["discords", "--collection", "lightcurves", "--size", "15", "--length", "48", "--top", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "NN distance" in out
        assert out.count("\n") >= 3

    def test_motif(self, capsys):
        code = main(["motif", "--collection", "points", "--size", "12", "--length", "32"])
        assert code == 0
        assert "distance" in capsys.readouterr().out
