"""Tests for the command-line interface."""

import json

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_search_defaults(self):
        args = build_parser().parse_args(["search"])
        assert args.collection == "points"
        assert args.strategy == "wedge"
        assert args.measure == "euclidean"
        assert not args.mirror

    def test_rejects_unknown_collection(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["search", "--collection", "mnist"])


class TestDatasetsCommand:
    def test_lists_all_rows(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        for name in ("Face", "OSULeaves", "Yoga", "LightCurve"):
            assert name in out


class TestSearchCommand:
    def test_wedge_search_runs(self, capsys):
        code = main(["search", "--collection", "lightcurves", "--size", "20", "--length", "48", "--query-index", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "best match" in out
        assert "of brute force" in out

    def test_strategies_agree(self, capsys):
        answers = {}
        for strategy in ("wedge", "brute", "early-abandon", "fft"):
            main(
                [
                    "search",
                    "--collection",
                    "points",
                    "--size",
                    "15",
                    "--length",
                    "32",
                    "--query-index",
                    "2",
                    "--strategy",
                    strategy,
                ]
            )
            out = capsys.readouterr().out
            answers[strategy] = [line for line in out.splitlines() if "best match" in line][0]
        assert len(set(answers.values())) == 1

    def test_plan_specs_agree_with_wedge(self, capsys):
        """--plan auto and every fixed spec return the wedge answer."""
        base = ["search", "--collection", "points", "--size", "12", "--length",
                "32", "--query-index", "1", "--measure", "dtw"]
        answers = {}
        for extra in ([], ["--plan", "auto"], ["--plan", "fixed:keogh:scalar"],
                      ["--plan", "fixed:none"], ["--plan", "fixed:kim>keogh>improved"]):
            assert main(base + extra) == 0
            out = capsys.readouterr().out
            answers[tuple(extra)] = [
                line for line in out.splitlines() if "best match" in line
            ][0]
            if extra and extra[1] != "auto":
                assert "plan: wedge:" in out
        assert len(set(answers.values())) == 1

    def test_malformed_plan_spec_exits(self):
        with pytest.raises(SystemExit):
            main(["search", "--size", "10", "--plan", "fixed:improved"])

    def test_serve_parser_accepts_plan(self):
        args = build_parser().parse_args(["serve", "--shards", "shards/"])
        assert args.plan == "auto"
        args = build_parser().parse_args(
            ["serve", "--shards", "shards/", "--plan", "fixed:keogh"]
        )
        assert args.plan == "fixed:keogh"

    def test_dtw_and_options(self, capsys):
        code = main(
            [
                "search",
                "--collection",
                "points",
                "--size",
                "12",
                "--length",
                "32",
                "--measure",
                "dtw",
                "--radius",
                "2",
                "--mirror",
                "--max-degrees",
                "90",
            ]
        )
        assert code == 0
        assert "best match" in capsys.readouterr().out


class TestClassifyCommand:
    def test_runs_one_dataset(self, capsys):
        code = main(["classify", "--dataset", "Yoga", "--per-class", "3", "--length", "32", "--max-instances", "6"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Yoga" in out
        assert "ED=" in out and "DTW=" in out

    def test_unknown_dataset_exits(self):
        with pytest.raises(SystemExit):
            main(["classify", "--dataset", "MNIST"])


class TestIndexCommands:
    @pytest.fixture
    def built_archive(self, tmp_path, capsys):
        path = tmp_path / "idx.npz"
        code = main(
            [
                "index",
                "build",
                "--collection",
                "points",
                "--size",
                "24",
                "--length",
                "32",
                "--coefficients",
                "8",
                "--page-size",
                "4",
                "--buffer-pages",
                "2",
                "--out",
                str(path),
            ]
        )
        assert code == 0
        capsys.readouterr()
        return path

    def test_build_writes_archive_and_sidecar(self, built_archive):
        assert built_archive.exists()
        assert built_archive.with_name("idx.data.npy").exists()

    def test_inspect_verify(self, built_archive, capsys):
        code = main(["index", "inspect", str(built_archive), "--verify"])
        assert code == 0
        out = capsys.readouterr().out
        assert "format v2" in out
        assert "page_size=4" in out
        assert out.count("[ok]") == 4

    def test_inspect_json(self, built_archive, capsys):
        assert main(["index", "inspect", str(built_archive), "--json"]) == 0
        info = json.loads(capsys.readouterr().out)
        assert info["format_version"] == 2
        assert info["disk_store"] == {"page_size": 4, "buffer_pages": 2}

    def test_inspect_detects_corruption(self, built_archive, capsys):
        sidecar = built_archive.with_name("idx.data.npy")
        raw = bytearray(sidecar.read_bytes())
        raw[-1] ^= 0xFF
        sidecar.write_bytes(bytes(raw))
        code = main(["index", "inspect", str(built_archive), "--verify"])
        assert code == 1
        assert "MISMATCH" in capsys.readouterr().out

    @pytest.mark.parametrize("mmap", [False, True])
    def test_query_matches_in_ram_and_mmap(self, built_archive, capsys, mmap):
        argv = [
            "index",
            "query",
            str(built_archive),
            "--collection",
            "points",
            "--size",
            "24",
            "--length",
            "32",
            "--query-index",
            "3",
            "--json",
        ]
        if mmap:
            argv.append("--mmap")
        assert main(argv) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["mmap"] is mmap
        assert 0 <= payload["index"] < 24
        assert np.isfinite(payload["distance"])
        assert 0 < payload["fraction_retrieved"] <= 1.0

    def test_query_mmap_agrees_with_in_ram(self, built_archive, capsys):
        answers = []
        for extra in ([], ["--mmap"]):
            main(
                [
                    "index",
                    "query",
                    str(built_archive),
                    "--collection",
                    "points",
                    "--size",
                    "24",
                    "--length",
                    "32",
                    "--measure",
                    "dtw",
                    "--radius",
                    "2",
                    "--json",
                    *extra,
                ]
            )
            payload = json.loads(capsys.readouterr().out)
            payload.pop("mmap")
            answers.append(payload)
        assert answers[0] == answers[1]

    def test_query_knn_and_obs_wiring(self, built_archive, tmp_path, capsys):
        log = tmp_path / "queries.jsonl"
        metrics = tmp_path / "metrics.prom"
        code = main(
            [
                "index",
                "query",
                str(built_archive),
                "--collection",
                "points",
                "--size",
                "24",
                "--length",
                "32",
                "--obs-log",
                str(log),
                "--metrics-out",
                str(metrics),
                "--trace",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "best match" in out and "trace:" in out
        record = json.loads(log.read_text().splitlines()[0])
        assert "fraction_retrieved" in record
        assert "queries_total" in metrics.read_text()
        capsys.readouterr()
        assert (
            main(
                [
                    "index",
                    "query",
                    str(built_archive),
                    "--collection",
                    "points",
                    "--size",
                    "24",
                    "--length",
                    "32",
                    "--k",
                    "3",
                    "--json",
                ]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["neighbors"]) == 3

    def test_query_rejects_mismatched_length(self, built_archive):
        with pytest.raises(SystemExit, match="length"):
            main(
                [
                    "index",
                    "query",
                    str(built_archive),
                    "--collection",
                    "points",
                    "--size",
                    "24",
                    "--length",
                    "48",
                ]
            )


class TestMiningCommands:
    def test_discords(self, capsys):
        code = main(["discords", "--collection", "lightcurves", "--size", "15", "--length", "48", "--top", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "NN distance" in out
        assert out.count("\n") >= 3

    def test_motif(self, capsys):
        code = main(["motif", "--collection", "points", "--size", "12", "--length", "32"])
        assert code == 0
        assert "distance" in capsys.readouterr().out
