"""Sharder tests: slicing, manifest integrity, archive round-trips."""

import json

import numpy as np
import pytest

from repro.service.shard import (
    MANIFEST_NAME,
    ShardManifest,
    load_manifest,
    load_shard,
    open_shards,
    save_shards,
    shard_slices,
)


@pytest.fixture(scope="module")
def walks():
    rng = np.random.default_rng(11)
    return np.cumsum(rng.normal(size=(23, 18)), axis=1)


class TestShardSlices:
    def test_balanced_and_contiguous(self):
        slices = shard_slices(23, 4)
        assert slices == [(0, 6), (6, 12), (12, 18), (18, 23)]
        assert max(hi - lo for lo, hi in slices) - min(hi - lo for lo, hi in slices) <= 1

    def test_single_shard_is_everything(self):
        assert shard_slices(7, 1) == [(0, 7)]

    def test_more_shards_than_objects_rejected(self):
        # DiskStore rejects empty collections, so empty shards cannot exist.
        with pytest.raises(ValueError):
            shard_slices(3, 4)

    def test_non_positive_shards_rejected(self):
        with pytest.raises(ValueError):
            shard_slices(3, 0)


class TestSaveShards:
    def test_manifest_and_archives_written(self, walks, tmp_path):
        manifest = save_shards(walks, tmp_path, 3, n_coefficients=8)
        assert manifest.n_shards == 3
        assert manifest.objects == 23
        assert manifest.length == 18
        assert (tmp_path / MANIFEST_NAME).exists()
        for info in manifest.shards:
            assert (tmp_path / info.file).exists()
            # format-v2 sidecar per shard
            assert (tmp_path / info.file.replace(".npz", ".data.npy")).exists()
        assert manifest.provenance["artifact"] == "shard-set"
        assert "kernel_backends" in manifest.provenance

    def test_round_trip_preserves_data_bitwise(self, walks, tmp_path):
        save_shards(walks, tmp_path, 4)
        reopened = open_shards(tmp_path, mmap=True)
        reassembled = np.concatenate([index.store.peek_all() for _info, index in reopened])
        np.testing.assert_array_equal(reassembled, walks)
        offsets = [info.offset for info, _index in reopened]
        assert offsets == sorted(offsets)

    def test_load_shard_single(self, walks, tmp_path):
        save_shards(walks, tmp_path, 2)
        info, index = load_shard(tmp_path, 1)
        assert info.shard_id == 1
        np.testing.assert_array_equal(index.store.peek_all(), walks[info.offset :])

    def test_rejects_non_2d(self, tmp_path):
        with pytest.raises(ValueError):
            save_shards(np.zeros(5), tmp_path, 1)

    def test_index_config_recorded(self, walks, tmp_path):
        manifest = save_shards(walks, tmp_path, 2, n_coefficients=4, structure="vptree")
        reloaded = load_manifest(tmp_path)
        assert reloaded.index_config == manifest.index_config
        assert reloaded.index_config["structure"] == "vptree"


class TestLoadManifest:
    def test_missing_manifest(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_manifest(tmp_path)

    def test_missing_shard_archive(self, walks, tmp_path):
        save_shards(walks, tmp_path, 2)
        (tmp_path / "shard-0001.npz").unlink()
        with pytest.raises(FileNotFoundError):
            load_manifest(tmp_path)

    def test_broken_contiguity_rejected(self, walks, tmp_path):
        save_shards(walks, tmp_path, 2)
        payload = json.loads((tmp_path / MANIFEST_NAME).read_text())
        payload["shards"][1]["offset"] += 1
        (tmp_path / MANIFEST_NAME).write_text(json.dumps(payload))
        with pytest.raises(ValueError):
            load_manifest(tmp_path)

    def test_unsupported_version_rejected(self, walks, tmp_path):
        save_shards(walks, tmp_path, 2)
        payload = json.loads((tmp_path / MANIFEST_NAME).read_text())
        payload["format_version"] = 99
        (tmp_path / MANIFEST_NAME).write_text(json.dumps(payload))
        with pytest.raises(ValueError):
            load_manifest(tmp_path)

    def test_unbound_manifest_has_no_paths(self):
        manifest = ShardManifest(
            n_shards=0, objects=0, length=0, shards=[], index_config={}
        )
        with pytest.raises(ValueError):
            manifest.shard_path(0)
