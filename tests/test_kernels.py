"""Kernel-backend registry: resolution order, fallback, and exact parity.

Three contracts live here.  (1) `get_backend` resolution: explicit kwarg
beats the ``REPRO_KERNEL_BACKEND`` env var beats auto-detection, unknown
names fail loudly, and a missing numba degrades to the pure-NumPy
wavefront backend with a logged -- never raised -- notice.  (2) Every
registered backend returns *bit-identical* distances, bounds, similarity
counts, AND ``num_steps`` for all six kernel ops versus the interpreted
scalar reference; "close enough" floats are a parity failure.  (3) The
measure-level plumbing: ``with_backend`` clones rather than mutates,
non-kernel measures ignore it, the backend never leaks into envelope
cache keys, and ``search_many`` propagates the parent's selection into
process-pool workers instead of letting them re-resolve.
"""

from __future__ import annotations

import logging
import math

import numpy as np
import pytest

import repro.kernels as kernels
from repro.core.search import _search_chunk, search_many, wedge_search
from repro.distances.dtw import DTWMeasure, dtw_distance
from repro.distances.euclidean import EuclideanMeasure
from repro.distances.lcss import LCSSMeasure
from repro.kernels import (
    ENV_VAR,
    NUMBA_IMPORT_ERROR,
    available_backends,
    default_backend_name,
    get_backend,
    numba_available,
)

ALL_BACKENDS = available_backends()
NON_SCALAR = tuple(name for name in ALL_BACKENDS if name != "scalar")


@pytest.fixture
def clean_env(monkeypatch):
    monkeypatch.delenv(ENV_VAR, raising=False)


class TestResolutionOrder:
    def test_explicit_kwarg_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "wavefront")
        assert get_backend("scalar").name == "scalar"

    def test_env_var_wins_over_auto(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "scalar")
        assert get_backend().name == "scalar"
        assert get_backend(None).name == "scalar"

    def test_auto_is_highest_priority(self, clean_env):
        auto = get_backend()
        assert auto.name == default_backend_name()
        assert auto.priority == max(get_backend(n).priority for n in ALL_BACKENDS)

    def test_auto_keyword_overrides_env(self, monkeypatch):
        # "auto" is an escape hatch: even with the env var pinning scalar,
        # an explicit "auto" re-enables fastest-available selection.
        monkeypatch.setenv(ENV_VAR, "scalar")
        assert get_backend("auto").name == default_backend_name()

    def test_blank_env_var_means_unset(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "   ")
        assert get_backend().name == default_backend_name()

    def test_unknown_backend_message_lists_choices(self, clean_env):
        with pytest.raises(ValueError, match=r"unknown kernel backend 'bogus'"):
            get_backend("bogus")
        with pytest.raises(ValueError, match=r"or 'auto'"):
            get_backend("bogus")

    def test_unknown_env_var_fails_loudly(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "bogus")
        with pytest.raises(ValueError, match="unknown kernel backend"):
            get_backend()

    @pytest.mark.skipif(numba_available(), reason="numba installed: no unavailable-hint path")
    def test_missing_numba_error_names_the_extra(self, clean_env):
        assert NUMBA_IMPORT_ERROR is not None
        with pytest.raises(ValueError, match=r"\[kernels\] extra"):
            get_backend("numba")

    @pytest.mark.skipif(numba_available(), reason="numba installed: no fallback path")
    def test_fallback_is_wavefront_not_an_exception(self, clean_env):
        assert "numba" not in ALL_BACKENDS
        assert default_backend_name() == "wavefront"

    def test_fallback_notice_is_logged_not_raised(self):
        # Re-running the registration logic must emit the INFO notice on
        # the repro.kernels logger when numba is missing (and stay silent
        # about fallback when it is installed).
        if numba_available():
            pytest.skip("numba installed: no fallback notice emitted")
        logger = logging.getLogger("repro.kernels")
        records = []

        class Capture(logging.Handler):
            def emit(self, record):
                records.append(record.getMessage())

        handler = Capture(level=logging.INFO)
        logger.addHandler(handler)
        old_level = logger.level
        logger.setLevel(logging.INFO)
        try:
            import importlib

            importlib.reload(kernels)
        finally:
            logger.removeHandler(handler)
            logger.setLevel(old_level)
        assert any("numba kernel backend unavailable" in msg for msg in records)
        # Reload must leave the registry fully repopulated.
        assert set(kernels.available_backends()) >= {"scalar", "wavefront"}


def _corpus(seed=2006, m=10, n=40):
    rng = np.random.default_rng(seed)
    rows = np.cumsum(rng.standard_normal((m, n)), axis=1)
    rows -= rows.mean(axis=1, keepdims=True)
    rows /= rows.std(axis=1, keepdims=True)
    return rows[0], rows[1:]


def _envelopes(q, radius):
    from repro.timeseries.ops import sliding_envelope

    raw_upper, raw_lower = q.copy(), q.copy()
    upper, lower = sliding_envelope(raw_upper, raw_lower, radius)
    return upper, lower, raw_upper, raw_lower


@pytest.mark.parametrize("backend_name", NON_SCALAR)
class TestBitIdenticalParity:
    """Every op, every backend, vs the interpreted scalar reference.

    Equality is ``==`` on floats and ints -- the registry's contract is
    bit-identity, not tolerance.
    """

    @pytest.mark.parametrize("radius", [0, 1, 5, 39])
    @pytest.mark.parametrize("threshold", [math.inf, 2.0, 0.05])
    def test_dtw_single(self, backend_name, radius, threshold):
        q, rows = _corpus()
        ref, cand = get_backend("scalar"), get_backend(backend_name)
        for c in rows:
            assert cand.dtw_single(q, c, radius, threshold) == ref.dtw_single(
                q, c, radius, threshold
            )

    @pytest.mark.parametrize("radius", [0, 3, 39])
    @pytest.mark.parametrize("threshold", [math.inf, 3.0, 0.05])
    def test_dtw_batch(self, backend_name, radius, threshold):
        q, rows = _corpus()
        ref, cand = get_backend("scalar"), get_backend(backend_name)
        rd, rs, ra = ref.dtw_batch(q, rows, radius, threshold)
        cd, cs, ca = cand.dtw_batch(q, rows, radius, threshold)
        assert list(cd) == list(rd)
        assert cs == rs
        assert list(np.atleast_1d(ca)) == list(np.atleast_1d(ra))

    @pytest.mark.parametrize("delta", [0, 2, 39])
    @pytest.mark.parametrize("min_similarity", [0.0, 0.6])
    def test_lcss_batch(self, backend_name, delta, min_similarity):
        q, rows = _corpus()
        ref, cand = get_backend("scalar"), get_backend(backend_name)
        rd, rs, ra = ref.lcss_batch(q, rows, delta, 0.4, min_similarity)
        cd, cs, ca = cand.lcss_batch(q, rows, delta, 0.4, min_similarity)
        assert list(cd) == list(rd)
        assert cs == rs
        assert list(np.atleast_1d(ca)) == list(np.atleast_1d(ra))

    @pytest.mark.parametrize("radius", [1, 4])
    @pytest.mark.parametrize("threshold", [math.inf, 1.0])
    def test_lb_keogh(self, backend_name, radius, threshold):
        q, rows = _corpus()
        upper, lower, _, _ = _envelopes(q, radius)
        ref, cand = get_backend("scalar"), get_backend(backend_name)
        for c in rows:
            assert cand.lb_keogh(c, upper, lower, threshold) == ref.lb_keogh(
                c, upper, lower, threshold
            )

    @pytest.mark.parametrize("radius", [1, 4])
    def test_lb_improved_pass2(self, backend_name, radius):
        q, rows = _corpus()
        upper, lower, raw_upper, raw_lower = _envelopes(q, radius)
        ref, cand = get_backend("scalar"), get_backend(backend_name)
        for c in rows:
            assert cand.lb_improved_pass2(
                c, upper, lower, raw_upper, raw_lower, radius
            ) == ref.lb_improved_pass2(c, upper, lower, raw_upper, raw_lower, radius)

    @pytest.mark.parametrize("radius", [0, 1, 4])
    @pytest.mark.parametrize("threshold", [math.inf, 2.5])
    def test_lb_improved_batch(self, backend_name, radius, threshold):
        q, rows = _corpus()
        upper, lower, raw_upper, raw_lower = _envelopes(q, radius)
        ref, cand = get_backend("scalar"), get_backend(backend_name)
        rb, rs = ref.lb_improved_batch(rows, upper, lower, raw_upper, raw_lower, radius, threshold)
        cb, cs = cand.lb_improved_batch(rows, upper, lower, raw_upper, raw_lower, radius, threshold)
        assert list(cb) == list(rb)
        assert list(cs) == list(rs)

    def test_wedge_search_end_to_end(self, backend_name, clean_env):
        # Whole-stack parity: the same query through the full cascade must
        # return the identical neighbour, distance, and step count.
        q, rows = _corpus(m=17, n=32)
        db = list(rows)
        reference = wedge_search(db, q, DTWMeasure(radius=3, backend="scalar"))
        candidate = wedge_search(db, q, DTWMeasure(radius=3, backend=backend_name))
        assert candidate.index == reference.index
        assert candidate.distance == reference.distance
        assert candidate.rotation == reference.rotation
        assert candidate.counter.steps == reference.counter.steps


class TestMeasurePlumbing:
    def test_with_backend_clones(self, clean_env):
        base = DTWMeasure(radius=2)
        pinned = base.with_backend("scalar")
        assert pinned is not base
        assert pinned.backend == "scalar"
        assert base.backend is None
        assert pinned.backend_name == "scalar"

    def test_with_backend_none_clears_pin(self, clean_env):
        pinned = DTWMeasure(radius=2, backend="scalar")
        cleared = pinned.with_backend(None)
        assert cleared.backend is None
        assert cleared.backend_name == default_backend_name()

    def test_with_backend_validates_eagerly(self, clean_env):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            DTWMeasure(radius=2).with_backend("bogus")
        with pytest.raises(ValueError, match="unknown kernel backend"):
            DTWMeasure(radius=2, backend="bogus")
        with pytest.raises(ValueError, match="unknown kernel backend"):
            LCSSMeasure(delta=2, epsilon=0.3, backend="bogus")

    def test_non_kernel_measures_ignore_backend(self):
        euc = EuclideanMeasure()
        assert euc.with_backend("scalar") is euc
        assert euc.backend_name == "numpy"

    def test_backend_not_in_cache_key(self, clean_env):
        # Envelope caches are keyed by measure semantics; the backend only
        # changes *how* the same numbers are computed, so two pins of the
        # same measure must share cache entries.
        assert DTWMeasure(radius=2, backend="scalar").cache_key() == DTWMeasure(
            radius=2, backend="wavefront"
        ).cache_key()

    def test_measure_env_var_resolution_is_lazy(self, monkeypatch):
        # An unpinned measure consults the env var at call time, so the
        # same object can be redirected between queries.
        measure = DTWMeasure(radius=2)
        monkeypatch.setenv(ENV_VAR, "scalar")
        assert measure.backend_name == "scalar"
        monkeypatch.setenv(ENV_VAR, "wavefront")
        assert measure.backend_name == "wavefront"

    def test_dtw_distance_backend_kwarg_parity(self, clean_env):
        from repro.core.counters import StepCounter

        q, rows = _corpus(n=24)
        baseline_counter = StepCounter()
        d0 = dtw_distance(q, rows[0], radius=3, counter=baseline_counter, backend="scalar")
        for name in ALL_BACKENDS:
            counter = StepCounter()
            d = dtw_distance(q, rows[0], radius=3, counter=counter, backend=name)
            assert (d, counter.steps) == (d0, baseline_counter.steps)


class TestWorkerPropagation:
    """Satellite 6: process workers must run the parent's backend."""

    def test_search_chunk_applies_backend(self, clean_env):
        q, rows = _corpus(m=5, n=24)
        results, _ = _search_chunk(
            ("brute-force", list(rows), [q], DTWMeasure(radius=2), {}, False, "scalar")
        )
        assert len(results) == 1

    def test_search_many_resolves_backend_parent_side(self, clean_env, monkeypatch):
        # The 7th element of the worker args tuple must carry the resolved
        # name -- not None -- whenever the measure routes through kernels,
        # so a subprocess with different auto-detection (e.g. numba only in
        # the parent venv) cannot silently revert.
        captured = {}
        real_chunk = _search_chunk

        def spy(args):
            captured["backend"] = args[6]
            captured["measure_pin"] = args[3].backend
            return real_chunk(args)

        monkeypatch.setattr("repro.core.search._search_chunk", spy)
        q, rows = _corpus(m=5, n=24)
        search_many(list(rows), [q], DTWMeasure(radius=2), strategy="brute-force", backend="scalar")
        assert captured["backend"] == "scalar"

    def test_search_many_passes_none_for_non_kernel_measures(self, clean_env, monkeypatch):
        captured = {}
        real_chunk = _search_chunk

        def spy(args):
            captured["backend"] = args[6]
            return real_chunk(args)

        monkeypatch.setattr("repro.core.search._search_chunk", spy)
        q, rows = _corpus(m=5, n=24)
        search_many(list(rows), [q], EuclideanMeasure(), strategy="brute-force")
        assert captured["backend"] is None

    @pytest.mark.slow
    def test_process_pool_matches_serial(self, clean_env):
        q, rows = _corpus(m=12, n=24)
        db = list(rows)
        queries = [q, rows[0]]
        measure = DTWMeasure(radius=2)
        serial = search_many(db, queries, measure, strategy="wedge", backend="scalar")
        pooled = search_many(
            db, queries, measure, strategy="wedge", n_jobs=2, executor="process", backend="scalar"
        )
        for a, b in zip(serial, pooled):
            assert (a.index, a.distance, a.counter.steps) == (b.index, b.distance, b.counter.steps)


class TestRegistryHygiene:
    def test_reserved_names_rejected(self):
        class Fake(kernels.KernelBackend):
            name = "auto"

        with pytest.raises(ValueError):
            kernels.register_backend(Fake())

    def test_duplicate_registration_rejected(self):
        class Fake(kernels.KernelBackend):
            name = "scalar"

        with pytest.raises(ValueError):
            kernels.register_backend(Fake())

    def test_available_backends_sorted_fastest_first(self):
        priorities = [get_backend(name).priority for name in ALL_BACKENDS]
        assert priorities == sorted(priorities, reverse=True)
