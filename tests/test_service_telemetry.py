"""Telemetry-plane tests: endpoints, stitched traces, exactness contract.

Covers the observability PR's acceptance criteria against a live service:
the four HTTP endpoints (``/metrics`` round-tripping through the
Prometheus parser, ``/health``, ``/slo``, ``/traces/recent``), the
cross-process stitched trace (span names, shared ``trace_id``, correct
parentage, clock rebasing), the bit-identity invariant (answers and step
counts identical with tracing on or off), span-cap overflow accounting
(``dropped_spans``), the query-log ``trace_id`` join, and the ``repro
top`` / ``repro obs trace`` CLI entry points.
"""

import json
import urllib.request

import numpy as np
import pytest

from repro.cli import main
from repro.distances.euclidean import EuclideanMeasure
from repro.mining.queries import knn_search
from repro.obs import QueryLogger, pick_trace, read_query_log, render_waterfall
from repro.obs.metrics import parse_prometheus_text
from repro.service import save_shards, start_service_thread
from repro.service.telemetry import PROMETHEUS_CONTENT_TYPE


@pytest.fixture(scope="module")
def walks():
    rng = np.random.default_rng(71)
    return np.cumsum(rng.normal(size=(18, 16)), axis=1)


@pytest.fixture(scope="module")
def shard_dir(walks, tmp_path_factory):
    directory = tmp_path_factory.mktemp("telemetry-shards")
    save_shards(walks, directory, 3, n_coefficients=8)
    return directory


@pytest.fixture(scope="module")
def telemetry_service(shard_dir, walks, tmp_path_factory):
    """One service with the HTTP sidecar up and a little seed traffic."""
    log_path = tmp_path_factory.mktemp("telemetry-log") / "queries.jsonl"
    handle = start_service_thread(
        shard_dir,
        EuclideanMeasure(),
        cache_size=32,
        query_log=QueryLogger(log_path),
        telemetry_port=0,
    )
    query = [float(x) for x in walks[0]]
    first = handle.request({"op": "knn", "query": query, "k": 2})
    assert first["ok"], first
    second = handle.request({"op": "knn", "query": query, "k": 2})
    assert second["ok"] and second["cached"]
    yield handle, log_path
    handle.close()


def _get(handle, path: str):
    port = handle.service.telemetry.port
    with urllib.request.urlopen(f"http://127.0.0.1:{port}{path}") as response:
        return response.status, response.headers.get("Content-Type"), response.read()


def _walk(span: dict):
    yield span
    for child in span.get("children", ()):
        yield from _walk(child)


def _trace_spans(trace: dict):
    for root in trace["spans"]:
        yield from _walk(root)


class TestEndpoints:
    def test_metrics_round_trips_through_the_parser(self, telemetry_service):
        handle, _ = telemetry_service
        status, content_type, body = _get(handle, "/metrics")
        assert status == 200
        assert content_type == PROMETHEUS_CONTENT_TYPE
        parsed = parse_prometheus_text(body.decode("utf-8"))
        families = parsed["families"]
        # Coordinator- and worker-side families both present: the sidecar
        # serves the merged registry, not just the coordinator's.
        for name in (
            "service_requests_total",
            "service_traces_total",
            "service_trace_dropped_spans_total",
            "queries_total",
        ):
            assert name in families, sorted(families)
        samples = {name: value for name, _labels, value in parsed["samples"]}
        assert samples["service_traces_total"] >= 1

    def test_health_includes_slo_block(self, telemetry_service):
        handle, _ = telemetry_service
        status, content_type, body = _get(handle, "/health")
        assert status == 200 and content_type == "application/json"
        health = json.loads(body)
        assert health["ok"] and health["status"] == "ok"
        assert set(health["slo"]) == {"alerts", "windows"}
        assert "1m" in health["slo"]["windows"]

    def test_slo_windows_track_traffic(self, telemetry_service):
        handle, _ = telemetry_service
        status, _ct, body = _get(handle, "/slo")
        assert status == 200
        payload = json.loads(body)
        assert payload["ok"]
        assert set(payload["windows"]) == {"10s", "1m", "5m"}
        stats = payload["windows"]["5m"]
        assert stats["count"] >= 2
        assert stats["p95_ms"] >= stats["p50_ms"] >= 0.0
        # The repeated seed query hit the answer cache.
        assert stats["cache_hits"] >= 1
        assert 0.0 < stats["cache_hit_ratio"] <= 1.0

    def test_traces_recent_returns_stitched_entries(self, telemetry_service):
        handle, _ = telemetry_service
        status, _ct, body = _get(handle, "/traces/recent")
        assert status == 200
        payload = json.loads(body)
        assert payload["traces_total"] >= 1
        assert payload["recent"], payload
        entry = payload["recent"][-1]
        assert set(entry) >= {"trace_id", "wall_seconds", "batch_size", "error", "trace"}
        names = {span["name"] for span in _trace_spans(entry["trace"])}
        assert "service.batch" in names

    def test_unknown_path_is_404_json(self, telemetry_service):
        handle, _ = telemetry_service
        port = handle.service.telemetry.port
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(f"http://127.0.0.1:{port}/nope")
        assert err.value.code == 404
        assert json.loads(err.value.read())["ok"] is False


class TestStitchedTrace:
    @pytest.fixture()
    def trace(self, telemetry_service, walks):
        handle, _ = telemetry_service
        reply = handle.request(
            {"op": "knn", "query": [float(x) for x in walks[5]], "k": 3, "no_cache": True}
        )
        assert reply["ok"], reply
        entry = handle.service.traces.to_dict()["recent"][-1]
        return entry["trace"]

    def test_one_trace_spans_both_processes(self, trace):
        spans = list(_trace_spans(trace))
        names = [span["name"] for span in spans]
        assert names.count("service.batch") == 1
        assert "queue.wait" in names
        assert names.count("fanout.shard") == 3  # one per shard
        assert names.count("worker.chunk") == 3  # stitched from worker replies
        assert "worker.query" in names
        assert "coordinator.merge" in names
        # Every span carries the same trace id -- one distributed trace.
        assert {span["trace_id"] for span in spans} == {trace["trace_id"]}

    def test_parentage_crosses_the_process_boundary(self, trace):
        spans = list(_trace_spans(trace))
        by_id = {span["span_id"]: span for span in spans}
        root = trace["spans"][0]
        assert root["name"] == "service.batch"
        for span in spans:
            if span is root:
                continue
            assert by_id[span["parent_id"]] is not None
        # The worker's root span hangs under its shard's fan-out span,
        # whose id was minted *before* the request crossed the pipe.
        chunks = [span for span in spans if span["name"] == "worker.chunk"]
        for chunk in chunks:
            parent = by_id[chunk["parent_id"]]
            assert parent["name"] == "fanout.shard"
            assert parent["attributes"]["shard"] == chunk["attributes"]["shard"]
            # Rebased onto the coordinator's clock: inside the fan-out span.
            assert chunk["start"] >= parent["start"] - 1e-6
            assert "transit_ms" in chunk["attributes"]

    def test_worker_spans_record_search_work(self, trace):
        queries = [span for span in _trace_spans(trace) if span["name"] == "worker.query"]
        assert queries and all(span["attributes"]["steps"] > 0 for span in queries)
        tiers = {span["name"] for span in _trace_spans(trace)}
        assert "hmerge.leaf_run" in tiers  # per-tier pruning spans survive the stitch

    def test_waterfall_renders_the_stitched_trace(self, trace):
        text = render_waterfall(trace, width=90)
        assert trace["trace_id"] in text.splitlines()[0]
        for name in ("service.batch", "fanout.shard", "worker.chunk", "worker.query"):
            assert name in text

    def test_pick_trace_finds_by_prefix(self, telemetry_service, trace):
        handle, _ = telemetry_service
        payload = handle.service.traces.to_dict()
        found = pick_trace(payload, trace_id=trace["trace_id"][:8])
        assert found["trace_id"] == trace["trace_id"]


class TestExactnessInvariant:
    """Answers and step counts are bit-identical with tracing on or off."""

    def test_tracing_never_changes_answers_or_steps(self, shard_dir, walks):
        queries = [walks[2] + 0.05, walks[9] - 0.1, walks[16]]
        replies = {}
        for tracing in (True, False):
            handle = start_service_thread(
                shard_dir, EuclideanMeasure(), cache_size=0, tracing=tracing
            )
            try:
                replies[tracing] = [
                    handle.request({"op": "knn", "query": [float(x) for x in q], "k": 4})
                    for q in queries
                ]
            finally:
                handle.close()
        for traced, untraced in zip(replies[True], replies[False]):
            assert traced["ok"] and untraced["ok"]
            assert traced["neighbors"] == untraced["neighbors"]
            assert traced["steps"] == untraced["steps"]

    def test_traced_answers_match_single_process_search(self, telemetry_service, walks):
        handle, _ = telemetry_service
        query = walks[11] + 0.2
        reply = handle.request(
            {"op": "knn", "query": [float(x) for x in query], "k": 3, "no_cache": True}
        )
        expected = knn_search(walks, query, EuclideanMeasure(), k=3)
        assert reply["neighbors"] == [
            [nb.index, nb.distance, nb.rotation] for nb in expected
        ]


class TestDroppedSpans:
    def test_span_cap_overflow_is_counted_not_fatal(self, shard_dir, walks):
        handle = start_service_thread(
            shard_dir,
            EuclideanMeasure(),
            cache_size=0,
            trace_max_spans=8,
            worker_trace_max_spans=4,
            telemetry_port=0,
        )
        try:
            reply = handle.request({"op": "knn", "query": [float(x) for x in walks[3]], "k": 2})
            assert reply["ok"], reply  # answers unaffected by the cap
            traces = handle.service.traces.to_dict()
            entry = traces["recent"][-1]
            assert entry["dropped_spans"] > 0
            assert entry["trace"]["dropped_spans"] == entry["dropped_spans"]
            assert traces["dropped_spans_total"] >= entry["dropped_spans"]
            _status, _ct, body = _get(handle, "/metrics")
            samples = parse_prometheus_text(body.decode("utf-8"))["samples"]
            dropped = sum(
                value for name, _labels, value in samples
                if name == "service_trace_dropped_spans_total"
            )
            assert dropped >= entry["dropped_spans"]
        finally:
            handle.close()


class TestQueryLogJoin:
    def test_log_records_carry_the_trace_id(self, telemetry_service, walks):
        handle, log_path = telemetry_service
        reply = handle.request(
            {"op": "knn", "query": [float(x) for x in walks[7]], "k": 1, "no_cache": True}
        )
        assert reply["ok"]
        records = read_query_log(log_path)
        trace_ids = {entry["trace_id"] for entry in handle.service.traces.to_dict()["recent"]}
        assert records[-1]["trace_id"] in trace_ids


class TestCli:
    def test_top_once_renders_a_frame(self, telemetry_service, capsys):
        handle, _ = telemetry_service
        port = handle.service.telemetry.port
        assert main(["top", "--once", "--port", str(port)]) == 0
        out = capsys.readouterr().out
        assert "sliding windows" in out
        assert "traces: total=" in out

    def test_top_once_fails_cleanly_when_unreachable(self, capsys):
        assert main(["top", "--once", "--port", "1", "--timeout", "0.2"]) == 1

    def test_obs_trace_waterfall_from_saved_payload(self, telemetry_service, tmp_path, capsys):
        handle, _ = telemetry_service
        payload = handle.service.traces.to_dict()
        path = tmp_path / "traces.json"
        path.write_text(json.dumps(payload))
        assert main(["obs", "trace", str(path), "--waterfall"]) == 0
        out = capsys.readouterr().out
        assert "service.batch" in out and "span_count=" in out
