"""Smoke tests: every example script runs to completion.

Each example carries its own assertions (clustering purities, retrieval
semantics, accuracy orderings), so "runs without error" is a meaningful
check.  Scripts execute in-process via runpy with stdout captured.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLE_SCRIPTS = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_examples_discovered():
    assert len(EXAMPLE_SCRIPTS) >= 9


@pytest.mark.parametrize("script", EXAMPLE_SCRIPTS)
def test_example_runs(script, capsys, monkeypatch):
    # Examples import repro from the installed package; no path games
    # needed, but guard argv in case a script ever parses it.
    monkeypatch.setattr(sys, "argv", [script])
    runpy.run_path(str(EXAMPLES_DIR / script), run_name="__main__")
    out = capsys.readouterr().out
    assert len(out) > 50  # every example narrates its result
