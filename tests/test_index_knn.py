"""Tests for k-NN through the disk index and dataset splitting."""

import math

import numpy as np
import pytest

from repro.datasets.shapes_data import projectile_point_collection, projectile_point_dataset
from repro.distances.dtw import DTWMeasure
from repro.distances.euclidean import EuclideanMeasure
from repro.index.linear_scan import SignatureFilteredScan
from repro.mining.queries import knn_search


@pytest.fixture
def archive(rng):
    return projectile_point_collection(rng, 35, length=64)


class TestIndexKNN:
    @pytest.mark.parametrize("structure", ["flat", "vptree", "rtree"])
    @pytest.mark.parametrize("k", [1, 4])
    def test_matches_wedge_knn_euclidean(self, archive, rng, structure, k):
        measure = EuclideanMeasure()
        index = SignatureFilteredScan(archive, n_coefficients=8, structure=structure)
        query = archive[9] + rng.normal(0, 0.1, 64)
        got, accounting = index.query_knn(query, measure, k=k)
        want = knn_search(list(archive), query, measure, k=k)
        assert [nb.index for nb in got] == [nb.index for nb in want]
        for a, b in zip(got, want):
            assert math.isclose(a.distance, b.distance, rel_tol=1e-9)
        assert accounting.result.index == want[0].index

    def test_matches_wedge_knn_dtw(self, archive, rng):
        measure = DTWMeasure(radius=2)
        index = SignatureFilteredScan(archive, n_coefficients=16)
        query = archive[4] + rng.normal(0, 0.1, 64)
        got, _acc = index.query_knn(query, measure, k=3)
        want = knn_search(list(archive), query, measure, k=3)
        assert [nb.index for nb in got] == [nb.index for nb in want]

    def test_k1_matches_query(self, archive, rng):
        measure = EuclideanMeasure()
        index = SignatureFilteredScan(archive, n_coefficients=8)
        query = archive[2] + rng.normal(0, 0.05, 64)
        neighbours, knn_acc = index.query_knn(query, measure, k=1)
        single = index.query(query, measure)
        assert neighbours[0].index == single.result.index
        assert math.isclose(neighbours[0].distance, single.result.distance, rel_tol=1e-9)

    def test_larger_k_fetches_more(self, archive, rng):
        measure = EuclideanMeasure()
        index = SignatureFilteredScan(archive, n_coefficients=16)
        query = archive[7] + rng.normal(0, 0.02, 64)
        _n1, acc1 = index.query_knn(query, measure, k=1)
        _n5, acc5 = index.query_knn(query, measure, k=5)
        assert acc5.objects_retrieved >= acc1.objects_retrieved
        assert acc5.objects_retrieved < len(archive)

    def test_k_exceeding_size(self, archive):
        index = SignatureFilteredScan(archive, n_coefficients=8)
        neighbours, _acc = index.query_knn(archive[0], EuclideanMeasure(), k=100)
        assert len(neighbours) == len(archive)

    def test_validation(self, archive):
        index = SignatureFilteredScan(archive, n_coefficients=8)
        with pytest.raises(ValueError):
            index.query_knn(archive[0], EuclideanMeasure(), k=0)


class TestTrainTestSplit:
    @pytest.fixture
    def dataset(self, rng):
        return projectile_point_dataset(rng, per_class=6, length=32)

    def test_partition(self, dataset, rng):
        train, test = dataset.train_test_split(rng, test_fraction=0.3)
        assert len(train) + len(test) == len(dataset)
        # No overlap: every original row appears exactly once.
        combined = np.vstack([train.series, test.series])
        assert combined.shape[0] == len(dataset)

    def test_stratified_covers_every_class(self, dataset, rng):
        train, test = dataset.train_test_split(rng, test_fraction=0.3)
        assert set(train.labels.tolist()) == set(dataset.labels.tolist())
        assert set(test.labels.tolist()) == set(dataset.labels.tolist())

    def test_fraction_respected(self, dataset, rng):
        train, test = dataset.train_test_split(rng, test_fraction=0.5)
        assert abs(len(test) - len(dataset) / 2) <= dataset.n_classes

    def test_unstratified(self, dataset, rng):
        train, test = dataset.train_test_split(rng, test_fraction=0.25, stratified=False)
        assert len(train) + len(test) == len(dataset)
        assert len(test) >= 1

    def test_validation(self, dataset, rng):
        with pytest.raises(ValueError):
            dataset.train_test_split(rng, test_fraction=0.0)
        with pytest.raises(ValueError):
            dataset.train_test_split(rng, test_fraction=1.0)
