"""Tests for the batched query-engine kernels and the parallel front-end.

The batch module's contract is *exactness*, not approximation: every kernel
must reproduce its scalar counterpart element for element -- distances,
abandonment decisions, AND the paper's ``num_steps`` accounting.  These
tests pin that contract with hypothesis-generated inputs, then check the
engineering properties (zero-copy rotation views, scratch-buffer reuse,
parallel/sequential equivalence of ``search_many``).
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.batch import (
    BatchWorkspace,
    batch_ea_euclidean,
    batch_lb_keogh,
    ea_running_min_scan,
    rotation_matrix,
    running_scan,
    shared_workspace,
)
from repro.core.counters import StepCounter
from repro.core.search import search_many, merge_counters, wedge_search
from repro.distances.dtw import DTWMeasure
from repro.distances.euclidean import EuclideanMeasure, ea_euclidean_distance, _ea_envelope_lb
from repro.timeseries.ops import all_rotations

floats = st.floats(min_value=-50, max_value=50, allow_nan=False)


def matrix_and_target(max_rows=8, min_n=3, max_n=16):
    """(m, n) candidate matrix plus a length-n target series."""
    return st.tuples(st.integers(1, max_rows), st.integers(min_n, max_n)).flatmap(
        lambda mn: st.tuples(
            arrays(np.float64, mn, elements=floats),
            arrays(np.float64, (mn[1],), elements=floats),
        )
    )


radii = st.one_of(st.just(math.inf), st.floats(min_value=0.01, max_value=60))


class TestBatchEaEuclidean:
    @given(matrix_and_target(), radii)
    @settings(max_examples=150, deadline=None)
    def test_matches_scalar_elementwise(self, data, r):
        rows, c = data
        distances, steps = batch_ea_euclidean(rows, c, r)
        for j in range(rows.shape[0]):
            want_dist, want_steps = ea_euclidean_distance(rows[j], c, r)
            assert steps[j] == want_steps
            if math.isinf(want_dist):
                assert math.isinf(distances[j])
            else:
                assert distances[j] == pytest.approx(want_dist, rel=1e-12, abs=1e-12)

    @given(matrix_and_target())
    @settings(max_examples=50, deadline=None)
    def test_workspace_does_not_change_results(self, data):
        rows, c = data
        workspace = BatchWorkspace()
        plain = batch_ea_euclidean(rows, c, 1.5)
        scratched = batch_ea_euclidean(rows, c, 1.5, workspace=workspace)
        np.testing.assert_array_equal(plain[0], scratched[0])
        np.testing.assert_array_equal(plain[1], scratched[1])


class TestBatchLbKeogh:
    @given(matrix_and_target(), radii)
    @settings(max_examples=150, deadline=None)
    def test_matches_scalar_elementwise(self, data, r):
        rows, c = data
        # Build a genuine envelope around c so some rows fall inside it.
        upper = c + 0.5
        lower = c - 0.5
        bounds, steps = batch_lb_keogh(rows, upper, lower, r)
        for j in range(rows.shape[0]):
            want_lb, want_steps = _ea_envelope_lb(rows[j], upper, lower, r)
            assert steps[j] == want_steps
            if math.isinf(want_lb):
                assert math.isinf(bounds[j])
            else:
                assert bounds[j] == pytest.approx(want_lb, rel=1e-12, abs=1e-12)

    @given(matrix_and_target())
    @settings(max_examples=50, deadline=None)
    def test_weights_scale_contributions(self, data):
        rows, c = data
        n = c.size
        upper, lower = c + 0.2, c - 0.2
        weights = np.full(n, 4.0)
        plain, _ = batch_lb_keogh(rows, upper, lower)
        weighted, _ = batch_lb_keogh(rows, upper, lower, weights=weights)
        np.testing.assert_allclose(weighted, 2.0 * plain, rtol=1e-12, atol=1e-12)


def reference_running_scan(rows, c, r):
    """The scalar Table 2 loop the batched scans must reproduce."""
    best = r
    best_idx = -1
    steps = 0
    abandons = 0
    for j in range(rows.shape[0]):
        dist, pair_steps = ea_euclidean_distance(rows[j], c, best)
        steps += pair_steps
        if math.isinf(dist):
            abandons += 1
        elif dist < best:
            best = dist
            best_idx = j
    best_sq = best * best if math.isfinite(best) else math.inf
    return best_sq, best_idx, steps, abandons


class TestRunningScans:
    @given(matrix_and_target(max_rows=12), radii)
    @settings(max_examples=150, deadline=None)
    def test_running_scan_matches_sequential_loop(self, data, r):
        rows, c = data
        prefix = np.cumsum(np.square(rows - c[np.newaxis, :]), axis=1)
        best_sq, best_idx, steps, abandons = running_scan(prefix, r)
        want_sq, want_idx, want_steps, want_abandons = reference_running_scan(rows, c, r)
        assert best_idx == want_idx
        assert steps == want_steps
        assert abandons == want_abandons
        if math.isfinite(want_sq):
            assert best_sq == pytest.approx(want_sq, rel=1e-9, abs=1e-12)

    @given(matrix_and_target(max_rows=12), radii, st.integers(1, 20))
    @settings(max_examples=150, deadline=None)
    def test_two_tier_scan_matches_sequential_loop(self, data, r, probe_width):
        rows, c = data
        best_sq, best_idx, steps, abandons = ea_running_min_scan(
            rows, c, r, probe_width=probe_width
        )
        want_sq, want_idx, want_steps, want_abandons = reference_running_scan(rows, c, r)
        assert best_idx == want_idx
        assert steps == want_steps
        assert abandons == want_abandons
        if math.isfinite(want_sq):
            assert best_sq == pytest.approx(want_sq, rel=1e-9, abs=1e-12)

    def test_empty_candidate_matrix(self):
        best_sq, best_idx, steps, abandons = running_scan(np.empty((0, 4)), 2.0)
        assert (best_sq, best_idx, steps, abandons) == (4.0, -1, 0, 0)


class TestRotationMatrix:
    @given(arrays(np.float64, st.integers(2, 24), elements=floats))
    @settings(max_examples=100, deadline=None)
    def test_equals_all_rotations(self, series):
        np.testing.assert_array_equal(rotation_matrix(series), all_rotations(series))

    def test_is_a_view_not_copies(self):
        series = np.arange(64, dtype=np.float64)
        matrix = rotation_matrix(series)
        # O(n) backing storage, not n copies of the series.
        assert matrix.base is not None
        backing = matrix
        while backing.base is not None:
            backing = backing.base
        assert backing.size == 2 * series.size - 1
        assert not matrix.flags.writeable


class TestBatchWorkspace:
    def test_scratch_reuses_backing_buffer(self):
        workspace = BatchWorkspace()
        first = workspace.scratch("probe", (8, 8))
        again = workspace.scratch("probe", (4, 4))
        assert again.base is first.base
        bigger = workspace.scratch("probe", (16, 16))
        assert bigger.size == 256

    def test_shared_workspace_is_stable_per_thread(self):
        assert shared_workspace() is shared_workspace()


def small_archive(m, n, seed):
    rng = np.random.default_rng(seed)
    walks = np.cumsum(rng.normal(size=(m, n)), axis=1)
    walks -= walks.mean(axis=1, keepdims=True)
    walks /= walks.std(axis=1, keepdims=True)
    return walks


class TestSearchMany:
    @pytest.mark.parametrize(
        "measure,executor",
        [(EuclideanMeasure(), "thread"), (DTWMeasure(radius=2), "process")],
        ids=["euclidean-threads", "dtw-processes"],
    )
    def test_parallel_matches_sequential(self, measure, executor):
        archive = small_archive(20, 32, seed=11)
        database = list(archive[:16])
        queries = list(archive[16:])
        sequential = search_many(database, queries, measure, n_jobs=1)
        parallel = search_many(database, queries, measure, n_jobs=4, executor=executor)
        assert len(sequential) == len(parallel) == len(queries)
        for seq, par in zip(sequential, parallel):
            assert par.index == seq.index
            assert par.rotation == seq.rotation
            assert par.distance == pytest.approx(seq.distance, rel=1e-12)
            assert par.counter.steps == seq.counter.steps
            assert par.counter.distance_calls == seq.counter.distance_calls
            assert par.counter.lb_calls == seq.counter.lb_calls
            assert par.counter.early_abandons == seq.counter.early_abandons

    def test_matches_direct_wedge_search(self):
        archive = small_archive(14, 24, seed=3)
        database = list(archive[:12])
        queries = list(archive[12:])
        many = search_many(database, queries, EuclideanMeasure(), n_jobs=1)
        for query, result in zip(queries, many):
            direct = wedge_search(database, query, EuclideanMeasure())
            assert result.index == direct.index
            assert result.counter.steps == direct.counter.steps

    def test_merge_counters_totals(self):
        archive = small_archive(12, 24, seed=5)
        results = search_many(list(archive[:10]), list(archive[10:]), EuclideanMeasure())
        merged = merge_counters(r.counter for r in results)
        assert isinstance(merged, StepCounter)
        assert merged.steps == sum(r.counter.steps for r in results)
        assert merged.distance_calls == sum(r.counter.distance_calls for r in results)

    def test_rejects_unknown_strategy_and_executor(self):
        archive = small_archive(6, 16, seed=1)
        database, queries = list(archive[:5]), [archive[5]]
        with pytest.raises(ValueError):
            search_many(database, queries, EuclideanMeasure(), strategy="psychic")
        with pytest.raises(ValueError):
            search_many(database, queries, EuclideanMeasure(), executor="fork-bomb")

    def test_empty_queries(self):
        archive = small_archive(5, 16, seed=2)
        assert search_many(list(archive), [], EuclideanMeasure()) == []
