"""Tests for the simulated disk store."""

import numpy as np
import pytest

from repro.core.counters import StepCounter
from repro.index.disk import DiskStore


class TestDiskStore:
    def test_fetch_counts(self, rng):
        store = DiskStore(rng.normal(size=(5, 8)))
        assert store.retrievals == 0
        store.fetch(0)
        store.fetch(3)
        store.fetch(0)  # re-fetch counts again (no buffer pool)
        assert store.retrievals == 3
        assert store.fraction_retrieved == 0.6

    def test_fetch_returns_correct_row(self, rng):
        data = rng.normal(size=(4, 6))
        store = DiskStore(data)
        assert np.array_equal(store.fetch(2), data[2])

    def test_out_of_range(self, rng):
        store = DiskStore(rng.normal(size=(3, 4)))
        with pytest.raises(IndexError):
            store.fetch(3)
        with pytest.raises(IndexError):
            store.fetch(-1)

    def test_shared_counter(self, rng):
        counter = StepCounter()
        store = DiskStore(rng.normal(size=(3, 4)), counter=counter)
        store.fetch(1)
        store.fetch(2)
        assert counter.disk_accesses == 2

    def test_peek_all_uncounted(self, rng):
        data = rng.normal(size=(3, 4))
        store = DiskStore(data)
        assert np.array_equal(store.peek_all(), data)
        assert store.retrievals == 0

    def test_reset(self, rng):
        store = DiskStore(rng.normal(size=(3, 4)))
        store.fetch(0)
        store.reset()
        assert store.retrievals == 0

    def test_rejects_empty_or_1d(self):
        with pytest.raises(ValueError):
            DiskStore(np.zeros((0, 4)))
        with pytest.raises(ValueError):
            DiskStore(np.zeros(4))

    def test_len_and_length(self, rng):
        store = DiskStore(rng.normal(size=(7, 11)))
        assert len(store) == 7
        assert store.length == 11
