"""Tests for the simulated disk store."""

import numpy as np
import pytest

from repro.core.counters import StepCounter
from repro.index.disk import DiskStore


class TestDiskStore:
    def test_fetch_counts(self, rng):
        store = DiskStore(rng.normal(size=(5, 8)))
        assert store.retrievals == 0
        store.fetch(0)
        store.fetch(3)
        store.fetch(0)  # re-fetch counts again (no buffer pool)
        assert store.retrievals == 3
        assert store.fraction_retrieved == 0.6

    def test_fetch_returns_correct_row(self, rng):
        data = rng.normal(size=(4, 6))
        store = DiskStore(data)
        assert np.array_equal(store.fetch(2), data[2])

    def test_out_of_range(self, rng):
        store = DiskStore(rng.normal(size=(3, 4)))
        with pytest.raises(IndexError):
            store.fetch(3)
        with pytest.raises(IndexError):
            store.fetch(-1)

    def test_shared_counter(self, rng):
        counter = StepCounter()
        store = DiskStore(rng.normal(size=(3, 4)), counter=counter)
        store.fetch(1)
        store.fetch(2)
        assert counter.disk_accesses == 2

    def test_peek_all_uncounted(self, rng):
        data = rng.normal(size=(3, 4))
        store = DiskStore(data)
        assert np.array_equal(store.peek_all(), data)
        assert store.retrievals == 0

    def test_reset(self, rng):
        store = DiskStore(rng.normal(size=(3, 4)))
        store.fetch(0)
        store.reset()
        assert store.retrievals == 0

    def test_rejects_empty_or_1d(self):
        with pytest.raises(ValueError):
            DiskStore(np.zeros((0, 4)))
        with pytest.raises(ValueError):
            DiskStore(np.zeros(4))

    def test_len_and_length(self, rng):
        store = DiskStore(rng.normal(size=(7, 11)))
        assert len(store) == 7
        assert store.length == 11

    def test_config_reports_buffer_pool(self, rng):
        store = DiskStore(rng.normal(size=(8, 4)), page_size=2, buffer_pages=3)
        assert store.config == {"page_size": 2, "buffer_pages": 3}

    def test_backed_by_mmap(self, rng, tmp_path):
        data = rng.normal(size=(5, 6))
        assert DiskStore(data).backed_by_mmap is False
        path = tmp_path / "collection.npy"
        np.save(path, data)
        mapped = DiskStore(np.load(path, mmap_mode="r"))
        assert mapped.backed_by_mmap is True
        np.testing.assert_array_equal(mapped.fetch(3), data[3])
        assert mapped.retrievals == 1
