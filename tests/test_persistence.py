"""Tests for dataset / index persistence."""

import math

import numpy as np
import pytest

from repro.datasets.shapes_data import Dataset, projectile_point_collection
from repro.distances.dtw import DTWMeasure
from repro.distances.euclidean import EuclideanMeasure
from repro.index.linear_scan import SignatureFilteredScan
from repro.persistence import load_dataset_file, load_index, save_dataset, save_index


@pytest.fixture
def dataset(rng):
    return Dataset(
        "roundtrip",
        rng.normal(size=(6, 16)),
        np.array([0, 0, 1, 1, 2, 2]),
        class_names=["a", "b", "c"],
    )


@pytest.fixture
def archive(rng):
    return projectile_point_collection(rng, 25, length=64)


class TestDatasetRoundtrip:
    def test_roundtrip_preserves_everything(self, dataset, tmp_path):
        path = save_dataset(dataset, tmp_path / "ds.npz")
        loaded = load_dataset_file(path)
        assert loaded.name == dataset.name
        assert np.array_equal(loaded.series, dataset.series)
        assert np.array_equal(loaded.labels, dataset.labels)
        assert loaded.class_names == dataset.class_names

    def test_empty_class_names(self, rng, tmp_path):
        ds = Dataset("x", rng.normal(size=(2, 4)), np.zeros(2, dtype=int))
        loaded = load_dataset_file(save_dataset(ds, tmp_path / "x.npz"))
        assert loaded.class_names == []

    def test_rejects_wrong_version(self, dataset, tmp_path):
        path = save_dataset(dataset, tmp_path / "ds.npz")
        with np.load(path, allow_pickle=True) as archive:
            contents = {key: archive[key] for key in archive.files}
        contents["format_version"] = np.array(99)
        np.savez(path, **contents)
        with pytest.raises(ValueError, match="version"):
            load_dataset_file(path)


class TestIndexRoundtrip:
    @pytest.mark.parametrize("structure", ["flat", "vptree", "rtree"])
    def test_loaded_index_answers_identically(self, archive, rng, tmp_path, structure):
        index = SignatureFilteredScan(archive, n_coefficients=8, structure=structure)
        path = save_index(index, tmp_path / "idx.npz")
        loaded = load_index(path)
        for measure in (EuclideanMeasure(), DTWMeasure(radius=2)):
            query = archive[7] + rng.normal(0, 0.05, 64)
            a = index.query(query, measure)
            b = loaded.query(query, measure)
            assert a.result.index == b.result.index
            assert math.isclose(a.result.distance, b.result.distance, rel_tol=1e-12)

    def test_detects_corruption(self, archive, tmp_path):
        index = SignatureFilteredScan(archive, n_coefficients=8)
        path = save_index(index, tmp_path / "idx.npz")
        with np.load(path) as stored:
            contents = {key: stored[key] for key in stored.files}
        contents["fourier"] = contents["fourier"] + 1.0  # corrupt signatures
        np.savez(path, **contents)
        with pytest.raises(ValueError, match="corrupt"):
            load_index(path)

    def test_rejects_wrong_version(self, archive, tmp_path):
        index = SignatureFilteredScan(archive, n_coefficients=4)
        path = save_index(index, tmp_path / "idx.npz")
        with np.load(path) as stored:
            contents = {key: stored[key] for key in stored.files}
        contents["format_version"] = np.array(42)
        np.savez(path, **contents)
        with pytest.raises(ValueError, match="version"):
            load_index(path)
